"""Tests for random forests."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import (
    RandomForestClassifier,
    RandomForestRegressor,
    r2_score,
)


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(7)
    X = rng.uniform(size=(400, 4))
    y = 2 * X[:, 0] + np.sin(5 * X[:, 1]) + rng.normal(0, 0.05, 400)
    return X[:300], y[:300], X[300:], y[300:]


class TestRegressor:
    def test_generalises(self, regression_data):
        Xtr, ytr, Xte, yte = regression_data
        rf = RandomForestRegressor(n_trees=20, random_state=0).fit(Xtr, ytr)
        assert r2_score(yte, rf.predict(Xte)) > 0.85

    def test_uncertainty_higher_off_manifold(self, regression_data):
        Xtr, ytr, _, _ = regression_data
        rf = RandomForestRegressor(n_trees=20, random_state=0).fit(Xtr, ytr)
        _, std_in = rf.predict_with_std(Xtr[:50])
        _, std_out = rf.predict_with_std(np.full((10, 4), 5.0))
        # Points far outside the training range land in diverse extrapolating
        # leaves -> the spread should not collapse below the in-sample spread.
        assert std_out.mean() >= std_in.mean() * 0.5

    def test_deterministic_given_seed(self, regression_data):
        Xtr, ytr, Xte, _ = regression_data
        a = RandomForestRegressor(n_trees=5, random_state=3).fit(Xtr, ytr)
        b = RandomForestRegressor(n_trees=5, random_state=3).fit(Xtr, ytr)
        assert np.allclose(a.predict(Xte), b.predict(Xte))

    def test_feature_importances(self, regression_data):
        Xtr, ytr, _, _ = regression_data
        rf = RandomForestRegressor(n_trees=20, random_state=0).fit(Xtr, ytr)
        imp = rf.feature_importances()
        assert imp.shape == (4,)
        assert imp.sum() == pytest.approx(1.0)
        # Features 0 and 1 carry the signal; 2 and 3 are noise.
        assert imp[0] + imp[1] > 0.8

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            RandomForestRegressor().predict(np.zeros((2, 2)))

    def test_bad_sizes(self):
        with pytest.raises(ModelError):
            RandomForestRegressor(n_trees=0)
        with pytest.raises(ModelError):
            RandomForestRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_no_bootstrap_mode(self, regression_data):
        Xtr, ytr, Xte, yte = regression_data
        rf = RandomForestRegressor(n_trees=5, bootstrap=False,
                                   random_state=0).fit(Xtr, ytr)
        assert r2_score(yte, rf.predict(Xte)) > 0.8


class TestClassifier:
    def test_majority_vote(self, rng):
        X = rng.uniform(size=(400, 3))
        y = ((X[:, 0] > 0.5) ^ (X[:, 1] > 0.5)).astype(int)  # XOR-ish
        rf = RandomForestClassifier(n_trees=30, max_depth=6,
                                    random_state=0).fit(X[:300], y[:300])
        acc = np.mean(rf.predict(X[300:]) == y[300:])
        assert acc > 0.85

    def test_predict_proba_bounds(self, rng):
        X = rng.uniform(size=(100, 2))
        y = (X[:, 0] > 0.5).astype(int)
        rf = RandomForestClassifier(n_trees=10, random_state=0).fit(X, y)
        p = rf.predict_proba(X, cls=1)
        assert np.all(p >= 0.0) and np.all(p <= 1.0)
        assert p[X[:, 0] > 0.9].mean() > 0.8
