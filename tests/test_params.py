"""Tests for the KinectFusion parameter definitions."""

import pytest

from repro.core import AlgorithmConfiguration
from repro.errors import ConfigurationError
from repro.kfusion import DEFAULTS, KFusionParams, parameter_specs


class TestSpecs:
    def test_defaults_match_slambench(self):
        assert DEFAULTS["volume_resolution"] == 256
        assert DEFAULTS["compute_size_ratio"] == 1
        assert DEFAULTS["mu_distance"] == pytest.approx(0.1)
        assert DEFAULTS["integration_rate"] == 2

    def test_specs_cover_all_defaults(self):
        names = {s.name for s in parameter_specs()}
        assert names == set(DEFAULTS)

    def test_specs_defaults_agree(self):
        for s in parameter_specs():
            assert s.default == DEFAULTS[s.name]

    def test_icp_threshold_is_log_scale(self):
        spec = {s.name: s for s in parameter_specs()}["icp_threshold"]
        assert spec.log_scale


class TestKFusionParams:
    def test_from_configuration(self):
        cfg = AlgorithmConfiguration(parameter_specs(),
                                     {"volume_resolution": 64})
        p = KFusionParams.from_configuration(cfg)
        assert p.volume_resolution == 64
        assert p.mu_distance == DEFAULTS["mu_distance"]

    def test_voxel_size(self):
        p = KFusionParams(volume_resolution=128, volume_size=6.4)
        assert p.voxel_size == pytest.approx(0.05)

    def test_pyramid_iterations_order(self):
        p = KFusionParams(pyramid_iterations_l0=1, pyramid_iterations_l1=2,
                          pyramid_iterations_l2=3)
        assert p.pyramid_iterations == (1, 2, 3)

    @pytest.mark.parametrize("kwargs", [
        {"volume_resolution": 4},
        {"volume_size": -1.0},
        {"compute_size_ratio": 0},
        {"mu_distance": 0.0},
        {"icp_threshold": 0.0},
        {"integration_rate": 0},
        {"tracking_rate": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            KFusionParams(**kwargs)
