"""Shared fixtures: tiny synthetic sequences, cameras, devices.

Everything here is deliberately small (80x60 frames, short sequences) so
the whole suite runs in minutes; sizes are chosen so KinectFusion still
tracks reliably at them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import icl_nuim
from repro.geometry import PinholeCamera
from repro.platforms import odroid_xu3
from repro.scene import KinectNoiseModel, living_room


@pytest.fixture(scope="session")
def camera() -> PinholeCamera:
    return PinholeCamera.kinect_like(width=80, height=60)


@pytest.fixture(scope="session")
def scene():
    return living_room()


@pytest.fixture(scope="session")
def tiny_sequence():
    """8 frames, 80x60, mild noise — rendered once per session."""
    seq = icl_nuim.load("lr_kt0", n_frames=8, width=80, height=60, seed=0)
    seq.materialize()
    return seq


@pytest.fixture(scope="session")
def clean_sequence():
    """6 noiseless frames for deterministic geometric checks."""
    seq = icl_nuim.load(
        "lr_kt0", n_frames=6, width=80, height=60,
        noise=KinectNoiseModel.noiseless(), seed=0,
    )
    seq.materialize()
    return seq


@pytest.fixture(scope="session")
def odroid():
    return odroid_xu3()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
