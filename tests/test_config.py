"""Tests for parameter specs and algorithm configurations."""

import pytest

from repro.core import AlgorithmConfiguration, ParameterSpec
from repro.errors import ConfigurationError


def specs():
    return [
        ParameterSpec("res", "ordinal", 64, choices=(32, 64, 128)),
        ParameterSpec("mu", "real", 0.1, low=0.01, high=0.3),
        ParameterSpec("iters", "integer", 5, low=0, high=10),
        ParameterSpec("backend", "categorical", "opencl",
                      choices=("cpp", "opencl")),
        ParameterSpec("thresh", "real", 1e-5, low=1e-20, high=1e-2,
                      log_scale=True),
    ]


class TestParameterSpec:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", "fancy", 1)

    def test_real_needs_bounds(self):
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", "real", 1.0)

    def test_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", "real", 1.0, low=2.0, high=1.0)

    def test_log_scale_needs_positive_low(self):
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", "real", 1.0, low=0.0, high=2.0, log_scale=True)

    def test_ordinal_needs_sorted_choices(self):
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", "ordinal", 2, choices=(3, 2, 1))

    def test_default_validated(self):
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", "real", 5.0, low=0.0, high=1.0)

    def test_integer_rejects_fractional(self):
        s = ParameterSpec("x", "integer", 1, low=0, high=10)
        with pytest.raises(ConfigurationError):
            s.validate(1.5)

    def test_integer_accepts_integral_float(self):
        s = ParameterSpec("x", "integer", 1, low=0, high=10)
        assert s.validate(3.0) == 3

    def test_categorical_membership(self):
        s = ParameterSpec("x", "categorical", "a", choices=("a", "b"))
        with pytest.raises(ConfigurationError):
            s.validate("c")


class TestAlgorithmConfiguration:
    def test_defaults(self):
        cfg = AlgorithmConfiguration(specs())
        assert cfg["res"] == 64
        assert cfg["backend"] == "opencl"
        assert len(cfg) == 5

    def test_update_and_get(self):
        cfg = AlgorithmConfiguration(specs(), {"res": 128, "mu": 0.2})
        assert cfg["res"] == 128
        assert cfg["mu"] == pytest.approx(0.2)

    def test_unknown_name(self):
        cfg = AlgorithmConfiguration(specs())
        with pytest.raises(ConfigurationError):
            cfg["nope"]
        with pytest.raises(ConfigurationError):
            cfg["nope"] = 1

    def test_out_of_bounds(self):
        cfg = AlgorithmConfiguration(specs())
        with pytest.raises(ConfigurationError):
            cfg["mu"] = 0.5

    def test_duplicate_specs_rejected(self):
        s = specs() + [ParameterSpec("res", "integer", 1, low=0, high=2)]
        with pytest.raises(ConfigurationError):
            AlgorithmConfiguration(s)

    def test_copy_is_independent(self):
        a = AlgorithmConfiguration(specs())
        b = a.copy()
        b["res"] = 128
        assert a["res"] == 64

    def test_equality(self):
        assert AlgorithmConfiguration(specs()) == AlgorithmConfiguration(specs())
        other = AlgorithmConfiguration(specs(), {"res": 32})
        assert AlgorithmConfiguration(specs()) != other

    def test_as_dict_and_contains(self):
        cfg = AlgorithmConfiguration(specs())
        d = cfg.as_dict()
        assert set(d) == {"res", "mu", "iters", "backend", "thresh"}
        assert "res" in cfg
        assert "nope" not in cfg
