"""Smoke tests: the runnable examples must keep working.

Only the fast examples run here (the DSE/campaign ones take minutes and
are covered by the benchmarks); each runs in a subprocess exactly as a
user would invoke it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str, args: list | None = None, cwd: str | None = None):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    result = subprocess.run(
        [sys.executable, path] + (args or []),
        capture_output=True,
        text=True,
        timeout=420,
        cwd=cwd,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Benchmark summary" in out
        assert "ate_max_m" in out

    def test_dataset_tools(self, tmp_path):
        out = run_example("dataset_tools.py",
                          [str(tmp_path / "seq.npz")])
        assert "saved + reloaded" in out
        assert (tmp_path / "seq.npz").exists()

    def test_custom_algorithm(self):
        out = run_example("custom_algorithm.py")
        assert "const_velocity" in out
        assert "kfusion" in out

    def test_reconstruction_quality(self, tmp_path):
        out = run_example("reconstruction_quality.py", [str(tmp_path)])
        assert "Reconstruction quality" in out
        assert (tmp_path / "model.obj").exists()
        assert (tmp_path / "estimated.txt").exists()
