"""Tests for measured stage timings, repetition statistics, and the
speed-up driver analysis."""

import numpy as np
import pytest

from repro.core import run_benchmark
from repro.core.workload import FrameWorkload
from repro.crowd import run_campaign
from repro.crowd.analysis import speedup_drivers
from repro.errors import OptimizationError, SimulationError
from repro.hypermapper import (
    ConstraintSet,
    SurrogateEvaluator,
    accuracy_limit,
    kfusion_design_space,
    random_exploration,
)
from repro.hypermapper.report import repeat_exploration
from repro.kfusion import KinectFusion


class TestStageTiming:
    def test_stage_times_recorded(self, tiny_sequence):
        result = run_benchmark(
            KinectFusion(), tiny_sequence,
            configuration={"volume_resolution": 64, "volume_size": 5.0,
                           "integration_rate": 1},
            evaluate_accuracy=False,
        )
        wt = result.collector.records[2].workload.wall_times_s
        assert set(wt) == {"preprocess", "track", "integrate", "raycast"}
        assert all(v >= 0 for v in wt.values())
        # The stage times roughly account for the frame's wall clock.
        total_stage = sum(wt.values())
        frame_wall = result.collector.records[2].wall_time_s
        assert total_stage <= frame_wall
        assert total_stage > 0.4 * frame_wall

    def test_first_frame_has_no_track_time_cost(self, tiny_sequence):
        result = run_benchmark(
            KinectFusion(), tiny_sequence,
            configuration={"volume_resolution": 32, "volume_size": 5.0},
            evaluate_accuracy=False,
        )
        wt0 = result.collector.records[0].workload.wall_times_s
        wt1 = result.collector.records[1].workload.wall_times_s
        assert wt0["track"] < wt1["track"]

    def test_record_wall_time_validates(self):
        wl = FrameWorkload(0)
        with pytest.raises(SimulationError):
            wl.record_wall_time("x", -1.0)
        wl.record_wall_time("x", 0.5)
        wl.record_wall_time("x", 0.25)
        assert wl.wall_times_s["x"] == pytest.approx(0.75)


class TestRepeatExploration:
    def test_statistics_across_seeds(self, odroid):
        cons = ConstraintSet.of([accuracy_limit(0.06)])

        def make(seed):
            return random_exploration(
                kfusion_design_space(), SurrogateEvaluator(device=odroid,
                                                           seed=seed),
                40, seed=seed,
            )

        stats = repeat_exploration(make, cons, seeds=range(3))
        assert stats.trials == 3
        assert stats.feasible_mean >= 0.0
        assert 0.0 <= stats.success_rate <= 1.0
        if stats.success_rate > 0:
            assert np.isfinite(stats.best_runtime_mean_s)

    def test_no_seeds_rejected(self, odroid):
        cons = ConstraintSet.of([accuracy_limit(0.05)])
        with pytest.raises(OptimizationError):
            repeat_exploration(lambda s: None, cons, seeds=[])


class TestSpeedupDrivers:
    @pytest.fixture(scope="class")
    def runs(self):
        tuned = {
            "volume_resolution": 96, "volume_size": 4.3,
            "compute_size_ratio": 2, "mu_distance": 0.066,
            "icp_threshold": 1e-5, "pyramid_iterations_l0": 8,
            "pyramid_iterations_l1": 4, "pyramid_iterations_l2": 3,
            "integration_rate": 3, "tracking_rate": 1,
        }
        return run_campaign(tuned, n_frames=8, seed=0)

    def test_importances_sum_to_one(self, runs):
        rows = speedup_drivers(runs)
        total = sum(r["importance"] for r in rows)
        assert total == pytest.approx(1.0, abs=1e-6)
        assert rows == sorted(rows, key=lambda r: -r["importance"])

    def test_too_few_runs_rejected(self, runs):
        with pytest.raises(SimulationError):
            speedup_drivers(runs[:5])
