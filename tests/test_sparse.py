"""Tests for the sparse feature-based odometry."""

import numpy as np
import pytest

from repro.baselines import ICPOdometry, SparseOdometry
from repro.baselines.sparse import detect_features, match_nearest, trimmed_rigid_fit
from repro.core import TrackingStatus, run_benchmark
from repro.datasets import icl_nuim
from repro.geometry import PinholeCamera, se3


@pytest.fixture(scope="module")
def feature_sequence():
    # Higher resolution than the dense tests: sparse features need it.
    seq = icl_nuim.load("lr_kt0", n_frames=10, width=160, height=120, seed=0)
    seq.materialize()
    return seq


class TestDetection:
    def test_plane_has_no_features(self):
        cam = PinholeCamera.kinect_like(64, 48)
        depth = np.full(cam.shape, 2.0)
        feats = detect_features(depth, cam)
        assert len(feats) == 0

    def test_box_edge_detected(self):
        cam = PinholeCamera.kinect_like(64, 48)
        depth = np.full(cam.shape, 2.0)
        depth[:, 32:] = 1.5  # depth step = strong curvature line
        feats = detect_features(depth, cam)
        assert len(feats) > 0
        # Features lie near the step (x close to the step's 3-D position).
        assert np.all(np.abs(feats[:, 2] - 1.75) < 0.4)

    def test_max_features_respected(self, feature_sequence):
        cam = feature_sequence.sensors.depth.camera
        depth = feature_sequence.frame(0).depth
        feats = detect_features(depth, cam, max_features=25)
        assert len(feats) <= 25

    def test_scene_produces_features(self, feature_sequence):
        cam = feature_sequence.sensors.depth.camera
        feats = detect_features(feature_sequence.frame(0).depth, cam)
        assert len(feats) > 30


class TestMatching:
    def test_identity_matching(self, rng):
        pts = rng.uniform(-1, 1, size=(50, 3))
        ia, ib = match_nearest(pts, pts + rng.normal(0, 1e-4, pts.shape))
        assert len(ia) == 50
        assert np.array_equal(ia, ib)

    def test_distance_gate(self, rng):
        a = rng.uniform(0, 1, size=(20, 3))
        b = a + 10.0  # far away
        ia, _ = match_nearest(a, b, max_distance=0.1)
        assert len(ia) == 0

    def test_empty_inputs(self):
        ia, ib = match_nearest(np.empty((0, 3)), np.ones((5, 3)))
        assert len(ia) == 0


class TestRigidFit:
    def test_recovers_transform_with_outliers(self, rng):
        src = rng.uniform(-1, 1, size=(60, 3))
        T_true = se3.make_pose(se3.so3_exp([0.05, -0.02, 0.1]),
                               [0.02, -0.01, 0.03])
        dst = se3.transform_points(T_true, src)
        dst[:6] += rng.uniform(0.5, 1.0, size=(6, 3))  # 10% outliers
        T, inliers = trimmed_rigid_fit(src, dst)
        dt, dr = se3.pose_distance(T, T_true)
        assert dt < 0.01
        assert dr < 0.01
        assert inliers >= 30


class TestSystem:
    def test_tracks_sequence(self, feature_sequence):
        result = run_benchmark(SparseOdometry(), feature_sequence)
        assert result.collector.tracked_fraction() > 0.8
        assert result.ate.max < 0.08

    def test_less_accurate_than_dense(self, feature_sequence):
        sparse = run_benchmark(SparseOdometry(), feature_sequence)
        dense = run_benchmark(ICPOdometry(), feature_sequence)
        assert dense.ate.rmse <= sparse.ate.rmse * 1.5

    def test_cheaper_than_dense(self, feature_sequence):
        sparse = run_benchmark(SparseOdometry(), feature_sequence)
        dense = run_benchmark(ICPOdometry(), feature_sequence)
        flops_sparse = sum(r.workload.total_flops
                           for r in sparse.collector.records)
        flops_dense = sum(r.workload.total_flops
                          for r in dense.collector.records)
        assert flops_sparse < flops_dense

    def test_feature_count_output(self, feature_sequence):
        system = SparseOdometry()
        system.new_configuration()
        system.init(feature_sequence.sensors)
        f = feature_sequence.frame(0)
        system.update_frame(f.without_ground_truth())
        system.process_once()
        system.update_outputs()
        assert system.outputs.get("feature_count").value > 0
        system.clean()

    def test_blank_frames_report_lost(self, feature_sequence):
        from repro.core import Frame
        from repro.datasets import InMemorySequence

        frames = [
            Frame(index=i, timestamp=i / 30.0, depth=np.full((120, 160), 2.0),
                  ground_truth_pose=np.eye(4))
            for i in range(3)
        ]
        seq = InMemorySequence("flat", feature_sequence.sensors, frames)
        result = run_benchmark(SparseOdometry(), seq,
                               evaluate_accuracy=False)
        statuses = [r.status for r in result.collector.records]
        # A featureless plane cannot be tracked by sparse features.
        assert statuses[1] is TrackingStatus.LOST
