"""Tests for the HyperMapper optimizer and the random baseline."""

import numpy as np
import pytest

from repro.core import ParameterSpec
from repro.errors import OptimizationError
from repro.hypermapper import (
    ConstraintSet,
    DesignSpace,
    Evaluation,
    HyperMapper,
    accuracy_limit,
    random_exploration,
)


class QuadraticEvaluator:
    """A cheap analytic black box with a known optimum.

    runtime = (x-0.2)^2 + 0.01, ate = (y-0.7)^2 + 0.01,
    power = x + y + 0.5 — the feasible fast region is near x=0.2, y=0.7.
    """

    def __init__(self):
        self.evaluations = 0

    def evaluate(self, configuration):
        x = configuration["x"]
        y = configuration["y"]
        self.evaluations += 1
        return Evaluation(
            configuration=dict(configuration),
            runtime_s=(x - 0.2) ** 2 + 0.01,
            max_ate_m=(y - 0.7) ** 2 + 0.01,
            power_w=x + y + 0.5,
            fps=1.0 / ((x - 0.2) ** 2 + 0.01),
        )


def space():
    return DesignSpace([
        ParameterSpec("x", "real", 0.5, low=0.0, high=1.0),
        ParameterSpec("y", "real", 0.5, low=0.0, high=1.0),
    ])


class TestHyperMapper:
    def test_finds_good_region(self):
        ev = QuadraticEvaluator()
        hm = HyperMapper(space(), ev, constraint=accuracy_limit(0.05),
                         n_initial=10, n_iterations=5,
                         samples_per_iteration=4, candidate_pool=200, seed=0)
        result = hm.run()
        best = result.best("runtime_s",
                           ConstraintSet.of([accuracy_limit(0.05)]))
        assert abs(best.configuration["x"] - 0.2) < 0.15
        assert best.max_ate_m < 0.05

    def test_bookkeeping(self):
        ev = QuadraticEvaluator()
        hm = HyperMapper(space(), ev, n_initial=8, n_iterations=3,
                         samples_per_iteration=2, candidate_pool=100, seed=0)
        result = hm.run()
        assert len(result.evaluations) == 8 + 3 * 2
        assert result.iteration_of[:8] == [0] * 8
        assert max(result.iteration_of) == 3
        assert result.method == "active_learning"
        assert ev.evaluations == len(result.evaluations)

    def test_active_beats_random_on_feasibility(self):
        """Core paper claim: the model-guided search concentrates samples
        in the accuracy-feasible region, which random sampling rarely hits
        when that region is narrow."""

        class HardEvaluator(QuadraticEvaluator):
            # Feasible (max_ate < 0.05) only in a narrow band around y=0.7.
            def evaluate(self, configuration):
                e = super().evaluate(configuration)
                y = configuration["y"]
                return Evaluation(
                    configuration=e.configuration,
                    runtime_s=e.runtime_s,
                    max_ate_m=0.5 * abs(y - 0.7) + 0.005,
                    power_w=e.power_w,
                    fps=e.fps,
                )

        cons = ConstraintSet.of([accuracy_limit(0.05)])
        for seed in range(3):
            hm = HyperMapper(space(), HardEvaluator(),
                             constraint=accuracy_limit(0.05),
                             n_initial=10, n_iterations=5,
                             samples_per_iteration=4,
                             candidate_pool=300, seed=seed)
            res_a = hm.run()
            res_r = random_exploration(space(), HardEvaluator(),
                                       len(res_a.evaluations),
                                       seed=seed + 100)
            assert len(res_a.feasible(cons)) > len(res_r.feasible(cons))

    def test_invalid_budgets(self):
        with pytest.raises(OptimizationError):
            HyperMapper(space(), QuadraticEvaluator(), n_initial=2)
        with pytest.raises(OptimizationError):
            HyperMapper(space(), QuadraticEvaluator(),
                        samples_per_iteration=0)

    def test_seed_configurations_evaluated_first(self):
        ev = QuadraticEvaluator()
        prior = {"x": 0.2, "y": 0.7}
        hm = HyperMapper(space(), ev, n_initial=6, n_iterations=1,
                         samples_per_iteration=2, candidate_pool=100,
                         seed=0, seed_configurations=[prior])
        result = hm.run()
        assert result.evaluations[0].configuration == prior
        assert len(result.evaluations) == 6 + 2  # prior counts in n_initial

    def test_invalid_seed_configuration_rejected(self):
        with pytest.raises(Exception):
            HyperMapper(space(), QuadraticEvaluator(),
                        seed_configurations=[{"x": 5.0, "y": 0.5}])


class TestExplorationResult:
    def test_objective_matrix(self):
        res = random_exploration(space(), QuadraticEvaluator(), 5, seed=0)
        M = res.objective_matrix(("runtime_s", "power_w"))
        assert M.shape == (5, 2)

    def test_pareto_front_is_nondominated(self):
        res = random_exploration(space(), QuadraticEvaluator(), 40, seed=0)
        front = res.pareto(("runtime_s", "max_ate_m"))
        assert front
        for a in front:
            for b in front:
                dominates = (
                    b.runtime_s <= a.runtime_s
                    and b.max_ate_m <= a.max_ate_m
                    and (b.runtime_s < a.runtime_s
                         or b.max_ate_m < a.max_ate_m)
                )
                assert not dominates

    def test_best_without_feasible_raises(self):
        res = random_exploration(space(), QuadraticEvaluator(), 5, seed=0)
        impossible = ConstraintSet.of([accuracy_limit(1e-9)])
        with pytest.raises(OptimizationError):
            res.best("runtime_s", impossible)

    def test_empty_result_rejected(self):
        with pytest.raises(OptimizationError):
            random_exploration(space(), QuadraticEvaluator(), 0)
