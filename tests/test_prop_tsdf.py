"""Property-based tests for TSDF volume invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import PinholeCamera, se3
from repro.kfusion import TSDFVolume
from repro.kfusion.integration import MAX_WEIGHT, integrate

cam = PinholeCamera.kinect_like(32, 24)
pose = se3.make_pose(np.eye(3), [1.0, 1.0, 0.0])


@given(depth_value=st.floats(min_value=0.4, max_value=1.8),
       mu=st.floats(min_value=0.05, max_value=0.3))
@settings(max_examples=25, deadline=None)
def test_tsdf_stays_normalised(depth_value, mu):
    v = TSDFVolume(24, 2.0)
    integrate(v, np.full(cam.shape, depth_value), cam, pose, mu)
    assert np.all(v.tsdf <= 1.0 + 1e-6)
    assert np.all(v.tsdf >= -1.0 - 1e-6)
    assert np.all(v.weight >= 0.0)
    assert np.all(v.weight <= MAX_WEIGHT)


@given(depth_value=st.floats(min_value=0.4, max_value=1.8))
@settings(max_examples=15, deadline=None)
def test_repeated_integration_is_idempotent_in_value(depth_value):
    """Fusing the same depth twice must not move the surface."""
    v1 = TSDFVolume(24, 2.0)
    integrate(v1, np.full(cam.shape, depth_value), cam, pose, 0.2)
    tsdf_once = v1.tsdf.copy()
    integrate(v1, np.full(cam.shape, depth_value), cam, pose, 0.2)
    observed = v1.weight > 0
    assert np.allclose(v1.tsdf[observed], tsdf_once[observed], atol=1e-5)


@given(depth_value=st.floats(min_value=0.5, max_value=1.5),
       n_frames=st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_weight_monotone_in_frames(depth_value, n_frames):
    v = TSDFVolume(16, 2.0)
    prev_total = 0.0
    for _ in range(n_frames):
        integrate(v, np.full(cam.shape, depth_value), cam, pose, 0.2)
        total = float(v.weight.sum())
        assert total >= prev_total
        prev_total = total


@given(points=st.lists(
    st.tuples(st.floats(min_value=-1.0, max_value=3.0),
              st.floats(min_value=-1.0, max_value=3.0),
              st.floats(min_value=-1.0, max_value=3.0)),
    min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_sampling_never_crashes_and_flags_outside(points):
    v = TSDFVolume(16, 2.0)
    pts = np.array(points)
    vals, valid = v.sample_trilinear(pts)
    assert vals.shape == (len(pts),)
    # Nothing observed yet: nothing can be valid.
    assert not valid.any()
    assert np.all(vals == 1.0)
