"""Tests for random and Latin hypercube samplers."""

import numpy as np
import pytest

from repro.core import ParameterSpec
from repro.errors import OptimizationError
from repro.hypermapper import DesignSpace, latin_hypercube_sample, random_sample


def space():
    return DesignSpace([
        ParameterSpec("x", "real", 0.5, low=0.0, high=1.0),
        ParameterSpec("n", "integer", 5, low=0, high=9),
        ParameterSpec("c", "ordinal", 2, choices=(1, 2, 4, 8)),
    ])


class TestRandom:
    def test_count_and_validity(self):
        s = space()
        configs = random_sample(s, 30, seed=0)
        assert len(configs) == 30
        for c in configs:
            s.validate(c)

    def test_deterministic(self):
        assert random_sample(space(), 5, seed=1) == random_sample(
            space(), 5, seed=1
        )

    def test_bad_n(self):
        with pytest.raises(OptimizationError):
            random_sample(space(), 0)


class TestLatinHypercube:
    def test_stratification_in_reals(self):
        s = space()
        n = 10
        configs = latin_hypercube_sample(s, n, seed=0)
        xs = sorted(c["x"] for c in configs)
        # One sample per [k/n, (k+1)/n) bin.
        for k, x in enumerate(xs):
            assert k / n <= x < (k + 1) / n + 1e-9

    def test_integer_coverage(self):
        s = space()
        configs = latin_hypercube_sample(s, 10, seed=0)
        assert {c["n"] for c in configs} == set(range(10))

    def test_validity(self):
        s = space()
        for c in latin_hypercube_sample(s, 25, seed=3):
            s.validate(c)

    def test_bad_n(self):
        with pytest.raises(OptimizationError):
            latin_hypercube_sample(space(), 0)
