"""Regression guards for the calibrated ODROID-XU3 model.

The headline and Figure 2/3 shapes depend on the device model putting the
default configuration in the right regime (not real-time, ~3 W busy) with
enough headroom below 1 W for the tuned point.  These tests pin that
calibration so a model edit cannot silently break the reproduction.
"""

import pytest

from repro.kfusion.params import KFusionParams
from repro.kfusion.workload_model import sequence_workloads
from repro.platforms import PerformanceSimulator, PlatformConfig, odroid_xu3


@pytest.fixture(scope="module")
def default_run(odroid):
    workloads = sequence_workloads(KFusionParams(), 320, 240, 10)
    sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
    return sim.simulate(workloads)


class TestCalibration:
    def test_default_not_realtime(self, default_run):
        """The paper's premise: default KinectFusion is far from 30 FPS."""
        assert 5.0 < default_run.fps < 25.0

    def test_default_busy_power_near_3w(self, default_run):
        assert 2.5 < default_run.average_power_w < 4.5

    def test_idle_floor_well_below_1w(self, default_run):
        assert default_run.idle_power_w < 0.8

    def test_one_watt_budget_attainable(self, odroid):
        """A known light configuration at a low GPU clock must land under
        1 W and above 30 FPS — the feasible point the headline finds."""
        params = KFusionParams(volume_resolution=96, compute_size_ratio=2,
                               mu_distance=0.075, integration_rate=3)
        workloads = sequence_workloads(params, 320, 240, 10)
        sim = PerformanceSimulator(
            odroid,
            PlatformConfig(backend="opencl", gpu_freq_ghz=0.35,
                           cpu_freq_ghz=1.0),
        )
        result = sim.simulate(workloads)
        assert result.fps > 30.0
        assert result.streaming_average_power_w() < 1.0

    def test_integration_dominates_default(self, default_run):
        breakdown = default_run.kernel_breakdown_s()
        total = sum(breakdown.values())
        # Even with the default integration_rate=2 decimation, fusing the
        # 256^3 volume is the single largest kernel.
        assert max(breakdown, key=breakdown.get) == "integrate"
        assert breakdown["integrate"] / total > 0.3

    def test_mali_modeled_as_sustained_not_peak(self, odroid):
        # The calibration note in platforms/odroid.py: sustained figure,
        # an order below the marketing peak.
        assert odroid.gpu.gflops < 50.0
        assert odroid.gpu.bandwidth_gbs < odroid.memory_bandwidth_gbs
