"""Property-based tests for mesh extraction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kfusion import TSDFVolume
from repro.kfusion.mesh import extract_mesh


def sphere_volume(radius, mu, resolution=24, center=1.0):
    v = TSDFVolume(resolution, 2.0)
    centers = v.voxel_centers_world()
    sdf = np.linalg.norm(centers - center, axis=-1) - radius
    v.tsdf[:] = np.clip(sdf / mu, -1, 1).reshape(v.tsdf.shape)
    v.weight[:] = 1.0
    return v


@given(radius=st.floats(min_value=0.25, max_value=0.8),
       mu=st.floats(min_value=0.15, max_value=0.5))
@settings(max_examples=20, deadline=None)
def test_sphere_vertices_near_radius(radius, mu):
    mesh = extract_mesh(sphere_volume(radius, mu))
    assert mesh.n_triangles > 0
    r = np.linalg.norm(mesh.vertices - 1.0, axis=-1)
    voxel = 2.0 / 24
    assert np.abs(r - radius).max() < voxel


@given(radius=st.floats(min_value=0.3, max_value=0.7),
       mu=st.floats(min_value=0.2, max_value=0.5))
@settings(max_examples=20, deadline=None)
def test_area_close_to_analytic(radius, mu):
    mesh = extract_mesh(sphere_volume(radius, mu))
    target = 4.0 * np.pi * radius * radius
    assert abs(mesh.surface_area() - target) / target < 0.1


@given(plane_z=st.floats(min_value=0.4, max_value=1.6))
@settings(max_examples=20, deadline=None)
def test_plane_mesh_area(plane_z):
    """A z-plane through a fully observed 2 m volume meshes to ~4 m^2."""
    v = TSDFVolume(24, 2.0)
    centers = v.voxel_centers_world()
    sdf = centers[:, 2] - plane_z
    v.tsdf[:] = np.clip(sdf / 0.4, -1, 1).reshape(v.tsdf.shape)
    v.weight[:] = 1.0
    mesh = extract_mesh(v)
    assert mesh.n_triangles > 0
    assert np.abs(mesh.vertices[:, 2] - plane_z).max() < 0.01
    # Area within the meshable cell region (r-1 cells per side).
    expected = ((23 / 24) * 2.0) ** 2
    assert abs(mesh.surface_area() - expected) / expected < 0.05
