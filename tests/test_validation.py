"""Tests for ML validation utilities."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import (
    DecisionTreeRegressor,
    accuracy,
    cross_val_r2,
    mse,
    r2_score,
    spearman_rank_correlation,
    train_test_split,
)


class TestSplit:
    def test_sizes(self, rng):
        X = rng.uniform(size=(100, 2))
        y = rng.uniform(size=100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=1)
        assert len(Xte) == 25
        assert len(Xtr) == 75
        assert len(ytr) == 75

    def test_disjoint_and_complete(self, rng):
        X = np.arange(50, dtype=float).reshape(-1, 1)
        y = np.arange(50, dtype=float)
        Xtr, Xte, _, _ = train_test_split(X, y, seed=0)
        combined = sorted(list(Xtr[:, 0]) + list(Xte[:, 0]))
        assert combined == list(range(50))

    def test_bad_fraction(self, rng):
        X = rng.uniform(size=(10, 1))
        with pytest.raises(ModelError):
            train_test_split(X, X[:, 0], test_fraction=0.0)


class TestScores:
    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        y = np.ones(5)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    def test_mse(self):
        assert mse([0.0, 0.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_spearman_monotone(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, a**3) == pytest.approx(1.0)
        assert spearman_rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_spearman_handles_ties(self):
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman_rank_correlation(a, b) == pytest.approx(1.0)

    def test_shape_checks(self):
        with pytest.raises(ModelError):
            r2_score(np.ones(3), np.ones(4))
        with pytest.raises(ModelError):
            spearman_rank_correlation(np.ones(1), np.ones(1))


class TestCrossVal:
    def test_scores_reasonable(self, rng):
        X = rng.uniform(size=(120, 2))
        y = 3 * X[:, 0] + rng.normal(0, 0.01, 120)
        scores = cross_val_r2(
            lambda: DecisionTreeRegressor(max_depth=6), X, y, folds=4
        )
        assert len(scores) == 4
        assert np.mean(scores) > 0.8

    def test_bad_folds(self, rng):
        X = rng.uniform(size=(5, 1))
        with pytest.raises(ModelError):
            cross_val_r2(lambda: DecisionTreeRegressor(), X, X[:, 0], folds=10)
