"""Tests for the static concurrency verifier (S23).

Covers the three race rules over scratch projects (true positive AND
false-positive guard for each), the ``# guarded-by:`` waiver grammar,
the module-scope-lock arm of RPR006, the content-addressed AST memo,
and the live-tree regression: deleting one ``with self._lock:`` from
``ServeEngine.stats`` must turn ``repro races check`` red.
"""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

from repro.analysis import analyze_paths, analyze_source
from repro.analysis.framework import parse_cached
from repro.analysis.lint import (
    LINT_EXIT_CLEAN,
    LINT_EXIT_FINDINGS,
    LINT_EXIT_INTERNAL,
)
from repro.analysis.races import (
    races_check,
    races_diff,
    races_show,
    races_snapshot,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

BASE_POLICY = """\
    version = 1
    root = "repro"

    [[layer]]
    name = "top"
    packages = ["repro"]
"""


def write_proj(tmp_path, files, policy: str | None = None):
    """Scratch project: optional ``ARCHITECTURE.toml`` + ``repro/`` files."""
    root = tmp_path / "proj"
    (root / "repro").mkdir(parents=True)
    if policy is not None:
        (root / "ARCHITECTURE.toml").write_text(textwrap.dedent(policy))
    for rel, src in files.items():
        p = root / "repro" / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    return root


def conc_findings(monkeypatch, root, select):
    monkeypatch.chdir(root)
    return analyze_paths(["repro"], select=select)


# -- RPR014: shared-state lockset ---------------------------------------------

RACY_WORKER = """\
    import threading

    class Worker:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def start(self):
            threading.Thread(target=self._run).start()

        def _run(self):
            self._bump()

        def _bump(self):
            self.count += 1

        def poll(self):
            return self.count
"""

LOCKED_WORKER = """\
    import threading

    class Worker:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0

        def start(self):
            threading.Thread(target=self._run).start()

        def _run(self):
            self._bump()

        def _bump(self):
            with self._lock:
                self.count += 1

        def poll(self):
            with self._lock:
                return self.count
"""


class TestSharedStateLockset:
    def test_cross_function_race_flagged_with_chain(self, tmp_path,
                                                    monkeypatch):
        root = write_proj(tmp_path, {"w.py": RACY_WORKER})
        findings = conc_findings(monkeypatch, root, ["RPR014"])
        assert [f.rule_id for f in findings] == ["RPR014"]
        msg = findings[0].message
        assert "Worker.count" in msg and "no common lockset" in msg
        # the forcing chain names the interprocedural path to the write
        assert "Worker._run -> Worker._bump" in msg

    def test_common_lockset_clean(self, tmp_path, monkeypatch):
        root = write_proj(tmp_path, {"w.py": LOCKED_WORKER})
        assert conc_findings(monkeypatch, root, ["RPR014"]) == []

    def test_declared_guard_violation_flagged(self, tmp_path, monkeypatch):
        policy = """\
            version = 1
            root = "repro"

            [[layer]]
            name = "top"
            packages = ["repro"]

            [[lock]]
            name = "repro.w.Worker._lock"
            guards = ["repro.w.Worker.count"]
            reason = "counter belongs to the worker lock"
        """
        root = write_proj(tmp_path, {"w.py": RACY_WORKER}, policy=policy)
        findings = conc_findings(monkeypatch, root, ["RPR014"])
        assert len(findings) == 1
        assert "declared guarded by Worker._lock" in findings[0].message


# -- `# guarded-by:` waiver grammar -------------------------------------------

def _worker_with_marker(marker_line: str) -> str:
    return RACY_WORKER.replace(
        "            self.count += 1",
        f"            {marker_line}\n            self.count += 1")


class TestGuardedByGrammar:
    def test_trusted_discipline_waives_race(self, tmp_path, monkeypatch):
        src = _worker_with_marker(
            "# guarded-by: owner -- poll is only called before start()")
        root = write_proj(tmp_path, {"w.py": src})
        assert conc_findings(monkeypatch, root, ["RPR014"]) == []

    def test_named_lock_waives_race(self, tmp_path, monkeypatch):
        src = _worker_with_marker(
            "# guarded-by: _lock -- serialised externally by the harness")
        root = write_proj(tmp_path, {"w.py": src})
        assert conc_findings(monkeypatch, root, ["RPR014"]) == []

    def test_marker_without_reason_is_malformed(self, tmp_path, monkeypatch):
        src = _worker_with_marker("# guarded-by: owner")
        root = write_proj(tmp_path, {"w.py": src})
        findings = conc_findings(monkeypatch, root, ["RPR014"])
        assert any("malformed guarded-by annotation" in f.message
                   for f in findings)

    def test_unknown_lock_target_flagged(self, tmp_path, monkeypatch):
        src = _worker_with_marker(
            "# guarded-by: _nope -- this lock does not exist")
        root = write_proj(tmp_path, {"w.py": src})
        findings = conc_findings(monkeypatch, root, ["RPR014"])
        assert len(findings) == 1
        assert "names no known lock" in findings[0].message

    def test_marker_in_string_literal_ignored(self, tmp_path, monkeypatch):
        # only real comment tokens count: the grammar in a docstring must
        # neither waive the race nor read as malformed
        src = RACY_WORKER.replace(
            "        def _bump(self):",
            '        def _bump(self):\n'
            '            "# guarded-by: owner -- nope"')
        root = write_proj(tmp_path, {"w.py": src})
        findings = conc_findings(monkeypatch, root, ["RPR014"])
        assert [f.rule_id for f in findings] == ["RPR014"]
        assert "no common lockset" in findings[0].message


# -- RPR015: lock-order cycles ------------------------------------------------

CYCLIC_PAIR = """\
    import threading

    class Pair:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def start(self):
            threading.Thread(target=self.ab).start()
            threading.Thread(target=self.ba).start()

        def ab(self):
            with self._a:
                with self._b:
                    pass

        def ba(self):
            with self._b:
                with self._a:
                    pass
"""


class TestLockOrder:
    def test_two_lock_cycle_flagged(self, tmp_path, monkeypatch):
        root = write_proj(tmp_path, {"p.py": CYCLIC_PAIR})
        findings = conc_findings(monkeypatch, root, ["RPR015"])
        assert [f.rule_id for f in findings] == ["RPR015"]
        msg = findings[0].message
        assert "lock-order cycle" in msg
        assert "Pair._a" in msg and "Pair._b" in msg

    def test_consistent_order_clean(self, tmp_path, monkeypatch):
        src = CYCLIC_PAIR.replace(
            "            with self._b:\n                with self._a:",
            "            with self._a:\n                with self._b:")
        root = write_proj(tmp_path, {"p.py": src})
        assert conc_findings(monkeypatch, root, ["RPR015"]) == []


# -- RPR016: wait and blocking discipline -------------------------------------

BARE_WAIT = """\
    import threading

    class Box:
        def __init__(self):
            self._cond = threading.Condition()
            self.items = []

        def put(self, item):
            with self._cond:
                self.items.append(item)
                self._cond.notify()

        def get(self):
            with self._cond:
                self._cond.wait()
                return self.items.pop()
"""


class TestWaitDiscipline:
    def test_untimed_wait_outside_loop_flagged(self, tmp_path, monkeypatch):
        root = write_proj(tmp_path, {"b.py": BARE_WAIT})
        findings = conc_findings(monkeypatch, root, ["RPR016"])
        assert [f.rule_id for f in findings] == ["RPR016"]
        assert "outside a predicate loop" in findings[0].message

    def test_wait_in_predicate_loop_clean(self, tmp_path, monkeypatch):
        src = BARE_WAIT.replace(
            "                self._cond.wait()",
            "                while not self.items:\n"
            "                    self._cond.wait()")
        root = write_proj(tmp_path, {"b.py": src})
        assert conc_findings(monkeypatch, root, ["RPR016"]) == []

    def test_timed_wait_outside_loop_clean(self, tmp_path, monkeypatch):
        src = BARE_WAIT.replace("self._cond.wait()",
                                "self._cond.wait(0.1)")
        root = write_proj(tmp_path, {"b.py": src})
        assert conc_findings(monkeypatch, root, ["RPR016"]) == []

    def test_sleep_under_lock_flagged(self, tmp_path, monkeypatch):
        src = """\
            import threading
            import time

            class Slow:
                def __init__(self):
                    self._lock = threading.Lock()

                def nap(self):
                    with self._lock:
                        time.sleep(0.1)
        """
        root = write_proj(tmp_path, {"s.py": src})
        findings = conc_findings(monkeypatch, root, ["RPR016"])
        assert any("blocking call time.sleep()" in f.message
                   for f in findings)

    def test_io_effect_under_lock_flagged(self, tmp_path, monkeypatch):
        src = """\
            import threading

            class Logger:
                def __init__(self):
                    self._lock = threading.Lock()

                def emit(self, line):
                    with self._lock:
                        self._write(line)

                def _write(self, line):
                    print(line)
        """
        root = write_proj(tmp_path, {"l.py": src})
        findings = conc_findings(monkeypatch, root, ["RPR016"])
        assert len(findings) == 1
        msg = findings[0].message
        assert "carries effect 'io'" in msg
        assert "Logger._write" in msg  # effect chain to the seed

    def test_effect_outside_lock_clean(self, tmp_path, monkeypatch):
        src = """\
            import threading

            class Logger:
                def __init__(self):
                    self._lock = threading.Lock()

                def emit(self, line):
                    with self._lock:
                        pass
                    self._write(line)

                def _write(self, line):
                    print(line)
        """
        root = write_proj(tmp_path, {"l.py": src})
        assert conc_findings(monkeypatch, root, ["RPR016"]) == []


# -- RPR006 module-scope-lock arm ---------------------------------------------

class TestModuleScopeLocks:
    def test_module_level_lock_flagged(self):
        findings = analyze_source(
            "import threading\n_LOCK = threading.Lock()\n",
            path="src/repro/telemetry/gate.py", select=["RPR006"])
        assert [f.rule_id for f in findings] == ["RPR006"]
        assert "module-scope threading.Lock()" in findings[0].message

    def test_module_level_event_flagged(self):
        findings = analyze_source(
            "import threading\nPACER = threading.Event()\n",
            path="src/repro/perf/pace.py", select=["RPR006"])
        assert [f.rule_id for f in findings] == ["RPR006"]

    def test_lifecycle_modules_exempt(self):
        src = "import threading\n_LOCK = threading.Lock()\n"
        assert analyze_source(src, path="src/repro/serve/engine.py",
                              select=["RPR006"]) == []
        assert analyze_source(src, path="src/repro/jobs/pool.py",
                              select=["RPR006"]) == []

    def test_instance_lock_clean_anywhere(self):
        src = ("import threading\n"
               "class C:\n"
               "    def __init__(self):\n"
               "        self._lock = threading.Lock()\n")
        assert analyze_source(src, path="src/repro/telemetry/gate.py",
                              select=["RPR006"]) == []


# -- AST memo cache -----------------------------------------------------------

class TestParseCache:
    def test_same_source_same_object(self):
        src = "x = 1\n"
        a = parse_cached(src, "cache_probe.py")
        assert parse_cached(src, "cache_probe.py") is a

    def test_changed_source_reparsed(self):
        a = parse_cached("x = 1\n", "cache_probe2.py")
        b = parse_cached("x = 2\n", "cache_probe2.py")
        assert b is not a

    def test_same_source_different_path_distinct(self):
        src = "x = 3\n"
        a = parse_cached(src, "cache_probe3.py")
        b = parse_cached(src, "cache_probe4.py")
        assert b is not a and b.path != a.path


# -- `repro races` command surface --------------------------------------------

class TestRacesCommands:
    def test_check_clean_tree_exits_zero(self, tmp_path, monkeypatch):
        root = write_proj(tmp_path, {"w.py": LOCKED_WORKER},
                          policy=BASE_POLICY)
        monkeypatch.chdir(root)
        assert races_check(["repro"],
                           echo=lambda s: None) == LINT_EXIT_CLEAN

    def test_check_racy_tree_exits_one(self, tmp_path, monkeypatch):
        root = write_proj(tmp_path, {"w.py": RACY_WORKER},
                          policy=BASE_POLICY)
        monkeypatch.chdir(root)
        out = []
        assert races_check(["repro"],
                           echo=out.append) == LINT_EXIT_FINDINGS
        assert any("RPR014" in line for line in out)

    def test_check_without_policy_is_internal_error(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = []
        assert races_check(["."], echo=out.append) == LINT_EXIT_INTERNAL

    def test_check_rejects_unresolvable_policy_names(self, tmp_path,
                                                     monkeypatch):
        policy = BASE_POLICY + """\

    [concurrency]
    entries = ["repro.w.NoSuchClass"]
"""
        root = write_proj(tmp_path, {"w.py": LOCKED_WORKER}, policy=policy)
        monkeypatch.chdir(root)
        out = []
        assert races_check(["repro"],
                           echo=out.append) == LINT_EXIT_FINDINGS
        assert any("repro.w.NoSuchClass" in line
                   and "does not resolve" in line for line in out)

    def test_show_prints_contexts_locks_and_verdicts(self, tmp_path,
                                                     monkeypatch):
        root = write_proj(tmp_path, {"w.py": LOCKED_WORKER},
                          policy=BASE_POLICY)
        monkeypatch.chdir(root)
        out = []
        assert races_show(["repro"], echo=out.append) == LINT_EXIT_CLEAN
        text = "\n".join(out)
        assert "thread:Worker._run" in text
        assert "repro.w.Worker._lock (lock)" in text
        assert "repro.w.Worker.count: guarded" in text

    def test_snapshot_diff_roundtrip_and_new_fact_fails(self, tmp_path,
                                                        monkeypatch):
        root = write_proj(tmp_path, {"w.py": LOCKED_WORKER},
                          policy=BASE_POLICY)
        monkeypatch.chdir(root)
        out = []
        assert races_snapshot(["repro"], output="snap.json",
                              echo=out.append) == LINT_EXIT_CLEAN
        assert races_diff(["repro"], against="snap.json",
                          echo=out.append) == LINT_EXIT_CLEAN
        # a new shared field (even a guarded one) is a new concurrency fact
        (root / "repro" / "w.py").write_text(
            (root / "repro" / "w.py").read_text().replace(
                "        self.count = 0",
                "        self.count = 0\n        self.other = 0")
            .replace("            self.count += 1",
                     "            self.count += 1\n"
                     "            self.other += 1")
            .replace("            return self.count",
                     "            return self.count + self.other"))
        out = []
        assert races_diff(["repro"], against="snap.json",
                          echo=out.append) == LINT_EXIT_FINDINGS
        assert any("NEW" in line and "other" in line for line in out)


# -- live-tree regression -----------------------------------------------------

class TestLiveTreeRegression:
    """The committed tree is race-clean, and stays honest: removing one
    lock acquisition from ``ServeEngine.stats`` must produce RPR014."""

    def _copy_tree(self, tmp_path):
        root = tmp_path / "proj"
        root.mkdir()
        shutil.copytree(REPO_ROOT / "src" / "repro", root / "repro")
        shutil.copy(REPO_ROOT / "ARCHITECTURE.toml",
                    root / "ARCHITECTURE.toml")
        return root

    def test_stats_lock_deletion_turns_check_red(self, tmp_path,
                                                 monkeypatch):
        root = self._copy_tree(tmp_path)
        monkeypatch.chdir(root)
        assert analyze_paths(["repro"], select=["RPR014"]) == []

        engine_py = root / "repro" / "serve" / "engine.py"
        lines = engine_py.read_text().splitlines(keepends=True)
        i = next(n for n, l in enumerate(lines)
                 if l.strip().startswith("def stats(self)"))
        j = next(n for n in range(i, len(lines))
                 if lines[n].strip() == "with self._lock:")
        indent = len(lines[j]) - len(lines[j].lstrip())
        out = lines[:j]
        k = j + 1
        while k < len(lines):
            line = lines[k]
            if line.strip() and len(line) - len(line.lstrip()) <= indent:
                break
            out.append(line[4:] if line.strip() else line)
            k += 1
        out.extend(lines[k:])
        engine_py.write_text("".join(out))

        findings = analyze_paths(["repro"], select=["RPR014"])
        assert findings, "deleting the stats lock must surface a race"
        assert all(f.rule_id == "RPR014" for f in findings)
        # the [[lock]] policy names ServeEngine._lock as the guard, so the
        # now-unlocked reads in stats violate the declared contract
        assert any("declared guarded by ServeEngine._lock" in f.message
                   and "ServeEngine.stats" in f.message for f in findings)
