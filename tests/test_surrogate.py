"""Tests for the surrogate evaluator's response surface."""

import numpy as np
import pytest

from repro.hypermapper import SurrogateEvaluator, kfusion_design_space, surrogate_max_ate
from repro.hypermapper.surrogate import SEQUENCE_DIFFICULTY
from repro.platforms import PlatformConfig


def config(**overrides):
    base = kfusion_design_space().default_configuration()
    base.update(overrides)
    return base


class TestResponseSurface:
    def test_default_is_accurate(self):
        ate, failed = surrogate_max_ate(config())
        assert not failed
        assert ate < 0.05

    def test_deterministic(self):
        a = surrogate_max_ate(config(), seed=3)
        b = surrogate_max_ate(config(), seed=3)
        assert a == b

    def test_seed_changes_noise(self):
        a, _ = surrogate_max_ate(config(), seed=1)
        b, _ = surrogate_max_ate(config(), seed=2)
        assert a != b

    def test_coarse_volume_hurts(self):
        fine, _ = surrogate_max_ate(config(volume_resolution=256))
        coarse, _ = surrogate_max_ate(config(volume_resolution=48))
        assert coarse > fine

    def test_downsampling_hurts(self):
        full, _ = surrogate_max_ate(config(compute_size_ratio=1))
        eighth, _ = surrogate_max_ate(config(compute_size_ratio=8))
        assert eighth > full

    def test_loose_icp_threshold_hurts(self):
        tight, _ = surrogate_max_ate(config(icp_threshold=1e-6))
        loose, _ = surrogate_max_ate(config(icp_threshold=1e-2))
        assert loose > tight

    def test_sparse_integration_hurts(self):
        dense, _ = surrogate_max_ate(config(integration_rate=1))
        sparse, _ = surrogate_max_ate(config(integration_rate=15))
        assert sparse > dense

    def test_no_iterations_fails(self):
        _, failed = surrogate_max_ate(
            config(pyramid_iterations_l0=0, pyramid_iterations_l1=0,
                   pyramid_iterations_l2=0)
        )
        assert failed

    def test_failure_gives_large_ate(self):
        ate, failed = surrogate_max_ate(
            config(pyramid_iterations_l0=0, pyramid_iterations_l1=0,
                   pyramid_iterations_l2=0)
        )
        assert failed and ate > 0.1

    def test_difficulty_scales(self):
        easy, _ = surrogate_max_ate(config(), "lr_kt0")
        hard, _ = surrogate_max_ate(config(), "lr_kt1")
        assert hard == pytest.approx(
            easy * SEQUENCE_DIFFICULTY["lr_kt1"], rel=1e-9
        )


class TestSurrogateEvaluator:
    def test_evaluation_fields(self, odroid):
        ev = SurrogateEvaluator(device=odroid)
        e = ev.evaluate(config())
        assert e.runtime_s > 0
        assert e.power_w > 0
        assert e.fps == pytest.approx(1.0 / e.runtime_s)

    def test_smaller_volume_is_faster(self, odroid):
        ev = SurrogateEvaluator(device=odroid)
        big = ev.evaluate(config(volume_resolution=256))
        small = ev.evaluate(config(volume_resolution=64))
        assert small.runtime_s < big.runtime_s

    def test_codesign_platform_knobs_respected(self, odroid):
        ev = SurrogateEvaluator(device=odroid)
        fast = ev.evaluate(dict(config(), backend="opencl"))
        slow = ev.evaluate(dict(config(), backend="cpp"))
        assert slow.runtime_s > fast.runtime_s
        low_freq = ev.evaluate(
            dict(config(), backend="opencl", gpu_freq_ghz=0.177)
        )
        assert low_freq.runtime_s > fast.runtime_s
        assert low_freq.power_w < fast.power_w

    def test_platform_knobs_do_not_affect_accuracy(self, odroid):
        ev = SurrogateEvaluator(device=odroid)
        a = ev.evaluate(dict(config(), backend="opencl"))
        b = ev.evaluate(dict(config(), backend="cpp"))
        assert a.max_ate_m == b.max_ate_m

    def test_evaluation_counter(self, odroid):
        ev = SurrogateEvaluator(device=odroid)
        ev.evaluate(config())
        ev.evaluate(config())
        assert ev.evaluations == 2
