"""Tests for the memory-footprint model."""

import pytest

from repro.kfusion import KFusionParams
from repro.kfusion.memory import frame_buffers_bytes, total_bytes, volume_bytes


class TestMemoryModel:
    def test_volume_dominates_at_default(self):
        p = KFusionParams()
        assert volume_bytes(p) > frame_buffers_bytes(p, 320, 240)

    def test_volume_bytes_exact(self):
        p = KFusionParams(volume_resolution=64)
        assert volume_bytes(p) == 2 * 4 * 64**3

    def test_cubic_growth(self):
        small = volume_bytes(KFusionParams(volume_resolution=64))
        large = volume_bytes(KFusionParams(volume_resolution=128))
        assert large == 8 * small

    def test_compute_ratio_shrinks_buffers(self):
        full = frame_buffers_bytes(KFusionParams(compute_size_ratio=1),
                                   320, 240)
        half = frame_buffers_bytes(KFusionParams(compute_size_ratio=2),
                                   320, 240)
        assert half < full

    def test_default_footprint_matches_slambench_scale(self):
        # 256^3 x 2 fields x 4 bytes = 128 MiB volume — the number the
        # SLAMBench papers quote for the default configuration.
        p = KFusionParams()
        assert volume_bytes(p) == 128 * 1024 * 1024
        assert total_bytes(p) < 140 * 1024 * 1024

    def test_embedded_configs_fit_small_memory(self):
        p = KFusionParams(volume_resolution=64, compute_size_ratio=4)
        assert total_bytes(p) < 4 * 1024 * 1024
