"""Integration tests: every experiment driver runs and has the paper's
qualitative shape (at reduced scale)."""

import numpy as np
import pytest

from repro.experiments import (
    algorithms,
    backends,
    fig1_gui,
    fig2_dse,
    fig3_android,
    headline,
)


class TestFig1:
    @pytest.fixture(scope="class")
    def stream(self):
        return fig1_gui.run(n_frames=8, width=80, height=60,
                            volume_resolution=96)

    def test_rows_per_frame(self, stream):
        assert len(stream.rows) == 8
        assert stream.rows[0]["status"] == "bootstrap"

    def test_table_renders(self, stream):
        text = stream.table()
        assert "frame_time_ms" in text

    def test_summary_has_metrics(self, stream):
        assert "ate_max_m" in stream.summary
        assert stream.summary["ate_max_m"] < 0.1

    def test_reconstruction_evaluated(self, stream):
        assert stream.reconstruction is not None
        assert stream.reconstruction.mean_abs < 0.1

    def test_model_render_present(self, stream):
        assert stream.model_render is not None
        art = stream.render_ascii(width=40)
        assert len(art.splitlines()) > 3
        # The render must actually show surface (non-blank characters).
        assert any(c not in " \n" for c in art)


class TestFig2:
    @pytest.fixture(scope="class")
    def figure(self):
        return fig2_dse.run_surrogate(
            n_random=80, n_initial=30, n_iterations=8,
            samples_per_iteration=6, seed=0,
        )

    def test_scatter_points(self, figure):
        pts = figure.scatter_points("active")
        assert pts.shape[1] == 2
        assert len(pts) > 30

    def test_default_marked(self, figure):
        assert figure.default_evaluation.max_ate_m > 0

    def test_best_active_feasible_and_faster_than_default(self, figure):
        best = figure.best_active
        assert best is not None
        assert best.max_ate_m < figure.accuracy_limit_m
        assert best.runtime_s < figure.default_evaluation.runtime_s

    def test_knowledge_extracted(self, figure):
        assert [k.criterion for k in figure.knowledge] == [
            "accurate", "fast", "power_efficient",
        ]

    def test_summary_rows(self, figure):
        rows = figure.summary_rows()
        assert rows[0]["strategy"] == "default"
        assert any(r["strategy"] == "best_active" for r in rows)


class TestFig2MeasuredDemo:
    def test_measured_demo_runs(self):
        """The measured-pipeline DSE demo completes and produces the same
        artefacts as the surrogate run, at tiny scale."""
        figure = fig2_dse.run_measured_demo(
            n_initial=4, n_iterations=1, samples_per_iteration=2,
            n_frames=5, width=48, height=36, limit_m=0.12, seed=0,
        )
        assert len(figure.active_result.evaluations) == 6
        assert len(figure.random_result.evaluations) == 6
        assert figure.default_evaluation.runtime_s > 0
        # The demo explicitly tolerates missing knowledge at this scale.
        assert isinstance(figure.knowledge, list)


class TestHeadline:
    @pytest.fixture(scope="class")
    def result(self):
        return headline.run(n_initial=40, n_iterations=8,
                            samples_per_iteration=6, seed=7)

    def test_realtime_within_budget(self, result):
        assert result.realtime_within_budget
        assert result.tuned.fps > 30.0
        assert result.tuned.power_w < 1.0
        assert result.tuned.max_ate_m < 0.05

    def test_improvement_factors_in_paper_range(self, result):
        # Paper: 4.8x time and 2.8x power vs the state of the art; we
        # require the same order (>2x both).
        assert result.time_improvement_vs_sota > 2.0
        assert result.power_reduction_vs_sota > 1.5

    def test_rows(self, result):
        rows = result.rows()
        assert [r["configuration"] for r in rows] == [
            "default", "state_of_the_art", "hypermapper_tuned",
        ]

    def test_other_device(self):
        """The study ports to any device model (here a CUDA-class tablet)."""
        from repro.platforms import phone_database

        shield = next(d for d in phone_database() if "Shield" in d.name)
        result = headline.run(device=shield, n_initial=40, n_iterations=8,
                              samples_per_iteration=6, seed=3)
        assert result.tuned.fps > 30.0
        assert result.tuned.power_w < 1.0
        assert result.time_improvement_vs_default > 2.0


class TestFig3:
    @pytest.fixture(scope="class")
    def figure(self):
        tuned = {
            "volume_resolution": 96, "volume_size": 4.3,
            "compute_size_ratio": 2, "mu_distance": 0.066,
            "icp_threshold": 1e-5, "pyramid_iterations_l0": 8,
            "pyramid_iterations_l1": 4, "pyramid_iterations_l2": 3,
            "integration_rate": 3, "tracking_rate": 1,
        }
        return fig3_android.run(tuned, n_frames=10, seed=0)

    def test_83_devices(self, figure):
        assert figure.summary.devices == 83

    def test_speedup_distribution_shape(self, figure):
        """Paper's Fig 3: clear speed-ups with a spread across devices."""
        s = figure.summary
        assert s.summary.minimum > 1.5
        assert s.summary.maximum < 14.0
        assert 3.0 < s.summary.median < 8.0

    def test_groupings_cover_population(self, figure):
        assert sum(r["devices"] for r in figure.by_year) == 83
        assert sum(r["devices"] for r in figure.by_form_factor) == 83

    def test_histogram_text(self, figure):
        assert "83 devices" in figure.histogram()


class TestBackendsExperiment:
    def test_rows_cover_devices_and_backends(self):
        comp = backends.run(n_frames=5)
        devices = {r["device"] for r in comp.rows}
        assert devices == {"odroid_xu3", "desktop_gtx"}
        odroid_backends = {r["backend"] for r in comp.rows
                           if r["device"] == "odroid_xu3"}
        assert odroid_backends == {"cpp", "openmp", "opencl"}

    def test_paper_orderings(self):
        comp = backends.run(n_frames=5)
        by = {(r["device"], r["backend"]): r for r in comp.rows}
        assert (by[("odroid_xu3", "opencl")]["fps"]
                > by[("odroid_xu3", "cpp")]["fps"])
        assert by[("desktop_gtx", "cuda")]["fps"] > 30.0
        assert by[("odroid_xu3", "opencl")]["fps"] < 30.0


class TestAlgorithmsExperiment:
    @pytest.fixture(scope="class")
    def comp(self):
        # Long enough for odometry drift to accumulate — the effect the
        # cross-algorithm comparison exists to show.
        return algorithms.run(sequence_names=["lr_kt0"], n_frames=24)

    def test_all_algorithms_ran(self, comp):
        algos = {r["algorithm"] for r in comp.rows}
        assert algos == {"kfusion", "icp_odometry", "static"}

    def test_kfusion_most_accurate(self, comp):
        by = {r["algorithm"]: r for r in comp.rows}
        assert by["kfusion"]["ate_max_m"] <= by["icp_odometry"]["ate_max_m"]
        assert by["icp_odometry"]["ate_max_m"] < by["static"]["ate_max_m"]

    def test_static_is_fastest(self, comp):
        by = {r["algorithm"]: r for r in comp.rows}
        assert by["static"]["sim_fps"] > by["kfusion"]["sim_fps"]
