"""Tests for TSDF raycasting."""

import numpy as np
import pytest

from repro.geometry import PinholeCamera, se3
from repro.kfusion import TSDFVolume
from repro.kfusion.integration import integrate
from repro.kfusion.raycast import raycast


@pytest.fixture()
def cam():
    return PinholeCamera.kinect_like(64, 48)


@pytest.fixture()
def pose():
    return se3.make_pose(np.eye(3), [1.0, 1.0, 0.0])


@pytest.fixture()
def wall_volume(cam, pose):
    v = TSDFVolume(64, 2.0)
    integrate(v, np.full(cam.shape, 1.0), cam, pose, mu=0.15)
    return v


class TestRaycast:
    def test_recovers_wall_depth(self, wall_volume, cam, pose):
        verts, normals = raycast(wall_volume, cam, pose, mu=0.15)
        center = verts[24, 32]
        assert center[2] == pytest.approx(1.0, abs=0.03)

    def test_normals_face_camera(self, wall_volume, cam, pose):
        _, normals = raycast(wall_volume, cam, pose, mu=0.15)
        n = normals[24, 32]
        assert np.linalg.norm(n) == pytest.approx(1.0, abs=1e-6)
        assert n[2] < -0.9  # wall normal towards the camera

    def test_miss_gives_zero(self, cam, pose):
        empty = TSDFVolume(32, 2.0)
        verts, normals = raycast(empty, cam, pose, mu=0.1)
        assert np.all(verts == 0.0)
        assert np.all(normals == 0.0)

    def test_consistent_with_integrated_depth(self, wall_volume, cam, pose):
        verts, normals = raycast(wall_volume, cam, pose, mu=0.15)
        hit = np.any(normals != 0.0, axis=-1)
        assert hit.mean() > 0.6
        depths = verts[..., 2][hit]
        assert np.median(np.abs(depths - 1.0)) < 0.02

    def test_from_translated_pose(self, wall_volume, cam, pose):
        pose2 = pose.copy()
        pose2[2, 3] = 0.3  # step 0.3 m towards the wall
        verts, normals = raycast(wall_volume, cam, pose2, mu=0.15)
        center = verts[24, 32]
        assert center[2] == pytest.approx(0.7, abs=0.04)
