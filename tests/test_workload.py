"""Tests for workload records."""

import pytest

from repro.core.workload import FrameWorkload, KernelInvocation
from repro.errors import SimulationError


class TestKernelInvocation:
    def test_valid(self):
        k = KernelInvocation("integrate", 100.0, 50.0)
        assert k.parallel_fraction == 0.99

    def test_negative_counts_rejected(self):
        with pytest.raises(SimulationError):
            KernelInvocation("x", -1.0, 0.0)

    def test_bad_parallel_fraction(self):
        with pytest.raises(SimulationError):
            KernelInvocation("x", 1.0, 1.0, parallel_fraction=1.5)


class TestFrameWorkload:
    def test_totals(self):
        wl = FrameWorkload(0)
        wl.add(KernelInvocation("a", 10.0, 1.0))
        wl.extend([KernelInvocation("b", 20.0, 2.0),
                   KernelInvocation("a", 5.0, 3.0)])
        assert wl.total_flops == 35.0
        assert wl.total_bytes == 6.0

    def test_by_kernel_aggregates(self):
        wl = FrameWorkload(0)
        wl.add(KernelInvocation("a", 10.0, 1.0))
        wl.add(KernelInvocation("a", 10.0, 1.0))
        wl.add(KernelInvocation("b", 1.0, 1.0))
        agg = wl.by_kernel()
        assert agg["a"] == 20.0
        assert agg["b"] == 1.0
