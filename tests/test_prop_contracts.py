"""Property-based tests for the contract grammar and RPR011 unification.

Two families of properties:

* the parse/format round trip — for random array and port contracts
  (random dims, dtypes, whitespace, pyramid brackets), formatting is
  canonical and idempotent, and re-parsing the canonical spelling is
  semantically equal to the original;
* random symbolic-dim chain graphs — endpoints declare concrete integer
  shapes, intermediate nodes thread per-node symbols through, and the
  whole-graph unifier (RPR011) accepts every consistent labeling while
  rejecting a flipped endpoint dim with a finding that names the edges
  forcing the conflict.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contracts import (
    DTYPE_KINDS,
    contracts_equal,
    format_contract,
    parse_contract,
)
from repro.analysis.dataflow import (
    GraphUnderCheck,
    format_port_contract,
    parse_port_contract,
    unify_graph,
)
from repro.graph import Edge, GraphSpec, Port, StageSpec

_IDENT = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,5}", fullmatch=True)
_DIM = st.one_of(st.integers(min_value=1, max_value=9),
                 st.sampled_from(["H", "W", "r", "n", "level"]))
_SPACE = st.sampled_from(["", " ", "  "])


@st.composite
def array_contract_texts(draw):
    """A random contract string with random (legal) whitespace."""
    dims = draw(st.lists(_DIM, min_size=1, max_size=4))
    if draw(st.booleans()):
        dims = ["..."] + dims
    dtype = draw(st.none() | st.sampled_from(sorted(DTYPE_KINDS)))
    sp = lambda: draw(_SPACE)  # noqa: E731
    text = ",".join(f"{sp()}{tok}{sp()}" for tok in dims)
    if dtype is not None:
        text += f":{sp()}{dtype}{sp()}"
    return text


@st.composite
def port_contract_texts(draw):
    """A random port contract: tag, optional (possibly pyramid) spec."""
    tag = ".".join(draw(st.lists(_IDENT, min_size=1, max_size=3)))
    inner = draw(st.none() | array_contract_texts())
    if inner is None:
        return tag
    if draw(st.booleans()):
        return f"{tag}([{inner}])"
    return f"{tag}({inner})"


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(array_contract_texts())
    def test_array_contract_parse_format_round_trip(self, text):
        spec = parse_contract(text)
        canonical = format_contract(spec)
        reparsed = parse_contract(canonical)
        assert contracts_equal(spec, reparsed)
        assert format_contract(reparsed) == canonical
        # whitespace never survives canonicalization
        assert " " not in canonical

    @settings(max_examples=200, deadline=None)
    @given(port_contract_texts())
    def test_port_contract_parse_format_round_trip(self, text):
        pc = parse_port_contract(text)
        canonical = format_port_contract(pc)
        reparsed = parse_port_contract(canonical)
        assert reparsed.tag == pc.tag
        assert reparsed.pyramid == pc.pyramid
        assert (reparsed.spec is None) == (pc.spec is None)
        if pc.spec is not None:
            assert contracts_equal(reparsed.spec, pc.spec)
        assert format_port_contract(reparsed) == canonical


def _chain_graph(shape, length, flip_dim=None):
    """A linear a->b->...->z graph threading ``shape`` through symbols.

    The first node's output and the last node's input declare ``shape``
    concretely; every intermediate node uses per-node symbols (``d0``,
    ``d1``, ...) on both its ports, so only whole-graph unification can
    relate the two ends.  ``flip_dim`` bumps one dim of the last node's
    contract to a conflicting integer.
    """
    def contract_of(dims):
        return "m(" + ",".join(str(d) for d in dims) + ":f32)"

    sym = [f"d{j}" for j in range(len(shape))]
    last = list(shape)
    if flip_dim is not None:
        last[flip_dim] = shape[flip_dim] % 9 + 1  # != shape[flip_dim]
    stages = {}
    nodes = []
    for i in range(length):
        node = f"n{i}"
        if i == 0:
            inputs, outputs = (), (Port("out", contract_of(shape)),)
        elif i == length - 1:
            inputs, outputs = (Port("in", contract_of(last)),), ()
        else:
            inputs = (Port("in", contract_of(sym)),)
            outputs = (Port("out", contract_of(sym)),)
        stages[node] = StageSpec(name=f"prop.{node}",
                                 run=lambda c, i: {},
                                 inputs=inputs, outputs=outputs)
        nodes.append((node, f"prop.{node}"))
    edges = tuple(Edge(f"n{i}", "out", f"n{i + 1}", "in")
                  for i in range(length - 1))
    spec = GraphSpec(name="prop", nodes=tuple(nodes), edges=edges)
    return GraphUnderCheck(spec=spec, stages=stages,
                           origin="tests/prop_chain.py")


@st.composite
def chain_cases(draw):
    rank = draw(st.integers(min_value=1, max_value=3))
    shape = tuple(draw(st.integers(min_value=1, max_value=9))
                  for _ in range(rank))
    length = draw(st.integers(min_value=3, max_value=6))
    flip_dim = draw(st.integers(min_value=0, max_value=rank - 1))
    return shape, length, flip_dim


class TestChainUnification:
    @settings(max_examples=100, deadline=None)
    @given(chain_cases())
    def test_consistent_labeling_unifies(self, case):
        shape, length, _ = case
        assert unify_graph(_chain_graph(shape, length)) == []

    @settings(max_examples=100, deadline=None)
    @given(chain_cases())
    def test_flipped_endpoint_dim_names_the_edge_chain(self, case):
        shape, length, flip_dim = case
        findings = unify_graph(_chain_graph(shape, length,
                                            flip_dim=flip_dim))
        assert findings, "a flipped endpoint dim must be unsatisfiable"
        msg = findings[0].message
        assert findings[0].rule_id == "RPR011"
        assert "unsatisfiable" in msg
        # the chain runs end to end, so both terminal edges are named
        assert "n0.out -> n1.in (dim" in msg
        assert f"n{length - 2}.out -> n{length - 1}.in (dim" in msg
