"""Tests for the whole-program effect engine and architecture rules.

Covers the call graph (repro.analysis.callgraph), the intrinsic effect
seeds and transitive fixpoint (repro.analysis.effects), the policy rules
RPR008/RPR009/RPR010 (repro.analysis.policy) with true-positive /
false-positive guard pairs, the ``repro arch`` commands, the effect
snapshot diff, the ``repro lint`` exit-code contract, and the RPR004
backend-contract arm — plus the check that the repo itself is clean
under the committed ARCHITECTURE.toml.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    EffectAnalysis,
    analyze_paths,
    build_callgraph,
    diff_snapshots,
    load_snapshot,
    module_name_for,
    run_lint,
    snapshot_payload,
    write_snapshot,
)
from repro.analysis.arch import (
    arch_check,
    arch_diff,
    arch_graph,
    arch_show,
    arch_snapshot,
    graph_as_json,
)
from repro.analysis.consistency import (
    compare_backend_contracts,
    extract_contract_decls,
    extract_kernel_backends,
    resolve_backend_kernel,
)
from repro.analysis.framework import ModuleContext
from repro.analysis.lint import (
    LINT_EXIT_CLEAN,
    LINT_EXIT_FINDINGS,
    LINT_EXIT_INTERNAL,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src" / "repro"

ARCH_RULES = ["RPR008", "RPR009", "RPR010"]


def ctx(path, src):
    return ModuleContext.parse(src, path)


def graph_of(*mods):
    """Build a call graph from ``(relpath_under_repro, source)`` pairs."""
    return build_callgraph(
        [ctx(f"/scratch/repro/{rel}", src) for rel, src in mods]
    )


def effects_of(src, qname="repro.m.f", rel="m.py"):
    analysis = EffectAnalysis(graph_of((rel, src)))
    return analysis.info[qname].effects


class TestModuleNaming:
    def test_anchors_at_last_root_dir(self):
        assert module_name_for("src/repro/perf/raycast.py") == \
            "repro.perf.raycast"
        assert module_name_for("/tmp/x/repro/kfusion/a.py") == \
            "repro.kfusion.a"

    def test_init_names_the_package(self):
        assert module_name_for("src/repro/perf/__init__.py") == "repro.perf"

    def test_outside_root_is_none(self):
        assert module_name_for("src/other/a.py") is None
        assert module_name_for("src/repro/notes.txt") is None


class TestCallGraph:
    def test_cross_module_call_resolved_through_alias(self):
        g = graph_of(
            ("a.py", "from . import b as helper\ndef f():\n"
                     "    return helper.g()\n"),
            ("b.py", "def g():\n    return 1\n"),
        )
        assert g.functions["repro.a.f"].calls == {"repro.b.g"}

    def test_reexport_chain_followed(self):
        g = graph_of(
            ("pkg/__init__.py", "from .impl import work\n"),
            ("pkg/impl.py", "def work():\n    return 1\n"),
            ("use.py", "from . import pkg\ndef f():\n"
                       "    return pkg.work()\n"),
        )
        assert g.functions["repro.use.f"].calls == {"repro.pkg.impl.work"}

    def test_self_method_attributed_to_class(self):
        g = graph_of(("a.py", (
            "class C:\n"
            "    def f(self):\n"
            "        return self.g()\n"
            "    def g(self):\n"
            "        return 1\n"
        )))
        assert g.functions["repro.a.C.f"].calls == {"repro.a.C.g"}

    def test_constructor_resolves_to_init(self):
        g = graph_of(("a.py", (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "def f():\n"
            "    return C()\n"
        )))
        assert g.functions["repro.a.f"].calls == {"repro.a.C.__init__"}

    def test_unattributable_call_recorded_not_dropped(self):
        g = graph_of(("a.py", "def f(x):\n    return x.compute()\n"))
        node = g.functions["repro.a.f"]
        assert not node.calls
        assert [c.target for c in node.unresolved] == ["x.compute"]

    def test_external_call_recorded(self):
        g = graph_of(("a.py", "import math\ndef f():\n"
                              "    return math.sqrt(2)\n"))
        node = g.functions["repro.a.f"]
        assert [c.target for c in node.external] == ["math.sqrt"]

    def test_module_body_pseudo_function(self):
        g = graph_of(("a.py", "def f():\n    return 1\nX = f()\n"))
        assert g.functions["repro.a.<module>"].calls == {"repro.a.f"}


class TestEffectSeeds:
    def test_time_seed(self):
        assert "time" in effects_of(
            "import time\ndef f():\n    return time.perf_counter()\n")

    def test_rng_seed_numpy_and_stdlib(self):
        assert "rng" in effects_of(
            "import numpy as np\ndef f():\n    return np.random.rand(3)\n")
        assert "rng" in effects_of(
            "import random\ndef f():\n    return random.random()\n")

    def test_io_seed(self):
        assert "io" in effects_of(
            "def f(p):\n    fh = open(p)\n    return fh\n")

    def test_process_seed(self):
        assert "process" in effects_of(
            "import subprocess\ndef f():\n"
            "    subprocess.run(['true'])\n")

    def test_alloc_seed(self):
        assert "alloc" in effects_of(
            "import numpy as np\ndef f(n):\n    return np.zeros(n)\n")

    def test_global_write_seed(self):
        assert "global-write" in effects_of(
            "CACHE = {}\ndef f(k, v):\n    CACHE[k] = v\n")

    def test_local_rebind_is_not_global_write(self):
        assert "global-write" not in effects_of(
            "X = 1\ndef f():\n    X = 2\n    return X\n")

    def test_raises_seed_carries_type(self):
        assert "raises(ValueError)" in effects_of(
            "def f():\n    raise ValueError('x')\n")

    def test_effect_ok_waiver_on_seed_line(self):
        assert "alloc" not in effects_of(
            "import numpy as np\ndef f(n):\n"
            "    return np.zeros(n)  # effect-ok: test fixture\n")

    def test_effect_ok_waiver_on_line_above(self):
        assert "alloc" not in effects_of(
            "import numpy as np\ndef f(n):\n"
            "    # effect-ok: test fixture\n"
            "    return np.zeros(n)\n")


class TestFixpoint:
    def test_three_module_cycle_converges(self):
        g = graph_of(
            ("a.py", "from . import b\ndef f():\n    return b.g()\n"),
            ("b.py", "from . import c\ndef g():\n    return c.h()\n"),
            ("c.py", "import time\nfrom . import a\n"
                     "def h():\n    a.f()\n"
                     "    return time.monotonic()\n"),
        )
        analysis = EffectAnalysis(g)
        for q in ("repro.a.f", "repro.b.g", "repro.c.h"):
            assert "time" in analysis.info[q].effects
        chain = analysis.effect_chain("repro.a.f", "time")
        assert chain == ["repro.a.f", "repro.b.g", "repro.c.h"]
        assert analysis.seed_of("repro.a.f", "time").call == "time.monotonic"

    def test_absorb_stops_at_owner_boundary(self):
        g = graph_of(
            ("telemetry/clock.py", "import time\ndef now():\n"
                                   "    return time.perf_counter()\n"),
            ("use.py", "from .telemetry import clock\ndef f():\n"
                       "    return clock.now()\n"),
        )
        analysis = EffectAnalysis(g)
        assert "time" in analysis.info["repro.telemetry.clock.now"].effects
        assert "time" not in analysis.info["repro.use.f"].effects

    def test_raises_never_absorbed(self):
        g = graph_of(
            ("telemetry/clock.py", "def now():\n"
                                   "    raise RuntimeError('no clock')\n"),
            ("use.py", "from .telemetry import clock\ndef f():\n"
                       "    return clock.now()\n"),
        )
        analysis = EffectAnalysis(g)
        assert "raises(RuntimeError)" in analysis.info["repro.use.f"].effects


BASE_POLICY = """\
version = 1
root = "repro"

[[layer]]
name = "kernels"
packages = ["repro.kern"]
forbid = ["time"]

[[layer]]
name = "top"
packages = ["repro", "repro.top"]
"""


def write_tree(tmp_path, policy, files):
    """Scratch project: ``ARCHITECTURE.toml`` + files under ``repro/``."""
    root = tmp_path / "proj"
    (root / "repro").mkdir(parents=True)
    (root / "ARCHITECTURE.toml").write_text(policy)
    for rel, src in files.items():
        p = root / "repro" / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(src)
    return root


def arch_findings(monkeypatch, root, select=None):
    monkeypatch.chdir(root)
    return analyze_paths(["repro"], select=select or ARCH_RULES)


class TestLayerDiscipline:
    def test_upward_import_flagged(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY, {
            "kern.py": "from . import top\ndef f():\n    return top.g\n",
            "top.py": "def g():\n    return 1\n",
        })
        findings = arch_findings(monkeypatch, root, ["RPR008"])
        assert len(findings) == 1
        assert "imports" in findings[0].message
        assert "repro.top" in findings[0].message

    def test_downward_import_clean(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY, {
            "kern.py": "def f():\n    return 1\n",
            "top.py": "from . import kern\ndef g():\n"
                      "    return kern.f()\n",
        })
        assert arch_findings(monkeypatch, root, ["RPR008"]) == []

    def test_uncovered_module_flagged(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY, {
            "rogue/x.py": "def f():\n    return 1\n",
        })
        findings = arch_findings(monkeypatch, root, ["RPR008"])
        assert any("not covered by any layer" in f.message for f in findings)

    def test_toml_waiver_suppresses_edge(self, tmp_path, monkeypatch):
        policy = BASE_POLICY + (
            '\n[[waiver]]\nrule = "RPR008"\n'
            'from = "repro.kern"\nto = "repro.top"\n'
            'reason = "documented seam"\n'
        )
        root = write_tree(tmp_path, policy, {
            "kern.py": "from . import top\ndef f():\n    return top.g\n",
            "top.py": "def g():\n    return 1\n",
        })
        assert arch_findings(monkeypatch, root, ["RPR008"]) == []


class TestTransitiveEffectDiscipline:
    DEEP_KERNEL = (
        "import time\n"
        "def entry():\n"
        "    return _a()\n"
        "def _a():\n"
        "    return _b()\n"
        "def _b():\n"
        "    return _c()\n"
        "def _c():\n"
        "    return time.time()\n"
    )

    def test_seed_three_levels_down_reported_at_kernel_entry(
            self, tmp_path, monkeypatch):
        # The acceptance case: a time.time() three calls below the
        # kernel entry point must surface at the entry point, with the
        # full via chain and the concrete seed.
        root = write_tree(tmp_path, BASE_POLICY,
                          {"kern.py": self.DEEP_KERNEL})
        findings = arch_findings(monkeypatch, root, ["RPR009"])
        assert len(findings) == 1
        f = findings[0]
        assert f.line == 2  # def entry()
        assert "repro.kern.entry" in f.message
        assert ("via repro.kern.entry -> repro.kern._a -> "
                "repro.kern._b -> repro.kern._c") in f.message
        assert "(seed: time.time)" in f.message

    def test_same_code_in_unbudgeted_layer_clean(
            self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY,
                          {"top.py": self.DEEP_KERNEL})
        assert arch_findings(monkeypatch, root, ["RPR009"]) == []

    def test_intrinsic_seed_reported_without_chain(
            self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY, {
            "kern.py": "import time\ndef f():\n"
                       "    return time.time()\n",
        })
        findings = arch_findings(monkeypatch, root, ["RPR009"])
        assert len(findings) == 1
        assert "intrinsically" in findings[0].message


ARENA_POLICY = BASE_POLICY + """\

[arena]
hot = ["repro.kern"]
arena = ["repro.ws"]
"""


class TestWorkspaceAllocDiscipline:
    def test_raw_numpy_alloc_in_hot_module_flagged(
            self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, ARENA_POLICY, {
            "kern.py": "import numpy as np\ndef f(n):\n"
                       "    return np.zeros(n)\n",
            "ws.py": "def buffer(n):\n    return None\n",
        })
        findings = arch_findings(monkeypatch, root, ["RPR010"])
        assert len(findings) == 1
        assert findings[0].line == 3  # the np.zeros site, not the def
        assert "numpy.zeros" in findings[0].message

    def test_alloc_through_arena_clean(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, ARENA_POLICY, {
            "kern.py": "from . import ws\ndef f(n):\n"
                       "    return ws.buffer(n)\n",
            "ws.py": "import numpy as np\ndef buffer(n):\n"
                     "    return np.zeros(n)\n",
        })
        assert arch_findings(monkeypatch, root, ["RPR010"]) == []

    def test_transitive_alloc_flagged_at_boundary(
            self, tmp_path, monkeypatch):
        # kern.f -> top.helper (outside the hot set) -> np.zeros: the
        # hot-path boundary function carries the finding, with a chain.
        root = write_tree(tmp_path, ARENA_POLICY, {
            "kern.py": "from . import top\ndef f(n):\n"
                       "    return top.helper(n)\n",
            "top.py": "import numpy as np\ndef helper(n):\n"
                      "    return np.zeros(n)\n",
            "ws.py": "def buffer(n):\n    return None\n",
        })
        findings = arch_findings(monkeypatch, root, ["RPR010"])
        assert len(findings) == 1
        assert "repro.kern.f" in findings[0].message
        assert "repro.top.helper" in findings[0].message


class TestSnapshot:
    def test_roundtrip(self, tmp_path):
        analysis = EffectAnalysis(graph_of(
            ("m.py", "import time\ndef f():\n    return time.time()\n")))
        path = tmp_path / "ARCH_EFFECTS.json"
        write_snapshot(analysis, str(path))
        assert load_snapshot(str(path)) == snapshot_payload(analysis)

    def test_diff_reports_added_and_removed(self):
        old = {"version": 1, "root": "repro",
               "functions": {"repro.m.f": ["io"]}}
        new = {"version": 1, "root": "repro",
               "functions": {"repro.m.f": ["io", "time"],
                             "repro.m.g": ["rng"]}}
        added, removed = diff_snapshots(old, new)
        assert any("repro.m.f" in line and "time" in line
                   for line in added)
        assert any("repro.m.g" in line and "rng" in line
                   for line in added)
        assert removed == []
        added, removed = diff_snapshots(new, old)
        assert added == [] and len(removed) == 2

    def test_arch_diff_fails_on_new_effect(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY, {
            "top.py": "def g():\n    return 1\n",
        })
        monkeypatch.chdir(root)
        out = []
        assert arch_snapshot(["repro"], output="snap.json",
                             echo=out.append) == LINT_EXIT_CLEAN
        assert arch_diff(["repro"], against="snap.json",
                         echo=out.append) == LINT_EXIT_CLEAN
        # the code change introduces a new effect: diff must fail
        (root / "repro" / "top.py").write_text(
            "import time\ndef g():\n    return time.time()\n")
        out = []
        assert arch_diff(["repro"], against="snap.json",
                         echo=out.append) == LINT_EXIT_FINDINGS
        assert any("NEW EFFECT" in line and "repro.top.g" in line
                   for line in out)

    def test_missing_snapshot_is_internal_error(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY, {})
        monkeypatch.chdir(root)
        out = []
        assert arch_diff(["repro"], against="no/such.json",
                         echo=out.append) == LINT_EXIT_INTERNAL


class TestLintExitContract:
    def test_clean_exits_zero(self, tmp_path):
        f = tmp_path / "ok.py"
        f.write_text("x = 1\n")
        assert run_lint([str(f)], echo=lambda s: None) == LINT_EXIT_CLEAN

    def test_findings_exit_one(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("import time\nt = time.time()\n")
        assert run_lint([str(f)], echo=lambda s: None) == LINT_EXIT_FINDINGS

    def test_bad_path_is_internal_error(self):
        out = []
        assert run_lint(["no/such/dir"],
                        echo=out.append) == LINT_EXIT_INTERNAL
        assert "internal error" in out[0]

    def test_malformed_baseline_is_internal_error(self, tmp_path):
        f = tmp_path / "ok.py"
        f.write_text("x = 1\n")
        baseline = tmp_path / ".reprolint.json"
        baseline.write_text("{not json")
        out = []
        assert run_lint([str(f)], baseline_path=str(baseline),
                        echo=out.append) == LINT_EXIT_INTERNAL


class TestArchCommands:
    def test_show_prints_layers(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, ARENA_POLICY, {})
        monkeypatch.chdir(root)
        out = []
        assert arch_show(echo=out.append) == LINT_EXIT_CLEAN
        text = "\n".join(out)
        assert "kernels" in text and "top" in text
        assert "arena-hot" in text

    def test_check_clean_tree(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY, {
            "kern.py": "def f():\n    return 1\n",
        })
        monkeypatch.chdir(root)
        assert arch_check(["repro"],
                          echo=lambda s: None) == LINT_EXIT_CLEAN

    def test_check_without_policy_is_internal_error(
            self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = []
        assert arch_check(["."], echo=out.append) == LINT_EXIT_INTERNAL

    def test_graph_json_and_dot(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY, {
            "kern.py": "def f():\n    return 1\n",
            "top.py": "from . import kern\ndef g():\n"
                      "    return kern.f()\n",
        })
        monkeypatch.chdir(root)
        out = []
        assert arch_graph(["repro"], output_format="json",
                          echo=out.append) == LINT_EXIT_CLEAN
        doc = json.loads("\n".join(out))
        assert ["repro.top", "repro.kern"] in doc["edges"]
        out = []
        assert arch_graph(["repro"], output_format="dot",
                          echo=out.append) == LINT_EXIT_CLEAN
        dot = "\n".join(out)
        assert dot.startswith("digraph")
        assert '"repro.top" -> "repro.kern";' in dot

    def test_function_granularity_graph(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASE_POLICY, {
            "top.py": "def g():\n    return 1\n",
        })
        monkeypatch.chdir(root)
        g = build_callgraph([ctx(str(root / "repro" / "top.py"),
                                 (root / "repro" / "top.py").read_text())])
        doc = graph_as_json(g, "function")
        assert "repro.top.g" in doc["functions"]


class TestPolicyParser:
    def test_fallback_parser_matches_committed_policy(self):
        # The CI floor is a python without tomllib; the fallback
        # TOML-subset parser must read the committed policy identically.
        from repro.analysis.policy import _parse_toml_subset

        text = (REPO_ROOT / "ARCHITECTURE.toml").read_text()
        doc = _parse_toml_subset(text)
        assert doc["version"] == 1 and doc["root"] == "repro"
        assert any(layer["name"] == "kernels" for layer in doc["layer"])
        tomllib = pytest.importorskip("tomllib")
        assert doc == tomllib.loads(text)


REGISTRY_SRC = """\
from . import fast as _fast
from . import ref as _ref


class KernelBackend:
    pass


def _ref_adapter(depth, ws):
    return _ref.kernel(depth)


REF = KernelBackend(name="reference", integrate=_ref_adapter)
FAST = KernelBackend(name="fast", integrate=_fast.kernel)
"""


def _registry_contexts(fast_contract, ref_contract):
    def decorated(spec):
        dec = f'@contract({spec})\n' if spec else ""
        return (
            "from ..analysis.contracts import contract\n"
            f"{dec}def kernel(depth):\n"
            "    return depth\n"
        )

    return [
        ctx("/scratch/repro/perf/registry.py", REGISTRY_SRC),
        ctx("/scratch/repro/perf/fast.py", decorated(fast_contract)),
        ctx("/scratch/repro/perf/ref.py", decorated(ref_contract)),
    ]


def _backend_problems(fast_contract, ref_contract):
    contexts = _registry_contexts(fast_contract, ref_contract)
    graph = build_callgraph(contexts)
    backends = extract_kernel_backends(contexts[0].tree)

    def resolved(name):
        _, slots = backends[name]
        out = {}
        for slot, (dotted, lineno) in slots.items():
            qname = graph.resolve_function(f"repro.perf.registry.{dotted}")
            qname = resolve_backend_kernel(graph, qname)
            decls = extract_contract_decls(graph.functions[qname].ast_node)
            out[slot] = (qname, decls, lineno)
        return out

    return compare_backend_contracts(resolved("reference"),
                                     resolved("fast"), "fast")


class TestBackendContracts:
    def test_extract_kernel_backends(self):
        import ast as ast_mod

        backends = extract_kernel_backends(ast_mod.parse(REGISTRY_SRC))
        assert set(backends) == {"reference", "fast"}
        assert backends["fast"][1]["integrate"][0] == "_fast.kernel"

    def test_adapter_unwrapped_to_kernel(self):
        contexts = _registry_contexts('depth="H,W:f32"', 'depth="H,W:f64"')
        graph = build_callgraph(contexts)
        assert resolve_backend_kernel(
            graph, "repro.perf.registry._ref_adapter"
        ) == "repro.perf.ref.kernel"

    def test_width_difference_is_allowed(self):
        assert _backend_problems('depth="H,W:f32"', 'depth="H,W:f64"') == []

    def test_symmetric_absence_is_allowed(self):
        assert _backend_problems(None, None) == []

    def test_shape_mismatch_flagged(self):
        problems = _backend_problems('depth="N:f32"', 'depth="H,W:f64"')
        assert len(problems) == 1
        assert "shape" in problems[0][1]

    def test_kind_mismatch_flagged(self):
        problems = _backend_problems('depth="H,W:i32"', 'depth="H,W:f64"')
        assert len(problems) == 1
        assert "kind differs" in problems[0][1]

    def test_asymmetric_declaration_flagged(self):
        problems = _backend_problems(None, 'depth="H,W:f64"')
        assert len(problems) == 1
        assert "does not" in problems[0][1]

    def test_parameter_set_mismatch_flagged(self):
        problems = _backend_problems('depth="H,W:f32", pose="4,4:f64"',
                                     'depth="H,W:f64"')
        assert len(problems) == 1
        assert "different parameters" in problems[0][1]


class TestRepoIsClean:
    """The repo itself must satisfy its own committed architecture."""

    def test_arch_rules_clean_on_repo(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert analyze_paths([str(REPO_SRC)], select=ARCH_RULES) == []

    def test_backend_contracts_clean_on_repo(self):
        assert analyze_paths([str(REPO_SRC)], select=["RPR004"]) == []

    def test_committed_snapshot_is_current(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        out = []
        assert arch_diff(["src/repro"], echo=out.append) == LINT_EXIT_CLEAN
