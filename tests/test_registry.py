"""Tests for the algorithm/dataset registries."""

import pytest

from repro.core import registry
from repro.core.registry import (
    algorithm_names,
    create_algorithm,
    create_dataset,
    dataset_names,
    register_algorithm,
    register_dataset,
    register_defaults,
)
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def defaults():
    register_defaults()


class TestAlgorithms:
    def test_builtins_registered(self):
        names = algorithm_names()
        assert {"kfusion", "icp_odometry", "static"} <= set(names)

    def test_create(self):
        system = create_algorithm("kfusion")
        assert system.name == "kfusion"

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            create_algorithm("orb_slam3")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_algorithm("kfusion", lambda: None)

    def test_register_defaults_idempotent(self):
        register_defaults()
        register_defaults()


class TestDatasets:
    def test_builtins_registered(self):
        names = dataset_names()
        assert "lr_kt0" in names and "of_desk" in names

    def test_create_with_kwargs(self):
        seq = create_dataset("lr_kt0", n_frames=2, width=32, height=24)
        assert len(seq) == 2
        assert seq.name == "lr_kt0"

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            create_dataset("kitti_00")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_dataset("lr_kt0", lambda **kw: None)
