"""Integration tests: the full KinectFusion system on synthetic sequences."""

import numpy as np
import pytest

from repro.core import TrackingStatus, run_benchmark
from repro.errors import ConfigurationError
from repro.kfusion import KinectFusion

GOOD_CONFIG = {
    "volume_resolution": 128,
    "volume_size": 5.0,
    "integration_rate": 1,
}


@pytest.fixture(scope="module")
def kfusion_result(tiny_sequence):
    return run_benchmark(KinectFusion(), tiny_sequence,
                         configuration=GOOD_CONFIG)


class TestEndToEnd:
    def test_tracks_whole_sequence(self, kfusion_result):
        assert kfusion_result.collector.tracked_fraction() == 1.0

    def test_ate_small(self, kfusion_result):
        assert kfusion_result.ate is not None
        assert kfusion_result.ate.max < 0.02

    def test_rpe_small(self, kfusion_result):
        assert kfusion_result.rpe is not None
        assert kfusion_result.rpe.trans_rmse < 0.01

    def test_first_frame_bootstrap(self, kfusion_result):
        records = kfusion_result.collector.records
        assert records[0].status is TrackingStatus.BOOTSTRAP
        assert all(r.status is TrackingStatus.OK for r in records[1:])

    def test_workloads_recorded(self, kfusion_result):
        for record in kfusion_result.collector.records:
            names = {k.name for k in record.workload.kernels}
            assert "bilateral_filter" in names
            assert "raycast" in names
            assert "integrate" in names  # integration_rate=1

    def test_tracking_kernels_present_after_first(self, kfusion_result):
        records = kfusion_result.collector.records
        assert not any(k.name == "track"
                       for k in records[0].workload.kernels)
        assert any(k.name == "track" for k in records[1].workload.kernels)


class TestParameterEffects:
    def test_coarse_volume_degrades_accuracy(self, tiny_sequence):
        fine = run_benchmark(
            KinectFusion(), tiny_sequence, configuration=GOOD_CONFIG
        )
        coarse = run_benchmark(
            KinectFusion(), tiny_sequence,
            configuration={"volume_resolution": 32, "volume_size": 5.0,
                           "integration_rate": 1},
        )
        assert coarse.ate.max > fine.ate.max

    def test_compute_ratio_reduces_workload(self, tiny_sequence):
        full = run_benchmark(KinectFusion(), tiny_sequence,
                             configuration=GOOD_CONFIG)
        half = run_benchmark(
            KinectFusion(), tiny_sequence,
            configuration=dict(GOOD_CONFIG, compute_size_ratio=2),
        )
        flops_full = sum(r.workload.total_flops
                         for r in full.collector.records)
        flops_half = sum(r.workload.total_flops
                         for r in half.collector.records)
        assert flops_half < flops_full

    def test_integration_rate_decimates(self, tiny_sequence):
        result = run_benchmark(
            KinectFusion(), tiny_sequence,
            configuration=dict(GOOD_CONFIG, integration_rate=4),
        )
        integrations = sum(
            1
            for r in result.collector.records
            if any(k.name == "integrate" for k in r.workload.kernels)
        )
        assert integrations <= 4  # bootstrap frames + every 4th

    def test_tracking_rate_skips(self, tiny_sequence):
        result = run_benchmark(
            KinectFusion(), tiny_sequence,
            configuration=dict(GOOD_CONFIG, tracking_rate=3),
        )
        statuses = [r.status for r in result.collector.records]
        assert TrackingStatus.SKIPPED in statuses

    def test_too_aggressive_ratio_rejected(self, tiny_sequence):
        # 80x60 / 8 = 10x7.5: not an integer grid.
        with pytest.raises(ConfigurationError):
            run_benchmark(
                KinectFusion(), tiny_sequence,
                configuration=dict(GOOD_CONFIG, compute_size_ratio=8),
            )

    def test_outputs_published(self, tiny_sequence):
        system = KinectFusion()
        run_benchmark(system, tiny_sequence, configuration=GOOD_CONFIG)
        # After clean, outputs are reset; re-run manually to inspect.
        system = KinectFusion()
        system.new_configuration().update(GOOD_CONFIG)
        system.init(tiny_sequence.sensors)
        f = tiny_sequence.frame(0)
        system.update_frame(f.without_ground_truth())
        system.process_once()
        outputs = system.update_outputs()
        assert outputs.pose().shape == (4, 4)
        assert len(outputs.get("pointcloud").value) > 0
        system.clean()
