"""Tests for the benchmark harness and metric collector."""

import numpy as np
import pytest

from repro.baselines import ICPOdometry, StaticSLAM
from repro.core import (
    TrackingStatus,
    run_benchmark,
    run_frame_stream,
)
from repro.core.metrics import FrameRecord, MetricsCollector
from repro.core.workload import FrameWorkload
from repro.errors import DatasetError
from repro.platforms import PlatformConfig


class TestRunBenchmark:
    def test_static_baseline_has_large_ate(self, tiny_sequence):
        result = run_benchmark(StaticSLAM(), tiny_sequence)
        assert result.ate is not None
        # The camera moves several cm over the sequence; a static estimate
        # must show that as error.
        assert result.ate.max > 0.01

    def test_odometry_beats_static(self, tiny_sequence):
        static = run_benchmark(StaticSLAM(), tiny_sequence)
        odo = run_benchmark(ICPOdometry(), tiny_sequence)
        assert odo.ate.max < static.ate.max

    def test_simulation_attached_when_device_given(self, tiny_sequence,
                                                   odroid):
        result = run_benchmark(
            ICPOdometry(), tiny_sequence, device=odroid,
            platform_config=PlatformConfig(backend="opencl"),
        )
        assert result.simulation is not None
        summary = result.summary()
        assert "sim_fps" in summary
        assert "sim_streaming_power_w" in summary

    def test_no_accuracy_mode(self, tiny_sequence):
        result = run_benchmark(ICPOdometry(), tiny_sequence,
                               evaluate_accuracy=False)
        assert result.ate is None
        assert result.rpe is None

    def test_configuration_recorded(self, tiny_sequence):
        result = run_benchmark(
            ICPOdometry(), tiny_sequence,
            configuration={"compute_size_ratio": 2},
        )
        assert result.configuration["compute_size_ratio"] == 2

    def test_system_cleaned_after_run(self, tiny_sequence):
        system = ICPOdometry()
        run_benchmark(system, tiny_sequence)
        assert not system.initialised

    def test_wall_times_recorded(self, tiny_sequence):
        result = run_benchmark(StaticSLAM(), tiny_sequence)
        assert (result.collector.wall_times() > 0).all()
        assert result.mean_wall_time_s > 0

    def test_frame_log(self, tiny_sequence, odroid, tmp_path):
        result = run_benchmark(
            ICPOdometry(), tiny_sequence, device=odroid,
            platform_config=PlatformConfig(backend="opencl"),
        )
        rows = result.frame_log_rows()
        assert len(rows) == len(tiny_sequence)
        assert rows[0]["status"] == "bootstrap"
        assert all(r["sim_time_s"] > 0 for r in rows)
        path = tmp_path / "frames.csv"
        result.save_frame_log(str(path))
        lines = path.read_text().splitlines()
        assert lines[0].startswith("frame,timestamp_s,status")
        assert len(lines) == len(tiny_sequence) + 1

    def test_frame_log_without_simulation(self, tiny_sequence):
        result = run_benchmark(StaticSLAM(), tiny_sequence)
        rows = result.frame_log_rows()
        # Missing measurement, not an empty string: keeps the column
        # numeric-or-None (write_csv renders None as an empty cell).
        assert rows[0]["sim_time_s"] is None


class TestRunFrameStream:
    def test_yields_records_lazily(self, tiny_sequence):
        stream = run_frame_stream(ICPOdometry(), tiny_sequence)
        first = next(stream)
        assert first.index == 0
        assert first.status is TrackingStatus.BOOTSTRAP
        rest = list(stream)
        assert len(rest) == len(tiny_sequence) - 1

    def test_early_close_cleans_up(self, tiny_sequence):
        system = ICPOdometry()
        stream = run_frame_stream(system, tiny_sequence)
        next(stream)
        stream.close()
        assert not system.initialised


class TestMetricsCollector:
    def _record(self, i, status=TrackingStatus.OK):
        return FrameRecord(
            index=i, timestamp=i / 30.0, wall_time_s=0.01, status=status,
            pose=np.eye(4), workload=FrameWorkload(i),
            valid_depth_fraction=1.0,
        )

    def test_empty_rejected(self):
        c = MetricsCollector()
        with pytest.raises(DatasetError):
            c.estimated_trajectory()
        with pytest.raises(DatasetError):
            c.tracked_fraction()

    def test_tracked_fraction_counts_lost(self):
        c = MetricsCollector()
        c.add(self._record(0, TrackingStatus.BOOTSTRAP))
        c.add(self._record(1, TrackingStatus.OK))
        c.add(self._record(2, TrackingStatus.LOST))
        c.add(self._record(3, TrackingStatus.SKIPPED))
        assert c.tracked_fraction() == pytest.approx(0.75)
        assert c.lost_frames() == [2]

    def test_status_counts(self):
        c = MetricsCollector()
        c.add(self._record(0, TrackingStatus.OK))
        c.add(self._record(1, TrackingStatus.OK))
        assert c.status_counts() == {"ok": 2}

    def test_trajectory_shape(self):
        c = MetricsCollector()
        for i in range(4):
            c.add(self._record(i))
        t = c.estimated_trajectory()
        assert len(t) == 4
