"""Property-based tests for camera projection invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry import PinholeCamera

cameras = st.builds(
    PinholeCamera.kinect_like,
    width=st.sampled_from([32, 64, 80, 160]),
    height=st.sampled_from([24, 48, 60, 120]),
)

depths = st.floats(min_value=0.3, max_value=6.0)


@given(cam=cameras, z=depths)
@settings(max_examples=60, deadline=None)
def test_backproject_project_identity(cam, z):
    depth = np.full(cam.shape, z)
    vertices = cam.backproject(depth)
    pixels, valid = cam.project(vertices.reshape(-1, 3))
    assert valid.all()
    uu, vv = np.meshgrid(np.arange(cam.width), np.arange(cam.height))
    expected = np.stack([uu, vv], axis=-1).reshape(-1, 2)
    assert np.allclose(pixels, expected, atol=1e-6)


@given(cam=cameras, z=depths, factor=st.sampled_from([2, 4]))
@settings(max_examples=60, deadline=None)
def test_scaling_preserves_rays(cam, z, factor):
    """A pixel in the scaled camera sees the same ray as the block it
    covers in the full camera (up to the half-pixel grid offset)."""
    if cam.width % factor or cam.height % factor:
        return
    small = cam.scaled(factor)
    # The principal ray direction is identical.
    ray_full = cam.pixel_rays()[cam.height // 2, cam.width // 2]
    ray_small = small.pixel_rays()[small.height // 2, small.width // 2]
    assert np.allclose(ray_full, ray_small, atol=0.1)
    # Field of view is preserved: corner rays match closely.
    corner_full = cam.pixel_rays()[0, 0]
    corner_small = small.pixel_rays()[0, 0]
    assert np.allclose(corner_full, corner_small, atol=0.1)


@given(cam=cameras,
       points=arrays(np.float64, (16, 3),
                     elements=st.floats(min_value=-4, max_value=4,
                                        allow_nan=False)))
@settings(max_examples=60, deadline=None)
def test_projection_flags_are_consistent(cam, points):
    pixels, valid = cam.project(points)
    # Valid points are in front of the camera and inside the image.
    eps = 1e-6
    for p, (u, v), ok in zip(points, pixels, valid):
        if ok:
            assert p[2] > 0
            assert -eps <= u <= cam.width - 1 + eps
            assert -eps <= v <= cam.height - 1 + eps
