"""Tests for the fast kernel backend (``repro.perf``).

Three layers:

* **workspace/registry semantics** — the arena's reuse, budget and
  error behaviour; backend lookup and registration.
* **per-kernel equivalence** — each fast kernel against its reference
  twin on synthetic frames, at float32 tolerance.
* **golden equivalence** — the whole pipeline, both backends, on the
  golden lr_kt0 sequence: *identical* tracked/status sequences, and ATE
  within the documented float32 tolerance (DESIGN.md S17).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import run_benchmark
from repro.core.registry import create_algorithm, register_defaults
from repro.datasets import icl_nuim
from repro.errors import ConfigurationError, PerfError
from repro.geometry import PinholeCamera, se3
from repro.kfusion import KinectFusion
from repro.kfusion import preprocessing as ref_pre
from repro.kfusion import tracking as ref_track
from repro.kfusion.integration import integrate as ref_integrate
from repro.kfusion.memory import workspace_bytes
from repro.kfusion.params import KFusionParams
from repro.kfusion.volume import TSDFVolume
from repro.perf import (
    DEFAULT_KERNEL_BACKEND,
    FAST_BACKEND,
    REFERENCE_BACKEND,
    FrameWorkspace,
    KernelBackend,
    get_kernel_backend,
    kernel_backend_names,
    register_kernel_backend,
)
from repro.perf import integrate as fast_integrate_mod
from repro.perf import preprocess as fast_pre
from repro.perf import raycast as fast_raycast_mod
from repro.perf import tracking as fast_track
from repro.perf.jit import HAVE_NUMBA
from repro.telemetry import Tracer

#: Documented fast-vs-reference ATE tolerance (relative); see DESIGN.md
#: S17 — float32 front-end reassociation, float64 solver.
FAST_ATE_REL_TOL = 0.02

CAM = PinholeCamera.kinect_like(width=48, height=36)
PARAMS = KFusionParams(volume_resolution=48, volume_size=5.0)


def make_ws(camera=CAM, params=PARAMS):
    return FrameWorkspace(camera, params, levels=3)


def synthetic_depth(camera=CAM, seed=0, hole_fraction=0.15):
    """A smooth depth surface with speckle holes (invalid pixels)."""
    rng = np.random.default_rng(seed)
    h, w = camera.shape
    yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    depth = 2.0 + 0.4 * np.sin(xx / 7.0) + 0.3 * np.cos(yy / 5.0)
    depth += 0.02 * rng.standard_normal((h, w))
    depth[rng.random((h, w)) < hole_fraction] = 0.0
    return depth


# ---------------------------------------------------------------------------
# FrameWorkspace
# ---------------------------------------------------------------------------
class TestFrameWorkspace:
    def test_buffer_reused_across_calls(self):
        ws = make_ws()
        a = ws.buffer("x", (8, 8))
        b = ws.buffer("x", (8, 8))
        assert a is b
        assert len(ws) == 1

    def test_default_dtype_is_float32(self):
        assert make_ws().buffer("x", (4,)).dtype == np.float32

    def test_distinct_names_distinct_buffers(self):
        ws = make_ws()
        assert ws.buffer("a", (4,)) is not ws.buffer("b", (4,))
        assert len(ws) == 2

    def test_reshape_reallocates_and_reaccounts(self):
        ws = make_ws()
        ws.buffer("x", (8, 8))
        before = ws.nbytes
        ws.buffer("x", (4, 4))
        assert ws.nbytes == before - (64 - 16) * 4

    def test_zeros_clears_previous_contents(self):
        ws = make_ws()
        ws.buffer("x", (16,))[:] = 7.0
        assert not ws.zeros("x", (16,)).any()

    def test_budget_matches_memory_model(self):
        ws = make_ws()
        assert ws.budget_bytes == workspace_bytes(
            PARAMS, CAM.width, CAM.height, 3
        )

    def test_over_budget_raises_perf_error(self):
        ws = make_ws()
        huge = ws.budget_bytes // 4 + 1  # floats needed to overflow
        with pytest.raises(PerfError):
            ws.buffer("too_big", (huge,))

    def test_full_frame_run_stays_in_budget(self):
        """The arena the real pipeline builds must fit its own model."""
        seq = icl_nuim.load("lr_kt0", n_frames=3, width=64, height=48,
                            seed=0)
        seq.materialize()
        system = KinectFusion(kernel_backend="fast")
        run_benchmark(system, seq, configuration={
            "volume_resolution": 64, "volume_size": 5.0,
        }, evaluate_accuracy=False)
        ws = system._workspace
        assert ws is not None and len(ws) > 0
        assert ws.nbytes <= ws.budget_bytes


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class TestKernelBackendRegistry:
    def test_all_backends_registered(self):
        expected = ["fast", "reference", "sparse"]
        if HAVE_NUMBA:
            expected.insert(1, "jit")
        assert kernel_backend_names() == expected

    def test_default_is_fast(self):
        assert DEFAULT_KERNEL_BACKEND == "fast"
        assert KinectFusion().kernel_backend == "fast"

    def test_lookup_by_name(self):
        assert get_kernel_backend("fast") is FAST_BACKEND
        assert get_kernel_backend("reference") is REFERENCE_BACKEND

    def test_unknown_backend_raises(self):
        with pytest.raises(PerfError, match="unknown kernel backend"):
            get_kernel_backend("cuda")
        with pytest.raises(PerfError):
            KinectFusion(kernel_backend="cuda")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(PerfError, match="already registered"):
            register_kernel_backend(
                KernelBackend(
                    name="fast",
                    bilateral_filter=FAST_BACKEND.bilateral_filter,
                    build_pyramid=FAST_BACKEND.build_pyramid,
                    vertex_normal_pyramid=FAST_BACKEND.vertex_normal_pyramid,
                    track=FAST_BACKEND.track,
                    integrate=FAST_BACKEND.integrate,
                    raycast_model=FAST_BACKEND.raycast_model,
                )
            )

    def test_reference_backend_needs_no_workspace(self):
        assert REFERENCE_BACKEND.make_workspace(CAM, PARAMS, 3) is None

    def test_create_algorithm_forwards_kernel_backend(self):
        register_defaults()
        system = create_algorithm("kfusion", kernel_backend="reference")
        assert system.kernel_backend == "reference"

    def test_create_algorithm_rejects_unknown_kwargs(self):
        register_defaults()
        with pytest.raises(ConfigurationError, match="rejected arguments"):
            create_algorithm("static", kernel_backend="fast")


# ---------------------------------------------------------------------------
# Per-kernel equivalence (fast vs reference)
# ---------------------------------------------------------------------------
class TestKernelEquivalence:
    def test_bilateral_filter(self):
        depth = synthetic_depth()
        ref = ref_pre.bilateral_filter(depth)
        fast = fast_pre.bilateral_filter(depth, make_ws())
        assert fast.dtype == np.float32
        np.testing.assert_allclose(fast, ref, rtol=0, atol=1e-5)

    def test_build_pyramid(self):
        depth = synthetic_depth()
        ws = make_ws()
        ref = ref_pre.build_pyramid(depth, 3)
        fast = fast_pre.build_pyramid(
            np.ascontiguousarray(depth, dtype=np.float32), 3, ws
        )
        assert len(fast) == len(ref)
        for f, r in zip(fast, ref):
            np.testing.assert_allclose(f, r, rtol=0, atol=1e-5)

    def test_vertex_normal_pyramid(self):
        depth = synthetic_depth()
        ws = make_ws()
        ref_v, ref_n, ref_c = ref_pre.vertex_normal_pyramid(
            ref_pre.build_pyramid(depth, 3), CAM
        )
        fast_v, fast_n, fast_c = fast_pre.vertex_normal_pyramid(
            fast_pre.build_pyramid(
                np.ascontiguousarray(depth, dtype=np.float32), 3, ws
            ),
            CAM, ws,
        )
        assert [c.shape for c in fast_c] == [c.shape for c in ref_c]
        for fv, rv in zip(fast_v, ref_v):
            np.testing.assert_allclose(fv, rv, rtol=0, atol=1e-4)
        for fn, rn in zip(fast_n, ref_n):
            # Normals are unit vectors (or zero); compare directions.
            np.testing.assert_allclose(fn, rn, rtol=0, atol=1e-3)

    @staticmethod
    def _integrated_volumes(n_frames=2):
        pose = se3.make_pose(np.eye(3), np.array([2.5, 2.5, 0.0]))
        vol_ref = TSDFVolume(resolution=48, size=5.0)
        vol_fast = TSDFVolume(resolution=48, size=5.0)
        ws = make_ws()
        for i in range(n_frames):
            depth = synthetic_depth(seed=i)
            ref_integrate(vol_ref, depth, CAM, pose, PARAMS.mu_distance)
            fast_integrate_mod.integrate(
                vol_fast, depth.astype(np.float32), CAM, pose,
                PARAMS.mu_distance, ws,
            )
        return vol_ref, vol_fast, pose, ws

    def test_integrate(self):
        vol_ref, vol_fast, _, _ = self._integrated_volumes()
        np.testing.assert_array_equal(vol_fast.weight, vol_ref.weight)
        np.testing.assert_allclose(vol_fast.tsdf, vol_ref.tsdf,
                                   rtol=0, atol=1e-5)

    def test_raycast_model(self):
        vol_ref, vol_fast, pose, ws = self._integrated_volumes()
        ref_model = REFERENCE_BACKEND.raycast_model(
            vol_ref, CAM, pose, PARAMS.mu_distance, None
        )
        fast_model = fast_raycast_mod.raycast_model(
            vol_fast, CAM, pose, PARAMS.mu_distance, ws
        )
        ref_hit = np.any(ref_model.normals != 0, axis=-1)
        fast_hit = np.any(fast_model.normals != 0, axis=-1)
        # Hit masks may flicker on grazing rays; require near-identical.
        disagreement = np.mean(ref_hit != fast_hit)
        assert disagreement < 0.02
        both = ref_hit & fast_hit
        assert both.sum() >= 50  # enough surface to make the check real
        np.testing.assert_allclose(
            fast_model.vertices[both], ref_model.vertices[both],
            rtol=0, atol=2e-3,
        )
        dots = np.einsum(
            "ij,ij->i",
            fast_model.normals[both].astype(float),
            ref_model.normals[both].astype(float),
        )
        assert np.median(dots) > 0.999

    def test_track(self):
        vol_ref, vol_fast, pose, ws = self._integrated_volumes()
        reference = REFERENCE_BACKEND.raycast_model(
            vol_ref, CAM, pose, PARAMS.mu_distance, None
        )
        depth = synthetic_depth(seed=0)
        pyramid = ref_pre.build_pyramid(ref_pre.bilateral_filter(depth), 3)
        vertices, normals, _ = ref_pre.vertex_normal_pyramid(pyramid, CAM)
        # Perturb the pose slightly; both trackers must pull it back.
        start = se3.se3_exp(
            np.array([0.004, -0.003, 0.002, 0.001, -0.002, 0.001])
        ) @ pose
        ref_result = ref_track.track(
            vertices, normals, reference, start,
            PARAMS.pyramid_iterations, PARAMS.icp_threshold,
        )
        fast_result = fast_track.track(
            vertices, normals, reference, start,
            PARAMS.pyramid_iterations, PARAMS.icp_threshold, ws,
        )
        assert fast_result.tracked == ref_result.tracked
        np.testing.assert_allclose(
            fast_result.pose[:3, 3], ref_result.pose[:3, 3],
            rtol=0, atol=5e-4,
        )
        np.testing.assert_allclose(
            fast_result.pose[:3, :3], ref_result.pose[:3, :3],
            rtol=0, atol=5e-4,
        )
        assert fast_result.rmse == pytest.approx(ref_result.rmse,
                                                 rel=0.05, abs=1e-4)


# ---------------------------------------------------------------------------
# Bilateral validity (property test, both backends)
# ---------------------------------------------------------------------------
small_depths = arrays(
    dtype=np.float64,
    shape=(12, 16),
    elements=st.one_of(
        st.just(0.0),
        st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
    ),
)


@given(depth=small_depths)
@settings(max_examples=40, deadline=None)
@pytest.mark.parametrize("backend_name", ["reference", "fast"])
def test_bilateral_validity_preserved(backend_name, depth):
    """Invalid pixels stay invalid; valid pixels never bleed to zero."""
    backend = get_kernel_backend(backend_name)
    cam = PinholeCamera.kinect_like(width=16, height=12)
    ws = backend.make_workspace(cam, PARAMS, 3)
    out = backend.bilateral_filter(depth, ws)
    np.testing.assert_array_equal(out > 0.0, depth > 0.0)


# ---------------------------------------------------------------------------
# Camera ray cache (satellite)
# ---------------------------------------------------------------------------
class TestPixelRaysCache:
    def test_same_object_returned(self):
        cam = PinholeCamera.kinect_like(width=32, height=24)
        assert cam.pixel_rays() is cam.pixel_rays()

    def test_cache_is_read_only(self):
        cam = PinholeCamera.kinect_like(width=32, height=24)
        rays = cam.pixel_rays()
        with pytest.raises(ValueError):
            rays[0, 0, 0] = 99.0

    def test_instances_do_not_share_cache(self):
        a = PinholeCamera.kinect_like(width=32, height=24)
        b = PinholeCamera.kinect_like(width=32, height=24)
        assert a.pixel_rays() is not b.pixel_rays()
        np.testing.assert_array_equal(a.pixel_rays(), b.pixel_rays())

    def test_hash_and_eq_unaffected_by_cache(self):
        a = PinholeCamera.kinect_like(width=32, height=24)
        b = PinholeCamera.kinect_like(width=32, height=24)
        a.pixel_rays()
        assert a == b and hash(a) == hash(b)


# ---------------------------------------------------------------------------
# Golden equivalence (full pipeline, both backends)
# ---------------------------------------------------------------------------
def _golden_run(backend_name, volume_resolution=96):
    seq = icl_nuim.load("lr_kt0", n_frames=10, width=80, height=60, seed=0)
    seq.materialize()
    tracer = Tracer(enabled=True)
    result = run_benchmark(
        KinectFusion(kernel_backend=backend_name),
        seq,
        configuration={
            "volume_resolution": volume_resolution,
            "volume_size": 5.0,
            "integration_rate": 1,
        },
        tracer=tracer,
    )
    return result, tracer


#: Every optimized backend is held to the same golden bar against the
#: reference: identical status sequences, ATE within FAST_ATE_REL_TOL.
GOLDEN_BACKENDS = ("fast", "sparse") + (("jit",) if HAVE_NUMBA else ())


@pytest.fixture(scope="module")
def golden_pair():
    return {name: _golden_run(name)
            for name in ("reference",) + GOLDEN_BACKENDS}


class TestGoldenEquivalence:
    def test_status_sequences_identical(self, golden_pair):
        status = {
            name: [r.status.value for r in res.collector.records]
            for name, (res, _) in golden_pair.items()
        }
        for name in GOLDEN_BACKENDS:
            assert status[name] == status["reference"], name

    def test_tracked_fraction_identical(self, golden_pair):
        fractions = {
            name: res.collector.tracked_fraction()
            for name, (res, _) in golden_pair.items()
        }
        for name in GOLDEN_BACKENDS:
            assert fractions[name] == fractions["reference"], name

    def test_ate_within_documented_tolerance(self, golden_pair):
        ref = golden_pair["reference"][0].ate
        for name in GOLDEN_BACKENDS:
            ate = golden_pair[name][0].ate
            assert ate.rmse == pytest.approx(ref.rmse,
                                             rel=FAST_ATE_REL_TOL), name
            assert ate.max == pytest.approx(ref.max,
                                            rel=FAST_ATE_REL_TOL), name

    def test_spans_name_their_backend(self, golden_pair):
        for name, (_, tracer) in golden_pair.items():
            stage_attrs = {
                span.name: span.attrs.get("backend")
                for span in tracer.spans
                if span.name in ("preprocess", "track", "integrate",
                                 "raycast")
            }
            assert stage_attrs, "no kernel spans recorded"
            assert set(stage_attrs.values()) == {name}
