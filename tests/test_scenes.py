"""Tests for the procedural living-room and office scenes."""

import numpy as np
import pytest

from repro.scene import living_room, office


@pytest.fixture(scope="module", params=["living_room", "office"])
def any_scene(request):
    return living_room() if request.param == "living_room" else office()


class TestSceneGeometry:
    def test_centre_is_free_space(self, any_scene):
        c = np.asarray(any_scene.center).reshape(1, 3)
        assert any_scene.distance(c)[0] > 0.1

    def test_far_outside_room_is_negative(self, any_scene):
        # Inside the wall material (outside the room box) the interior SDF
        # is negative — rays cannot escape the room.
        far = np.array([[any_scene.extent + 1.0, 1.0, 0.0]])
        assert any_scene.distance(far)[0] < 0.0

    def test_floor_is_surface(self, any_scene):
        # Directly above the floor the distance is ~height above floor.
        p = np.array([[0.5, 0.5, 0.5]])
        d = any_scene.distance(p)[0]
        assert 0.0 < d <= 0.5 + 1e-6

    def test_normals_unit_length(self, any_scene, rng):
        pts = rng.uniform(-1.0, 1.0, size=(50, 3)) + np.asarray(any_scene.center)
        n = any_scene.normal(pts)
        norms = np.linalg.norm(n, axis=-1)
        assert np.all((norms > 0.99) | (norms < 1e-6))

    def test_albedo_shape_and_range(self, any_scene, rng):
        pts = rng.uniform(-1.0, 1.0, size=(20, 3)) + np.asarray(any_scene.center)
        alb = any_scene.albedo(pts)
        assert alb.shape == (20, 3)
        assert np.all(alb >= 0.0) and np.all(alb <= 1.0)

    def test_scene_names(self):
        assert living_room().name == "living_room"
        assert office().name == "office"

    def test_furniture_is_hit(self, any_scene):
        # Sampling a dense grid at seated height must find some negative
        # (inside-furniture) values — the room is not empty.
        xs = np.linspace(-any_scene.extent + 0.1, any_scene.extent - 0.1, 40)
        grid = np.array([[x, 0.4, z] for x in xs for z in xs])
        d = any_scene.distance(grid)
        assert (d < 0).any()
