"""Golden-run regression tests for the KinectFusion pipeline.

Runs the full pipeline on a fixed-seed synthetic living-room sequence and
pins the trajectory accuracy, tracked fraction and per-frame tracking
statuses against values recorded at the time this test was written.  A
pipeline refactor that changes numerical behaviour — kernel reordering, a
different ICP convergence path, altered integration scheduling — shows up
here instead of slipping through the purely structural tests.

Tolerances (documented, deliberately asymmetric in strictness):

* ATE RMSE / max: ``rel=0.02``.  The pipeline is bit-deterministic on one
  platform, but summation order may legally change across BLAS builds;
  2 % is far below any behavioural change (losing a single frame moves
  ATE by >10x) while absorbing float-reassociation drift.
* tracked fraction: exact — a run either tracks a frame or it doesn't.
* status sequence: exact per frame, same reasoning.
"""

import pytest

from repro.core import run_benchmark
from repro.datasets import icl_nuim
from repro.kfusion import KinectFusion

ATE_REL_TOL = 0.02


def _run(volume_resolution: int):
    seq = icl_nuim.load("lr_kt0", n_frames=10, width=80, height=60, seed=0)
    seq.materialize()
    return run_benchmark(
        KinectFusion(),
        seq,
        configuration={
            "volume_resolution": volume_resolution,
            "volume_size": 5.0,
            "integration_rate": 1,
        },
    )


@pytest.fixture(scope="module")
def good_run():
    """vol=96: the pipeline tracks every frame on this sequence."""
    return _run(volume_resolution=96)


@pytest.fixture(scope="module")
def degraded_run():
    """vol=64: too coarse for the first motions — loses two frames."""
    return _run(volume_resolution=64)


class TestGoldenGoodRun:
    def test_ate_rmse(self, good_run):
        assert good_run.ate.rmse == pytest.approx(0.003773127746256985,
                                                  rel=ATE_REL_TOL)

    def test_ate_max(self, good_run):
        assert good_run.ate.max == pytest.approx(0.005132570072557547,
                                                 rel=ATE_REL_TOL)

    def test_tracked_fraction(self, good_run):
        assert good_run.collector.tracked_fraction() == 1.0

    def test_status_sequence(self, good_run):
        statuses = [r.status.value for r in good_run.collector.records]
        assert statuses == ["bootstrap"] + ["ok"] * 9


class TestGoldenDegradedRun:
    """Pins the *failure* behaviour too: when and how tracking is lost."""

    def test_ate_rmse(self, degraded_run):
        assert degraded_run.ate.rmse == pytest.approx(0.06905575267240154,
                                                      rel=ATE_REL_TOL)

    def test_tracked_fraction(self, degraded_run):
        assert degraded_run.collector.tracked_fraction() == pytest.approx(0.8)

    def test_status_sequence(self, degraded_run):
        statuses = [r.status.value for r in degraded_run.collector.records]
        assert statuses == (["bootstrap", "lost", "lost"] + ["ok"] * 7)

    def test_lost_frames_identified(self, degraded_run):
        assert degraded_run.collector.lost_frames() == [1, 2]


class TestGoldenDeterminism:
    def test_repeat_run_is_identical(self, good_run):
        repeat = _run(volume_resolution=96)
        assert repeat.ate.rmse == good_run.ate.rmse
        assert [r.status for r in repeat.collector.records] == [
            r.status for r in good_run.collector.records
        ]
