"""Golden-run regression tests for the KinectFusion pipeline.

Runs the full pipeline on a fixed-seed synthetic living-room sequence and
pins the trajectory accuracy, tracked fraction and per-frame tracking
statuses against values recorded at the time this test was written.  A
pipeline refactor that changes numerical behaviour — kernel reordering, a
different ICP convergence path, altered integration scheduling — shows up
here instead of slipping through the purely structural tests.

Both kernel backends are pinned (``reference``, the float64 textbook
kernels, and ``fast``, the float32 workspace kernels of ``repro.perf``)
with their *own* recorded ATE values, so a numerical drift in either
implementation is caught independently.

Tolerances (documented, deliberately asymmetric in strictness):

* ATE RMSE / max: ``rel=0.02``.  The pipeline is bit-deterministic on one
  platform, but summation order may legally change across BLAS builds;
  2 % is far below any behavioural change (losing a single frame moves
  ATE by >10x) while absorbing float-reassociation drift.
* tracked fraction: exact — a run either tracks a frame or it doesn't.
* status sequence: exact per frame, same reasoning — and identical
  *across* backends, which is the fast path's headline equivalence claim
  (see DESIGN.md S17 and tests/test_perf.py).
"""

import pytest

from repro.core import run_benchmark
from repro.datasets import icl_nuim
from repro.graph import TapSpec
from repro.kfusion import KinectFusion
from repro.telemetry import Tracer, use_tracer

ATE_REL_TOL = 0.02

BACKENDS = ("reference", "fast")

#: Recorded per-backend ATE values (numpy 2.4, this container).
GOLDEN_ATE = {
    ("reference", 96): {"rmse": 0.003773127746256985,
                        "max": 0.005132570072557547},
    ("fast", 96): {"rmse": 0.0037567860943899475,
                   "max": 0.0051726755650136225},
    ("reference", 64): {"rmse": 0.06905575267240154,
                        "max": 0.18688626834420913},
    ("fast", 64): {"rmse": 0.0690549280815696,
                   "max": 0.18688364918560782},
}


def _run(volume_resolution: int, kernel_backend: str = "fast",
         pipeline: str = "graph", taps: tuple = ()):
    seq = icl_nuim.load("lr_kt0", n_frames=10, width=80, height=60, seed=0)
    seq.materialize()
    return run_benchmark(
        KinectFusion(kernel_backend=kernel_backend, pipeline=pipeline,
                     taps=taps),
        seq,
        configuration={
            "volume_resolution": volume_resolution,
            "volume_size": 5.0,
            "integration_rate": 1,
        },
    )


@pytest.fixture(scope="module", params=BACKENDS)
def good_run(request):
    """vol=96: the pipeline tracks every frame on this sequence."""
    return request.param, _run(volume_resolution=96,
                               kernel_backend=request.param)


@pytest.fixture(scope="module", params=BACKENDS)
def degraded_run(request):
    """vol=64: too coarse for the first motions — loses two frames."""
    return request.param, _run(volume_resolution=64,
                               kernel_backend=request.param)


class TestGoldenGoodRun:
    def test_ate_rmse(self, good_run):
        backend, run = good_run
        assert run.ate.rmse == pytest.approx(
            GOLDEN_ATE[(backend, 96)]["rmse"], rel=ATE_REL_TOL)

    def test_ate_max(self, good_run):
        backend, run = good_run
        assert run.ate.max == pytest.approx(
            GOLDEN_ATE[(backend, 96)]["max"], rel=ATE_REL_TOL)

    def test_tracked_fraction(self, good_run):
        _, run = good_run
        assert run.collector.tracked_fraction() == 1.0

    def test_status_sequence(self, good_run):
        _, run = good_run
        statuses = [r.status.value for r in run.collector.records]
        assert statuses == ["bootstrap"] + ["ok"] * 9


class TestGoldenDegradedRun:
    """Pins the *failure* behaviour too: when and how tracking is lost."""

    def test_ate_rmse(self, degraded_run):
        backend, run = degraded_run
        assert run.ate.rmse == pytest.approx(
            GOLDEN_ATE[(backend, 64)]["rmse"], rel=ATE_REL_TOL)

    def test_tracked_fraction(self, degraded_run):
        _, run = degraded_run
        assert run.collector.tracked_fraction() == pytest.approx(0.8)

    def test_status_sequence(self, degraded_run):
        _, run = degraded_run
        statuses = [r.status.value for r in run.collector.records]
        assert statuses == (["bootstrap", "lost", "lost"] + ["ok"] * 7)

    def test_lost_frames_identified(self, degraded_run):
        _, run = degraded_run
        assert run.collector.lost_frames() == [1, 2]


class TestGoldenDeterminism:
    def test_repeat_run_is_identical(self, good_run):
        backend, run = good_run
        repeat = _run(volume_resolution=96, kernel_backend=backend)
        assert repeat.ate.rmse == run.ate.rmse
        assert [r.status for r in repeat.collector.records] == [
            r.status for r in run.collector.records
        ]


class TestGoldenPipelinePaths:
    """The default runs above exercise the compiled stage graph; this
    class pins the *legacy* call sequence to the same golden values, so
    both execution paths stay anchored to the recorded behaviour (the
    frame-by-frame proof lives in tests/test_graph_equivalence.py)."""

    @pytest.fixture(scope="class", params=BACKENDS)
    def legacy_run(self, request):
        return request.param, _run(volume_resolution=96,
                                   kernel_backend=request.param,
                                   pipeline="legacy")

    def test_default_pipeline_is_graph(self):
        assert KinectFusion().pipeline == "graph"

    def test_legacy_ate_pinned(self, legacy_run):
        backend, run = legacy_run
        assert run.ate.rmse == pytest.approx(
            GOLDEN_ATE[(backend, 96)]["rmse"], rel=ATE_REL_TOL)
        assert run.ate.max == pytest.approx(
            GOLDEN_ATE[(backend, 96)]["max"], rel=ATE_REL_TOL)

    def test_legacy_status_sequence_pinned(self, legacy_run):
        _, run = legacy_run
        statuses = [r.status.value for r in run.collector.records]
        assert statuses == ["bootstrap"] + ["ok"] * 9

    def test_graph_equals_legacy_bitwise(self, good_run, legacy_run):
        backend_g, graph = good_run
        backend_l, legacy = legacy_run
        if backend_g != backend_l:
            pytest.skip("cross-backend pairing")
        assert graph.ate.rmse == legacy.ate.rmse
        assert graph.ate.max == legacy.ate.max


class TestGoldenStreamTaps:
    """Stream taps observe intermediate frames without perturbing them:
    a tapped run must reproduce the untapped golden values bit-for-bit,
    and its telemetry must carry backend-stamped tap spans."""

    TAPS = (
        TapSpec(node="preprocess", port="depth"),
        TapSpec(node="raycast", port="model", every=2),
    )

    @pytest.fixture(scope="class", params=BACKENDS)
    def tapped_run(self, request):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            run = _run(volume_resolution=96, kernel_backend=request.param,
                       taps=self.TAPS)
        return request.param, run, tracer

    def test_tapped_ate_identical_to_golden(self, tapped_run, good_run):
        backend_t, tapped, _ = tapped_run
        backend_g, golden = good_run
        if backend_t != backend_g:
            pytest.skip("cross-backend pairing")
        assert tapped.ate.rmse == golden.ate.rmse
        assert tapped.ate.max == golden.ate.max
        assert [r.status for r in tapped.collector.records] == [
            r.status for r in golden.collector.records
        ]

    def test_tap_spans_backend_named(self, tapped_run):
        backend, _, tracer = tapped_run
        depth_taps = [s for s in tracer.spans
                      if s.name == "tap.preprocess.depth"]
        assert len(depth_taps) == 10  # every frame
        for span in depth_taps:
            assert span.attrs["backend"] == backend
            assert span.attrs["kind"] == "ndarray"

    def test_tap_sampling_rate_respected(self, tapped_run):
        _, _, tracer = tapped_run
        model_taps = [s for s in tracer.spans
                      if s.name == "tap.raycast.model"]
        assert [s.attrs["frame"] for s in model_taps] == [0, 2, 4, 6, 8]
        for span in model_taps:
            assert 0.0 <= span.attrs["valid_fraction"] <= 1.0
