"""Tests for scalar summary helpers."""

import pytest

from repro.errors import DatasetError
from repro.metrics import SeriesSummary, geometric_mean, speedup


class TestSeriesSummary:
    def test_basic_statistics(self):
        s = SeriesSummary.of([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            SeriesSummary.of([])

    def test_accepts_generator(self):
        s = SeriesSummary.of(x for x in (1.0, 2.0))
        assert s.count == 2


class TestSpeedupAndGeomean:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_speedup_zero_rejected(self):
        with pytest.raises(DatasetError):
            speedup(10.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_empty(self):
        with pytest.raises(DatasetError):
            geometric_mean([])

    def test_geometric_mean_nonpositive(self):
        with pytest.raises(DatasetError):
            geometric_mean([1.0, -1.0])
