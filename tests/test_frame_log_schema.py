"""Schema tests for BenchmarkResult logs and the harness telemetry hooks.

Pins the column set and value types of ``frame_log_rows()`` /
``summary()``, the CSV write/read round trip, and the harness-side
instrumentation added with ``repro.telemetry`` — so refactors of the
result plumbing can't silently change the artefacts downstream plotting
and DSE code consume.
"""

import csv
import math

import pytest

from repro.core import run_benchmark, run_frame_stream
from repro.errors import DatasetError
from repro.kfusion import KinectFusion
from repro.telemetry import Tracer

FRAME_LOG_COLUMNS = [
    "frame", "timestamp_s", "status", "wall_time_s", "sim_time_s",
    "x", "y", "z", "valid_depth", "kernel_gflops",
]

CONFIG = {"volume_resolution": 64, "volume_size": 5.0,
          "integration_rate": 1}


@pytest.fixture(scope="module")
def result(tiny_sequence):
    return run_benchmark(KinectFusion(), tiny_sequence,
                         configuration=CONFIG)


@pytest.fixture(scope="module")
def simulated_result(tiny_sequence, odroid):
    return run_benchmark(KinectFusion(), tiny_sequence,
                         configuration=CONFIG, device=odroid)


class TestFrameLogSchema:
    def test_columns_and_order(self, result):
        rows = result.frame_log_rows()
        assert len(rows) == 8
        for row in rows:
            assert list(row.keys()) == FRAME_LOG_COLUMNS

    def test_value_types_without_simulation(self, result):
        for row in result.frame_log_rows():
            assert isinstance(row["frame"], int)
            assert isinstance(row["status"], str)
            assert row["sim_time_s"] is None  # no device: missing, not ""
            for key in ("timestamp_s", "wall_time_s", "x", "y", "z",
                        "valid_depth", "kernel_gflops"):
                assert isinstance(float(row[key]), float)

    def test_sim_time_is_float_with_simulation(self, simulated_result):
        for row in simulated_result.frame_log_rows():
            assert isinstance(row["sim_time_s"], float)
            assert row["sim_time_s"] > 0

    def test_csv_round_trip_without_simulation(self, result, tmp_path):
        path = str(tmp_path / "frames.csv")
        result.save_frame_log(path)
        with open(path) as f:
            reader = csv.DictReader(f)
            assert reader.fieldnames == FRAME_LOG_COLUMNS
            rows = list(reader)
        assert len(rows) == 8
        for i, row in enumerate(rows):
            assert int(row["frame"]) == i
            assert row["sim_time_s"] == ""  # empty cell, never "None"
            float(row["wall_time_s"])
            float(row["kernel_gflops"])

    def test_csv_round_trip_with_simulation(self, simulated_result,
                                            tmp_path):
        path = str(tmp_path / "frames.csv")
        simulated_result.save_frame_log(path)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        originals = simulated_result.frame_log_rows()
        for row, orig in zip(rows, originals):
            value = float(row["sim_time_s"])
            assert not math.isnan(value)
            assert value == pytest.approx(orig["sim_time_s"])


class TestSummarySchema:
    BASE_KEYS = {"algorithm", "sequence", "frames", "tracked_fraction"}
    ACCURACY_KEYS = {"ate_max_m", "ate_mean_m", "ate_rmse_m",
                     "rpe_trans_rmse_m", "rpe_rot_rmse_rad",
                     "drift_percent"}
    SIM_KEYS = {"sim_fps", "sim_frame_time_s", "sim_power_w",
                "sim_streaming_power_w", "sim_energy_per_frame_j"}

    def test_keys_without_simulation(self, result):
        assert set(result.summary()) == self.BASE_KEYS | self.ACCURACY_KEYS

    def test_keys_with_simulation(self, simulated_result):
        assert set(simulated_result.summary()) == (
            self.BASE_KEYS | self.ACCURACY_KEYS | self.SIM_KEYS
        )

    def test_values_are_scalars(self, simulated_result):
        summary = simulated_result.summary()
        for key in self.ACCURACY_KEYS | self.SIM_KEYS | {"tracked_fraction"}:
            assert isinstance(float(summary[key]), float), key


class TestHarnessTelemetry:
    def test_manifest_attached(self, result, tiny_sequence):
        m = result.manifest
        assert m is not None
        assert m.algorithm == "kfusion"
        assert m.dataset == tiny_sequence.name
        assert m.seed == 0  # conftest builds the sequence with seed=0
        assert m.configuration["volume_resolution"] == 64
        assert m.extra["frames"] == len(tiny_sequence)

    def test_traced_run_has_stage_spans_per_frame(self, tiny_sequence):
        tracer = Tracer()
        run_benchmark(KinectFusion(), tiny_sequence, configuration=CONFIG,
                      evaluate_accuracy=False, tracer=tracer)
        n = len(tiny_sequence)
        assert len(tracer.spans_named("frame")) == n
        for name in ("preprocess", "track", "integrate", "raycast"):
            spans = tracer.spans_named(name)
            assert len(spans) == n
            assert all(s.parent == "frame" for s in spans)
        assert tracer.manifest is not None

    def test_empty_stream_raises_dataset_error(self, tiny_sequence):
        class Empty:
            name = "empty"
            sensors = tiny_sequence.sensors

            def __len__(self):
                return 0

            def __iter__(self):
                return iter(())

        stream = run_frame_stream(KinectFusion(), Empty())
        with pytest.raises(DatasetError):
            next(stream)

    def test_stream_matches_run_benchmark_error(self, tiny_sequence):
        class Empty:
            name = "empty"
            sensors = tiny_sequence.sensors

            def __len__(self):
                return 0

            def __iter__(self):
                return iter(())

        with pytest.raises(DatasetError):
            run_benchmark(KinectFusion(), Empty())
