"""Tests for the sphere-tracing renderer against analytic ground truth."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import PinholeCamera, se3
from repro.scene import (
    RenderSettings,
    Sphere,
    Union,
    render_depth,
    render_rgb,
    render_vertex_normal,
)
from repro.scene.living_room import SceneDescription


@pytest.fixture(scope="module")
def sphere_scene():
    sdf = Union([Sphere(center=(0.0, 0.0, 2.0), radius=0.5,
                        albedo=(0.8, 0.2, 0.2))])
    return SceneDescription(sdf=sdf, name="sphere", extent=3.0,
                            center=(0, 0, 0))


@pytest.fixture(scope="module")
def small_camera():
    return PinholeCamera.kinect_like(64, 48)


class TestDepth:
    def test_center_depth_matches_analytic(self, sphere_scene, small_camera):
        pose = np.eye(4)  # camera at origin looking along +z
        depth = render_depth(sphere_scene, small_camera, pose)
        cy, cx = small_camera.height // 2, small_camera.width // 2
        # Nearest sphere point on the axis is at z = 2 - 0.5 = 1.5.
        assert depth[cy, cx] == pytest.approx(1.5, abs=0.01)

    def test_background_is_invalid(self, sphere_scene, small_camera):
        depth = render_depth(sphere_scene, small_camera, np.eye(4))
        assert depth[0, 0] == 0.0

    def test_range_limits_respected(self, sphere_scene, small_camera):
        settings = RenderSettings(min_range=1.6, max_range=6.0)
        depth = render_depth(sphere_scene, small_camera, np.eye(4), settings)
        # The sphere front (1.5 m) is closer than min_range -> dropped.
        cy, cx = small_camera.height // 2, small_camera.width // 2
        assert depth[cy, cx] == 0.0

    def test_invalid_pose_rejected(self, sphere_scene, small_camera):
        bad = np.eye(4)
        bad[0, 0] = 2.0
        with pytest.raises(GeometryError):
            render_depth(sphere_scene, small_camera, bad)

    def test_translation_shifts_depth(self, sphere_scene, small_camera):
        pose = se3.make_pose(np.eye(3), [0, 0, 0.5])
        depth = render_depth(sphere_scene, small_camera, pose)
        cy, cx = small_camera.height // 2, small_camera.width // 2
        assert depth[cy, cx] == pytest.approx(1.0, abs=0.01)


class TestRGBAndMaps:
    def test_rgb_shape_and_range(self, sphere_scene, small_camera):
        rgb = render_rgb(sphere_scene, small_camera, np.eye(4))
        assert rgb.shape == (48, 64, 3)
        assert rgb.min() >= 0.0 and rgb.max() <= 1.0

    def test_rgb_background_black(self, sphere_scene, small_camera):
        rgb = render_rgb(sphere_scene, small_camera, np.eye(4))
        assert np.all(rgb[0, 0] == 0.0)

    def test_rgb_sphere_red_dominant(self, sphere_scene, small_camera):
        rgb = render_rgb(sphere_scene, small_camera, np.eye(4))
        cy, cx = 24, 32
        assert rgb[cy, cx, 0] > rgb[cy, cx, 1]

    def test_vertex_normal_consistency(self, sphere_scene, small_camera):
        vmap, nmap = render_vertex_normal(sphere_scene, small_camera, np.eye(4))
        cy, cx = 24, 32
        v = vmap[cy, cx]
        n = nmap[cy, cx]
        # Vertex lies on the sphere; normal points from centre to vertex.
        center = np.array([0.0, 0.0, 2.0])
        assert np.linalg.norm(v - center) == pytest.approx(0.5, abs=0.02)
        expected_n = (v - center) / np.linalg.norm(v - center)
        assert np.allclose(n, expected_n, atol=0.05)


class TestRoomRendering:
    def test_living_room_mostly_valid(self, scene, camera):
        pose = se3.look_at((1.5, 1.2, 1.5), scene.center, up=(0, 1, 0))
        depth = render_depth(scene, camera, pose)
        assert (depth > 0).mean() > 0.8

    def test_depth_within_range(self, scene, camera):
        pose = se3.look_at((1.5, 1.2, 1.5), scene.center, up=(0, 1, 0))
        settings = RenderSettings()
        depth = render_depth(scene, camera, pose, settings)
        valid = depth[depth > 0]
        assert valid.min() >= settings.min_range
        assert valid.max() <= settings.max_range

    def test_rendered_points_lie_on_surface(self, scene, camera):
        pose = se3.look_at((1.5, 1.2, 1.5), scene.center, up=(0, 1, 0))
        depth = render_depth(scene, camera, pose)
        pts_cam = camera.backproject(depth).reshape(-1, 3)
        mask = depth.reshape(-1) > 0
        pts_world = se3.transform_points(pose, pts_cam[mask])
        d = np.abs(scene.distance(pts_world))
        assert np.median(d) < 0.01
        assert np.percentile(d, 90) < 0.05
