"""Property-based tests for SE(3)/SO(3) invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry import se3

finite = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
small_vec3 = arrays(np.float64, 3, elements=finite)
twist6 = arrays(np.float64, 6,
                elements=st.floats(min_value=-2.0, max_value=2.0,
                                   allow_nan=False))
points = arrays(np.float64, (7, 3), elements=finite)


@given(w=small_vec3)
@settings(max_examples=60, deadline=None)
def test_so3_exp_is_rotation(w):
    assert se3.is_rotation(se3.so3_exp(w), tol=1e-8)


@given(w=small_vec3)
@settings(max_examples=60, deadline=None)
def test_so3_exp_angle_equals_norm(w):
    theta = np.linalg.norm(w)
    if theta < np.pi:  # log is only unique below pi
        assert np.isclose(se3.rotation_angle(se3.so3_exp(w)),
                          theta, atol=1e-8)


@given(xi=twist6)
@settings(max_examples=60, deadline=None)
def test_se3_exp_is_pose_and_invertible(xi):
    T = se3.se3_exp(xi)
    assert se3.is_pose(T, tol=1e-8)
    assert np.allclose(se3.inverse(T) @ T, np.eye(4), atol=1e-9)


@given(xi=twist6, p=points)
@settings(max_examples=60, deadline=None)
def test_rigid_transform_preserves_distances(xi, p):
    T = se3.se3_exp(xi)
    q = se3.transform_points(T, p)
    d_before = np.linalg.norm(p[0] - p[1:], axis=-1)
    d_after = np.linalg.norm(q[0] - q[1:], axis=-1)
    assert np.allclose(d_before, d_after, atol=1e-9)


@given(xi1=twist6, xi2=twist6, p=points)
@settings(max_examples=60, deadline=None)
def test_composition_associates(xi1, xi2, p):
    A = se3.se3_exp(xi1)
    B = se3.se3_exp(xi2)
    left = se3.transform_points(A @ B, p)
    right = se3.transform_points(A, se3.transform_points(B, p))
    assert np.allclose(left, right, atol=1e-9)


@given(w=small_vec3)
@settings(max_examples=60, deadline=None)
def test_quaternion_round_trip(w):
    R = se3.so3_exp(w)
    q = se3.rotation_to_quat(R)
    assert np.isclose(np.linalg.norm(q), 1.0, atol=1e-12)
    assert np.allclose(se3.quat_to_rotation(q), R, atol=1e-9)


@given(xi=twist6, alpha=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_interpolation_stays_valid(xi, alpha):
    T = se3.se3_exp(xi)
    Ti = se3.interpolate_pose(np.eye(4), T, alpha)
    assert se3.is_pose(Ti, tol=1e-7)


# -- exp/log round trips ----------------------------------------------------
@given(w=small_vec3)
@settings(max_examples=60, deadline=None)
def test_so3_log_inverts_exp(w):
    theta = np.linalg.norm(w)
    if theta >= np.pi - 1e-3:  # log is multivalued at the cut
        return
    assert np.allclose(se3.so3_log(se3.so3_exp(w)), w, atol=1e-7)


@given(xi=twist6)
@settings(max_examples=60, deadline=None)
def test_se3_log_inverts_exp(xi):
    if np.linalg.norm(xi[3:]) >= np.pi - 1e-3:
        return
    assert np.allclose(se3.se3_log(se3.se3_exp(xi)), xi, atol=1e-6)


@given(w=small_vec3)
@settings(max_examples=60, deadline=None)
def test_so3_exp_log_rotation_round_trip(w):
    R = se3.so3_exp(w)
    assert np.allclose(se3.so3_exp(se3.so3_log(R)), R, atol=1e-8)


# -- group identities -------------------------------------------------------
@given(xi=twist6)
@settings(max_examples=60, deadline=None)
def test_compose_with_inverse_is_identity(xi):
    T = se3.se3_exp(xi)
    assert np.allclose(T @ se3.inverse(T), np.eye(4), atol=1e-9)
    assert np.allclose(se3.inverse(T) @ T, np.eye(4), atol=1e-9)


@given(xi=twist6)
@settings(max_examples=60, deadline=None)
def test_inverse_is_involution(xi):
    T = se3.se3_exp(xi)
    assert np.allclose(se3.inverse(se3.inverse(T)), T, atol=1e-10)


# -- orthonormality under random tangents -----------------------------------
@given(w=small_vec3)
@settings(max_examples=60, deadline=None)
def test_so3_exp_orthonormal_columns(w):
    R = se3.so3_exp(w)
    assert np.allclose(R.T @ R, np.eye(3), atol=1e-9)
    assert np.allclose(R @ R.T, np.eye(3), atol=1e-9)
    assert np.isclose(np.linalg.det(R), 1.0, atol=1e-9)
    assert np.allclose(np.linalg.norm(R, axis=0), 1.0, atol=1e-9)


@given(xi1=twist6, xi2=twist6)
@settings(max_examples=60, deadline=None)
def test_composition_rotation_stays_orthonormal(xi1, xi2):
    T = se3.se3_exp(xi1) @ se3.se3_exp(xi2)
    assert se3.is_pose(T, tol=1e-8)
    R = T[:3, :3]
    assert np.allclose(R.T @ R, np.eye(3), atol=1e-9)
