"""Tests for TSDF mesh extraction (marching tetrahedra)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.geometry import PinholeCamera, se3
from repro.kfusion import TSDFVolume
from repro.kfusion.integration import integrate
from repro.kfusion.mesh import TriangleMesh, extract_mesh, load_obj


def sphere_volume(resolution=48, radius=0.6, mu=0.3):
    v = TSDFVolume(resolution, 2.0)
    centers = v.voxel_centers_world()
    sdf = np.linalg.norm(centers - 1.0, axis=-1) - radius
    v.tsdf[:] = np.clip(sdf / mu, -1, 1).reshape(v.tsdf.shape)
    v.weight[:] = 1.0
    return v


class TestExtraction:
    def test_sphere_vertices_on_surface(self):
        mesh = extract_mesh(sphere_volume())
        assert mesh.n_triangles > 1000
        r = np.linalg.norm(mesh.vertices - 1.0, axis=-1)
        assert np.abs(r - 0.6).max() < 0.005

    def test_sphere_area(self):
        mesh = extract_mesh(sphere_volume())
        assert mesh.surface_area() == pytest.approx(4 * np.pi * 0.36,
                                                    rel=0.01)

    def test_resolution_improves_area(self):
        coarse = extract_mesh(sphere_volume(resolution=16, mu=0.5))
        fine = extract_mesh(sphere_volume(resolution=64, mu=0.2))
        target = 4 * np.pi * 0.36
        assert abs(fine.surface_area() - target) <= abs(
            coarse.surface_area() - target
        )

    def test_empty_volume_gives_empty_mesh(self):
        mesh = extract_mesh(TSDFVolume(16, 2.0))
        assert mesh.n_triangles == 0
        assert mesh.surface_area() == 0.0

    def test_unobserved_cells_not_meshed(self):
        v = sphere_volume(resolution=32)
        v.weight[:, :, : v.resolution // 2] = 0.0  # hide half the space
        full = extract_mesh(sphere_volume(resolution=32))
        half = extract_mesh(v)
        assert 0 < half.n_triangles < full.n_triangles

    def test_max_triangles_cap(self):
        mesh = extract_mesh(sphere_volume(), max_triangles=500)
        assert mesh.n_triangles <= 500

    def test_triangle_indices_valid(self):
        mesh = extract_mesh(sphere_volume(resolution=24, mu=0.4))
        assert mesh.triangles.min() >= 0
        assert mesh.triangles.max() < mesh.n_vertices

    def test_fused_frame_meshes_near_scene(self, scene):
        cam = PinholeCamera.kinect_like(80, 60)
        world_pose = se3.look_at((1.5, 1.2, 1.5), scene.center, up=(0, 1, 0))
        vol_pose = se3.make_pose(np.eye(3), [2.5, 2.5, 0.0])
        from repro.scene import render_depth

        depth = render_depth(scene, cam, world_pose)
        volume = TSDFVolume(96, 5.0)
        integrate(volume, depth, cam, vol_pose, mu=0.15)
        mesh = extract_mesh(volume)
        assert mesh.n_triangles > 500
        world_from_volume = world_pose @ se3.inverse(vol_pose)
        pts = se3.transform_points(world_from_volume,
                                   mesh.triangle_centroids())
        d = np.abs(scene.distance(pts))
        assert np.median(d) < 0.05


class TestMeshContainer:
    def test_validation(self):
        with pytest.raises(DatasetError):
            TriangleMesh(vertices=np.zeros((3,)), triangles=np.zeros((1, 3),
                                                                     int))
        with pytest.raises(DatasetError):
            TriangleMesh(vertices=np.zeros((2, 3)),
                         triangles=np.array([[0, 1, 2]]))

    def test_obj_round_trip(self, tmp_path):
        mesh = extract_mesh(sphere_volume(resolution=20, mu=0.5))
        path = str(tmp_path / "sphere.obj")
        mesh.save_obj(path, comment="test sphere")
        loaded = load_obj(path)
        assert loaded.n_vertices == mesh.n_vertices
        assert loaded.n_triangles == mesh.n_triangles
        assert np.allclose(loaded.vertices, mesh.vertices, atol=1e-5)
        assert loaded.surface_area() == pytest.approx(mesh.surface_area(),
                                                      rel=1e-4)

    def test_load_obj_errors(self, tmp_path):
        with pytest.raises(DatasetError):
            load_obj(str(tmp_path / "missing.obj"))
        bad = tmp_path / "bad.obj"
        bad.write_text("f 1 2 3 4\n")
        with pytest.raises(DatasetError):
            load_obj(str(bad))
