"""Unit tests for the pinhole camera model."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import PinholeCamera


class TestConstruction:
    def test_kinect_like_scales_with_resolution(self):
        a = PinholeCamera.kinect_like(640, 480)
        b = PinholeCamera.kinect_like(320, 240)
        assert b.fx == pytest.approx(a.fx / 2)
        assert b.fy == pytest.approx(a.fy / 2)

    def test_from_fov(self):
        cam = PinholeCamera.from_fov(100, 100, 90.0)
        assert cam.fx == pytest.approx(50.0)

    def test_from_fov_rejects_bad_angle(self):
        with pytest.raises(GeometryError):
            PinholeCamera.from_fov(100, 100, 0.0)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(GeometryError):
            PinholeCamera(0, 10, 1, 1, 0, 0)

    def test_rejects_nonpositive_focal(self):
        with pytest.raises(GeometryError):
            PinholeCamera(10, 10, -1, 1, 0, 0)

    def test_matrix(self, camera):
        K = camera.matrix
        assert K[0, 0] == camera.fx
        assert K[1, 2] == camera.cy
        assert K[2, 2] == 1.0


class TestScaling:
    def test_scaled_halves(self, camera):
        half = camera.scaled(2)
        assert half.width == camera.width // 2
        assert half.fx == pytest.approx(camera.fx / 2)

    def test_scaled_identity(self, camera):
        assert camera.scaled(1).shape == camera.shape

    def test_scaled_rejects_indivisible(self):
        cam = PinholeCamera.kinect_like(80, 60)
        with pytest.raises(GeometryError):
            cam.scaled(7)

    def test_scaled_rejects_zero(self, camera):
        with pytest.raises(GeometryError):
            camera.scaled(0)


class TestProjection:
    def test_backproject_project_round_trip(self, camera, rng):
        depth = rng.uniform(0.5, 4.0, size=camera.shape)
        vertices = camera.backproject(depth)
        pixels, valid = camera.project(vertices.reshape(-1, 3))
        assert valid.all()
        uu, vv = np.meshgrid(np.arange(camera.width), np.arange(camera.height))
        expected = np.stack([uu, vv], axis=-1).reshape(-1, 2)
        assert np.allclose(pixels, expected, atol=1e-9)

    def test_backproject_invalid_depth_gives_zero_vertex(self, camera):
        depth = np.zeros(camera.shape)
        depth[10, 10] = -1.0
        depth[5, 5] = np.nan
        v = camera.backproject(depth)
        assert np.all(v == 0.0)

    def test_backproject_shape_mismatch(self, camera):
        with pytest.raises(GeometryError):
            camera.backproject(np.zeros((10, 10)))

    def test_project_behind_camera_invalid(self, camera):
        pts = np.array([[0.0, 0.0, -1.0], [0.0, 0.0, 0.0]])
        _, valid = camera.project(pts)
        assert not valid.any()

    def test_project_out_of_frame_invalid(self, camera):
        # A point far off-axis lands outside the image.
        pts = np.array([[100.0, 0.0, 1.0]])
        _, valid = camera.project(pts)
        assert not valid.any()

    def test_center_pixel_ray(self, camera):
        rays = camera.pixel_rays()
        # The ray through the principal point is the optical axis.
        cy, cx = int(round(camera.cy)), int(round(camera.cx))
        assert abs(rays[cy, cx, 0]) < 0.02
        assert abs(rays[cy, cx, 1]) < 0.02
        assert rays[cy, cx, 2] == 1.0

    def test_pixel_count(self, camera):
        assert camera.pixel_count == camera.width * camera.height
