"""Unit tests for SE(3)/SO(3) utilities."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import se3


def random_pose(rng, trans_scale=2.0):
    w = rng.normal(size=3)
    t = rng.normal(size=3) * trans_scale
    return se3.make_pose(se3.so3_exp(w), t)


class TestRotations:
    def test_so3_exp_identity(self):
        assert np.allclose(se3.so3_exp([0, 0, 0]), np.eye(3))

    def test_so3_exp_quarter_turn_z(self):
        R = se3.so3_exp([0, 0, np.pi / 2])
        assert np.allclose(R @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_so3_round_trip(self, rng):
        for _ in range(20):
            w = rng.normal(size=3)
            w = w / np.linalg.norm(w) * rng.uniform(1e-4, np.pi - 1e-3)
            assert np.allclose(se3.so3_log(se3.so3_exp(w)), w, atol=1e-8)

    def test_so3_log_near_pi(self):
        w = np.array([0.0, 0.0, np.pi - 1e-9])
        R = se3.so3_exp(w)
        w_back = se3.so3_log(R)
        assert np.isclose(np.linalg.norm(w_back), np.pi, atol=1e-5)

    def test_is_rotation_accepts_valid(self, rng):
        assert se3.is_rotation(se3.so3_exp(rng.normal(size=3)))

    def test_is_rotation_rejects_reflection(self):
        R = np.diag([1.0, 1.0, -1.0])
        assert not se3.is_rotation(R)

    def test_orthonormalize_projects_back(self, rng):
        R = se3.so3_exp(rng.normal(size=3)) + rng.normal(size=(3, 3)) * 1e-4
        assert se3.is_rotation(se3.orthonormalize(R))

    def test_rotation_angle(self):
        R = se3.so3_exp([0.3, 0, 0])
        assert np.isclose(se3.rotation_angle(R), 0.3)


class TestPoses:
    def test_make_pose_shape(self):
        T = se3.make_pose(np.eye(3), [1, 2, 3])
        assert se3.is_pose(T)
        assert np.allclose(se3.translation(T), [1, 2, 3])

    def test_make_pose_rejects_bad_rotation_shape(self):
        with pytest.raises(GeometryError):
            se3.make_pose(np.eye(4), [0, 0, 0])

    def test_inverse(self, rng):
        T = random_pose(rng)
        assert np.allclose(T @ se3.inverse(T), np.eye(4), atol=1e-12)

    def test_transform_points_matches_homogeneous(self, rng):
        T = random_pose(rng)
        pts = rng.normal(size=(10, 3))
        hom = np.concatenate([pts, np.ones((10, 1))], axis=1)
        expected = (hom @ T.T)[:, :3]
        assert np.allclose(se3.transform_points(T, pts), expected)

    def test_rotate_vectors_ignores_translation(self, rng):
        T = random_pose(rng)
        v = rng.normal(size=(5, 3))
        assert np.allclose(se3.rotate_vectors(T, v), v @ T[:3, :3].T)

    def test_se3_exp_log_round_trip(self, rng):
        for _ in range(20):
            xi = rng.normal(size=6)
            assert np.allclose(se3.se3_log(se3.se3_exp(xi)), xi, atol=1e-8)

    def test_se3_exp_pure_translation(self):
        T = se3.se3_exp([1, 2, 3, 0, 0, 0])
        assert np.allclose(se3.translation(T), [1, 2, 3])
        assert np.allclose(se3.rotation(T), np.eye(3))

    def test_pose_distance(self, rng):
        T = random_pose(rng)
        dt, dr = se3.pose_distance(T, T)
        assert dt == pytest.approx(0.0, abs=1e-12)
        assert dr == pytest.approx(0.0, abs=1e-6)


class TestQuaternions:
    def test_round_trip(self, rng):
        for _ in range(20):
            R = se3.so3_exp(rng.normal(size=3))
            assert np.allclose(se3.quat_to_rotation(se3.rotation_to_quat(R)), R,
                               atol=1e-10)

    def test_canonical_sign(self, rng):
        R = se3.so3_exp(rng.normal(size=3))
        assert se3.rotation_to_quat(R)[0] >= 0

    def test_zero_quaternion_rejected(self):
        with pytest.raises(GeometryError):
            se3.quat_to_rotation([0, 0, 0, 0])

    def test_slerp_endpoints(self, rng):
        q0 = se3.rotation_to_quat(se3.so3_exp(rng.normal(size=3)))
        q1 = se3.rotation_to_quat(se3.so3_exp(rng.normal(size=3)))
        assert np.allclose(se3.quat_slerp(q0, q1, 0.0), q0, atol=1e-12)
        assert np.allclose(np.abs(se3.quat_slerp(q0, q1, 1.0)), np.abs(q1),
                           atol=1e-12)

    def test_slerp_halfway_angle(self):
        q0 = np.array([1.0, 0, 0, 0])
        q1 = se3.rotation_to_quat(se3.so3_exp([0, 0, np.pi / 2]))
        qh = se3.quat_slerp(q0, q1, 0.5)
        Rh = se3.quat_to_rotation(qh)
        assert np.isclose(se3.rotation_angle(Rh), np.pi / 4, atol=1e-10)


class TestInterpolationAndLookAt:
    def test_interpolate_pose_midpoint_translation(self, rng):
        T0 = random_pose(rng)
        T1 = random_pose(rng)
        Tm = se3.interpolate_pose(T0, T1, 0.5)
        expected = (se3.translation(T0) + se3.translation(T1)) / 2
        assert np.allclose(se3.translation(Tm), expected)
        assert se3.is_pose(Tm)

    def test_look_at_points_camera_at_target(self):
        T = se3.look_at([0, 0, -2], [0, 0, 1], up=(0, 1, 0))
        # Camera +z axis (third column) should point from eye to target.
        assert np.allclose(T[:3, 2], [0, 0, 1])
        assert np.allclose(T[:3, 3], [0, 0, -2])

    def test_look_at_rejects_coincident(self):
        with pytest.raises(GeometryError):
            se3.look_at([1, 1, 1], [1, 1, 1])

    def test_look_at_degenerate_up(self):
        # Forward parallel to up must still produce a valid pose.
        T = se3.look_at([0, 0, 0], [0, 1, 0], up=(0, 1, 0))
        assert se3.is_pose(T)
