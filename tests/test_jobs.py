"""Tests for the parallel evaluation engine (repro.jobs, S16)."""

import json
import os
import time as _time  # noqa — only used inside worker-process job bodies

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JobError, OptimizationError
from repro.hypermapper import (
    HyperMapper,
    SurrogateEvaluator,
    kfusion_design_space,
    random_exploration,
)
from repro.hypermapper.evaluator import Evaluation
from repro.jobs import (
    EvaluationStore,
    JobRunner,
    WorkerPool,
    canonical_config,
    config_hash,
    evaluate_batch,
    worker_id,
    worker_rng,
    worker_shared,
)
from repro.telemetry import Tracer, use_tracer


# -- module-level job bodies (must be picklable by name) ---------------------

def _square(x):
    return x * x


def _identify(x):
    return (worker_id(), x)


def _draw(_):
    return float(worker_rng().random())


def _use_shared(x):
    return worker_shared() + x


def _crash(_):
    os._exit(13)


def _crash_once(x):
    # Crashes the worker the first time any job runs (flag file absent),
    # then behaves; retries and the rest of the batch must succeed.
    flag = worker_shared()
    try:
        with open(flag, "x"):
            pass
    except FileExistsError:
        return x
    os._exit(7)


def _hang(_):
    _time.sleep(60)


def _raise_value_error(x):
    raise ValueError(f"bad payload {x}")


def _unpicklable_error(_):
    raise RuntimeError(lambda: None)  # noqa: TRY004 — unpicklable detail


# -- hashing -----------------------------------------------------------------

class TestConfigHash:
    def test_order_independent(self):
        a = {"x": 1, "y": 2.5, "z": "mali"}
        b = {"z": "mali", "y": 2.5, "x": 1}
        assert config_hash(a) == config_hash(b)

    def test_numpy_scalars_normalised(self):
        assert config_hash({"x": np.int64(3)}) == config_hash({"x": 3})
        assert config_hash({"x": np.float64(3.5)}) == config_hash({"x": 3.5})

    def test_integral_float_equals_int(self):
        # Design-space sampling yields 256.0 where the default dict says
        # 256; those are the same configuration.
        assert config_hash({"v": 256.0}) == config_hash({"v": 256})

    def test_bool_distinct_from_int(self):
        assert config_hash({"flag": True}) != config_hash({"flag": 1})

    def test_distinct_configs_distinct_hashes(self):
        assert config_hash({"x": 1}) != config_hash({"x": 2})
        assert config_hash({"x": 1}) != config_hash({"y": 1})

    def test_canonical_config_sorted(self):
        assert list(canonical_config({"b": 1, "a": 2})) == ["a", "b"]

    def test_unhashable_value_rejected(self):
        with pytest.raises(JobError):
            config_hash({"x": object()})


# -- Evaluation serialisation ------------------------------------------------

_EXTRAS = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(-100, 100), st.floats(allow_nan=False),
              st.text(max_size=8), st.booleans()),
    max_size=3,
)

_OBJECTIVE = st.one_of(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.just(float("inf")),
)


class TestEvaluationRoundTrip:
    @given(
        runtime_s=_OBJECTIVE,
        max_ate_m=_OBJECTIVE,
        power_w=_OBJECTIVE,
        fps=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        tracked_fraction=st.floats(min_value=0.0, max_value=1.0,
                                   allow_nan=False),
        failed=st.booleans(),
        extras=_EXTRAS,
        vres=st.sampled_from([64, 128, 256, 512]),
    )
    @settings(max_examples=60, deadline=None)
    def test_to_dict_from_dict_identity(self, runtime_s, max_ate_m, power_w,
                                        fps, tracked_fraction, failed,
                                        extras, vres):
        ev = Evaluation(
            configuration={"volume_resolution": vres, "mu": 0.1},
            runtime_s=runtime_s,
            max_ate_m=max_ate_m,
            power_w=power_w,
            fps=fps,
            tracked_fraction=tracked_fraction,
            failed=failed,
            extras=extras,
        )
        back = Evaluation.from_dict(ev.to_dict())
        assert back == ev

    @given(
        runtime_s=_OBJECTIVE,
        failed=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip(self, runtime_s, failed):
        # The store writes to_dict() through json; Infinity must survive.
        ev = Evaluation(configuration={"a": 1}, runtime_s=runtime_s,
                        max_ate_m=0.03, power_w=2.0, failed=failed)
        back = Evaluation.from_dict(json.loads(json.dumps(ev.to_dict())))
        assert back == ev

    def test_missing_field_rejected(self):
        data = Evaluation(configuration={}, runtime_s=1, max_ate_m=1,
                          power_w=1).to_dict()
        del data["power_w"]
        with pytest.raises(OptimizationError):
            Evaluation.from_dict(data)

    def test_unknown_field_rejected(self):
        data = Evaluation(configuration={}, runtime_s=1, max_ate_m=1,
                          power_w=1).to_dict()
        data["surprise"] = 1
        with pytest.raises(OptimizationError):
            Evaluation.from_dict(data)


# -- evaluation store --------------------------------------------------------

def _make_eval(i: int) -> Evaluation:
    return Evaluation(configuration={"volume_resolution": 64 * (i + 1)},
                      runtime_s=0.1 * (i + 1), max_ate_m=0.01, power_w=2.0)


class TestEvaluationStore:
    def test_put_get_round_trip(self, tmp_path):
        with EvaluationStore.open(tmp_path / "s.jsonl") as store:
            ev = _make_eval(0)
            store.put(ev)
            assert store.get(ev.configuration) == ev
            assert store.get({"volume_resolution": 999}) is None
            assert store.hits == 1 and store.misses == 1
            assert ev.configuration in store and len(store) == 1

    def test_reload_preserves_records(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with EvaluationStore.open(path) as store:
            for i in range(3):
                store.put(_make_eval(i))
        with EvaluationStore.open(path, resume=True) as store:
            assert len(store) == 3
            assert store.get(_make_eval(1).configuration) == _make_eval(1)

    def test_refuses_existing_without_resume(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with EvaluationStore.open(path) as store:
            store.put(_make_eval(0))
        with pytest.raises(JobError, match="--resume"):
            EvaluationStore.open(path, resume=False)

    def test_context_mismatch_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        EvaluationStore.open(path, context={"sequence": "lr_kt0"}).close()
        with pytest.raises(JobError, match="different evaluator context"):
            EvaluationStore.open(path, context={"sequence": "lr_kt1"})

    def test_matching_context_accepted(self, tmp_path):
        path = tmp_path / "s.jsonl"
        ctx = {"sequence": "lr_kt0", "seed": 0}
        with EvaluationStore.open(path, context=ctx) as store:
            store.put(_make_eval(0))
        with EvaluationStore.open(path, context=ctx, resume=True) as store:
            assert len(store) == 1

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with EvaluationStore.open(path) as store:
            store.put(_make_eval(0))
        with open(path, "a") as f:
            f.write('{"key": "abc", "evaluation": {"runt')  # killed mid-write
        with EvaluationStore.open(path, resume=True) as store:
            assert len(store) == 1
            assert store.corrupt_lines == 1

    def test_duplicate_key_last_wins(self, tmp_path):
        path = tmp_path / "s.jsonl"
        first = _make_eval(0)
        second = Evaluation(configuration=first.configuration,
                            runtime_s=9.9, max_ate_m=0.5, power_w=5.0)
        with EvaluationStore.open(path) as store:
            store.put(first)
            store.put(second)
        with EvaluationStore.open(path, resume=True) as store:
            assert store.get(first.configuration) == second

    def test_non_store_file_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"not": "a store"}\n')
        with pytest.raises(JobError, match="not an evaluation store"):
            EvaluationStore.open(path, resume=True)

    def test_counts_into_tracer(self, tmp_path):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with EvaluationStore.open(tmp_path / "s.jsonl") as store:
                store.put(_make_eval(0))
                store.get(_make_eval(0).configuration)
                store.get({"volume_resolution": 999})
        assert tracer.counters["dse.cache_hits"] == 1
        assert tracer.counters["dse.cache_misses"] == 1


# -- worker pool -------------------------------------------------------------

class TestWorkerPoolSerial:
    def test_workers_1_is_serial(self):
        with WorkerPool(workers=1) as pool:
            assert not pool.parallel
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_serial_exception_captured(self):
        with WorkerPool(workers=1) as pool:
            outcomes = pool.run(_raise_value_error, [1])
            assert not outcomes[0].ok
            assert "ValueError" in outcomes[0].error

    def test_serial_shared_and_identity(self):
        with WorkerPool(workers=1) as pool:
            assert pool.map(_use_shared, [1, 2], shared=10) == [11, 12]
            assert pool.map(_identify, ["a"]) == [(0, "a")]

    def test_invalid_arguments(self):
        with pytest.raises(JobError):
            WorkerPool(workers=0)
        with pytest.raises(JobError):
            WorkerPool(timeout_s=0)
        with pytest.raises(JobError):
            WorkerPool(max_retries=-1)

    def test_worker_accessors_outside_job(self):
        with pytest.raises(JobError):
            worker_rng()
        assert worker_shared() is None
        assert worker_id() is None


class TestWorkerPoolParallel:
    def test_map_ordered(self):
        with WorkerPool(workers=3) as pool:
            assert pool.parallel
            assert pool.map(_square, list(range(10))) == [
                x * x for x in range(10)
            ]

    def test_shared_broadcast(self):
        with WorkerPool(workers=2) as pool:
            assert pool.map(_use_shared, [1, 2, 3], shared=100) == [
                101, 102, 103
            ]

    def test_pool_reusable_across_batches(self):
        with WorkerPool(workers=2) as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
            assert pool.map(_use_shared, [1], shared=5) == [6]
            assert pool.map(_square, [3]) == [9]

    def test_distinct_rng_streams(self):
        with WorkerPool(workers=3) as pool:
            draws = pool.map(_draw, range(12))
        assert len(set(draws)) > 1  # not one shared stream

    def test_crash_retries_then_fails(self):
        with WorkerPool(workers=2, max_retries=1) as pool:
            outcomes = pool.run(_crash, [0])
            assert not outcomes[0].ok
            assert "crashed" in outcomes[0].error
            assert outcomes[0].attempts == 2  # initial + 1 retry

    def test_crash_then_recovery(self, tmp_path):
        flag = str(tmp_path / "crashed.flag")
        with WorkerPool(workers=2, max_retries=2) as pool:
            outcomes = pool.run(_crash_once, [1, 2, 3, 4], shared=flag)
            assert all(o.ok for o in outcomes)
            assert [o.value for o in outcomes] == [1, 2, 3, 4]

    def test_pool_survives_crash_for_later_batches(self):
        with WorkerPool(workers=2, max_retries=0) as pool:
            assert not pool.run(_crash, [0])[0].ok
            assert pool.map(_square, [5]) == [25]

    def test_timeout_enforced(self):
        with WorkerPool(workers=2, timeout_s=0.5, max_retries=0) as pool:
            outcomes = pool.run(_hang, [0])
            assert not outcomes[0].ok
            assert "timeout" in outcomes[0].error

    def test_fn_exception_no_retry(self):
        with WorkerPool(workers=2, max_retries=2) as pool:
            outcomes = pool.run(_raise_value_error, [7])
            assert not outcomes[0].ok
            assert "ValueError" in outcomes[0].error
            assert outcomes[0].attempts == 1  # deterministic: not retried

    def test_unpicklable_error_detail(self):
        with WorkerPool(workers=2) as pool:
            outcomes = pool.run(_unpicklable_error, [0])
            assert not outcomes[0].ok
            assert "RuntimeError" in outcomes[0].error

    def test_map_raises_on_failure(self):
        with WorkerPool(workers=2, max_retries=0) as pool:
            with pytest.raises(JobError, match="jobs failed"):
                pool.map(_crash, [0, 1])

    def test_spawn_start_method(self):
        with WorkerPool(workers=2, start_method="spawn") as pool:
            assert pool.map(_square, [2, 3]) == [4, 9]

    def test_unknown_start_method_rejected(self):
        with pytest.raises(JobError, match="unavailable"):
            WorkerPool(workers=2, start_method="wormhole")

    def test_telemetry_merged_from_workers(self):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            with WorkerPool(workers=2) as pool:
                pool.map(_square, [1, 2, 3, 4])
        job_spans = [s for s in tracer.spans if s.name == "jobs.job"]
        assert len(job_spans) == 4
        assert all("worker" in s.attrs for s in job_spans)
        assert any(s.name == "jobs.batch" for s in tracer.spans)

    def test_progress_callback(self):
        seen = []
        with WorkerPool(workers=2) as pool:
            pool.run(_square, [1, 2, 3],
                     progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (3, 3)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)


# -- runner + store + optimizer integration ---------------------------------

class TestJobRunner:
    def test_evaluate_matches_direct(self):
        ev = SurrogateEvaluator()
        space = kfusion_design_space()
        configs = space.sample_many(5, np.random.default_rng(0))
        direct = [SurrogateEvaluator().evaluate(c) for c in configs]
        with JobRunner(workers=2) as runner:
            pooled = runner.evaluate(ev, configs)
        assert [e.to_dict() for e in pooled] == [e.to_dict() for e in direct]

    def test_store_memoization(self, tmp_path):
        ev = SurrogateEvaluator()
        space = kfusion_design_space()
        configs = space.sample_many(6, np.random.default_rng(1))
        store = EvaluationStore.open(tmp_path / "s.jsonl",
                                     context=ev.fingerprint())
        with JobRunner(workers=2, store=store) as runner:
            first = runner.evaluate(ev, configs)
            assert store.hits == 0 and len(store) == 6
            second = runner.evaluate(ev, configs)
            assert store.hits == 6
        store.close()
        assert [e.to_dict() for e in first] == [e.to_dict() for e in second]

    def test_failed_jobs_become_failed_evaluations(self):
        with JobRunner(workers=2, max_retries=0) as runner:
            outcomes = runner.run(_crash, [0])
            assert not outcomes[0].ok

    def test_evaluate_batch_one_shot(self):
        space = kfusion_design_space()
        configs = space.sample_many(3, np.random.default_rng(2))
        results = evaluate_batch(SurrogateEvaluator(), configs, workers=2)
        assert len(results) == 3
        assert all(isinstance(r, Evaluation) for r in results)

    def test_evaluate_batch_rejects_bad_workers(self):
        with pytest.raises(JobError):
            evaluate_batch(SurrogateEvaluator(), [], workers=0)

    # -- configuration chunking (the fan-out overhead fix) ------------------
    def test_chunk_indices_even_partition(self):
        from repro.jobs.runner import _chunk_indices

        chunks = _chunk_indices(list(range(10)), 4)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [i for c in chunks for i in c] == list(range(10))
        assert _chunk_indices([7], 4) == [[7]]
        assert _chunk_indices(list(range(6)), 1) == [[i] for i in range(6)]

    def test_explicit_batch_size_matches_unbatched(self):
        ev = SurrogateEvaluator()
        space = kfusion_design_space()
        configs = space.sample_many(7, np.random.default_rng(4))
        direct = [SurrogateEvaluator().evaluate(c) for c in configs]
        with JobRunner(workers=2) as runner:
            for batch_size in (1, 3, 100):
                pooled = runner.evaluate(ev, configs, batch_size=batch_size)
                assert ([e.to_dict() for e in pooled]
                        == [e.to_dict() for e in direct]), batch_size

    def test_batch_size_validated(self):
        with JobRunner(workers=1) as runner:
            with pytest.raises(JobError):
                runner.evaluate(SurrogateEvaluator(), [{}], batch_size=0)

    def test_chunked_store_memoization(self, tmp_path):
        ev = SurrogateEvaluator()
        space = kfusion_design_space()
        configs = space.sample_many(6, np.random.default_rng(5))
        store = EvaluationStore.open(tmp_path / "chunked.jsonl",
                                     context=ev.fingerprint())
        with JobRunner(workers=2, store=store) as runner:
            runner.evaluate(ev, configs, batch_size=3)
            assert len(store) == 6
            runner.evaluate(ev, configs, batch_size=3)
            assert store.hits == 6
        store.close()

    def test_chunked_progress_reaches_total(self):
        seen = []
        ev = SurrogateEvaluator()
        space = kfusion_design_space()
        configs = space.sample_many(5, np.random.default_rng(6))
        with JobRunner(workers=2,
                       progress=lambda d, t: seen.append((d, t))) as runner:
            runner.evaluate(ev, configs, batch_size=2)
        assert seen[-1] == (5, 5)
        assert all(t == 5 and 0 <= d <= 5 for d, t in seen)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)


class TestGoldenDeterminism:
    """Satellite 3: worker count and resume must not change results."""

    SEED = 11

    def _explore(self, runner=None):
        return HyperMapper(
            kfusion_design_space(),
            SurrogateEvaluator(seed=self.SEED),
            n_initial=6,
            n_iterations=2,
            samples_per_iteration=3,
            candidate_pool=50,
            seed=self.SEED,
            runner=runner,
        ).run()

    def test_workers_1_vs_4_byte_identical(self):
        serial = self._explore()
        with JobRunner(workers=4) as runner:
            parallel = self._explore(runner)
        assert serial.objective_matrix().tobytes() == \
            parallel.objective_matrix().tobytes()
        assert serial.iteration_of == parallel.iteration_of

    def test_random_exploration_workers_identical(self):
        space = kfusion_design_space()
        serial = random_exploration(space, SurrogateEvaluator(), 8, seed=3)
        with JobRunner(workers=4) as runner:
            parallel = random_exploration(space, SurrogateEvaluator(), 8,
                                          seed=3, runner=runner)
        assert serial.objective_matrix().tobytes() == \
            parallel.objective_matrix().tobytes()

    def test_killed_and_resumed_run_converges(self, tmp_path):
        """A store pre-seeded with half the evaluations (as a killed run
        leaves behind) yields the same result, re-evaluating only the
        rest — verified through dse.cache_hits in the trace."""
        reference = self._explore()
        half = len(reference.evaluations) // 2

        ev = SurrogateEvaluator(seed=self.SEED)
        path = tmp_path / "killed.jsonl"
        with EvaluationStore.open(path, context=ev.fingerprint()) as store:
            for evaluation in reference.evaluations[:half]:
                store.put(evaluation)

        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            store = EvaluationStore.open(path, context=ev.fingerprint(),
                                         resume=True)
            with JobRunner(workers=2, store=store) as runner:
                resumed = self._explore(runner)
            store.close()

        assert resumed.objective_matrix().tobytes() == \
            reference.objective_matrix().tobytes()
        # Every pre-seeded evaluation was a store hit, not a re-run.
        assert tracer.counters["dse.cache_hits"] >= half
        assert store.hits >= half
