"""Tests for KinectFusion preprocessing kernels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import PinholeCamera
from repro.kfusion.preprocessing import (
    bilateral_filter,
    build_pyramid,
    downsample_depth,
    half_sample,
    vertex_normal_pyramid,
)


class TestDownsample:
    def test_ratio_one_is_copy(self):
        d = np.random.default_rng(0).uniform(1, 3, (8, 8))
        out = downsample_depth(d, 1)
        assert np.array_equal(out, d)
        assert out is not d

    def test_block_average(self):
        d = np.array([[1.0, 3.0], [5.0, 7.0]])
        assert downsample_depth(d, 2)[0, 0] == pytest.approx(4.0)

    def test_invalid_pixels_excluded(self):
        d = np.array([[2.0, 0.0], [0.0, 0.0]])
        assert downsample_depth(d, 2)[0, 0] == pytest.approx(2.0)

    def test_all_invalid_block_stays_invalid(self):
        d = np.zeros((4, 4))
        assert np.all(downsample_depth(d, 2) == 0.0)

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            downsample_depth(np.ones((5, 6)), 2)

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            downsample_depth(np.ones((4, 4)), 0)


class TestBilateralFilter:
    def test_smooths_noise_on_flat_region(self, rng):
        d = np.full((30, 30), 2.0) + rng.normal(0, 0.01, (30, 30))
        out = bilateral_filter(d)
        inner_in = d[5:-5, 5:-5]
        inner_out = out[5:-5, 5:-5]
        assert inner_out.std() < inner_in.std() * 0.7

    def test_preserves_edges(self):
        d = np.full((20, 20), 1.0)
        d[:, 10:] = 3.0
        out = bilateral_filter(d, sigma_depth=0.05)
        # The two sides keep their levels; the edge does not blur by more
        # than a tiny amount.
        assert abs(out[10, 5] - 1.0) < 0.01
        assert abs(out[10, 15] - 3.0) < 0.01

    def test_invalid_pixels_stay_invalid(self):
        d = np.full((10, 10), 2.0)
        d[5, 5] = 0.0
        out = bilateral_filter(d)
        assert out[5, 5] == 0.0

    def test_invalid_neighbours_ignored(self):
        d = np.full((10, 10), 2.0)
        d[4, 4] = 0.0
        out = bilateral_filter(d)
        assert out[4, 5] == pytest.approx(2.0)


class TestPyramid:
    def test_half_sample(self):
        d = np.full((8, 12), 2.0)
        h = half_sample(d)
        assert h.shape == (4, 6)
        assert np.allclose(h, 2.0)

    def test_half_sample_odd_rejected(self):
        with pytest.raises(ConfigurationError):
            half_sample(np.ones((7, 8)))

    def test_build_pyramid_levels(self):
        p = build_pyramid(np.ones((48, 64)), 3)
        assert [x.shape for x in p] == [(48, 64), (24, 32), (12, 16)]

    def test_build_pyramid_stops_at_odd(self):
        p = build_pyramid(np.ones((20, 30)), 3)
        # 20x30 -> 10x15, then 15 is odd: stop at two levels.
        assert len(p) == 2

    def test_build_pyramid_stops_at_small(self):
        p = build_pyramid(np.ones((8, 8)), 3)
        assert len(p) == 1  # halving an 8-pixel side would go below 8

    def test_zero_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            build_pyramid(np.ones((8, 8)), 0)


class TestVertexNormalPyramid:
    def test_shapes_and_cameras(self):
        cam = PinholeCamera.kinect_like(64, 48)
        pyramid = build_pyramid(np.full((48, 64), 2.0), 3)
        vs, ns, cams = vertex_normal_pyramid(pyramid, cam)
        assert [v.shape for v in vs] == [(48, 64, 3), (24, 32, 3), (12, 16, 3)]
        assert cams[1].width == 32
        assert cams[2].fx == pytest.approx(cam.fx / 4)

    def test_vertices_at_measured_depth(self):
        cam = PinholeCamera.kinect_like(64, 48)
        pyramid = build_pyramid(np.full((48, 64), 2.0), 1)
        vs, ns, _ = vertex_normal_pyramid(pyramid, cam)
        assert np.allclose(vs[0][..., 2], 2.0)

    def test_shape_mismatch_rejected(self):
        cam = PinholeCamera.kinect_like(64, 48)
        with pytest.raises(ConfigurationError):
            vertex_normal_pyramid([np.ones((24, 32))], cam)
