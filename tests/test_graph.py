"""Unit tests for the stage-graph runtime (``repro.graph``).

Covers the registry discipline, the compiler's structural validations
(each with its named-entity error message), compile-time arena planning
(the latent arena-sizing bug class: overflow must fail at *compile*
time, not when the first frame trips the workspace), effect-budget
checks against ARCHITECTURE.toml, failure semantics
(:class:`~repro.errors.StageExecutionError` naming the stage), and
stream taps (sampling cadence, span attributes, read-only samplers).
"""

import numpy as np
import pytest

from repro.analysis.policy import load_policy
from repro.errors import GraphError, PerfError, StageExecutionError
from repro.graph import (
    Edge,
    GraphSpec,
    Port,
    StageContext,
    StageSpec,
    TapSpec,
    WorkspaceRequest,
    compile_graph,
    create_graph,
    default_sampler,
    get_stage,
    graph_names,
    register_graph,
    register_stage,
    stage_names,
)
from repro.core.registry import register_defaults
from repro.kfusion.memory import stage_workspace_bytes, workspace_bytes
from repro.kfusion.params import KFusionParams
from repro.telemetry import Tracer, use_tracer

register_defaults()  # imports the kfusion + odometry graph definitions


def _spec(name, run=None, inputs=(), outputs=(), **kwargs):
    return StageSpec(
        name=name,
        run=run or (lambda ctx, inputs: {p.name: None for p in outputs}),
        inputs=inputs,
        outputs=outputs,
        **kwargs,
    )


@pytest.fixture
def scratch_registry(monkeypatch):
    """An isolated stage registry so tests can register freely."""
    monkeypatch.setattr("repro.graph.stage._STAGES", {})
    from repro.graph import stage as stage_mod
    return stage_mod


class TestPortAndStageSpec:
    def test_port_requires_name_and_contract(self):
        with pytest.raises(GraphError, match="name and a contract"):
            Port("", "depth.map")
        with pytest.raises(GraphError, match="name and a contract"):
            Port("depth", "")

    def test_duplicate_port_names_rejected(self):
        with pytest.raises(GraphError, match="duplicate output port"):
            _spec("s", outputs=(Port("a", "x"), Port("a", "y")))

    def test_unknown_effects_rejected(self):
        with pytest.raises(GraphError, match="unknown effects"):
            _spec("s", effects=frozenset({"teleport"}))

    def test_known_effects_accepted(self):
        spec = _spec("s", effects=frozenset({"alloc"}))
        assert spec.effects == frozenset({"alloc"})

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError, match="non-empty name"):
            _spec("")


class TestStageRegistry:
    def test_register_and_lookup(self, scratch_registry):
        spec = register_stage(_spec("toy.alpha"))
        assert get_stage("toy.alpha") is spec
        assert stage_names() == ["toy.alpha"]

    def test_duplicate_name_rejected(self, scratch_registry):
        register_stage(_spec("toy.alpha"))
        with pytest.raises(GraphError, match="already registered"):
            register_stage(_spec("toy.alpha"))

    def test_unknown_stage_lists_inventory(self, scratch_registry):
        register_stage(_spec("toy.alpha"))
        with pytest.raises(GraphError, match="toy.alpha"):
            get_stage("toy.beta")

    def test_production_stages_registered(self):
        # The real registry carries the kfusion + odometry stages.
        assert "kfusion.track" in stage_names()
        assert "odometry.track" in stage_names()


class TestGraphRegistry:
    def test_production_graphs_registered(self):
        assert {"kfusion", "icp_odometry"} <= set(graph_names())

    def test_unknown_graph_rejected(self):
        with pytest.raises(GraphError, match="unknown graph"):
            create_graph("teapot")

    def test_duplicate_graph_rejected(self):
        with pytest.raises(GraphError, match="already registered"):
            register_graph("kfusion", lambda: None)

    def test_factory_kwargs_forwarded(self):
        spec = create_graph("kfusion", publish_render=True)
        assert "render" in spec.node_names()


def _toy_graph(scratch_registry):
    """a -> b -> c diamond-free chain over an isolated registry."""
    register_stage(_spec("toy.a", outputs=(Port("out", "num"),),
                         run=lambda ctx, i: {"out": 1}))
    register_stage(_spec("toy.b", inputs=(Port("in", "num"),),
                         outputs=(Port("out", "num"),),
                         run=lambda ctx, i: {"out": i["in"] + 1}))
    register_stage(_spec("toy.c", inputs=(Port("in", "num"),),
                         outputs=(Port("out", "num"),),
                         run=lambda ctx, i: {"out": i["in"] * 2}))
    return GraphSpec(
        name="toy",
        nodes=(("a", "toy.a"), ("b", "toy.b"), ("c", "toy.c")),
        edges=(Edge("a", "out", "b", "in"), Edge("b", "out", "c", "in")),
    )


class TestCompilerValidation:
    def test_happy_path_runs(self, scratch_registry):
        instance = compile_graph(_toy_graph(scratch_registry))
        values = instance.run_frame(StageContext())
        assert values[("c", "out")] == 4
        assert instance.stage_names == ["a", "b", "c"]

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="no nodes"):
            compile_graph(GraphSpec(name="void", nodes=()))

    def test_duplicate_node_names_rejected(self, scratch_registry):
        _toy_graph(scratch_registry)
        spec = GraphSpec(name="dup",
                         nodes=(("a", "toy.a"), ("a", "toy.b")))
        with pytest.raises(GraphError, match="duplicate node names"):
            compile_graph(spec)

    def test_unregistered_stage_rejected(self):
        spec = GraphSpec(name="g", nodes=(("a", "no.such.stage"),))
        with pytest.raises(GraphError, match="unknown stage"):
            compile_graph(spec)

    def test_edge_to_unknown_node_rejected(self, scratch_registry):
        spec = _toy_graph(scratch_registry)
        bad = GraphSpec(name="g", nodes=spec.nodes,
                        edges=spec.edges + (Edge("c", "out", "ghost", "in"),))
        with pytest.raises(GraphError,
                           match=r"c\.out -> ghost\.in.*unknown "
                                 r"destination node 'ghost'"):
            compile_graph(bad)

    def test_edge_from_unknown_port_rejected(self, scratch_registry):
        spec = _toy_graph(scratch_registry)
        bad = GraphSpec(name="g", nodes=spec.nodes,
                        edges=(Edge("a", "bogus", "b", "in"),
                               spec.edges[1]))
        with pytest.raises(GraphError, match="no output port 'bogus'"):
            compile_graph(bad)

    def test_contract_mismatch_names_edge_and_contracts(
            self, scratch_registry):
        _toy_graph(scratch_registry)
        register_stage(_spec("toy.txt", inputs=(Port("in", "text"),),
                             outputs=(Port("out", "text"),)))
        bad = GraphSpec(
            name="g",
            nodes=(("a", "toy.a"), ("t", "toy.txt")),
            edges=(Edge("a", "out", "t", "in"),),
        )
        with pytest.raises(GraphError) as err:
            compile_graph(bad)
        msg = str(err.value)
        assert "a.out -> t.in" in msg
        assert "'num'" in msg and "'text'" in msg

    def test_double_fed_input_rejected(self, scratch_registry):
        spec = _toy_graph(scratch_registry)
        bad = GraphSpec(name="g", nodes=spec.nodes,
                        edges=spec.edges + (Edge("a", "out", "c", "in"),))
        with pytest.raises(GraphError, match="fed twice"):
            compile_graph(bad)

    def test_unfed_input_rejected(self, scratch_registry):
        spec = _toy_graph(scratch_registry)
        bad = GraphSpec(name="g", nodes=spec.nodes, edges=spec.edges[:1])
        with pytest.raises(GraphError, match=r"input c\.in .* not fed"):
            compile_graph(bad)

    def test_cycle_reported_with_named_edges(self, scratch_registry):
        _toy_graph(scratch_registry)
        cyc = GraphSpec(
            name="loop",
            nodes=(("b", "toy.b"), ("c", "toy.c")),
            edges=(Edge("b", "out", "c", "in"), Edge("c", "out", "b", "in")),
        )
        with pytest.raises(GraphError) as err:
            compile_graph(cyc)
        msg = str(err.value)
        assert "cycle" in msg
        assert "b.out -> c.in" in msg and "c.out -> b.in" in msg

    def test_tap_on_unknown_node_rejected(self, scratch_registry):
        spec = _toy_graph(scratch_registry).with_tap("ghost", "out")
        with pytest.raises(GraphError, match="unknown node 'ghost'"):
            compile_graph(spec)

    def test_tap_on_unknown_port_rejected(self, scratch_registry):
        spec = _toy_graph(scratch_registry).with_tap("a", "bogus")
        with pytest.raises(GraphError, match="no output port 'bogus'"):
            compile_graph(spec)

    def test_tap_every_must_be_positive(self, scratch_registry):
        spec = _toy_graph(scratch_registry).with_tap("a", "out", every=0)
        with pytest.raises(GraphError, match="every=0"):
            compile_graph(spec)


class TestWorkspacePlanning:
    """The arena-sizing bug class: overflow fails at compile time."""

    REQUEST = WorkspaceRequest(params=None, camera=None)

    def _sized_graph(self, scratch_registry, need_a, need_b):
        register_stage(_spec("toy.a", outputs=(Port("out", "num"),),
                             workspace_need=lambda req: need_a))
        register_stage(_spec("toy.b", inputs=(Port("in", "num"),),
                             workspace_need=lambda req: need_b))
        return GraphSpec(name="sized",
                         nodes=(("a", "toy.a"), ("b", "toy.b")),
                         edges=(Edge("a", "out", "b", "in"),))

    def test_within_budget_produces_plan(self, scratch_registry):
        spec = self._sized_graph(scratch_registry, 600, 400)
        instance = compile_graph(spec, workspace_request=self.REQUEST,
                                 arena_budget=1000)
        plan = instance.workspace_plan
        assert plan.total_bytes == 1000
        assert plan.needs == (("a", 600), ("b", 400))
        assert "a=600" in plan.breakdown()

    def test_overflow_raises_perferror_at_compile_time(
            self, scratch_registry):
        spec = self._sized_graph(scratch_registry, 600, 401)
        with pytest.raises(PerfError) as err:
            compile_graph(spec, workspace_request=self.REQUEST,
                          arena_budget=1000)
        msg = str(err.value)
        assert "1001 bytes" in msg and "1000-byte" in msg
        assert "a=600" in msg and "b=401" in msg

    def test_no_budget_no_plan(self, scratch_registry):
        spec = self._sized_graph(scratch_registry, 600, 400)
        assert compile_graph(spec).workspace_plan is None

    @pytest.mark.parametrize("ratio", [1, 2, 4, 8])
    @pytest.mark.parametrize("shape", [(320, 240), (80, 60), (100, 77)])
    def test_stage_split_sums_to_arena_budget(self, ratio, shape):
        """stage_workspace_bytes is an exact partition of workspace_bytes
        — the graph plan and the run's arena budget are one formula."""
        params = KFusionParams(volume_resolution=64,
                               compute_size_ratio=ratio)
        width, height = shape
        split = stage_workspace_bytes(params, width, height)
        assert sum(split.values()) == workspace_bytes(params, width, height)
        assert set(split) == {"preprocess", "track", "integrate", "raycast"}

    def test_kfusion_graph_plan_matches_run_budget(self):
        """Compiling the real kfusion graph against the real arena budget
        succeeds with the plan exactly filling the budget."""
        from repro.geometry import PinholeCamera

        params = KFusionParams(volume_resolution=64)
        camera = PinholeCamera.kinect_like(80, 60)
        budget = workspace_bytes(params, 80, 60)
        instance = compile_graph(
            create_graph("kfusion"),
            workspace_request=WorkspaceRequest(params=params, camera=camera),
            arena_budget=budget,
        )
        assert instance.workspace_plan.total_bytes == budget


class TestDeterministicSchedule:
    def test_lexicographic_tiebreak(self, scratch_registry):
        register_stage(_spec("toy.src", outputs=(Port("out", "num"),)))
        register_stage(_spec("toy.sink", inputs=(Port("in", "num"),)))
        spec = GraphSpec(
            name="fanout",
            nodes=(("m", "toy.src"), ("z", "toy.sink"), ("a", "toy.sink"),
                   ("k", "toy.sink")),
            edges=(Edge("m", "out", "z", "in"), Edge("m", "out", "a", "in"),
                   Edge("m", "out", "k", "in")),
        )
        assert compile_graph(spec).stage_names == ["m", "a", "k", "z"]

    def test_kfusion_schedule_matches_legacy_order(self):
        instance = compile_graph(create_graph("kfusion",
                                              publish_render=True))
        assert instance.stage_names == [
            "preprocess", "track", "integrate", "raycast", "render",
        ]


class TestEffectBudgets:
    def _effectful_stage(self, scratch_registry, effects, module):
        def run(ctx, inputs):
            return {}
        run.__module__ = module
        register_stage(StageSpec(name="toy.fx", run=run,
                                 effects=frozenset(effects)))
        return GraphSpec(name="fx", nodes=(("fx", "toy.fx"),))

    def test_forbidden_effect_rejected(self, scratch_registry):
        # repro.kfusion.* sits in the kernels layer, which forbids io.
        spec = self._effectful_stage(scratch_registry, {"io"},
                                     "repro.kfusion.graphdef")
        with pytest.raises(GraphError, match="forbidden in layer"):
            compile_graph(spec, policy=load_policy("ARCHITECTURE.toml"))

    def test_allowed_effect_accepted(self, scratch_registry):
        spec = self._effectful_stage(scratch_registry, {"alloc"},
                                     "repro.kfusion.graphdef")
        compile_graph(spec, policy=load_policy("ARCHITECTURE.toml"))

    def test_no_policy_no_check(self, scratch_registry):
        spec = self._effectful_stage(scratch_registry, {"io"},
                                     "repro.kfusion.graphdef")
        compile_graph(spec)  # effects only validated when a policy is given

    def test_production_graphs_pass_policy(self):
        policy = load_policy("ARCHITECTURE.toml")
        for name in ("kfusion", "icp_odometry"):
            compile_graph(create_graph(name), policy=policy)


class TestFailureSemantics:
    def _raising_graph(self, scratch_registry, exc):
        def boom(ctx, inputs):
            raise exc
        register_stage(_spec("toy.a", outputs=(Port("out", "num"),),
                             run=lambda ctx, i: {"out": 1}))
        register_stage(_spec("toy.boom", inputs=(Port("in", "num"),),
                             run=boom))
        return GraphSpec(name="boomy",
                         nodes=(("a", "toy.a"), ("boom", "toy.boom")),
                         edges=(Edge("a", "out", "boom", "in"),))

    def test_stage_exception_wrapped_and_named(self, scratch_registry):
        spec = self._raising_graph(scratch_registry,
                                   ValueError("bad voxel"))
        instance = compile_graph(spec)

        class FakeFrame:
            index = 7

        with pytest.raises(StageExecutionError) as err:
            instance.run_frame(StageContext(frame=FakeFrame()))
        assert err.value.stage == "boom"
        assert err.value.frame_index == 7
        assert "bad voxel" in str(err.value)
        assert "'boom'" in str(err.value)
        assert isinstance(err.value.__cause__, ValueError)

    def test_stage_execution_error_not_double_wrapped(
            self, scratch_registry):
        inner = StageExecutionError("already named", stage="inner")
        spec = self._raising_graph(scratch_registry, inner)
        instance = compile_graph(spec)
        with pytest.raises(StageExecutionError) as err:
            instance.run_frame(StageContext())
        assert err.value is inner  # re-raised, not wrapped again

    def test_missing_declared_output_detected(self, scratch_registry):
        register_stage(_spec("toy.hollow",
                             outputs=(Port("out", "num"),),
                             run=lambda ctx, i: {}))
        instance = compile_graph(
            GraphSpec(name="g", nodes=(("h", "toy.hollow"),)))
        with pytest.raises(StageExecutionError,
                           match=r"did not produce .*\['out'\]"):
            instance.run_frame(StageContext())
        try:
            instance.run_frame(StageContext())
        except StageExecutionError as exc:
            assert exc.stage == "h"

    def test_graph_error_hierarchy(self):
        from repro.errors import ReproError
        assert issubclass(GraphError, ReproError)
        assert issubclass(StageExecutionError, GraphError)


class _FakeIndexedFrame:
    def __init__(self, index):
        self.index = index


class TestStreamTaps:
    def _tapped_instance(self, scratch_registry, **tap_kwargs):
        register_stage(_spec(
            "toy.emit", outputs=(Port("out", "arr"),),
            run=lambda ctx, i: {"out": np.arange(6, dtype=np.float32)},
        ))
        spec = GraphSpec(name="tapped", nodes=(("emit", "toy.emit"),))
        return compile_graph(spec.with_tap("emit", "out", **tap_kwargs))

    def test_tap_emits_named_span_with_attrs(self, scratch_registry):
        instance = self._tapped_instance(scratch_registry)
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            instance.run_frame(StageContext(frame=_FakeIndexedFrame(3)))
        taps = [s for s in tracer.spans if s.name == "tap.emit.out"]
        assert len(taps) == 1
        attrs = taps[0].attrs
        assert attrs["frame"] == 3
        assert attrs["node"] == "emit" and attrs["port"] == "out"
        assert attrs["shape"] == "6" and attrs["dtype"] == "float32"

    def test_tap_sampling_cadence(self, scratch_registry):
        instance = self._tapped_instance(scratch_registry, every=3)
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            for idx in range(7):
                instance.run_frame(
                    StageContext(frame=_FakeIndexedFrame(idx)))
        frames = [s.attrs["frame"] for s in tracer.spans
                  if s.name == "tap.emit.out"]
        assert frames == [0, 3, 6]

    def test_tap_noop_without_tracer(self, scratch_registry):
        """With tracing disabled the tap must not even sample."""
        calls = []

        def sampler(value):
            calls.append(value)
            return {}

        instance = self._tapped_instance(scratch_registry, sampler=sampler)
        instance.run_frame(StageContext(frame=_FakeIndexedFrame(0)))
        assert calls == []

    def test_custom_sampler_and_name(self, scratch_registry):
        instance = self._tapped_instance(
            scratch_registry, name="probe",
            sampler=lambda v: {"mean": float(v.mean())})
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            instance.run_frame(StageContext(frame=_FakeIndexedFrame(0)))
        span = next(s for s in tracer.spans if s.name == "probe")
        assert span.attrs["mean"] == pytest.approx(2.5)


class TestDefaultSampler:
    def test_array_summary(self):
        arr = np.array([[1.0, np.nan], [3.0, 4.0]], dtype=np.float64)
        out = default_sampler(arr)
        assert out["kind"] == "ndarray" and out["shape"] == "2x2"
        assert out["finite_fraction"] == pytest.approx(0.75)
        assert out["min"] == pytest.approx(1.0)
        assert out["max"] == pytest.approx(4.0)

    def test_pyramid_summary(self):
        pyr = [np.zeros((4, 4)), np.zeros((2, 2))]
        out = default_sampler(pyr)
        assert out["kind"] == "pyramid" and out["levels"] == 2

    def test_scalars_pass_through(self):
        assert default_sampler(True) == {"kind": "bool", "value": 1.0}
        assert default_sampler(3) == {"kind": "int", "value": 3.0}

    def test_opaque_object_reports_type(self):
        class Widget:
            pass
        assert default_sampler(Widget()) == {"kind": "Widget"}

    def test_sampler_output_is_json_safe(self):
        import json
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        json.dumps(default_sampler(arr))
