"""Tests for decision-tree rule extraction."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import DecisionTreeClassifier, extract_rules, format_rules
from repro.ml.rules import Condition, Rule


class TestConditions:
    def test_holds(self):
        c = Condition("x", "<=", 5.0)
        assert c.holds(5.0)
        assert not c.holds(5.1)
        g = Condition("x", ">", 5.0)
        assert g.holds(5.1)

    def test_str(self):
        assert str(Condition("volume_resolution", "<=", 96.0)) == (
            "volume_resolution <= 96"
        )


class TestExtraction:
    def _tree(self, rng, boundary=0.5):
        X = rng.uniform(size=(500, 3))
        y = ((X[:, 0] <= boundary) & (X[:, 2] > 0.3)).astype(int)
        return DecisionTreeClassifier(max_depth=3).fit(X, y), X, y

    def test_rules_describe_positive_region(self, rng):
        tree, X, y = self._tree(rng)
        rules = extract_rules(tree, ["a", "b", "c"])
        assert rules
        # Every rule must actually select positive-majority samples.
        for rule in rules:
            mask = np.array(
                [rule.matches({"a": x[0], "b": x[1], "c": x[2]}) for x in X]
            )
            assert mask.any()
            assert y[mask].mean() > 0.5

    def test_rules_sorted_by_support(self, rng):
        tree, _, _ = self._tree(rng)
        rules = extract_rules(tree, ["a", "b", "c"])
        supports = [r.support for r in rules]
        assert supports == sorted(supports, reverse=True)

    def test_min_support_filters(self, rng):
        tree, _, _ = self._tree(rng)
        all_rules = extract_rules(tree, ["a", "b", "c"], min_support=1)
        big_rules = extract_rules(tree, ["a", "b", "c"], min_support=100)
        assert len(big_rules) <= len(all_rules)

    def test_interval_simplification(self, rng):
        # Deep tree revisits the same feature; the rule must merge bounds.
        X = rng.uniform(size=(600, 1))
        y = ((X[:, 0] > 0.4) & (X[:, 0] <= 0.6)).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        rules = extract_rules(tree, ["x"])
        assert rules
        for rule in rules:
            feats = [c.feature for c in rule.conditions]
            # At most one "<=" and one ">" per feature after simplification.
            assert feats.count("x") <= 2

    def test_feature_name_count_checked(self, rng):
        tree, _, _ = self._tree(rng)
        with pytest.raises(ModelError):
            extract_rules(tree, ["a", "b"])

    def test_unfitted_rejected(self):
        with pytest.raises(ModelError):
            extract_rules(DecisionTreeClassifier(), ["a"])

    def test_format_rules(self, rng):
        tree, _, _ = self._tree(rng)
        text = format_rules(extract_rules(tree, ["a", "b", "c"]), "accurate:")
        assert "accurate:" in text
        assert "IF" in text

    def test_format_empty(self):
        assert "(no rules)" in format_rules([])

    def test_always_rule(self):
        r = Rule(conditions=(), support=10, confidence=1.0)
        assert str(r) == "(always)"
        assert r.matches({"anything": 1.0})
