"""Calibration: the surrogate's accuracy surface vs the measured pipeline.

DESIGN.md's substitution contract: the surrogate may replace the measured
evaluator at paper scale *because* it preserves orderings.  These tests run
a handful of configurations through both paths and assert rank agreement
on the directions the DSE exploits.
"""

import numpy as np
import pytest

from repro.datasets import icl_nuim
from repro.hypermapper import (
    MeasuredEvaluator,
    SurrogateEvaluator,
    kfusion_design_space,
)
from repro.ml import spearman_rank_correlation
from repro.platforms import PlatformConfig

#: Configurations spanning the quality axis (fine -> coarse).
LADDER = [
    {"volume_resolution": 192, "compute_size_ratio": 1, "integration_rate": 1},
    {"volume_resolution": 128, "compute_size_ratio": 1, "integration_rate": 1},
    {"volume_resolution": 96, "compute_size_ratio": 1, "integration_rate": 2},
    {"volume_resolution": 64, "compute_size_ratio": 1, "integration_rate": 2},
    {"volume_resolution": 48, "compute_size_ratio": 2, "integration_rate": 4},
]


@pytest.fixture(scope="module")
def both_paths(odroid):
    sequence = icl_nuim.load("lr_kt0", n_frames=8, width=80, height=60,
                             seed=0)
    measured = MeasuredEvaluator(sequence, odroid,
                                 PlatformConfig(backend="opencl"))
    surrogate = SurrogateEvaluator(device=odroid, width=80, height=60,
                                   n_frames=8)
    base = kfusion_design_space().default_configuration()
    base["volume_size"] = 5.0
    measured_evals, surrogate_evals = [], []
    for overrides in LADDER:
        cfg = dict(base, **overrides)
        measured_evals.append(measured.evaluate(cfg))
        surrogate_evals.append(surrogate.evaluate(cfg))
    return measured_evals, surrogate_evals


class TestCalibration:
    def test_runtime_rank_agreement(self, both_paths):
        measured, surrogate = both_paths
        rho = spearman_rank_correlation(
            np.array([e.runtime_s for e in measured]),
            np.array([e.runtime_s for e in surrogate]),
        )
        assert rho > 0.9

    def test_runtime_close_in_magnitude(self, both_paths):
        """Runtime uses the same cost model on both paths — it should be
        nearly identical, not merely rank-correlated."""
        measured, surrogate = both_paths
        for m, s in zip(measured, surrogate):
            assert s.runtime_s == pytest.approx(m.runtime_s, rel=0.35)

    def test_accuracy_rank_agreement(self, both_paths):
        measured, surrogate = both_paths
        rho = spearman_rank_correlation(
            np.array([e.max_ate_m for e in measured]),
            np.array([e.max_ate_m for e in surrogate]),
        )
        assert rho > 0.5

    def test_quality_ladder_direction(self, both_paths):
        """Both paths agree the finest configuration beats the coarsest."""
        measured, surrogate = both_paths
        assert measured[0].max_ate_m < measured[-1].max_ate_m
        assert surrogate[0].max_ate_m < surrogate[-1].max_ate_m

    def test_power_rank_agreement(self, both_paths):
        measured, surrogate = both_paths
        rho = spearman_rank_correlation(
            np.array([e.power_w for e in measured]),
            np.array([e.power_w for e in surrogate]),
        )
        assert rho > 0.5
