"""Tests for the TSDF volume."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kfusion import TSDFVolume


class TestConstruction:
    def test_initial_state(self):
        v = TSDFVolume(16, 2.0)
        assert np.all(v.tsdf == 1.0)
        assert np.all(v.weight == 0.0)
        assert v.voxel_size == pytest.approx(0.125)

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            TSDFVolume(2, 1.0)
        with pytest.raises(ConfigurationError):
            TSDFVolume(16, 0.0)

    def test_reset(self):
        v = TSDFVolume(8, 1.0)
        v.tsdf[:] = 0.0
        v.weight[:] = 5.0
        v.reset()
        assert np.all(v.tsdf == 1.0)
        assert np.all(v.weight == 0.0)


class TestCoordinates:
    def test_voxel_centers(self):
        v = TSDFVolume(4, 4.0)
        centers = v.voxel_centers_world()
        assert centers.shape == (64, 3)
        assert np.allclose(centers[0], [0.5, 0.5, 0.5])
        assert np.allclose(centers[-1], [3.5, 3.5, 3.5])

    def test_world_to_voxel_inverse_of_centers(self):
        v = TSDFVolume(8, 2.0)
        centers = v.voxel_centers_world()
        coords = v.world_to_voxel(centers)
        assert np.allclose(coords[0], [0, 0, 0])
        assert np.allclose(coords[-1], [7, 7, 7])

    def test_contains(self):
        v = TSDFVolume(8, 2.0)
        pts = np.array([[1.0, 1.0, 1.0], [-0.1, 1.0, 1.0], [1.0, 2.1, 1.0]])
        assert list(v.contains(pts)) == [True, False, False]


class TestSampling:
    def _observed_volume(self):
        """A volume holding the plane z = 1.0 as a linear TSDF field."""
        v = TSDFVolume(16, 2.0)
        centers = v.voxel_centers_world()
        sdf = (1.0 - centers[:, 2]).reshape(v.tsdf.shape)
        v.tsdf[:] = np.clip(sdf / 0.5, -1, 1)
        v.weight[:] = 1.0
        return v

    def test_trilinear_on_plane_field(self):
        v = self._observed_volume()
        pts = np.array([[1.0, 1.0, 0.75], [1.0, 1.0, 1.25]])
        vals, valid = v.sample_trilinear(pts)
        assert valid.all()
        assert vals[0] == pytest.approx(0.5, abs=1e-6)
        assert vals[1] == pytest.approx(-0.5, abs=1e-6)

    def test_outside_invalid(self):
        v = self._observed_volume()
        vals, valid = v.sample_trilinear(np.array([[5.0, 1.0, 1.0]]))
        assert not valid.any()
        assert vals[0] == 1.0

    def test_unobserved_invalid(self):
        v = TSDFVolume(16, 2.0)
        _, valid = v.sample_trilinear(np.array([[1.0, 1.0, 1.0]]))
        assert not valid.any()

    def test_gradient_points_along_z(self):
        v = self._observed_volume()
        g = v.gradient(np.array([[1.0, 1.0, 1.0]]))
        g = g / np.linalg.norm(g)
        assert np.allclose(g, [[0, 0, -1]], atol=1e-6)

    def test_occupied_fraction(self):
        v = TSDFVolume(8, 1.0)
        assert v.occupied_fraction() == 0.0
        v.weight[0, 0, 0] = 1.0
        assert v.occupied_fraction() == pytest.approx(1 / 512)

    def test_extract_surface_points_on_plane(self):
        v = self._observed_volume()
        pts = v.extract_surface_points(threshold=0.2)
        assert len(pts) > 0
        assert np.all(np.abs(pts[:, 2] - 1.0) < 0.2)
