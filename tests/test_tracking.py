"""Tests for the multi-scale point-to-plane ICP tracker."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.geometry import PinholeCamera, se3
from repro.kfusion import TSDFVolume
from repro.kfusion.integration import integrate
from repro.kfusion.preprocessing import build_pyramid, vertex_normal_pyramid
from repro.kfusion.raycast import raycast
from repro.kfusion.tracking import ReferenceModel, track
from repro.scene import render_depth


@pytest.fixture(scope="module")
def setup(scene):
    """A reference model from pose A and a frame rendered from pose B."""
    cam = PinholeCamera.kinect_like(80, 60)
    pose_world_a = se3.look_at((1.5, 1.2, 1.5), scene.center, up=(0, 1, 0))
    # Volume frame anchored at pose A = volume initial pose.
    vol_pose_a = se3.make_pose(np.eye(3), [2.5, 2.5, 0.0])

    depth_a = render_depth(scene, cam, pose_world_a)
    volume = TSDFVolume(128, 5.0)
    integrate(volume, depth_a, cam, vol_pose_a, mu=0.1)
    rv, rn = raycast(volume, cam, vol_pose_a, mu=0.1)

    flat_v = rv.reshape(-1, 3)
    flat_n = rn.reshape(-1, 3)
    ok = np.any(flat_n != 0.0, axis=-1)
    v_vol = np.zeros_like(flat_v)
    n_vol = np.zeros_like(flat_n)
    v_vol[ok] = se3.transform_points(vol_pose_a, flat_v[ok])
    n_vol[ok] = flat_n[ok] @ vol_pose_a[:3, :3].T
    reference = ReferenceModel(
        vertices=v_vol.reshape(rv.shape),
        normals=n_vol.reshape(rn.shape),
        camera=cam,
        pose_volume_from_camera=vol_pose_a,
    )

    def frame_pyramids(delta_world):
        pose_world_b = pose_world_a @ delta_world
        depth_b = render_depth(scene, cam, pose_world_b)
        pyr = build_pyramid(depth_b, 3)
        return vertex_normal_pyramid(pyr, cam)[:2]

    return cam, reference, vol_pose_a, frame_pyramids


class TestTrack:
    def test_identity_motion(self, setup):
        cam, ref, vol_pose_a, frame_pyramids = setup
        vs, ns = frame_pyramids(np.eye(4))
        res = track(vs, ns, ref, vol_pose_a, (5, 3, 2), 1e-8)
        assert res.tracked
        dt, dr = se3.pose_distance(res.pose, vol_pose_a)
        assert dt < 0.005
        assert dr < 0.005

    @pytest.mark.parametrize("delta", [
        se3.se3_exp([0.01, 0, 0, 0, 0, 0]),
        se3.se3_exp([0, 0.008, -0.008, 0, 0, 0]),
        se3.se3_exp([0, 0, 0, 0.01, 0, 0]),
        se3.se3_exp([0.005, 0.005, 0, 0, 0.01, 0]),
    ])
    def test_recovers_small_motion(self, setup, delta):
        cam, ref, vol_pose_a, frame_pyramids = setup
        vs, ns = frame_pyramids(delta)
        res = track(vs, ns, ref, vol_pose_a, (10, 5, 4), 1e-8)
        assert res.tracked
        expected = vol_pose_a @ delta
        dt, dr = se3.pose_distance(res.pose, expected)
        assert dt < 0.01
        assert dr < 0.01

    def test_early_exit_with_loose_threshold(self, setup):
        cam, ref, vol_pose_a, frame_pyramids = setup
        vs, ns = frame_pyramids(np.eye(4))
        res = track(vs, ns, ref, vol_pose_a, (10, 10, 10), 1e-1)
        # A huge threshold exits after the first iteration per level.
        assert res.iterations <= 3

    def test_zero_iteration_levels_skipped(self, setup):
        cam, ref, vol_pose_a, frame_pyramids = setup
        vs, ns = frame_pyramids(np.eye(4))
        res = track(vs, ns, ref, vol_pose_a, (0, 0, 4), 1e-8)
        assert res.iterations_per_level[0] == 0
        assert res.iterations_per_level[1] == 0
        assert res.iterations_per_level[2] > 0

    def test_mismatched_iterations_rejected(self, setup):
        cam, ref, vol_pose_a, frame_pyramids = setup
        vs, ns = frame_pyramids(np.eye(4))
        with pytest.raises(TrackingError):
            track(vs, ns, ref, vol_pose_a, (10, 5), 1e-8)

    def test_empty_frame_is_untracked(self, setup, camera):
        cam, ref, vol_pose_a, _ = setup
        zeros = [np.zeros((60, 80, 3)), np.zeros((30, 40, 3)),
                 np.zeros((15, 20, 3))]
        res = track(zeros, zeros, ref, vol_pose_a, (5, 3, 2), 1e-8)
        assert not res.tracked

    def test_large_motion_fails_or_is_flagged(self, setup):
        cam, ref, vol_pose_a, frame_pyramids = setup
        big = se3.se3_exp([0.6, 0.0, 0.0, 0.0, 0.5, 0.0])
        vs, ns = frame_pyramids(big)
        res = track(vs, ns, ref, vol_pose_a, (4, 2, 2), 1e-8)
        expected = vol_pose_a @ big
        dt, _ = se3.pose_distance(res.pose, expected)
        # Either the tracker reports failure, or it somehow converged to
        # the right pose; a silent wrong pose is the only failure mode.
        assert (not res.tracked) or dt < 0.05
