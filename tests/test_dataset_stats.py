"""Tests for sequence statistics."""

import numpy as np
import pytest

from repro.core import Frame, SensorSuite
from repro.datasets import InMemorySequence
from repro.datasets.stats import sequence_statistics
from repro.errors import DatasetError


class TestStatistics:
    def test_on_synthetic_sequence(self, tiny_sequence):
        stats = sequence_statistics(tiny_sequence)
        assert stats.name == "lr_kt0"
        assert stats.frames == len(tiny_sequence)
        assert stats.resolution == (60, 80)
        assert 0.8 < stats.valid_depth_mean <= 1.0
        assert 0.3 < stats.depth_min_m < stats.depth_median_m
        assert stats.depth_median_m < stats.depth_max_m <= 6.0
        assert stats.path_length_m > 0.0
        assert stats.mean_translation_per_frame_m <= (
            stats.max_translation_per_frame_m
        )
        assert stats.duration_s == pytest.approx(
            (len(tiny_sequence) - 1) / 30.0
        )

    def test_as_row(self, tiny_sequence):
        row = sequence_statistics(tiny_sequence).as_row()
        assert row["sequence"] == "lr_kt0"
        assert row["mean_step_mm"] > 0

    def test_without_ground_truth(self, tiny_sequence):
        frames = [
            Frame(index=i, timestamp=i / 30.0, depth=np.full((60, 80), 2.0))
            for i in range(3)
        ]
        sensors = SensorSuite(depth=tiny_sequence.sensors.depth)
        seq = InMemorySequence("no_gt", sensors, frames)
        stats = sequence_statistics(seq)
        assert stats.path_length_m == 0.0
        assert stats.valid_depth_mean == 1.0

    def test_all_invalid_depth(self, tiny_sequence):
        frames = [
            Frame(index=0, timestamp=0.0, depth=np.zeros((60, 80)),
                  ground_truth_pose=np.eye(4))
        ]
        seq = InMemorySequence("void", tiny_sequence.sensors, frames)
        stats = sequence_statistics(seq)
        assert stats.valid_depth_mean == 0.0
        assert stats.depth_median_m == 0.0
