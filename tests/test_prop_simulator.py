"""Property-based tests for the performance simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.workload import FrameWorkload, KernelInvocation
from repro.platforms import PerformanceSimulator, PlatformConfig, odroid_xu3

DEVICE = odroid_xu3()

flops = st.floats(min_value=1e3, max_value=1e10)
bytes_ = st.floats(min_value=1e2, max_value=1e9)
backends = st.sampled_from(["cpp", "openmp", "opencl"])


@given(f=flops, b=bytes_, backend=backends)
@settings(max_examples=60, deadline=None)
def test_time_positive_and_finite(f, b, backend):
    sim = PerformanceSimulator(DEVICE, PlatformConfig(backend=backend))
    t, rail = sim.kernel_time_s(KernelInvocation("k", f, b))
    assert np.isfinite(t)
    assert t > 0.0
    assert rail in ("cpu", "gpu")


@given(f=flops, b=bytes_, backend=backends,
       scale=st.floats(min_value=1.1, max_value=10.0))
@settings(max_examples=60, deadline=None)
def test_time_monotone_in_work(f, b, backend, scale):
    sim = PerformanceSimulator(DEVICE, PlatformConfig(backend=backend))
    t1, _ = sim.kernel_time_s(KernelInvocation("k", f, b))
    t2, _ = sim.kernel_time_s(KernelInvocation("k", f * scale, b * scale))
    assert t2 >= t1


@given(f=flops, b=bytes_)
@settings(max_examples=40, deadline=None)
def test_lower_gpu_freq_never_faster(f, b):
    fast = PerformanceSimulator(DEVICE, PlatformConfig(backend="opencl"))
    slow = PerformanceSimulator(
        DEVICE, PlatformConfig(backend="opencl", gpu_freq_ghz=0.177)
    )
    k = KernelInvocation("k", f, b)
    assert slow.kernel_time_s(k)[0] >= fast.kernel_time_s(k)[0] - 1e-12


@given(f=flops, b=bytes_, backend=backends,
       n=st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_energy_equals_power_times_time(f, b, backend, n):
    sim = PerformanceSimulator(DEVICE, PlatformConfig(backend=backend))
    wl = FrameWorkload(0)
    for _ in range(n):
        wl.add(KernelInvocation("k", f, b))
    res = sim.simulate([wl])
    assert res.power.total_energy_j == (
        res.average_power_w * res.total_time_s
    ) or np.isclose(res.power.total_energy_j,
                    res.average_power_w * res.total_time_s)
    # Streaming power never exceeds busy power, never drops below idle.
    assert res.idle_power_w - 1e-9 <= res.streaming_average_power_w()
    assert res.streaming_average_power_w() <= res.average_power_w + 1e-9


@given(f=flops, b=bytes_)
@settings(max_examples=40, deadline=None)
def test_kernel_efficiency_monotone(f, b):
    k = KernelInvocation("k", f, b)
    times = []
    for eff in (1.0, 0.7, 0.4):
        sim = PerformanceSimulator(
            DEVICE,
            PlatformConfig(backend="opencl", kernel_efficiency={"k": eff}),
        )
        times.append(sim.kernel_time_s(k)[0])
    assert times[0] <= times[1] <= times[2]
