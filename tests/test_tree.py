"""Tests for the from-scratch CART trees."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import DecisionTreeClassifier, DecisionTreeRegressor


class TestRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 2.0
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        pred = tree.predict(np.array([[0.2], [0.8]]))
        assert pred[0] == pytest.approx(0.0)
        assert pred[1] == pytest.approx(2.0)

    def test_perfect_fit_deep_tree(self, rng):
        X = rng.uniform(size=(50, 2))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor(max_depth=30).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_depth_limits_leaves(self, rng):
        X = rng.uniform(size=(200, 2))
        y = rng.normal(size=200)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.n_leaves <= 8
        assert tree.depth <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.uniform(size=(50, 1))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor(max_depth=20, min_samples_leaf=10)
        tree.fit(X, y)
        leaf_sizes = [n.n_samples for n in tree.nodes if n.feature == -1]
        assert min(leaf_sizes) >= 10

    def test_constant_target_single_leaf(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.ones(20)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.n_leaves == 1

    def test_predict_before_fit(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().predict(np.zeros((2, 2)))

    def test_shape_errors(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ModelError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))
        tree = DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(5))
        with pytest.raises(ModelError):
            tree.predict(np.zeros((2, 3)))

    def test_bad_hyperparams(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ModelError):
            DecisionTreeRegressor(min_samples_leaf=0)


class TestClassifier:
    def test_learns_axis_aligned_boundary(self, rng):
        X = rng.uniform(size=(300, 3))
        y = (X[:, 1] > 0.6).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.98
        # The chosen root split should be on feature 1 near 0.6.
        assert tree.nodes[0].feature == 1
        assert tree.nodes[0].threshold == pytest.approx(0.6, abs=0.05)

    def test_predict_returns_ints(self, rng):
        X = rng.uniform(size=(50, 2))
        y = (X[:, 0] > 0.5).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.predict(X).dtype.kind == "i"

    def test_multiclass(self, rng):
        X = rng.uniform(size=(300, 1))
        y = np.digitize(X[:, 0], [0.33, 0.66])
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.95

    def test_negative_labels_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((4, 1)),
                                         np.array([0, 1, -1, 0]))

    def test_fractional_labels_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeClassifier().fit(np.zeros((3, 1)),
                                         np.array([0.5, 1.0, 0.0]))
