"""Tests for the analytic workload model, including agreement with the
measured pipeline's recorded workloads."""

import numpy as np
import pytest

from repro.core import run_benchmark
from repro.errors import ConfigurationError
from repro.kfusion import KFusionParams, KinectFusion
from repro.kfusion.workload_model import (
    expected_icp_iterations,
    frame_workload,
    pyramid_pixels,
    sequence_workloads,
)


class TestExpectedIterations:
    def test_tight_threshold_full_budget(self):
        p = KFusionParams(icp_threshold=1e-12)
        assert expected_icp_iterations(p) == p.pyramid_iterations

    def test_loose_threshold_reduces(self):
        tight = expected_icp_iterations(KFusionParams(icp_threshold=1e-8))
        loose = expected_icp_iterations(KFusionParams(icp_threshold=1e-2))
        assert sum(loose) < sum(tight)

    def test_zero_budget_stays_zero(self):
        p = KFusionParams(pyramid_iterations_l0=0)
        assert expected_icp_iterations(p)[0] == 0


class TestPyramidPixels:
    def test_three_levels(self):
        p = KFusionParams(compute_size_ratio=1)
        assert pyramid_pixels(320, 240, p) == [76800, 19200, 4800]

    def test_ratio_applied(self):
        p = KFusionParams(compute_size_ratio=2)
        assert pyramid_pixels(320, 240, p)[0] == 19200

    def test_indivisible_rejected(self):
        p = KFusionParams(compute_size_ratio=8)
        with pytest.raises(ConfigurationError):
            pyramid_pixels(100, 75, p)


class TestFrameWorkload:
    def test_first_frame_integrates_but_does_not_track(self):
        p = KFusionParams()
        wl = frame_workload(p, 320, 240, 0)
        names = [k.name for k in wl.kernels]
        assert "integrate" in names
        assert "track" not in names

    def test_rates_decimate(self):
        p = KFusionParams(integration_rate=3, tracking_rate=2)
        names1 = [k.name for k in frame_workload(p, 320, 240, 1).kernels]
        names2 = [k.name for k in frame_workload(p, 320, 240, 2).kernels]
        names3 = [k.name for k in frame_workload(p, 320, 240, 3).kernels]
        assert "track" not in names1 and "track" in names2
        assert "integrate" in names3 and "integrate" not in names2

    def test_sequence_length(self):
        p = KFusionParams()
        wls = sequence_workloads(p, 320, 240, 7)
        assert len(wls) == 7
        with pytest.raises(ConfigurationError):
            sequence_workloads(p, 320, 240, 0)


class TestAgreementWithMeasuredPipeline:
    def test_flops_within_25_percent(self, tiny_sequence):
        """The model must track the real pipeline's recorded workloads."""
        config = {"volume_resolution": 64, "volume_size": 5.0,
                  "integration_rate": 2}
        result = run_benchmark(KinectFusion(), tiny_sequence,
                               configuration=config)
        params = KFusionParams(**{**{s.name: s.default
                                      for s in KinectFusion().parameter_specs()},
                                  **config})
        h, w = tiny_sequence.sensors.depth.camera.shape
        predicted = sequence_workloads(params, w, h, len(tiny_sequence))
        measured_flops = sum(r.workload.total_flops
                             for r in result.collector.records)
        predicted_flops = sum(wl.total_flops for wl in predicted)
        assert predicted_flops == pytest.approx(measured_flops, rel=0.25)
