"""Tests for drift metrics."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.geometry import se3
from repro.metrics.drift import trajectory_drift
from repro.scene.trajectory import Trajectory


def line(n=11, step=0.1, scale=1.0):
    poses = np.stack(
        [se3.make_pose(np.eye(3), [i * step * scale, 0, 0]) for i in range(n)]
    )
    return Trajectory(poses=poses, timestamps=np.arange(n) / 30.0)


class TestDrift:
    def test_perfect_trajectory_zero_drift(self):
        t = line()
        d = trajectory_drift(t, t)
        assert d.endpoint_drift == pytest.approx(0.0, abs=1e-12)
        assert d.path_length_m == pytest.approx(1.0)

    def test_scale_error_constant_drift(self):
        # Estimated trajectory 5% short: endpoint drift 5%.
        d = trajectory_drift(line(scale=0.95), line())
        assert d.endpoint_drift == pytest.approx(0.05, rel=1e-6)
        assert d.endpoint_drift_percent == pytest.approx(5.0, rel=1e-6)
        assert d.mean_drift == pytest.approx(0.05, rel=1e-3)

    def test_start_offset_removed(self):
        ref = line()
        offset = se3.make_pose(se3.so3_exp([0, 0.4, 0]), [2.0, 1.0, -1.0])
        est = Trajectory(
            poses=np.stack([offset @ T for T in ref.poses]),
            timestamps=ref.timestamps,
        )
        d = trajectory_drift(est, ref)
        # Same relative motion: zero drift despite a big absolute offset...
        # except the rotation of the offset also rotates the motion; the
        # rebasing handles that because both are expressed from the first
        # pose. A pure rigid pre-multiplication leaves relative motion
        # unchanged.
        assert d.endpoint_drift == pytest.approx(0.0, abs=1e-9)

    def test_short_path_rejected(self):
        t = line(step=0.0001)
        with pytest.raises(DatasetError):
            trajectory_drift(t, t)

    def test_on_slam_output(self, tiny_sequence):
        from repro.core import run_benchmark
        from repro.kfusion import KinectFusion

        result = run_benchmark(
            KinectFusion(), tiny_sequence,
            configuration={"volume_resolution": 128, "volume_size": 5.0,
                           "integration_rate": 1},
        )
        d = trajectory_drift(result.estimated, tiny_sequence.ground_truth())
        assert d.path_length_m > 0.02
        assert d.endpoint_drift < 0.2
