"""Tests for implementation backends and device catalogue entries."""

import pytest

from repro.errors import SimulationError
from repro.kfusion.params import KFusionParams
from repro.kfusion.workload_model import sequence_workloads
from repro.platforms import (
    BACKEND_NAMES,
    PerformanceSimulator,
    PlatformConfig,
    available_backends,
    desktop_gtx,
    get_backend,
    odroid_xu3,
    phone_database,
)


class TestBackends:
    def test_all_standard_backends_exist(self):
        for name in BACKEND_NAMES:
            assert get_backend(name).name == name

    def test_unknown_backend(self):
        with pytest.raises(SimulationError):
            get_backend("sycl")

    def test_available_on_odroid(self, odroid):
        names = {b.name for b in available_backends(odroid)}
        assert names == {"cpp", "openmp", "opencl"}

    def test_available_on_desktop(self):
        names = {b.name for b in available_backends(desktop_gtx())}
        assert "cuda" in names

    def test_resolve_cores(self, odroid):
        assert get_backend("cpp").resolve_cores(odroid) == 1
        assert get_backend("openmp").resolve_cores(odroid) == 4


class TestBackendOrdering:
    """The performance relationships the paper's platform exhibits."""

    @pytest.fixture(scope="class")
    def workloads(self):
        return sequence_workloads(KFusionParams(), 320, 240, 6)

    def _fps(self, device, backend, workloads):
        sim = PerformanceSimulator(device, PlatformConfig(backend=backend))
        return sim.simulate(workloads).fps

    def test_openmp_beats_cpp(self, odroid, workloads):
        assert self._fps(odroid, "openmp", workloads) > 2 * self._fps(
            odroid, "cpp", workloads
        )

    def test_opencl_beats_openmp_on_odroid(self, odroid, workloads):
        assert self._fps(odroid, "opencl", workloads) > self._fps(
            odroid, "openmp", workloads
        )

    def test_default_not_realtime_on_odroid(self, odroid, workloads):
        # The paper's starting point: default config far from 30 FPS.
        assert self._fps(odroid, "opencl", workloads) < 20.0

    def test_desktop_cuda_is_realtime(self, workloads):
        # KinectFusion's original claim: real-time on a desktop GPU.
        assert self._fps(desktop_gtx(), "cuda", workloads) > 30.0

    def test_openmp_draws_more_power_than_opencl(self, odroid, workloads):
        omp = PerformanceSimulator(
            odroid, PlatformConfig(backend="openmp")
        ).simulate(workloads)
        ocl = PerformanceSimulator(
            odroid, PlatformConfig(backend="opencl")
        ).simulate(workloads)
        assert omp.average_power_w > ocl.average_power_w


class TestPhoneDatabase:
    def test_83_devices(self):
        assert len(phone_database()) == 83

    def test_unique_names(self):
        names = [d.name for d in phone_database()]
        assert len(set(names)) == len(names)

    def test_all_support_opencl(self):
        # The campaign needs the OpenCL port everywhere.
        assert all(d.supports_backend("opencl") for d in phone_database())

    def test_reasonable_year_range(self):
        years = [d.year for d in phone_database()]
        assert min(years) >= 2012 and max(years) <= 2017

    def test_flagships_faster_than_budget(self):
        db = {d.name: d for d in phone_database()}
        s7 = db["Samsung Galaxy S7"]
        moto = db["Motorola Moto G 2014"]
        assert s7.gpu.gflops > 5 * moto.gpu.gflops
