"""Differential proof: compiled stage graph == legacy call sequence.

The stage-graph refactor's acceptance test.  ``repro.graph.diffrun``
runs each algorithm twice over the same fixed-seed sequence — once
through the historic inline call sequence (``pipeline="legacy"``) and
once through the compiled graph (``pipeline="graph"``) — in frame-by-
frame lockstep, and asserts identical tracking-status sequences,
bit-identical pose trajectories (``atol=0.0``: both paths call the same
kernel functions in the same order, so the graph machinery must be
exactly non-perturbing), and equal ATE.  Every always-on kernel
backend is covered for KinectFusion.

A sensitivity check perturbs one stage by a microscopic pose offset and
asserts the harness *detects* it — a differential harness that cannot
fail proves nothing.
"""

import numpy as np
import pytest

from repro.datasets import icl_nuim
from repro.errors import ConfigurationError
from repro.graph import TapSpec
from repro.graph.diffrun import diff_pipelines, make_diff_system
from repro.kfusion import KinectFusion

BACKENDS = ("fast", "reference", "sparse")

KFUSION_CONFIG = {
    "volume_resolution": 64,
    "volume_size": 5.0,
    "integration_rate": 1,
}


def _sequence(n_frames=8):
    return icl_nuim.load("lr_kt0", n_frames=n_frames, width=80, height=60,
                         seed=0)


class TestKFusionEquivalence:
    @pytest.fixture(scope="class", params=BACKENDS)
    def report(self, request):
        return request.param, diff_pipelines(
            make_diff_system("kfusion", backend=request.param),
            _sequence(),
            configuration=KFUSION_CONFIG,
            algorithm="kfusion",
            backend=request.param,
        )

    def test_equivalent(self, report):
        backend, rep = report
        assert rep.equivalent, rep.summary()

    def test_no_divergence_frame(self, report):
        _, rep = report
        assert rep.first_divergence is None

    def test_poses_bit_identical(self, report):
        _, rep = report
        assert rep.max_pose_diff == 0.0

    def test_status_sequences_identical(self, report):
        _, rep = report
        assert [d.status_legacy for d in rep.frames] == \
            [d.status_graph for d in rep.frames]

    def test_ate_identical(self, report):
        _, rep = report
        assert rep.ate_legacy == rep.ate_graph

    def test_all_frames_compared(self, report):
        _, rep = report
        assert [d.index for d in rep.frames] == list(range(8))


class TestOdometryEquivalence:
    @pytest.fixture(scope="class")
    def report(self):
        return diff_pipelines(
            make_diff_system("icp_odometry"),
            _sequence(),
            configuration={"compute_size_ratio": 2},
            algorithm="icp_odometry",
        )

    def test_equivalent(self, report):
        assert report.equivalent, report.summary()

    def test_poses_bit_identical(self, report):
        assert report.max_pose_diff == 0.0


class TestTapsNonPerturbing:
    def test_equivalent_with_taps_attached(self):
        """Stream taps on the graph side must not change a single bit."""
        taps = (
            TapSpec(node="preprocess", port="depth"),
            TapSpec(node="raycast", port="model", every=2),
        )

        def make(pipeline):
            if pipeline == "graph":
                return KinectFusion(pipeline=pipeline, taps=taps)
            return KinectFusion(pipeline=pipeline)

        report = diff_pipelines(make, _sequence(), KFUSION_CONFIG)
        assert report.equivalent, report.summary()
        assert report.max_pose_diff == 0.0


class _PerturbedKinectFusion(KinectFusion):
    """Injects a 1-micron pose error into the graph path's track stage."""

    def record_track(self, result):
        super().record_track(result)
        if result.tracked:
            pose = self.pose  # copy
            pose[0, 3] += 1e-6
            self._pose = pose


class TestSensitivity:
    def test_perturbed_stage_is_detected(self):
        def make(pipeline):
            cls = (_PerturbedKinectFusion if pipeline == "graph"
                   else KinectFusion)
            return cls(pipeline=pipeline)

        report = diff_pipelines(make, _sequence(), KFUSION_CONFIG,
                                evaluate_ate=False)
        assert not report.equivalent
        # Frame 0 bootstraps and this coarse volume loses frames 1-2
        # (see the golden degraded run), so frame 3 is the first tracked
        # frame — where the injected offset must surface.
        assert report.first_divergence == 3
        assert report.max_pose_diff >= 1e-6

    def test_summary_names_divergence(self):
        def make(pipeline):
            cls = (_PerturbedKinectFusion if pipeline == "graph"
                   else KinectFusion)
            return cls(pipeline=pipeline)

        report = diff_pipelines(make, _sequence(n_frames=4), KFUSION_CONFIG,
                                evaluate_ate=False)
        assert "DIVERGED" in report.summary()
        assert "first divergence at frame 3" in report.summary()


class TestDiffHarnessContracts:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown diff"):
            make_diff_system("warp_drive")

    def test_pose_atol_honoured(self):
        """A tolerance wider than the injected error hides it."""
        def make(pipeline):
            cls = (_PerturbedKinectFusion if pipeline == "graph"
                   else KinectFusion)
            return cls(pipeline=pipeline)

        report = diff_pipelines(make, _sequence(n_frames=4), KFUSION_CONFIG,
                                atol=1e-3, evaluate_ate=False)
        assert report.first_divergence is None
        assert 0.0 < report.max_pose_diff <= 1e-3

    def test_legacy_and_graph_defaults_share_kernels(self):
        """Graph is the default pipeline; legacy stays constructible."""
        assert KinectFusion().pipeline == "graph"
        assert KinectFusion(pipeline="legacy").pipeline == "legacy"
        with pytest.raises(ConfigurationError):
            KinectFusion(pipeline="vectorised")
        with pytest.raises(ConfigurationError):
            KinectFusion(pipeline="legacy", taps=(("preprocess", "depth"),))

    def test_frame_deltas_are_value_objects(self):
        report = diff_pipelines(
            make_diff_system("kfusion"), _sequence(n_frames=4),
            KFUSION_CONFIG)
        delta = report.frames[0]
        assert delta.matches(0.0)
        assert isinstance(delta.pose_abs_diff, float)
        assert isinstance(np.asarray(delta.index).item(), int)
