"""Tests for the text/CSV reporting helpers."""

import pytest

from repro.core import format_histogram, format_table, write_csv
from repro.errors import ReportError


class TestTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table([{"a": 1}], title="My table")
        assert text.startswith("My table\n")

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456789}])
        assert "0.1235" in text

    def test_bool_rendering(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_missing_column_blank(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"])
        assert text  # must not raise

    def test_empty(self):
        assert format_table([]) == "(no rows)\n"


class TestCSV:
    def test_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = tmp_path / "out.csv"
        write_csv(rows, str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ReportError):
            write_csv([], str(tmp_path / "x.csv"))


class TestHistogram:
    def test_bins_sum_to_count(self):
        values = [0.5, 1.5, 2.5, 2.6]
        text = format_histogram(values, n_bins=3, lo=0.0, hi=3.0)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in
                  text.strip().splitlines()]
        assert sum(counts) == 4

    def test_label(self):
        text = format_histogram([1.0], label="speedups")
        assert text.startswith("speedups")

    def test_empty(self):
        assert format_histogram([]) == "(no values)\n"

    def test_out_of_range_clamped(self):
        text = format_histogram([5.0], n_bins=2, lo=0.0, hi=1.0)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in
                  text.strip().splitlines()]
        assert sum(counts) == 1
