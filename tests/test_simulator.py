"""Tests for the performance/power simulator."""

import numpy as np
import pytest

from repro.core.workload import FrameWorkload, KernelInvocation
from repro.errors import SimulationError
from repro.platforms import (
    PerformanceSimulator,
    PlatformConfig,
    desktop_gtx,
    odroid_xu3,
)


def workload(flops=1e8, bytes_=1e6, gpu_eligible=True, n=1):
    wl = FrameWorkload(0)
    for _ in range(n):
        wl.add(KernelInvocation("k", flops, bytes_, gpu_eligible=gpu_eligible))
    return wl


class TestKernelTime:
    def test_gpu_used_for_eligible(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        _, rail = sim.kernel_time_s(KernelInvocation("k", 1e8, 1e3))
        assert rail == "gpu"

    def test_host_kernel_stays_on_cpu(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        _, rail = sim.kernel_time_s(
            KernelInvocation("solve", 1e3, 1e3, gpu_eligible=False)
        )
        assert rail == "cpu"

    def test_compute_bound_scales_with_flops(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        t1, _ = sim.kernel_time_s(KernelInvocation("k", 1e9, 1e3))
        t2, _ = sim.kernel_time_s(KernelInvocation("k", 2e9, 1e3))
        assert t2 / t1 == pytest.approx(2.0, rel=0.01)

    def test_memory_bound_scales_with_bytes(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        t1, _ = sim.kernel_time_s(KernelInvocation("k", 1e3, 1e9))
        t2, _ = sim.kernel_time_s(KernelInvocation("k", 1e3, 2e9))
        assert t2 / t1 == pytest.approx(2.0, rel=0.01)

    def test_dvfs_slows_compute(self, odroid):
        fast = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        slow = PerformanceSimulator(
            odroid, PlatformConfig(backend="opencl", gpu_freq_ghz=0.177)
        )
        k = KernelInvocation("k", 1e9, 1e3)
        assert slow.kernel_time_s(k)[0] > fast.kernel_time_s(k)[0] * 2

    def test_more_cores_speed_up_openmp(self, odroid):
        one = PerformanceSimulator(
            odroid, PlatformConfig(backend="openmp", cpu_cores=1)
        )
        four = PerformanceSimulator(
            odroid, PlatformConfig(backend="openmp", cpu_cores=4)
        )
        k = KernelInvocation("k", 1e9, 1e3, parallel_fraction=0.99)
        assert one.kernel_time_s(k)[0] > four.kernel_time_s(k)[0] * 2

    def test_amdahl_serial_fraction(self, odroid):
        sim = PerformanceSimulator(
            odroid, PlatformConfig(backend="openmp", cpu_cores=4)
        )
        serial = KernelInvocation("k", 1e9, 1e3, parallel_fraction=0.0)
        parallel = KernelInvocation("k", 1e9, 1e3, parallel_fraction=1.0)
        assert (sim.kernel_time_s(serial)[0]
                > sim.kernel_time_s(parallel)[0] * 3)

    def test_kernel_efficiency_slows(self, odroid):
        base = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        slowed = PerformanceSimulator(
            odroid,
            PlatformConfig(backend="opencl", kernel_efficiency={"k": 0.5}),
        )
        k = KernelInvocation("k", 1e9, 1e3)
        assert slowed.kernel_time_s(k)[0] == pytest.approx(
            2 * (base.kernel_time_s(k)[0]
                 - _overhead(base)) + _overhead(base), rel=0.01
        )

    def test_little_cluster_slower_but_frugal(self, odroid):
        big = PerformanceSimulator(
            odroid, PlatformConfig(backend="openmp", cpu_cluster="big")
        )
        little = PerformanceSimulator(
            odroid, PlatformConfig(backend="openmp", cpu_cluster="little")
        )
        k = KernelInvocation("k", 1e9, 1e3)
        assert little.kernel_time_s(k)[0] > big.kernel_time_s(k)[0]
        assert little.kernel_power_w("cpu") < big.kernel_power_w("cpu")

    def test_unknown_cluster_rejected(self, odroid):
        with pytest.raises(SimulationError):
            PerformanceSimulator(
                odroid, PlatformConfig(backend="openmp", cpu_cluster="huge")
            )

    def test_bad_kernel_efficiency(self, odroid):
        sim = PerformanceSimulator(
            odroid,
            PlatformConfig(backend="opencl", kernel_efficiency={"k": 2.0}),
        )
        with pytest.raises(SimulationError):
            sim.kernel_time_s(KernelInvocation("k", 1e9, 1e3))


def _overhead(sim):
    return (sim.device.kernel_launch_overhead_s
            * sim.backend.launch_overhead_multiplier)


class TestSimulate:
    def test_result_aggregates(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        res = sim.simulate([workload(n=3)] * 4)
        assert len(res.frame_timings) == 4
        assert res.total_time_s == pytest.approx(
            sum(f.duration_s for f in res.frame_timings)
        )
        assert res.fps == pytest.approx(1.0 / res.mean_frame_time_s)

    def test_power_between_idle_and_peak(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        res = sim.simulate([workload()] * 3)
        assert res.idle_power_w < res.average_power_w
        assert res.average_power_w < 8.0

    def test_streaming_power_below_busy_power(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        res = sim.simulate([workload(flops=1e6, bytes_=1e4)] * 3)
        # Tiny frames finish early: streaming power approaches idle.
        assert res.streaming_average_power_w() < res.average_power_w
        assert res.streaming_average_power_w() >= res.idle_power_w

    def test_realtime_fraction(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        small = sim.simulate([workload(flops=1e6, bytes_=1e4)] * 3)
        assert small.realtime_fraction() == 1.0
        huge = sim.simulate([workload(flops=1e11, bytes_=1e9)] * 3)
        assert huge.realtime_fraction() == 0.0

    def test_kernel_breakdown(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        res = sim.simulate([workload(n=2)])
        assert "k" in res.kernel_breakdown_s()

    def test_empty_rejected(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        with pytest.raises(SimulationError):
            sim.simulate([])

    def test_unsupported_backend_rejected(self, odroid):
        with pytest.raises(SimulationError):
            PerformanceSimulator(odroid, PlatformConfig(backend="cuda"))

    def test_cuda_on_desktop(self):
        sim = PerformanceSimulator(desktop_gtx(),
                                   PlatformConfig(backend="cuda"))
        res = sim.simulate([workload()])
        assert res.backend == "cuda"

    def test_energy_conservation(self, odroid):
        sim = PerformanceSimulator(odroid, PlatformConfig(backend="opencl"))
        res = sim.simulate([workload()] * 5)
        assert res.power.total_energy_j == pytest.approx(
            res.average_power_w * res.total_time_s
        )
