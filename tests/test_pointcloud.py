"""Unit tests for vertex/normal map helpers."""

import numpy as np

from repro.geometry import (
    downsample_vertex_map,
    flatten_valid,
    normals_from_vertices,
    valid_mask,
)
from repro.geometry.pointcloud import centroid


def plane_vertex_map(h=20, w=30, z=2.0):
    """A fronto-parallel plane at depth z seen by a unit camera."""
    u = (np.arange(w) - w / 2) / 40.0
    v = (np.arange(h) - h / 2) / 40.0
    uu, vv = np.meshgrid(u, v)
    return np.stack([uu * z, vv * z, np.full_like(uu, z)], axis=-1)


class TestValidMask:
    def test_zero_rows_invalid(self):
        vm = plane_vertex_map()
        vm[3, 4] = 0.0
        mask = valid_mask(vm)
        assert not mask[3, 4]
        assert mask[0, 0]

    def test_nan_invalid(self):
        vm = plane_vertex_map()
        vm[2, 2, 1] = np.nan
        assert not valid_mask(vm)[2, 2]


class TestNormals:
    def test_plane_normals_face_camera(self):
        vm = plane_vertex_map()
        n = normals_from_vertices(vm)
        inner = n[2:-2, 2:-2]
        norms = np.linalg.norm(inner, axis=-1)
        assert np.allclose(norms, 1.0, atol=1e-9)
        # Fronto-parallel plane: normal is -z (towards camera).
        assert np.allclose(inner[..., 2], -1.0, atol=1e-6)

    def test_border_normals_zero(self):
        n = normals_from_vertices(plane_vertex_map())
        assert np.all(n[0] == 0.0)
        assert np.all(n[:, -1] == 0.0)

    def test_invalid_neighbourhood_zero(self):
        vm = plane_vertex_map()
        vm[10, 10] = 0.0
        n = normals_from_vertices(vm)
        # Pixels whose stencil touches the hole have no normal.
        assert np.all(n[10, 11] == 0.0)
        assert np.all(n[11, 10] == 0.0)

    def test_tiny_map_all_zero(self):
        n = normals_from_vertices(np.ones((2, 2, 3)))
        assert np.all(n == 0.0)


class TestHelpers:
    def test_downsample(self):
        vm = plane_vertex_map(h=20, w=30)
        half = downsample_vertex_map(vm, 2)
        assert half.shape == (10, 15, 3)
        assert np.allclose(half[0, 0], vm[0, 0])

    def test_flatten_valid(self):
        vm = plane_vertex_map()
        vm[0, 0] = 0.0
        flat = flatten_valid(vm)
        assert flat.shape == (vm.shape[0] * vm.shape[1] - 1, 3)

    def test_centroid_empty(self):
        assert np.allclose(centroid(np.empty((0, 3))), 0.0)

    def test_centroid(self):
        pts = np.array([[0.0, 0, 0], [2.0, 4.0, 6.0]])
        assert np.allclose(centroid(pts), [1.0, 2.0, 3.0])
