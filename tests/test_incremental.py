"""Tests for incremental co-design exploration."""

import pytest

from repro.errors import OptimizationError
from repro.hypermapper import (
    ConstraintSet,
    SurrogateEvaluator,
    accuracy_limit,
    codesign_design_space,
    incremental_codesign,
    kfusion_design_space,
    power_budget,
    realtime,
    split_codesign_space,
)


class TestSplit:
    def test_split_names(self):
        space = codesign_design_space()
        algo, platform = split_codesign_space(space)
        assert "volume_resolution" in algo.names
        assert "backend" not in algo.names
        assert set(platform.names) == {"backend", "cpu_freq_ghz",
                                       "gpu_freq_ghz", "cpu_cluster"}
        assert algo.dimensions + platform.dimensions == space.dimensions

    def test_split_requires_platform_knobs(self):
        with pytest.raises(OptimizationError):
            split_codesign_space(kfusion_design_space())


class TestIncremental:
    @pytest.fixture(scope="class")
    def result(self, odroid):
        constraints = ConstraintSet.of(
            [accuracy_limit(0.05), realtime(30.0), power_budget(1.0)]
        )
        return incremental_codesign(
            codesign_design_space(odroid),
            SurrogateEvaluator(device=odroid, seed=5),
            constraints,
            accuracy_limit(0.05),
            seed=5,
        )

    def test_finds_feasible_point(self, result):
        assert result.best is not None
        assert result.best.fps > 30.0
        assert result.best.power_w < 1.0
        assert result.best.max_ate_m < 0.05

    def test_bookkeeping(self, result):
        counted = len(result.domain_result.evaluations) + sum(
            len(p.evaluations) for p in result.platform_results
        )
        assert result.total_evaluations == counted
        assert 1 <= len(result.platform_results) <= 3

    def test_platform_phase_configs_complete(self, result):
        # Phase-2 evaluations must carry full co-design configurations.
        ev = result.platform_results[0].evaluations[0]
        # The frozen algorithmic keys were merged by the adapter; the
        # recorded configuration is the merged one.
        assert "backend" in ev.configuration
        assert "volume_resolution" in ev.configuration
