"""Tests for the sparse voxel-block TSDF volume (``repro.kfusion.sparse``).

Three layers:

* **BlockHash properties** — hypothesis-driven insert/lookup/rehash
  round-trips; no key is lost to collisions even at high load.
* **SparseTSDFVolume semantics** — allocation, the hash/slot-table
  mirror agreement, dense-volume read semantics over unallocated space,
  occupancy statistics.
* **integrate/raycast bit-equivalence** — within allocated blocks the
  sparse kernels reproduce the dense fast kernels *bit-for-bit* (the
  foundation of the sparse backend's golden equivalence; DESIGN.md S22).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_benchmark
from repro.datasets import icl_nuim
from repro.errors import ConfigurationError
from repro.geometry import PinholeCamera, se3
from repro.kfusion import KinectFusion
from repro.kfusion.memory import stage_workspace_bytes, workspace_bytes
from repro.kfusion.params import KFusionParams
from repro.kfusion.sparse import (
    BLOCK,
    BlockHash,
    SparseTSDFVolume,
    pack_block_coords,
    unpack_block_coords,
)
from repro.kfusion.volume import TSDFVolume
from repro.perf import FrameWorkspace
from repro.perf import integrate as fast_integrate_mod
from repro.perf import raycast as fast_raycast_mod
from repro.perf import sparse_integrate, sparse_raycast

CAM = PinholeCamera.kinect_like(width=48, height=36)
#: Resolution divisible by BLOCK so the sparse grid has no padding voxels.
PARAMS = KFusionParams(volume_resolution=48, volume_size=5.0)

coord_arrays = st.lists(
    st.tuples(*(st.integers(min_value=0, max_value=5),) * 3),
    min_size=1, max_size=64,
)


def synthetic_depth(camera=CAM, seed=0, hole_fraction=0.15):
    rng = np.random.default_rng(seed)
    h, w = camera.shape
    yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    depth = 2.0 + 0.4 * np.sin(xx / 7.0) + 0.3 * np.cos(yy / 5.0)
    depth += 0.02 * rng.standard_normal((h, w))
    depth[rng.random((h, w)) < hole_fraction] = 0.0
    return depth.astype(np.float32)


# ---------------------------------------------------------------------------
# Packed block coordinates
# ---------------------------------------------------------------------------
@given(coords=st.lists(
    st.tuples(*(st.integers(min_value=0, max_value=(1 << 20) - 1),) * 3),
    min_size=1, max_size=50,
))
@settings(max_examples=50, deadline=None)
def test_pack_unpack_roundtrip(coords):
    c = np.array(coords, dtype=np.int64)
    keys = pack_block_coords(c)
    np.testing.assert_array_equal(unpack_block_coords(keys), c)
    # Packing is injective: distinct coords -> distinct keys.
    assert len(np.unique(keys)) == len(np.unique(c, axis=0))


# ---------------------------------------------------------------------------
# BlockHash
# ---------------------------------------------------------------------------
class TestBlockHash:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            BlockHash(capacity=48)
        with pytest.raises(ConfigurationError):
            BlockHash(capacity=4)

    def test_empty_lookup_misses(self):
        h = BlockHash()
        np.testing.assert_array_equal(
            h.lookup(np.array([0, 1, 12345], dtype=np.int64)), [-1, -1, -1]
        )

    @given(keys=st.lists(st.integers(min_value=0, max_value=(1 << 60) - 1),
                         min_size=1, max_size=200, unique=True),
           n_batches=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_insert_lookup_roundtrip(self, keys, n_batches):
        """Batched inserts (forcing rehashes from a tiny table) lose
        nothing: every key maps back to its slot, absentees miss."""
        h = BlockHash(capacity=8)
        keys = np.array(keys, dtype=np.int64)
        slots = np.arange(keys.size, dtype=np.int32)
        for part_k, part_s in zip(np.array_split(keys, n_batches),
                                  np.array_split(slots, n_batches)):
            h.insert(part_k, part_s)
        assert len(h) == keys.size
        np.testing.assert_array_equal(h.lookup(keys), slots)
        # Shuffled query order must not matter.
        perm = np.random.default_rng(0).permutation(keys.size)
        np.testing.assert_array_equal(h.lookup(keys[perm]), slots[perm])
        absent = keys + np.int64(1 << 61)
        np.testing.assert_array_equal(h.lookup(absent),
                                      np.full(keys.size, -1))

    def test_no_collision_loss_at_high_load(self):
        """Thousands of clustered keys (worst case for linear probing)
        survive repeated growth without dropping a single mapping."""
        h = BlockHash(capacity=8)
        side = 17  # 4913 keys, clustered coordinates
        grid = np.stack(np.meshgrid(*(np.arange(side),) * 3,
                                    indexing="ij"), axis=-1).reshape(-1, 3)
        keys = pack_block_coords(grid)
        slots = np.arange(keys.size, dtype=np.int32)
        h.insert(keys, slots)
        assert len(h) == keys.size
        assert h.load_factor <= h.max_load
        assert h.capacity & (h.capacity - 1) == 0
        np.testing.assert_array_equal(h.lookup(keys), slots)

    def test_items_round_trip(self):
        h = BlockHash()
        keys = pack_block_coords(np.array([[1, 2, 3], [4, 5, 6]]))
        h.insert(keys, np.array([7, 9], dtype=np.int32))
        got_k, got_s = h.items()
        assert dict(zip(got_k.tolist(), got_s.tolist())) == \
            {int(keys[0]): 7, int(keys[1]): 9}


# ---------------------------------------------------------------------------
# SparseTSDFVolume
# ---------------------------------------------------------------------------
class TestSparseVolume:
    @given(batches=st.lists(coord_arrays, min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_slot_table_mirrors_hash(self, batches):
        """After arbitrary allocation batches the dense slot table and
        the canonical hash agree on every allocated block."""
        vol = SparseTSDFVolume(resolution=48, size=5.0, initial_blocks=64)
        nb = vol.blocks_per_side
        for batch in batches:
            coords = np.array(batch, dtype=np.int64)
            slots = vol.ensure_blocks(coords)
            # Idempotent: a second call returns the same slots.
            np.testing.assert_array_equal(vol.ensure_blocks(coords), slots)
        keys, hash_slots = vol.hash.items()
        assert len(keys) == vol.allocated_blocks
        c = unpack_block_coords(keys).astype(np.int64)
        flat = (c[:, 0] * nb + c[:, 1]) * nb + c[:, 2]
        np.testing.assert_array_equal(vol.block_slot_table[flat], hash_slots)
        # Everything else is unallocated in both views.
        mask = np.ones(nb**3, dtype=bool)
        mask[flat] = False
        assert np.all(vol.block_slot_table[mask] == -1)
        # Occupancy mask matches the allocation set exactly.
        occ = np.zeros(nb**3, dtype=bool)
        occ[flat] = True
        np.testing.assert_array_equal(vol.block_occupancy.reshape(-1), occ)

    def test_lookup_unallocated_is_minus_one(self):
        vol = SparseTSDFVolume(resolution=48, size=5.0)
        vol.ensure_blocks(np.array([[1, 1, 1]]))
        got = vol.lookup_blocks(np.array([[1, 1, 1], [2, 2, 2]]))
        assert got[0] >= 0 and got[1] == -1

    def test_unallocated_space_reads_empty(self):
        """Fresh volume samples like the dense volume's initial state."""
        vol = SparseTSDFVolume(resolution=48, size=5.0)
        pts = np.array([[2.5, 2.5, 2.5], [0.7, 3.1, 4.2]])
        values, valid = vol.sample_trilinear(pts)
        np.testing.assert_array_equal(values, 1.0)
        assert not valid.any()
        assert vol.occupied_fraction() == 0.0
        assert vol.extract_surface_points().shape == (0, 3)

    def test_reset_drops_all_blocks(self):
        vol = SparseTSDFVolume(resolution=48, size=5.0)
        vol.ensure_blocks(np.array([[0, 0, 0], [3, 3, 3]]))
        before = vol.allocated_bytes
        vol.reset()
        assert vol.allocated_blocks == 0
        assert vol.allocated_bytes < before
        assert not vol.block_occupancy.any()
        assert np.all(vol.block_slot_table == -1)

    def test_growth_preserves_content(self):
        vol = SparseTSDFVolume(resolution=48, size=5.0, initial_blocks=64)
        slot = int(vol.ensure_blocks(np.array([[2, 2, 2]]))[0])
        vol.tsdf_blocks[slot, 5] = np.float32(-0.25)
        vol.weight_blocks[slot, 5] = np.float32(3.0)
        # Force block-array growth past the initial capacity.
        vol.ensure_blocks(np.stack(np.meshgrid(*(np.arange(5),) * 3,
                                               indexing="ij"),
                                   axis=-1).reshape(-1, 3))
        assert vol.allocated_blocks > 64
        assert vol.tsdf_blocks[slot, 5] == np.float32(-0.25)
        assert vol.weight_blocks[slot, 5] == np.float32(3.0)


# ---------------------------------------------------------------------------
# Sparse vs dense fast kernels (bit-level)
# ---------------------------------------------------------------------------
def _integrated_pair(n_frames=3):
    """Static-camera fusion of the same depth into dense + sparse volumes.

    A static scene allocates the full truncation band on the first
    frame, so every voxel the dense kernel updates inside an allocated
    block sees the identical update sequence in the sparse kernel.
    """
    pose = se3.make_pose(np.eye(3), np.array([2.5, 2.5, 0.0]))
    depth = synthetic_depth(seed=0)
    dense = TSDFVolume(resolution=48, size=5.0)
    sparse = SparseTSDFVolume(resolution=48, size=5.0)
    ws_dense = FrameWorkspace(CAM, PARAMS, levels=3)
    ws_sparse = FrameWorkspace(CAM, PARAMS, levels=3, backend="sparse")
    for _ in range(n_frames):
        fast_integrate_mod.integrate(dense, depth, CAM, pose,
                                     PARAMS.mu_distance, ws_dense)
        sparse_integrate.integrate(sparse, depth, CAM, pose,
                                   PARAMS.mu_distance, ws_sparse)
    return dense, sparse, pose, ws_dense, ws_sparse


@pytest.fixture(scope="module")
def integrated_pair():
    return _integrated_pair()


class TestSparseKernelEquivalence:
    def test_integrate_bit_identical_in_allocated_blocks(self,
                                                         integrated_pair):
        dense, sparse, _, _, _ = integrated_pair
        s_tsdf, s_weight = sparse.densify()
        allocated = np.repeat(
            np.repeat(np.repeat(sparse.block_occupancy, BLOCK, 0),
                      BLOCK, 1), BLOCK, 2)
        r = sparse.resolution
        allocated = allocated[:r, :r, :r]
        assert allocated.any()
        np.testing.assert_array_equal(s_tsdf[allocated],
                                      dense.tsdf[allocated])
        np.testing.assert_array_equal(s_weight[allocated],
                                      dense.weight[allocated])
        # Outside the allocated blocks the sparse volume is pristine.
        np.testing.assert_array_equal(s_tsdf[~allocated], 1.0)
        np.testing.assert_array_equal(s_weight[~allocated], 0.0)

    def test_every_observed_voxel_is_allocated(self, integrated_pair):
        """No observed-surface voxel may fall outside allocated blocks
        (the band allocator's coverage guarantee near the surface)."""
        dense, sparse, _, _, _ = integrated_pair
        _, s_weight = sparse.densify()
        near = (dense.weight > 0) & (np.abs(dense.tsdf) < 0.5)
        assert near.any()
        assert np.array_equal(s_weight[near] > 0, dense.weight[near] > 0)

    def test_raycast_bit_identical(self, integrated_pair):
        dense, sparse, pose, ws_dense, ws_sparse = integrated_pair
        fast = fast_raycast_mod.raycast_model(
            dense, CAM, pose, PARAMS.mu_distance, ws_dense)
        got = sparse_raycast.raycast_model(
            sparse, CAM, pose, PARAMS.mu_distance, ws_sparse)
        assert np.any(got.normals != 0)
        np.testing.assert_array_equal(got.vertices, fast.vertices)
        np.testing.assert_array_equal(got.normals, fast.normals)

    def test_stage_split_sums_to_budget(self):
        """The sparse arena keeps the exact-partition invariant: the
        per-stage split is term-for-term the whole budget."""
        split = stage_workspace_bytes(PARAMS, CAM.width, CAM.height, 3,
                                      backend="sparse")
        assert sum(split.values()) == workspace_bytes(
            PARAMS, CAM.width, CAM.height, 3, backend="sparse")
        assert set(split) == {"preprocess", "track", "integrate", "raycast"}

    def test_full_sparse_frame_run_stays_in_budget(self):
        """The arena the sparse pipeline builds must fit its own model."""
        seq = icl_nuim.load("lr_kt0", n_frames=3, width=64, height=48,
                            seed=0)
        seq.materialize()
        system = KinectFusion(kernel_backend="sparse")
        run_benchmark(system, seq, configuration={
            "volume_resolution": 64, "volume_size": 5.0,
        }, evaluate_accuracy=False)
        ws = system._workspace
        assert ws is not None and len(ws) > 0
        assert ws.nbytes <= ws.budget_bytes

    def test_occupancy_stats_match_densified(self, integrated_pair):
        _, sparse, _, _, _ = integrated_pair
        s_tsdf, s_weight = sparse.densify()
        observed = int(np.count_nonzero(s_weight > 0))
        assert sparse.occupied_fraction() == pytest.approx(
            observed / sparse.resolution**3)
        pts = sparse.extract_surface_points(threshold=0.25)
        expect = np.count_nonzero((s_weight > 0) & (np.abs(s_tsdf) < 0.25))
        assert len(pts) == expect
        assert pts.shape[1] == 3
        if len(pts):
            assert np.all((pts >= 0) & (pts <= sparse.size))
