"""Tests for TUM trajectory text I/O."""

import numpy as np
import pytest

from repro.datasets.tum_format import load_tum_trajectory, save_tum_trajectory
from repro.errors import DatasetError
from repro.geometry import se3
from repro.scene import orbit


class TestRoundTrip:
    def test_poses_preserved(self, tmp_path):
        traj = orbit((0, 1, 0), 1.5, 1.2, n_frames=7, seed=1,
                     jitter_rot_std=0.01)
        path = str(tmp_path / "traj.txt")
        save_tum_trajectory(traj, path, comment="test")
        loaded = load_tum_trajectory(path)
        assert len(loaded) == 7
        for a, b in zip(traj.poses, loaded.poses):
            dt, dr = se3.pose_distance(a, b)
            assert dt < 1e-5
            assert dr < 1e-5

    def test_timestamps_preserved(self, tmp_path):
        traj = orbit((0, 1, 0), 1.5, 1.2, n_frames=4)
        path = str(tmp_path / "traj.txt")
        save_tum_trajectory(traj, path)
        loaded = load_tum_trajectory(path)
        assert np.allclose(loaded.timestamps, traj.timestamps, atol=1e-6)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "traj.txt"
        path.write_text("# header\n\n0.0 1 2 3 0 0 0 1\n")
        loaded = load_tum_trajectory(str(path))
        assert len(loaded) == 1
        assert np.allclose(se3.translation(loaded[0]), [1, 2, 3])


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_tum_trajectory(str(tmp_path / "nope.txt"))

    def test_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.0 1 2 3\n")
        with pytest.raises(DatasetError):
            load_tum_trajectory(str(path))

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.0 a 2 3 0 0 0 1\n")
        with pytest.raises(DatasetError):
            load_tum_trajectory(str(path))

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(DatasetError):
            load_tum_trajectory(str(path))
