"""Tests for local refinement and corridor dataset presets."""

import pytest

from repro.core import ParameterSpec, create_dataset, register_defaults
from repro.datasets import corridor_seq
from repro.errors import DatasetError, OptimizationError
from repro.hypermapper import (
    ConstraintSet,
    DesignSpace,
    Evaluation,
    SurrogateEvaluator,
    accuracy_limit,
    kfusion_design_space,
)
from repro.hypermapper.local_search import local_refine, neighbours


class TestNeighbours:
    def test_every_neighbour_differs_in_one_parameter(self):
        space = kfusion_design_space()
        config = space.default_configuration()
        for n in neighbours(space, config):
            diffs = [k for k in config if n[k] != config[k]]
            assert len(diffs) == 1

    def test_bounds_respected(self):
        space = DesignSpace([
            ParameterSpec("i", "integer", 0, low=0, high=2),
            ParameterSpec("o", "ordinal", 32, choices=(32, 64)),
        ])
        ns = neighbours(space, {"i": 0, "o": 32})
        assert {(n["i"], n["o"]) for n in ns} == {(1, 32), (0, 64)}

    def test_log_scale_real_moves_in_decades(self):
        space = DesignSpace([
            ParameterSpec("t", "real", 1e-5, low=1e-8, high=1e-2,
                          log_scale=True),
        ])
        values = sorted(n["t"] for n in neighbours(space, {"t": 1e-5}))
        assert values[0] < 1e-5 < values[1]


class TestLocalRefine:
    def test_polishes_towards_optimum(self):
        space = DesignSpace([
            ParameterSpec("x", "real", 0.5, low=0.0, high=1.0),
        ])

        class Quadratic:
            def evaluate(self, c):
                x = c["x"]
                return Evaluation(configuration=dict(c),
                                  runtime_s=(x - 0.1) ** 2 + 0.01,
                                  max_ate_m=0.01, power_w=1.0,
                                  fps=100.0)

        ev = Quadratic()
        start = ev.evaluate({"x": 0.5})
        cons = ConstraintSet.of([accuracy_limit(0.05)])
        best, spent = local_refine(space, ev, start, cons, max_rounds=10)
        assert best.runtime_s < start.runtime_s
        assert abs(best.configuration["x"] - 0.1) < 0.2
        assert spent > 0

    def test_refine_improves_surrogate_best(self, odroid):
        space = kfusion_design_space()
        evaluator = SurrogateEvaluator(device=odroid, seed=2)
        cons = ConstraintSet.of([accuracy_limit(0.05)])
        start = evaluator.evaluate(space.default_configuration())
        best, _ = local_refine(space, evaluator, start, cons, max_rounds=3)
        assert best.runtime_s <= start.runtime_s
        assert best.max_ate_m < 0.05

    def test_infeasible_start_rejected(self):
        space = kfusion_design_space()
        bad = Evaluation(configuration=space.default_configuration(),
                         runtime_s=1.0, max_ate_m=9.9, power_w=1.0, fps=1.0)
        with pytest.raises(OptimizationError):
            local_refine(space, None, bad,
                         ConstraintSet.of([accuracy_limit(0.05)]))


class TestCorridorPresets:
    def test_presets_load_and_register(self):
        register_defaults()
        seq = create_dataset("cor_walk", n_frames=3, width=32, height=24)
        assert seq.name == "cor_walk"
        assert len(seq) == 3

    def test_bare_variant(self):
        seq = corridor_seq.load("cor_bare", n_frames=2, width=32, height=24)
        assert seq.scene.name == "corridor_bare"

    def test_unknown_rejected(self):
        with pytest.raises(DatasetError):
            corridor_seq.load("cor_spiral", n_frames=2)
