"""Tests for ATE and RPE metrics."""

import numpy as np
import pytest

from repro.datasets import rebase_to_first
from repro.errors import DatasetError
from repro.geometry import se3
from repro.metrics import absolute_trajectory_error, relative_pose_error
from repro.scene.trajectory import Trajectory


def straight_line(n=10, step=0.02, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    poses = []
    for i in range(n):
        t = np.array([i * step, 0.0, 0.0])
        if noise:
            t = t + rng.normal(0, noise, 3)
        poses.append(se3.make_pose(np.eye(3), t))
    return Trajectory(poses=np.stack(poses),
                      timestamps=np.arange(n) / 30.0)


class TestATE:
    def test_identical_is_zero(self):
        t = straight_line()
        res = absolute_trajectory_error(t, t)
        assert res.max == pytest.approx(0.0, abs=1e-12)
        assert res.matched_frames == 10

    def test_rigid_offset_removed_by_alignment(self):
        ref = straight_line()
        offset = se3.make_pose(se3.so3_exp([0, 0.3, 0]), [1.0, 2.0, 3.0])
        est = Trajectory(
            poses=np.stack([offset @ T for T in ref.poses]),
            timestamps=ref.timestamps,
        )
        res = absolute_trajectory_error(est, ref, align=True)
        assert res.max < 1e-9

    def test_unaligned_keeps_offset(self):
        ref = straight_line()
        est = Trajectory(
            poses=np.stack(
                [se3.make_pose(np.eye(3), [0.5, 0, 0]) @ T for T in ref.poses]
            ),
            timestamps=ref.timestamps,
        )
        res = absolute_trajectory_error(est, ref, align=False)
        assert res.max == pytest.approx(0.5)

    def test_statistics_ordering(self):
        ref = straight_line()
        est = straight_line(noise=0.01, seed=1)
        res = absolute_trajectory_error(est, ref)
        assert res.median <= res.mean + 1e-9 or res.median > 0
        assert res.rmse >= res.mean - 1e-12
        assert res.max >= res.rmse

    def test_passes_limit(self):
        t = straight_line()
        res = absolute_trajectory_error(t, t)
        assert res.passes(0.05)

    def test_too_few_matches(self):
        a = straight_line(2)
        with pytest.raises(DatasetError):
            absolute_trajectory_error(a, a)


class TestRPE:
    def test_identical_zero(self):
        t = straight_line()
        res = relative_pose_error(t, t, delta=1)
        assert res.trans_rmse == pytest.approx(0.0, abs=1e-12)
        assert res.pairs == 9

    def test_constant_drift_detected(self):
        ref = straight_line(step=0.02)
        est = straight_line(step=0.03)  # 1 cm extra drift per frame
        res = relative_pose_error(rebase_to_first(est), rebase_to_first(ref))
        assert res.trans_mean == pytest.approx(0.01, abs=1e-9)

    def test_delta_scales_drift(self):
        ref = straight_line(step=0.02)
        est = straight_line(step=0.03)
        res2 = relative_pose_error(est, ref, delta=2)
        assert res2.trans_mean == pytest.approx(0.02, abs=1e-9)

    def test_bad_delta(self):
        t = straight_line()
        with pytest.raises(DatasetError):
            relative_pose_error(t, t, delta=0)
        with pytest.raises(DatasetError):
            relative_pose_error(t, t, delta=50)

    def test_rotation_errors(self):
        ref = straight_line()
        poses = ref.poses.copy()
        for i in range(len(poses)):
            poses[i] = poses[i] @ se3.make_pose(
                se3.so3_exp([0.0, 0.01 * i, 0.0]), np.zeros(3)
            )
        est = Trajectory(poses=poses, timestamps=ref.timestamps)
        res = relative_pose_error(est, ref)
        assert res.rot_mean == pytest.approx(0.01, abs=1e-6)
