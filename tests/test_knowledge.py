"""Tests for knowledge extraction (Figure 2 right panel)."""

import pytest

from repro.errors import OptimizationError
from repro.hypermapper import (
    SurrogateEvaluator,
    extract_knowledge,
    format_knowledge,
    kfusion_design_space,
    random_exploration,
)
from repro.hypermapper.constraints import Constraint


@pytest.fixture(scope="module")
def exploration(odroid):
    return random_exploration(
        kfusion_design_space(), SurrogateEvaluator(device=odroid), 120, seed=0
    )


class TestKnowledge:
    def test_three_default_criteria(self, exploration):
        knowledge = extract_knowledge(exploration)
        assert [k.criterion for k in knowledge] == [
            "accurate", "fast", "power_efficient",
        ]

    def test_counts_consistent(self, exploration):
        for k in extract_knowledge(exploration):
            assert 0 <= k.positive_count <= k.total_count

    def test_trees_fit_labels(self, exploration):
        for k in extract_knowledge(exploration):
            assert k.tree_accuracy > 0.7

    def test_accurate_rules_mention_resolution_or_ratio(self, exploration):
        """The paper's figure: accuracy is governed by volume resolution
        and compute size ratio."""
        knowledge = extract_knowledge(exploration)
        accurate = knowledge[0]
        if not accurate.rules:
            pytest.skip("no accurate region found in this sample")
        text = " ".join(str(r) for r in accurate.rules)
        assert ("volume_resolution" in text or "compute_size_ratio" in text
                or "integration_rate" in text)

    def test_format(self, exploration):
        text = format_knowledge(extract_knowledge(exploration))
        assert "accurate" in text and "fast" in text

    def test_degenerate_criterion_handled(self, exploration):
        # A bound nothing satisfies: rules must be empty, no crash.
        impossible = Constraint("max_ate_m", 1e-12, "<", name="impossible")
        knowledge = extract_knowledge(exploration, criteria=[impossible])
        assert knowledge[0].positive_count == 0
        assert knowledge[0].rules == ()

    def test_too_few_samples_rejected(self, odroid):
        small = random_exploration(
            kfusion_design_space(), SurrogateEvaluator(device=odroid), 5,
            seed=0,
        )
        with pytest.raises(OptimizationError):
            extract_knowledge(small)
