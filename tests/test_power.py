"""Tests for the power trace."""

import pytest

from repro.errors import SimulationError
from repro.platforms import PowerTrace


class TestPowerTrace:
    def test_charge_and_average(self):
        p = PowerTrace()
        p.charge("gpu", 2.0, 1.0)
        p.advance(2.0)
        assert p.total_energy_j == pytest.approx(2.0)
        assert p.average_power_w() == pytest.approx(1.0)

    def test_finalize_base_adds_elapsed_energy(self):
        p = PowerTrace()
        p.charge("gpu", 2.0, 1.0)
        p.advance(1.0)
        p.finalize_base(0.5, {"gpu": 0.1})
        assert p.total_energy_j == pytest.approx(2.0 + 0.5 + 0.1)
        assert p.rail_power_w("base") == pytest.approx(0.5)
        assert p.rail_power_w("gpu_static") == pytest.approx(0.1)

    def test_breakdown(self):
        p = PowerTrace()
        p.charge("cpu", 1.0, 1.0)
        p.charge("gpu", 3.0, 1.0)
        p.advance(2.0)
        bd = p.breakdown()
        assert bd["cpu"] == pytest.approx(0.5)
        assert bd["gpu"] == pytest.approx(1.5)

    def test_negative_rejected(self):
        p = PowerTrace()
        with pytest.raises(SimulationError):
            p.charge("x", -1.0, 1.0)
        with pytest.raises(SimulationError):
            p.advance(-1.0)

    def test_average_without_time_rejected(self):
        with pytest.raises(SimulationError):
            PowerTrace().average_power_w()

    def test_unknown_rail_power_is_zero(self):
        p = PowerTrace()
        p.advance(1.0)
        assert p.rail_power_w("nope") == 0.0
