"""Tests for the Android crowdsourcing campaign simulation."""

import numpy as np
import pytest

from repro.crowd import (
    algorithmic_only,
    by_group,
    device_table,
    run_campaign,
    summarize,
)
from repro.errors import SimulationError
from repro.platforms import phone_database


def tuned_config(**overrides):
    cfg = {
        "volume_resolution": 96,
        "volume_size": 4.3,
        "compute_size_ratio": 2,
        "mu_distance": 0.066,
        "icp_threshold": 1e-5,
        "pyramid_iterations_l0": 8,
        "pyramid_iterations_l1": 4,
        "pyramid_iterations_l2": 3,
        "integration_rate": 3,
        "tracking_rate": 1,
    }
    cfg.update(overrides)
    return cfg


@pytest.fixture(scope="module")
def runs():
    return run_campaign(tuned_config(), n_frames=10, seed=0)


class TestCampaign:
    def test_runs_all_devices(self, runs):
        assert len(runs) == 83

    def test_tuned_is_faster_everywhere(self, runs):
        assert all(r.speedup > 1.0 for r in runs)

    def test_speedups_spread(self, runs):
        s = np.array([r.speedup for r in runs])
        assert s.max() / s.min() > 1.5  # heterogeneous population

    def test_deterministic(self):
        a = run_campaign(tuned_config(), n_frames=5, seed=1)
        b = run_campaign(tuned_config(), n_frames=5, seed=1)
        assert [r.speedup for r in a] == [r.speedup for r in b]

    def test_platform_keys_stripped(self):
        with_knobs = tuned_config(backend="opencl", gpu_freq_ghz=0.177,
                                  cpu_freq_ghz=1.2)
        assert set(algorithmic_only(with_knobs)) == set(tuned_config())
        runs_a = run_campaign(tuned_config(), n_frames=5, seed=0)
        runs_b = run_campaign(with_knobs, n_frames=5, seed=0)
        assert runs_a[0].speedup == runs_b[0].speedup

    def test_missing_parameters_rejected(self):
        with pytest.raises(SimulationError):
            run_campaign({"volume_resolution": 96}, n_frames=5)

    def test_empty_device_list_rejected(self):
        with pytest.raises(SimulationError):
            run_campaign(tuned_config(), devices=[], n_frames=5)

    def test_subset_of_devices(self):
        devices = phone_database()[:5]
        runs = run_campaign(tuned_config(), devices=devices, n_frames=5)
        assert len(runs) == 5


class TestAnalysis:
    def test_summary_statistics(self, runs):
        s = summarize(runs)
        assert s.devices == 83
        assert s.summary.minimum <= s.geometric_mean <= s.summary.maximum
        assert s.realtime_tuned >= s.realtime_default

    def test_histogram_text(self, runs):
        text = summarize(runs).histogram()
        assert "83 devices" in text
        assert "#" in text

    def test_by_group_year(self, runs):
        rows = by_group(runs, "year")
        assert sum(r["devices"] for r in rows) == 83
        years = [r["year"] for r in rows]
        assert years == sorted(years)

    def test_by_group_form_factor(self, runs):
        rows = by_group(runs, "form_factor")
        assert {r["form_factor"] for r in rows} <= {"phone", "tablet", "board"}

    def test_device_table(self, runs):
        table = device_table(runs, top=5)
        assert "speedup" in table
        assert len(table.strip().splitlines()) == 8  # title + header + sep + 5

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            summarize([])
        with pytest.raises(SimulationError):
            by_group([], "year")
