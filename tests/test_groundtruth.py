"""Tests for ground-truth association and normalisation."""

import numpy as np
import pytest

from repro.datasets import associate, rebase_to_first, rotation_errors, translation_errors
from repro.errors import DatasetError
from repro.geometry import se3
from repro.scene.trajectory import Trajectory


def make_traj(n=5, dt=1 / 30.0, offset=0.0, step=0.01):
    poses = np.stack(
        [se3.make_pose(np.eye(3), [i * step, 0, 0]) for i in range(n)]
    )
    return Trajectory(poses=poses,
                      timestamps=np.arange(n) * dt + offset)


class TestAssociate:
    def test_identical_timestamps(self):
        a = make_traj()
        b = make_traj()
        ia, ib = associate(a, b)
        assert list(ia) == list(range(5))
        assert list(ib) == list(range(5))

    def test_small_offset_within_tolerance(self):
        a = make_traj(offset=0.005)
        b = make_traj()
        ia, ib = associate(a, b, max_dt=0.02)
        assert len(ia) == 5

    def test_large_offset_drops_pairs(self):
        a = make_traj(offset=10.0)
        b = make_traj()
        ia, ib = associate(a, b, max_dt=0.02)
        assert len(ia) == 0

    def test_each_reference_used_once(self):
        # Two estimated poses near one reference timestamp: only one matches.
        poses = np.stack([np.eye(4)] * 3)
        a = Trajectory(poses=poses, timestamps=np.array([0.0, 0.001, 1.0]))
        b = Trajectory(poses=poses[:2], timestamps=np.array([0.0, 1.0]))
        ia, ib = associate(a, b)
        assert len(ia) == 2
        assert len(set(ib)) == 2

    def test_empty_rejected(self):
        a = make_traj()
        with pytest.raises(DatasetError):
            associate(a, Trajectory(poses=np.empty((0, 4, 4)),
                                    timestamps=np.empty(0)))


class TestErrors:
    def test_rebase(self):
        t = make_traj()
        rb = rebase_to_first(t)
        assert np.allclose(rb.poses[0], np.eye(4))

    def test_translation_errors(self):
        a = make_traj(step=0.01)
        b = make_traj(step=0.02)
        errs = translation_errors(a, b)
        assert errs[0] == pytest.approx(0.0)
        assert errs[4] == pytest.approx(0.04)

    def test_rotation_errors(self):
        a = make_traj()
        poses = a.poses.copy()
        poses[2] = poses[2] @ se3.se3_exp([0, 0, 0, 0.1, 0, 0])
        b = Trajectory(poses=poses, timestamps=a.timestamps)
        errs = rotation_errors(a, b)
        assert errs[2] == pytest.approx(0.1, abs=1e-6)
        assert errs[0] == pytest.approx(0.0, abs=1e-9)

    def test_length_mismatch(self):
        with pytest.raises(DatasetError):
            translation_errors(make_traj(4), make_traj(5))
