"""Failure injection: the pipeline must degrade gracefully, not crash.

SLAMBench's robustness requirement: whatever the sensor does (dropout
storms, harsh noise, empty frames), the framework reports tracking status
and keeps going.
"""

import numpy as np
import pytest

from repro.core import Frame, TrackingStatus, run_benchmark
from repro.datasets import InMemorySequence, icl_nuim
from repro.kfusion import KinectFusion
from repro.scene import KinectNoiseModel


class TestHarshNoise:
    def test_harsh_noise_does_not_crash(self):
        seq = icl_nuim.load("lr_kt0", n_frames=8, width=80, height=60,
                            noise=KinectNoiseModel.harsh(), seed=2)
        result = run_benchmark(
            KinectFusion(), seq,
            configuration={"volume_resolution": 64, "volume_size": 5.0,
                           "integration_rate": 1},
        )
        # Every frame processed, statuses recorded, ATE computable.
        assert len(result.collector.records) == 8
        assert result.ate is not None

    def test_harsh_noise_hurts_accuracy(self):
        clean = run_benchmark(
            KinectFusion(),
            icl_nuim.load("lr_kt0", n_frames=8, width=80, height=60,
                          noise=KinectNoiseModel.noiseless(), seed=2),
            configuration={"volume_resolution": 128, "volume_size": 5.0,
                           "integration_rate": 1},
        )
        noisy = run_benchmark(
            KinectFusion(),
            icl_nuim.load("lr_kt0", n_frames=8, width=80, height=60,
                          noise=KinectNoiseModel.harsh(), seed=2),
            configuration={"volume_resolution": 128, "volume_size": 5.0,
                           "integration_rate": 1},
        )
        assert noisy.ate.rmse >= clean.ate.rmse


class TestDegenerateFrames:
    def _sequence_with_blackout(self, tiny_sequence, blackout_at=3):
        """Copy of the tiny sequence with one all-invalid frame."""
        frames = []
        for f in tiny_sequence:
            if f.index == blackout_at:
                frames.append(
                    Frame(index=f.index, timestamp=f.timestamp,
                          depth=np.zeros_like(f.depth),
                          ground_truth_pose=f.ground_truth_pose)
                )
            else:
                frames.append(f)
        return InMemorySequence("blackout", tiny_sequence.sensors, frames)

    def test_blackout_frame_reports_lost_and_recovers(self, tiny_sequence):
        seq = self._sequence_with_blackout(tiny_sequence)
        result = run_benchmark(
            KinectFusion(), seq,
            configuration={"volume_resolution": 128, "volume_size": 5.0,
                           "integration_rate": 1},
        )
        statuses = [r.status for r in result.collector.records]
        assert statuses[3] is TrackingStatus.LOST
        # Recovery: later frames track again.
        assert TrackingStatus.OK in statuses[4:]

    def test_all_invalid_sequence_never_tracks_but_runs(self, tiny_sequence):
        frames = [
            Frame(index=i, timestamp=i / 30.0,
                  depth=np.zeros((60, 80)),
                  ground_truth_pose=np.eye(4))
            for i in range(4)
        ]
        seq = InMemorySequence("void", tiny_sequence.sensors, frames)
        result = run_benchmark(
            KinectFusion(), seq,
            configuration={"volume_resolution": 32, "volume_size": 5.0},
            evaluate_accuracy=False,
        )
        statuses = [r.status for r in result.collector.records]
        assert statuses[0] is TrackingStatus.BOOTSTRAP
        assert all(s is TrackingStatus.LOST for s in statuses[1:])
