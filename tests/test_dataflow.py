"""Tests for the static dataflow verifier (``repro.analysis.dataflow``).

Covers the port-contract grammar, the compiler's semantic edge
comparison (spelling variants compile, concrete disagreements still
fail), and the three rules with seeded violations:

* RPR011 — a dim mismatch only visible through a 2-edge chain, with the
  chain named in the finding;
* RPR012 — a fast-backend kernel whose ``@contract`` drifted from its
  graph port (and a direct callee, the second call seam);
* RPR013 — injected overlapping-lifetime and use-after-release arena
  references, dead budget, and unplanned arena use;

plus the acceptance-criteria mutation test (flipping one port dtype in
``kfusion/graphdef.py`` turns ``repro dataflow check`` red) and the
clean-repo / CLI exit-code checks.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.analysis.contracts import (
    ContractError,
    contracts_equal,
    format_contract,
    parse_contract,
)
from repro.analysis.dataflow import (
    BufferRef,
    GraphUnderCheck,
    check_graphs,
    format_port_contract,
    parse_contexts,
    parse_port_contract,
    port_contract_mismatch,
    run_dataflow,
    topo_schedule,
    unify_graph,
)
from repro.analysis.framework import ModuleContext
from repro.core.registry import register_defaults
from repro.errors import GraphError
from repro.graph import (
    ArenaRegion,
    Edge,
    GraphSpec,
    Port,
    StageSpec,
    compile_graph,
    get_stage,
    register_stage,
)

register_defaults()

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src" / "repro"


def ctx(path, src):
    return ModuleContext.parse(src, path)


def _spec(name, run=None, inputs=(), outputs=(), **kwargs):
    return StageSpec(
        name=name,
        run=run or (lambda c, i: {p.name: None for p in outputs}),
        inputs=inputs,
        outputs=outputs,
        **kwargs,
    )


@pytest.fixture
def scratch_registry(monkeypatch):
    monkeypatch.setattr("repro.graph.stage._STAGES", {})


def _under_check(spec, origin="tests/synthetic_graphdef.py", **kwargs):
    stages = {node: get_stage(stage) for node, stage in spec.nodes}
    return GraphUnderCheck(spec=spec, stages=stages, origin=origin,
                           **kwargs)


class TestPortContractGrammar:
    def test_bare_tag(self):
        pc = parse_port_contract("track.converged")
        assert pc.tag == "track.converged"
        assert pc.spec is None and not pc.pyramid
        assert format_port_contract(pc) == "track.converged"

    def test_array_contract(self):
        pc = parse_port_contract("depth.map(H,W:f32)")
        assert pc.tag == "depth.map"
        assert pc.spec.dims == ("H", "W")
        assert pc.spec.dtype == "f32"
        assert not pc.pyramid

    def test_pyramid_contract(self):
        pc = parse_port_contract("pyramid.vertices([H,W,3:f32])")
        assert pc.pyramid
        assert pc.spec.dims == ("H", "W", 3)

    def test_whitespace_and_alias_normalize(self):
        a = parse_port_contract("img( H , W : f32 )")
        assert format_port_contract(a) == "img(H,W:f32)"
        b = parse_port_contract("m(2,2:b)")
        c = parse_port_contract("m(2,2:bool)")
        assert format_port_contract(b) == format_port_contract(c)

    def test_format_is_idempotent(self):
        for text in ("x", "a.b.c", "img(H,W:f32)", "p([...,3:f64])",
                     "m(2,2:bool)"):
            once = format_port_contract(parse_port_contract(text))
            again = format_port_contract(parse_port_contract(once))
            assert once == again

    @pytest.mark.parametrize("bad", [
        "", "  ", "1bad", "tag(", "tag()", "tag([])", "a b(H:f32)",
        "tag(H,W:q99)", "tag(H,,W:f32)",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ContractError):
            parse_port_contract(bad)

    def test_mismatch_semantics(self):
        def mm(a, b):
            return port_contract_mismatch(parse_port_contract(a),
                                          parse_port_contract(b))

        assert mm("img(H,W:f32)", "img( H, W : f32 )") is None
        assert mm("m(2,2:b)", "m(2,2:bool)") is None
        # symbolic dims are edge-compatible with anything
        assert mm("img(H,W:f32)", "img(4,4:f32)") is None
        assert mm("img(r,r:f32)", "img(H,W:f32)") is None
        # concrete disagreements are not
        assert "tag" in mm("img(H,W:f32)", "pic(H,W:f32)")
        assert "dtype" in mm("img(H,W:f32)", "img(H,W:f64)")
        assert "rank" in mm("img(H,W:f32)", "img(H,W,3:f32)")
        assert "dim 1" in mm("img(4,5:f32)", "img(4,6:f32)")
        assert "pyramid" in mm("img(H,W:f32)", "img([H,W:f32])")
        assert "opaque" in mm("img", "img(H,W:f32)")

    def test_contracts_equal_on_array_specs(self):
        assert contracts_equal(parse_contract("H,W:f64"),
                               parse_contract(" H , W : f64 "))
        assert contracts_equal(parse_contract("2,2:b"),
                               parse_contract("2,2:bool"))
        assert not contracts_equal(parse_contract("H,W:f32"),
                                   parse_contract("H,W:f64"))
        assert format_contract(parse_contract("...,3:f64")) == "...,3:f64"


class TestCompilerSemanticEdges:
    """Satellite: edge comparison is semantic, not raw string equality."""

    def _wire(self, out_contract, in_contract):
        register_stage(_spec("syn.src",
                             outputs=(Port("out", out_contract),)))
        register_stage(_spec("syn.dst",
                             inputs=(Port("in", in_contract),)))
        return GraphSpec(name="syn",
                         nodes=(("a", "syn.src"), ("b", "syn.dst")),
                         edges=(Edge("a", "out", "b", "in"),))

    def test_whitespace_variant_compiles(self, scratch_registry):
        spec = self._wire("img(H,W:f32)", "img( H, W : f32 )")
        assert compile_graph(spec).stage_names == ["a", "b"]

    def test_dtype_alias_variant_compiles(self, scratch_registry):
        spec = self._wire("m(2,2:b)", "m(2,2:bool)")
        assert compile_graph(spec).stage_names == ["a", "b"]

    def test_symbol_vs_int_compiles(self, scratch_registry):
        # A single edge cannot judge a symbolic dim; RPR011 owns that.
        spec = self._wire("img(H,W:f32)", "img(4,4:f32)")
        compile_graph(spec)

    def test_dtype_width_mismatch_rejected(self, scratch_registry):
        spec = self._wire("img(H,W:f32)", "img(H,W:f64)")
        with pytest.raises(GraphError) as err:
            compile_graph(spec)
        msg = str(err.value)
        assert "a.out -> b.in" in msg
        assert "'img(H,W:f32)'" in msg and "'img(H,W:f64)'" in msg

    def test_tag_mismatch_still_rejected(self, scratch_registry):
        spec = self._wire("img(H,W:f32)", "pic(H,W:f32)")
        with pytest.raises(GraphError, match=r"a\.out -> b\.in"):
            compile_graph(spec)

    def test_unparsable_port_contract_rejected_at_declaration(self):
        with pytest.raises(GraphError, match="port 'x'"):
            Port("x", "img(")

    def test_region_with_unknown_node_rejected(self, scratch_registry):
        spec = self._wire("img(H,W:f32)", "img(H,W:f32)")
        bad = dataclasses.replace(
            spec, regions=(ArenaRegion("buf_", writer="ghost"),))
        with pytest.raises(GraphError, match="unknown writer node 'ghost'"):
            compile_graph(bad)


class TestUnification:
    """RPR011: symbolic dims unified across the whole graph."""

    def _chain(self, scratch_registry, a_out, b_io, c_in):
        register_stage(_spec("syn.a", outputs=(Port("out", a_out),)))
        register_stage(_spec("syn.b", inputs=(Port("in", b_io),),
                             outputs=(Port("out", b_io),)))
        register_stage(_spec("syn.c", inputs=(Port("in", c_in),)))
        return GraphSpec(
            name="syn",
            nodes=(("a", "syn.a"), ("b", "syn.b"), ("c", "syn.c")),
            edges=(Edge("a", "out", "b", "in"),
                   Edge("b", "out", "c", "in")),
        )

    def test_consistent_labeling_unifies(self, scratch_registry):
        spec = self._chain(scratch_registry, "m.x(4,4:f32)",
                           "m.x(r,r:f32)", "m.x(4,4:f32)")
        assert unify_graph(_under_check(spec)) == []

    def test_conflict_through_two_edge_chain_names_the_chain(
            self, scratch_registry):
        # 4 vs 5 only meet through b's symbolic (r, r) — each single
        # edge is locally fine (the compiler accepts the whole graph),
        # but no assignment of r satisfies both ends.
        spec = self._chain(scratch_registry, "m.x(4,4:f32)",
                           "m.x(r,r:f32)", "m.x(5,5:f32)")
        compile_graph(spec)  # each edge is locally compatible
        findings = unify_graph(_under_check(spec))
        assert findings, "expected an RPR011 conflict"
        msg = findings[0].message
        assert findings[0].rule_id == "RPR011"
        assert "unsatisfiable" in msg
        assert "a.out -> b.in (dim" in msg
        assert "b.out -> c.in (dim" in msg
        assert "= 4" in msg and "= 5" in msg

    def test_symbols_are_node_scoped(self, scratch_registry):
        # 'H' in a and 'H' in c are different unknowns: a(4,H) feeding
        # b(r,s) feeding c(H,5) must NOT conflate a:H with c:H.
        spec = self._chain(scratch_registry, "m.x(4,H:f32)",
                           "m.x(r,s:f32)", "m.x(H,5:f32)")
        assert unify_graph(_under_check(spec)) == []

    def test_unparsable_contract_reported_not_crashed(self):
        # Port() rejects bad contracts at declaration, so malformed
        # contracts reaching the verifier need duck-typed stages (e.g.
        # a hand-rolled graph object from another frontend).
        class FakePort:
            def __init__(self, name, contract):
                self.name, self.contract = name, contract

        class FakeStage:
            def __init__(self, inputs, outputs):
                self.inputs, self.outputs = inputs, outputs
                self.workspace_need = None
                self.run = None

        spec = GraphSpec(name="fake", nodes=(("n", "fake.n"),))
        graph = GraphUnderCheck(
            spec=spec,
            stages={"n": FakeStage((), (FakePort("out", "img("),))},
            origin="tests/fake.py",
        )
        findings = unify_graph(graph)
        assert len(findings) == 1
        assert findings[0].rule_id == "RPR011"
        assert "n.out" in findings[0].message


REGISTRY_SRC = """\
from . import fastk as _fastk


class KernelBackend:
    pass


FAST = KernelBackend(name="fast", integrate=_fastk.kernel)
"""


def _kernel_src(spec):
    return (
        "from ..analysis.contracts import contract\n"
        f"@contract(depth={spec!r})\n"
        "def kernel(depth):\n"
        "    return depth\n"
    )


def _graphdef_src(helper_spec=None):
    helper = ""
    if helper_spec is not None:
        helper = (
            "from ..analysis.contracts import contract\n"
            f"@contract(depth={helper_spec!r})\n"
            "def helper(depth):\n"
            "    return depth\n"
        )
    return (
        f"{helper}"
        "def _run_stage(ctx, inputs):\n"
        + ("    helper(inputs['depth'])\n" if helper_spec else "")
        + "    ctx.backend.integrate(inputs['depth'])\n"
        "    return {'depth': inputs['depth']}\n"
    )


class TestKernelContracts:
    """RPR012: graph ports vs the @contract of kernels the body calls."""

    def _check(self, scratch, kernel_spec, helper_spec=None,
               port="depth.map(H,W:f32)"):
        contexts = [
            ctx("/scratch/repro/perf/registry.py", REGISTRY_SRC),
            ctx("/scratch/repro/perf/fastk.py", _kernel_src(kernel_spec)),
            ctx("/scratch/repro/myalgo/graphdef.py",
                _graphdef_src(helper_spec)),
        ]
        register_stage(_spec("syn.stage", inputs=(Port("depth", port),)))
        spec = GraphSpec(name="syn", nodes=(("node", "syn.stage"),))
        graph = _under_check(
            spec,
            body_qnames={"node": "repro.myalgo.graphdef._run_stage"},
            refs_by_node={},
        )
        return [f for f in check_graphs([graph], contexts)
                if f.rule_id == "RPR012"]

    def test_matching_kernel_is_clean(self, scratch_registry):
        # width may differ (f64 kernel on an f32 wire IS the backend
        # distinction); kind may not.
        assert self._check(scratch_registry, "H,W:f64") == []

    def test_drifted_backend_kernel_is_blocking(self, scratch_registry):
        findings = self._check(scratch_registry, "H,W:i32")
        assert len(findings) == 1
        msg = findings[0].message
        assert findings[0].severity.value == "error"
        assert "backend 'fast'" in msg
        assert "repro.perf.fastk.kernel" in msg
        assert "dtype kind" in msg

    def test_drifted_rank_detected(self, scratch_registry):
        findings = self._check(scratch_registry, "H,W,3:f32")
        assert len(findings) == 1
        assert "rank" in findings[0].message

    def test_conflicting_int_dim_detected(self, scratch_registry):
        findings = self._check(scratch_registry, "4,W:f32",
                               port="depth.map(8,W:f32)")
        assert len(findings) == 1
        assert "kernel 4 != port 8" in findings[0].message

    def test_direct_callee_contract_checked(self, scratch_registry):
        findings = self._check(scratch_registry, "H,W:f64",
                               helper_spec="H,W,3:f64")
        assert len(findings) == 1
        assert "callee" in findings[0].message
        assert "helper" in findings[0].message

    def test_kernel_params_without_ports_ignored(self, scratch_registry):
        # poses/thresholds are not wired through graph ports; RPR012
        # only compares same-named params.
        contexts = [
            ctx("/scratch/repro/perf/registry.py", REGISTRY_SRC),
            ctx("/scratch/repro/perf/fastk.py",
                "from ..analysis.contracts import contract\n"
                "@contract(pose='4,4:f64')\n"
                "def kernel(depth, pose):\n"
                "    return depth\n"),
            ctx("/scratch/repro/myalgo/graphdef.py", _graphdef_src()),
        ]
        register_stage(_spec(
            "syn.stage", inputs=(Port("depth", "depth.map(H,W:f32)"),)))
        spec = GraphSpec(name="syn", nodes=(("node", "syn.stage"),))
        graph = _under_check(
            spec,
            body_qnames={"node": "repro.myalgo.graphdef._run_stage"},
            refs_by_node={},
        )
        assert [f for f in check_graphs([graph], contexts)
                if f.rule_id == "RPR012"] == []


class TestLiveness:
    """RPR013: regions vs the schedule and observed buffer refs."""

    def _graph(self, scratch, regions, needs=True):
        need = (lambda r: 16) if needs else None
        register_stage(_spec("syn.a", outputs=(Port("out", "num"),),
                             workspace_need=need))
        for name in ("b", "c"):
            register_stage(_spec(
                f"syn.{name}", inputs=(Port("in", "num"),),
                outputs=(Port("out", "num"),), workspace_need=need))
        register_stage(_spec("syn.d", inputs=(Port("in", "num"),),
                             workspace_need=need))
        spec = GraphSpec(
            name="syn",
            nodes=(("a", "syn.a"), ("b", "syn.b"), ("c", "syn.c"),
                   ("d", "syn.d")),
            edges=(Edge("a", "out", "b", "in"),
                   Edge("b", "out", "c", "in"),
                   Edge("c", "out", "d", "in")),
            regions=regions,
        )
        return spec

    def _findings(self, spec, refs):
        graph = _under_check(spec, refs_by_node=refs)
        return [f for f in check_graphs([graph])
                if f.rule_id == "RPR013"]

    @staticmethod
    def _ref(name, qname="repro.perf.kern.f", line=1):
        return BufferRef(name=name, exact=True, qname=qname, lineno=line)

    def test_schedule_is_deterministic_topo(self, scratch_registry):
        spec = self._graph(scratch_registry, ())
        graph = _under_check(spec, refs_by_node={})
        assert topo_schedule(graph) == ["a", "b", "c", "d"]

    def test_clean_region_usage(self, scratch_registry):
        spec = self._graph(
            scratch_registry,
            (ArenaRegion("buf_", writer="a", readers=("c",)),))
        refs = {"a": [self._ref("buf_x")]}
        assert self._findings(spec, refs) == []

    def test_overlapping_lifetime_write_detected(self, scratch_registry):
        # b touches a's buffers while the a->c window is live.
        spec = self._graph(
            scratch_registry,
            (ArenaRegion("buf_", writer="a", readers=("c",)),))
        refs = {"a": [self._ref("buf_x")], "b": [self._ref("buf_x")]}
        findings = self._findings(spec, refs)
        assert len(findings) == 1
        assert "overlapping-lifetime" in findings[0].message
        assert "'b'" in findings[0].message
        assert "'buf_'" in findings[0].message

    def test_use_after_release_detected(self, scratch_registry):
        # d touches a's buffers after the a->c window closed.
        spec = self._graph(
            scratch_registry,
            (ArenaRegion("buf_", writer="a", readers=("c",)),))
        refs = {"a": [self._ref("buf_x")], "d": [self._ref("buf_x")]}
        findings = self._findings(spec, refs)
        assert len(findings) == 1
        assert "use-after-release" in findings[0].message
        assert "'d'" in findings[0].message

    def test_reader_scheduled_before_writer(self, scratch_registry):
        spec = self._graph(
            scratch_registry,
            (ArenaRegion("buf_", writer="c", readers=("a",)),))
        refs = {"c": [self._ref("buf_x")]}
        findings = self._findings(spec, refs)
        assert len(findings) == 1
        assert "use-after-release" in findings[0].message
        assert "previous frame" in findings[0].message

    def test_cross_frame_reader_before_writer_is_legal(
            self, scratch_registry):
        # The raycast-model pattern: written late, read early next frame.
        spec = self._graph(
            scratch_registry,
            (ArenaRegion("buf_", writer="c", readers=("a",),
                         cross_frame=True),))
        refs = {"c": [self._ref("buf_x")]}
        assert self._findings(spec, refs) == []

    def test_cross_frame_region_never_releasable(self, scratch_registry):
        # Any outside toucher overlaps a cross-frame region.
        spec = self._graph(
            scratch_registry,
            (ArenaRegion("buf_", writer="a", readers=(),
                         cross_frame=True),))
        refs = {"a": [self._ref("buf_x")], "d": [self._ref("buf_x")]}
        findings = self._findings(spec, refs)
        assert len(findings) == 1
        assert "overlapping-lifetime" in findings[0].message

    def test_dead_budget_warned(self, scratch_registry):
        spec = self._graph(
            scratch_registry,
            (ArenaRegion("buf_", writer="a"),
             ArenaRegion("ghost_", writer="b"),))
        refs = {"a": [self._ref("buf_x")]}
        findings = self._findings(spec, refs)
        assert len(findings) == 1
        assert findings[0].severity.value == "warning"
        assert "dead budget" in findings[0].message
        assert "'ghost_'" in findings[0].message

    def test_unplanned_buffer_detected(self, scratch_registry):
        spec = self._graph(scratch_registry,
                           (ArenaRegion("buf_", writer="a"),))
        refs = {"a": [self._ref("buf_x"), self._ref("rogue_y")]}
        findings = self._findings(spec, refs)
        assert len(findings) == 1
        assert "matches no declared region" in findings[0].message

    def test_arena_use_without_workspace_need(self, scratch_registry):
        spec = self._graph(scratch_registry,
                           (ArenaRegion("buf_", writer="a"),),
                           needs=False)
        refs = {"a": [self._ref("buf_x")]}
        findings = self._findings(spec, refs)
        assert len(findings) == 1
        assert "no workspace need" in findings[0].message

    def test_longest_prefix_wins(self, scratch_registry):
        # "buf_vip" belongs to the longer-lived sub-family, so d's read
        # inside that family's window is legal while "buf_x" stays
        # writer-private.
        spec = self._graph(
            scratch_registry,
            (ArenaRegion("buf_", writer="a"),
             ArenaRegion("buf_vip", writer="a", readers=("d",)),))
        refs = {"a": [self._ref("buf_x"), self._ref("buf_vip0")],
                "d": [self._ref("buf_vip0")]}
        assert self._findings(spec, refs) == []


@pytest.fixture(scope="module")
def repo_contexts():
    return parse_contexts([str(REPO_SRC)])


def _registered_graphs():
    from repro.cli import _collect_registered_graphs

    graphs, failures = _collect_registered_graphs()
    assert failures == []
    return graphs


class TestCleanRepoAndMutation:
    def test_registered_graphs_are_clean(self, repo_contexts):
        assert check_graphs(_registered_graphs(), repo_contexts) == []

    def test_run_dataflow_exits_zero(self, repo_contexts):
        out = []
        code = run_dataflow(_registered_graphs(), [str(REPO_SRC)],
                            echo=out.append)
        assert code == 0
        assert out[0].startswith("clean:")

    def test_flipping_port_dtype_turns_check_red(self, repo_contexts):
        # The acceptance-criteria mutation: kfusion/graphdef.py declares
        # the depth wire as f32; flipping it to i32 must make the
        # kernel cross-check fail (the integrate/bilateral kernels
        # declare float contracts).
        source = (REPO_SRC / "kfusion" / "graphdef.py").read_text()
        assert 'DEPTH_MAP = "depth.map(H,W:f32)"' in source

        graphs = _registered_graphs()
        kfusion = next(g for g in graphs if g.spec.name == "kfusion")
        mutated_stages = {}
        for node, stage in kfusion.stages.items():
            def flip(ports):
                return tuple(
                    Port(p.name, "depth.map(H,W:i32)")
                    if p.contract == "depth.map(H,W:f32)" else p
                    for p in ports)
            mutated_stages[node] = dataclasses.replace(
                stage, inputs=flip(stage.inputs),
                outputs=flip(stage.outputs))
        mutated = dataclasses.replace(kfusion, stages=mutated_stages)
        findings = check_graphs([mutated], repo_contexts)
        assert any(f.rule_id == "RPR012" for f in findings)
        assert all(f.severity.value == "error"
                   for f in findings if f.rule_id == "RPR012")

    def test_kfusion_arena_regions_match_reality(self, repo_contexts):
        # The declared regions are exercised for real: every region hits
        # at least one reachable buffer reference (no dead budget) and
        # every reference lands in a region (no unplanned use).
        graphs = _registered_graphs()
        kfusion = next(g for g in graphs if g.spec.name == "kfusion")
        assert len(kfusion.spec.regions) >= 8
        findings = [f for f in check_graphs([kfusion], repo_contexts)
                    if f.rule_id == "RPR013"]
        assert findings == []


class TestDataflowCli:
    def test_check_exits_zero_and_reports_clean(self, capsys):
        from repro.cli import main

        assert main(["dataflow", "check", str(REPO_SRC)]) == 0
        assert "clean:" in capsys.readouterr().out

    def test_check_json_format(self, capsys):
        from repro.cli import main

        assert main(["dataflow", "check", "--format", "json",
                     str(REPO_SRC)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["total"] == 0

    def test_show_lists_ports_and_regions(self, capsys):
        from repro.cli import main

        assert main(["dataflow", "show", "kfusion"]) == 0
        out = capsys.readouterr().out
        assert "depth.map(H,W:f32)" in out
        assert "region rc_vertices*" in out and "cross-frame" in out

    def test_show_json_shape(self, capsys):
        from repro.cli import main

        assert main(["dataflow", "show", "kfusion",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["graph"] == "kfusion"
        assert doc["schedule"] == ["preprocess", "track", "integrate",
                                   "raycast"]
        ports = {(p["node"], p["port"]): p["normalized"]
                 for p in doc["ports"]}
        assert ports[("preprocess", "depth")] == "depth.map(H,W:f32)"

    def test_show_unknown_graph_is_internal_error(self, capsys):
        from repro.cli import main

        assert main(["dataflow", "show", "teapot"]) == 2
