"""Tests for the random-walk trajectory and battery-life estimation."""

import numpy as np
import pytest

from repro.errors import GeometryError, SimulationError
from repro.geometry import se3
from repro.platforms import battery_life_hours
from repro.scene import random_walk


class TestRandomWalk:
    def test_length_and_validity(self):
        t = random_walk((1.5, 1.2, 1.5), (0, 1, 0), 20, seed=1)
        assert len(t) == 20
        for T in t.poses:
            assert se3.is_pose(T, tol=1e-6)

    def test_deterministic_per_seed(self):
        a = random_walk((1.5, 1.2, 1.5), (0, 1, 0), 10, seed=4)
        b = random_walk((1.5, 1.2, 1.5), (0, 1, 0), 10, seed=4)
        c = random_walk((1.5, 1.2, 1.5), (0, 1, 0), 10, seed=5)
        assert np.allclose(a.poses, b.poses)
        assert not np.allclose(a.poses, c.poses)

    def test_bounds_respected(self):
        t = random_walk((2.0, 1.2, 2.0), (0, 1, 0), 200, step_std=0.05,
                        momentum=0.5, seed=0)
        pos = t.positions
        assert pos[:, 0].max() <= 2.2 + 1e-9
        assert pos[:, 2].min() >= -2.2 - 1e-9
        assert pos[:, 1].min() >= 0.6 - 1e-9
        assert pos[:, 1].max() <= 2.0 + 1e-9

    def test_looks_at_target(self):
        target = np.array([0.0, 1.0, 0.0])
        t = random_walk((1.5, 1.2, 1.5), target, 15, seed=2)
        for T in t.poses:
            fwd = T[:3, 2]
            to_target = target - T[:3, 3]
            to_target /= np.linalg.norm(to_target)
            assert np.dot(fwd, to_target) > 0.99

    def test_smoothness_from_momentum(self):
        smooth = random_walk((1.5, 1.2, 1.5), (0, 1, 0), 100,
                             momentum=0.95, seed=1)
        jerky = random_walk((1.5, 1.2, 1.5), (0, 1, 0), 100,
                            momentum=0.0, seed=1)
        # Momentum makes consecutive velocity vectors more aligned.
        def alignment(t):
            v = np.diff(t.positions, axis=0)
            n = np.linalg.norm(v, axis=-1)
            ok = (n[:-1] > 1e-9) & (n[1:] > 1e-9)
            cos = np.einsum("ij,ij->i", v[:-1][ok], v[1:][ok]) / (
                n[:-1][ok] * n[1:][ok]
            )
            return cos.mean()

        assert alignment(smooth) > alignment(jerky)

    def test_invalid_args(self):
        with pytest.raises(GeometryError):
            random_walk((0, 1, 0), (0, 1, 1), 1)
        with pytest.raises(GeometryError):
            random_walk((0, 1, 0), (0, 1, 1), 5, momentum=1.0)

    def test_kfusion_tracks_random_walk(self, scene):
        """Robustness: the pipeline survives an unscripted trajectory."""
        from repro.core import run_benchmark
        from repro.datasets import SyntheticSequence
        from repro.geometry import PinholeCamera
        from repro.kfusion import KinectFusion

        cam = PinholeCamera.kinect_like(80, 60)
        traj = random_walk((1.5, 1.2, 1.5), scene.center, 10, seed=6)
        seq = SyntheticSequence("walk", scene, traj, cam, seed=6)
        result = run_benchmark(
            KinectFusion(), seq,
            configuration={"volume_resolution": 128, "volume_size": 5.0,
                           "integration_rate": 1},
        )
        assert result.collector.tracked_fraction() >= 0.8
        assert result.ate.max < 0.1


class TestBatteryLife:
    def test_basic(self):
        assert battery_life_hours(1.0, battery_wh=11.0,
                                  system_overhead_w=1.0) == pytest.approx(5.5)

    def test_lower_power_lasts_longer(self):
        assert battery_life_hours(0.8) > battery_life_hours(2.8)

    def test_invalid(self):
        with pytest.raises(SimulationError):
            battery_life_hours(1.0, battery_wh=0.0)
        with pytest.raises(SimulationError):
            battery_life_hours(-1.0)
        with pytest.raises(SimulationError):
            battery_life_hours(0.0, system_overhead_w=0.0)
