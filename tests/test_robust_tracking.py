"""Tests for the Huber-weighted (robust) ICP extension."""

import numpy as np
import pytest

from repro.core import run_benchmark
from repro.datasets import icl_nuim
from repro.kfusion import KinectFusion
from repro.kfusion.tracking import _huber_weights
from repro.scene import KinectNoiseModel

#: Outlier-heavy sensor: strong lateral edge artefacts, little Gaussian
#: noise — the regime robust estimation exists for.
OUTLIER_NOISE = KinectNoiseModel(
    axial_sigma_at_1m=0.0005,
    lateral_pixels=3.0,
    dropout_rate=0.001,
    edge_dropout_boost=0.1,
    quantization_m=0.0005,
)

CONFIG = {"volume_resolution": 128, "volume_size": 5.0,
          "integration_rate": 1}


class TestHuberWeights:
    def test_inliers_unweighted(self):
        w = _huber_weights(np.array([0.0, 0.005, -0.009]), delta=0.01)
        assert np.allclose(w, 1.0)

    def test_outliers_downweighted(self):
        w = _huber_weights(np.array([0.1, -0.05]), delta=0.01)
        assert w[0] == pytest.approx(0.1)
        assert w[1] == pytest.approx(0.2)

    def test_weights_continuous_at_delta(self):
        w = _huber_weights(np.array([0.01, 0.0100001]), delta=0.01)
        assert abs(w[0] - w[1]) < 1e-4


class TestRobustPipeline:
    def test_robust_beats_plain_on_outliers(self):
        """Across seeds, Huber tracking reduces the mean ATE when the
        sensor produces heavy-tailed edge artefacts."""
        plain, robust = [], []
        for seed in (3, 4, 5):
            seq = icl_nuim.load("lr_kt0", n_frames=8, width=80, height=60,
                                noise=OUTLIER_NOISE, seed=seed)
            plain.append(
                run_benchmark(KinectFusion(), seq,
                              configuration=CONFIG).ate.rmse
            )
            robust.append(
                run_benchmark(KinectFusion(robust_tracking=True), seq,
                              configuration=CONFIG).ate.rmse
            )
        assert np.mean(robust) < np.mean(plain)

    def test_robust_harmless_on_clean_data(self, clean_sequence):
        plain = run_benchmark(KinectFusion(), clean_sequence,
                              configuration=CONFIG)
        robust = run_benchmark(KinectFusion(robust_tracking=True),
                               clean_sequence, configuration=CONFIG)
        # On noiseless data both converge; robust may differ marginally.
        assert robust.ate.rmse < plain.ate.rmse * 2.0
        assert robust.collector.tracked_fraction() == 1.0

    def test_default_is_plain(self):
        assert KinectFusion()._robust_tracking is False
