"""Tests for TSDF integration (fusion of depth frames)."""

import numpy as np
import pytest

from repro.geometry import PinholeCamera, se3
from repro.kfusion import TSDFVolume
from repro.kfusion.integration import MAX_WEIGHT, integrate


@pytest.fixture()
def cam():
    return PinholeCamera.kinect_like(64, 48)


@pytest.fixture()
def pose():
    # Camera at the front-centre of a 2 m volume looking along +z.
    return se3.make_pose(np.eye(3), [1.0, 1.0, 0.0])


def wall_depth(cam, z=1.0):
    return np.full(cam.shape, z)


class TestIntegrate:
    def test_updates_voxels(self, cam, pose):
        v = TSDFVolume(32, 2.0)
        n = integrate(v, wall_depth(cam), cam, pose, mu=0.1)
        assert n > 0
        assert v.occupied_fraction() > 0.0

    def test_zero_crossing_at_surface(self, cam, pose):
        v = TSDFVolume(32, 2.0)
        integrate(v, wall_depth(cam, 1.0), cam, pose, mu=0.2)
        # Sample along the optical axis: in front of the wall the TSDF is
        # positive, behind it negative.
        front = np.array([[1.0, 1.0, 0.8]])
        behind = np.array([[1.0, 1.0, 1.15]])
        vf, okf = v.sample_trilinear(front)
        vb, okb = v.sample_trilinear(behind)
        assert okf.all() and vf[0] > 0.5
        assert okb.all() and vb[0] < 0.0

    def test_occluded_voxels_untouched(self, cam, pose):
        v = TSDFVolume(32, 2.0)
        integrate(v, wall_depth(cam, 1.0), cam, pose, mu=0.1)
        # Deep behind the wall: unobserved.
        _, ok = v.sample_trilinear(np.array([[1.0, 1.0, 1.8]]))
        assert not ok.any()

    def test_invalid_depth_ignored(self, cam, pose):
        v = TSDFVolume(32, 2.0)
        n = integrate(v, np.zeros(cam.shape), cam, pose, mu=0.1)
        assert n == 0

    def test_running_average_converges(self, cam, pose):
        va = TSDFVolume(32, 2.0)
        integrate(va, wall_depth(cam, 1.0), cam, pose, mu=0.2)
        integrate(va, wall_depth(cam, 1.1), cam, pose, mu=0.2)
        probe = np.array([[1.0, 1.0, 1.02]])
        two, _ = va.sample_trilinear(probe)
        vb = TSDFVolume(32, 2.0)
        integrate(vb, wall_depth(cam, 1.0), cam, pose, mu=0.2)
        one, _ = vb.sample_trilinear(probe)
        # After seeing the 1.1 m wall, the field at z=1.02 moves towards
        # "in front of the surface" (larger TSDF).
        assert two[0] > one[0]

    def test_weight_capped(self, cam, pose):
        v = TSDFVolume(16, 2.0)
        for _ in range(5):
            integrate(v, wall_depth(cam, 1.0), cam, pose, mu=0.3)
        assert v.weight.max() <= MAX_WEIGHT

    def test_camera_outside_view_no_update(self, cam):
        v = TSDFVolume(16, 2.0)
        # Looking away from the volume: -z direction.
        away = se3.make_pose(se3.so3_exp([0.0, np.pi, 0.0]), [1.0, 1.0, -1.0])
        n = integrate(v, wall_depth(cam, 1.0), cam, away, mu=0.1)
        assert n == 0
