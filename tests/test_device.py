"""Tests for device models."""

import pytest

from repro.errors import SimulationError
from repro.platforms import CpuCluster, DeviceModel, Gpu


def cluster(**kw):
    defaults = dict(name="big", cores=4, max_freq_ghz=2.0,
                    freqs_ghz=(1.0, 1.5, 2.0), flops_per_cycle=4.0,
                    dynamic_power_w=4.0, static_power_w=0.2)
    defaults.update(kw)
    return CpuCluster(**defaults)


def gpu(**kw):
    defaults = dict(name="mali", gflops=30.0, max_freq_ghz=0.6,
                    freqs_ghz=(0.3, 0.6), bandwidth_gbs=5.0,
                    dynamic_power_w=2.0, static_power_w=0.1)
    defaults.update(kw)
    return Gpu(**defaults)


class TestCpuCluster:
    def test_gflops(self):
        c = cluster()
        assert c.gflops(2.0, 4) == pytest.approx(32.0)
        assert c.gflops(1.0, 1) == pytest.approx(4.0)

    def test_gflops_bad_cores(self):
        with pytest.raises(SimulationError):
            cluster().gflops(2.0, 5)

    def test_dynamic_power_cubic(self):
        c = cluster()
        assert c.dynamic_power(2.0, 4) == pytest.approx(4.0)
        assert c.dynamic_power(1.0, 4) == pytest.approx(0.5)

    def test_nearest_freq(self):
        assert cluster().nearest_freq(1.4) == 1.5

    def test_unsorted_freqs_rejected(self):
        with pytest.raises(SimulationError):
            cluster(freqs_ghz=(2.0, 1.0))

    def test_freq_above_max_rejected(self):
        with pytest.raises(SimulationError):
            cluster(freqs_ghz=(1.0, 3.0))


class TestGpu:
    def test_effective_gflops(self):
        g = gpu()
        assert g.effective_gflops(0.3) == pytest.approx(15.0)

    def test_power_cubic(self):
        g = gpu()
        assert g.dynamic_power(0.3) == pytest.approx(0.25)

    def test_bad_api(self):
        with pytest.raises(SimulationError):
            gpu(api="vulkan")


class TestDeviceModel:
    def _device(self, with_gpu=True):
        return DeviceModel(
            name="dev",
            clusters=(cluster(), cluster(name="little", cores=4,
                                         max_freq_ghz=1.4,
                                         freqs_ghz=(0.7, 1.4),
                                         flops_per_cycle=2.0,
                                         dynamic_power_w=0.8,
                                         static_power_w=0.05)),
            gpu=gpu() if with_gpu else None,
            memory_bandwidth_gbs=8.0,
        )

    def test_biggest_cluster(self):
        assert self._device().biggest_cluster.name == "big"

    def test_total_cores(self):
        assert self._device().total_cores == 8

    def test_cluster_lookup(self):
        d = self._device()
        assert d.cluster("little").cores == 4
        with pytest.raises(SimulationError):
            d.cluster("medium")

    def test_backend_support(self):
        d = self._device()
        assert d.supports_backend("cpp")
        assert d.supports_backend("opencl")
        assert not d.supports_backend("cuda")  # opencl-only GPU
        assert not self._device(with_gpu=False).supports_backend("opencl")

    def test_unknown_backend(self):
        with pytest.raises(SimulationError):
            self._device().supports_backend("metal")
