"""Tests for the measured evaluator (real pipeline in the loop)."""

import pytest

from repro.errors import OptimizationError
from repro.hypermapper import MeasuredEvaluator, kfusion_design_space
from repro.platforms import PlatformConfig


@pytest.fixture(scope="module")
def evaluator(tiny_sequence, odroid):
    return MeasuredEvaluator(
        tiny_sequence, odroid, PlatformConfig(backend="opencl")
    )


def good_config():
    cfg = kfusion_design_space().default_configuration()
    cfg.update({"volume_resolution": 128, "volume_size": 5.0,
                "integration_rate": 1})
    return cfg


class TestMeasuredEvaluator:
    def test_good_config_tracks(self, evaluator):
        e = evaluator.evaluate(good_config())
        assert not e.failed
        assert e.max_ate_m < 0.05
        assert e.runtime_s > 0
        assert e.power_w > 0

    def test_cache_hits(self, evaluator):
        cfg = dict(good_config(), mu_distance=0.09)  # unique to this test
        before = evaluator.evaluations
        a = evaluator.evaluate(cfg)
        b = evaluator.evaluate(cfg)
        assert a is b
        assert evaluator.evaluations == before + 1

    def test_invalid_corner_reported_not_raised(self, evaluator):
        # compute_size_ratio=8 on an 80x60 sequence is an invalid corner of
        # the space; the evaluator must flag it, not crash the search.
        cfg = dict(good_config(), compute_size_ratio=8)
        e = evaluator.evaluate(cfg)
        assert e.failed
        assert e.max_ate_m == float("inf")

    def test_requires_ground_truth(self, tiny_sequence, odroid):
        from repro.core import Frame, SensorSuite
        from repro.datasets import InMemorySequence
        import numpy as np

        frames = [Frame(index=0, timestamp=0.0, depth=np.ones((60, 80)))]
        sensors = SensorSuite(depth=tiny_sequence.sensors.depth)
        seq = InMemorySequence("no_gt", sensors, frames)
        with pytest.raises(OptimizationError):
            MeasuredEvaluator(seq, odroid)

    def test_coarse_volume_cheaper_than_fine(self, evaluator):
        fine = evaluator.evaluate(good_config())
        coarse = evaluator.evaluate(dict(good_config(),
                                         volume_resolution=48))
        assert coarse.runtime_s < fine.runtime_s
