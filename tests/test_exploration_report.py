"""Tests for exploration reporting."""

import pytest

from repro.errors import OptimizationError
from repro.hypermapper import (
    ConstraintSet,
    SurrogateEvaluator,
    accuracy_limit,
    kfusion_design_space,
    random_exploration,
)
from repro.hypermapper.report import (
    exploration_rows,
    exploration_summary,
    save_exploration_csv,
)


@pytest.fixture(scope="module")
def exploration(odroid):
    return random_exploration(
        kfusion_design_space(), SurrogateEvaluator(device=odroid), 40, seed=3
    )


class TestRows:
    def test_one_row_per_evaluation(self, exploration):
        rows = exploration_rows(exploration)
        assert len(rows) == 40
        assert {"runtime_s", "max_ate_m", "power_w",
                "volume_resolution"} <= set(rows[0])

    def test_csv_written(self, exploration, tmp_path):
        path = tmp_path / "samples.csv"
        save_exploration_csv(exploration, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 41
        assert "runtime_s" in lines[0]


class TestSummary:
    def test_summary_mentions_counts(self, exploration):
        text = exploration_summary(
            exploration, ConstraintSet.of([accuracy_limit(0.05)])
        )
        assert "evaluations: 40" in text
        assert "feasible under" in text

    def test_summary_without_constraints(self, exploration):
        text = exploration_summary(exploration)
        assert "random_sampling" in text

    def test_front_table_or_message(self, exploration):
        text = exploration_summary(
            exploration, ConstraintSet.of([accuracy_limit(1e-9)])
        )
        assert "no feasible Pareto front" in text

    def test_empty_rejected(self, exploration):
        from repro.hypermapper.optimizer import ExplorationResult

        empty = ExplorationResult(space=exploration.space, evaluations=[],
                                  method="x", iteration_of=[])
        with pytest.raises(OptimizationError):
            exploration_summary(empty)
        with pytest.raises(OptimizationError):
            save_exploration_csv(empty, "/tmp/never.csv")
