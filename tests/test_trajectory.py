"""Tests for synthetic trajectory generation."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import se3
from repro.scene import FRAME_RATE_HZ, Trajectory, orbit, stationary, sweep


class TestTrajectoryContainer:
    def test_len_and_indexing(self):
        t = orbit((0, 1, 0), radius=1.5, height=1.2, n_frames=10)
        assert len(t) == 10
        assert t[0].shape == (4, 4)

    def test_timestamps_at_30hz(self):
        t = orbit((0, 1, 0), radius=1.5, height=1.2, n_frames=5)
        assert np.allclose(np.diff(t.timestamps), 1.0 / FRAME_RATE_HZ)

    def test_bad_shapes_rejected(self):
        with pytest.raises(GeometryError):
            Trajectory(poses=np.zeros((3, 3, 3)), timestamps=np.zeros(3))
        with pytest.raises(GeometryError):
            Trajectory(poses=np.zeros((3, 4, 4)), timestamps=np.zeros(2))

    def test_relative_starts_at_identity(self):
        t = orbit((0, 1, 0), radius=1.5, height=1.2, n_frames=6)
        rel = t.relative(0)
        assert np.allclose(rel[0], np.eye(4), atol=1e-12)

    def test_path_length_positive(self):
        t = sweep((0, 1, 0), (1, 1, 0), (0, 1, -2), n_frames=10)
        assert t.path_length() == pytest.approx(1.0, rel=1e-6)


class TestGenerators:
    def test_orbit_radius_held(self):
        c = np.array([0.2, 1.0, -0.1])
        t = orbit(c, radius=1.5, height=1.0, n_frames=12, bob_amplitude=0.0)
        r = np.linalg.norm(t.positions[:, [0, 2]] - c[[0, 2]], axis=-1)
        assert np.allclose(r, 1.5, atol=1e-9)

    def test_orbit_looks_at_center(self):
        c = (0.0, 1.0, 0.0)
        t = orbit(c, radius=1.5, height=1.0, n_frames=8, bob_amplitude=0.0)
        for T in t.poses:
            fwd = T[:3, 2]
            to_center = np.asarray(c) - T[:3, 3]
            to_center /= np.linalg.norm(to_center)
            assert np.dot(fwd, to_center) > 0.99

    def test_all_poses_valid(self):
        t = orbit((0, 1, 0), 1.5, 1.2, n_frames=10,
                  jitter_trans_std=0.01, jitter_rot_std=0.01, seed=3)
        for T in t.poses:
            assert se3.is_pose(T, tol=1e-6)

    def test_jitter_deterministic(self):
        a = orbit((0, 1, 0), 1.5, 1.2, 8, jitter_trans_std=0.01, seed=5)
        b = orbit((0, 1, 0), 1.5, 1.2, 8, jitter_trans_std=0.01, seed=5)
        assert np.allclose(a.poses, b.poses)

    def test_jitter_seed_changes(self):
        a = orbit((0, 1, 0), 1.5, 1.2, 8, jitter_trans_std=0.01, seed=5)
        b = orbit((0, 1, 0), 1.5, 1.2, 8, jitter_trans_std=0.01, seed=6)
        assert not np.allclose(a.poses, b.poses)

    def test_sweep_endpoints(self):
        t = sweep((0, 1, 1), (1, 1, 1), (0, 0, -1), n_frames=9)
        assert np.allclose(t.positions[0], [0, 1, 1], atol=1e-9)
        assert np.allclose(t.positions[-1], [1, 1, 1], atol=1e-9)

    def test_sweep_smoothstep_slow_ends(self):
        t = sweep((0, 1, 1), (1, 1, 1), (0, 0, -1), n_frames=21)
        steps = np.linalg.norm(np.diff(t.positions, axis=0), axis=-1)
        assert steps[0] < steps[len(steps) // 2]
        assert steps[-1] < steps[len(steps) // 2]

    def test_stationary(self):
        T = se3.make_pose(np.eye(3), [1, 1, 1])
        t = stationary(T, 5)
        assert np.allclose(t.poses, T)

    def test_too_few_frames_rejected(self):
        with pytest.raises(GeometryError):
            orbit((0, 1, 0), 1.5, 1.2, n_frames=1)
        with pytest.raises(GeometryError):
            sweep((0, 0, 0), (1, 1, 1), (0, 0, -1), n_frames=1)
        with pytest.raises(GeometryError):
            orbit((0, 1, 0), radius=0.0, height=1.2, n_frames=5)
