"""Tests for sensor suite descriptions."""

import pytest

from repro.core import DepthSensor, GroundTruthSensor, RGBSensor, SensorSuite
from repro.errors import DatasetError
from repro.geometry import PinholeCamera


@pytest.fixture()
def cam():
    return PinholeCamera.kinect_like(80, 60)


class TestDepthSensor:
    def test_valid_range(self, cam):
        s = DepthSensor(camera=cam, min_range=0.4, max_range=5.0)
        assert s.min_range == 0.4

    def test_rejects_inverted_range(self, cam):
        with pytest.raises(DatasetError):
            DepthSensor(camera=cam, min_range=5.0, max_range=1.0)

    def test_rejects_negative_min(self, cam):
        with pytest.raises(DatasetError):
            DepthSensor(camera=cam, min_range=-1.0, max_range=1.0)


class TestSensorSuite:
    def test_depth_only(self, cam):
        suite = SensorSuite(depth=DepthSensor(camera=cam))
        assert not suite.has_rgb
        assert not suite.has_ground_truth
        assert suite.require_depth().camera is cam

    def test_require_ground_truth_raises(self, cam):
        suite = SensorSuite(depth=DepthSensor(camera=cam))
        with pytest.raises(DatasetError):
            suite.require_ground_truth()

    def test_full_suite(self, cam):
        suite = SensorSuite(
            depth=DepthSensor(camera=cam),
            rgb=RGBSensor(camera=cam),
            ground_truth=GroundTruthSensor(),
        )
        assert suite.has_rgb
        assert suite.has_ground_truth
        assert suite.require_ground_truth().frame_rate_hz == 30.0
