"""Tests for the static-analysis suite (repro lint, rules RPR001-RPR007)."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    ContractError,
    Severity,
    analyze_paths,
    analyze_source,
    apply_baseline,
    contract,
    load_baseline,
    migrate_baseline,
    parse_contract,
    rule_catalogue,
    run_lint,
    write_baseline,
)
from repro.analysis.consistency import (
    SpecInfo,
    compare_space_and_consumer,
)
from repro.analysis.framework import AnalysisError, PARSE_RULE
from repro.analysis.reporters import format_json, format_text

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src" / "repro"


def rules_of(findings):
    return [f.rule_id for f in findings]


class TestFramework:
    def test_rule_catalogue_complete(self):
        catalogue = rule_catalogue()
        assert set(catalogue) == {
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008", "RPR009", "RPR010",
            "RPR014", "RPR015", "RPR016",
        }
        assert all(title for title in catalogue.values())

    def test_syntax_error_reported_as_rpr000(self):
        findings = analyze_source("def broken(:\n", path="bad.py")
        assert rules_of(findings) == [PARSE_RULE]
        assert findings[0].path == "bad.py"

    def test_unknown_rule_selection_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_source("x = 1\n", select=["RPR999"])

    def test_missing_path_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_paths(["no/such/dir"])

    def test_findings_sorted_by_location(self):
        src = (
            "import time\n"
            "b = time.monotonic()\n"
            "a = time.perf_counter()\n"
        )
        findings = analyze_source(src, select=["RPR001"])
        assert [f.line for f in findings] == [2, 3]


class TestNoqa:
    def test_rule_specific_noqa_suppresses(self):
        src = "import time\nt = time.time()  # noqa: RPR001\n"
        assert analyze_source(src, select=["RPR001"]) == []

    def test_blanket_noqa_suppresses(self):
        src = "import time\nt = time.time()  # noqa\n"
        assert analyze_source(src, select=["RPR001"]) == []

    def test_other_rule_noqa_does_not_suppress(self):
        src = "import time\nt = time.time()  # noqa: RPR002\n"
        assert rules_of(analyze_source(src, select=["RPR001"])) == ["RPR001"]


class TestTimingDiscipline:
    """RPR001."""

    def test_flags_perf_counter(self):
        src = "import time\nstart = time.perf_counter()\n"
        findings = analyze_source(src, path="x.py", select=["RPR001"])
        assert rules_of(findings) == ["RPR001"]
        assert findings[0].line == 2
        assert "telemetry" in findings[0].message

    def test_flags_from_import_alias(self):
        src = "from time import perf_counter as pc\nt = pc()\n"
        findings = analyze_source(src, select=["RPR001"])
        assert rules_of(findings) == ["RPR001"]

    def test_flags_monotonic_and_time(self):
        src = "import time\na = time.time()\nb = time.monotonic()\n"
        assert len(analyze_source(src, select=["RPR001"])) == 2

    def test_telemetry_modules_exempt(self):
        src = "import time\nstart = time.perf_counter()\n"
        findings = analyze_source(
            src, path="src/repro/telemetry/tracer.py", select=["RPR001"]
        )
        assert findings == []

    def test_unrelated_time_attribute_not_flagged(self):
        src = "record = get()\nt = record.time\nd = record.time.perf_counter\n"
        assert analyze_source(src, select=["RPR001"]) == []

    def test_time_sleep_not_flagged(self):
        src = "import time\ntime.sleep(0.1)\n"
        assert analyze_source(src, select=["RPR001"]) == []

    def test_seeded_clock_in_harness_copy_located(self, tmp_path):
        """A sneaked perf_counter in a scratch harness copy is pinpointed."""
        source = (REPO_SRC / "core" / "harness.py").read_text()
        patched = source + (
            "\n\ndef _sneaky_wall_clock():\n"
            "    import time\n"
            "    return time.perf_counter()\n"
        )
        copy = tmp_path / "harness_copy.py"
        copy.write_text(patched)
        expected_line = (
            patched.splitlines().index("    return time.perf_counter()") + 1
        )
        findings = analyze_paths([copy], select=["RPR001"])
        assert rules_of(findings) == ["RPR001"]
        assert findings[0].path == str(copy)
        assert findings[0].line == expected_line


class TestRngDiscipline:
    """RPR002."""

    def test_flags_global_seed(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        findings = analyze_source(src, select=["RPR002"])
        assert rules_of(findings) == ["RPR002"]
        assert "Generator" in findings[0].message

    def test_flags_module_level_draws(self):
        src = (
            "import numpy as np\n"
            "a = np.random.rand(3)\n"
            "b = np.random.normal(0.0, 1.0)\n"
            "c = np.random.randint(10)\n"
        )
        assert len(analyze_source(src, select=["RPR002"])) == 3

    def test_flags_numpy_random_import(self):
        src = "from numpy import random\nx = random.uniform(0, 1)\n"
        findings = analyze_source(src, select=["RPR002"])
        assert rules_of(findings) == ["RPR002"]

    def test_default_rng_allowed(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
            "g = np.random.Generator(np.random.PCG64(1))\n"
        )
        assert analyze_source(src, select=["RPR002"]) == []

    def test_injected_generator_draws_allowed(self):
        src = "def f(rng):\n    return rng.normal(size=3)\n"
        assert analyze_source(src, select=["RPR002"]) == []


class TestErrorPolicy:
    """RPR003."""

    def test_flags_bare_builtin_raise(self):
        src = "def f(x):\n    raise ValueError('bad')\n"
        findings = analyze_source(src, select=["RPR003"])
        assert rules_of(findings) == ["RPR003"]
        assert "ReproError" in findings[0].message

    def test_flags_runtime_error_without_call(self):
        src = "def f():\n    raise RuntimeError\n"
        assert rules_of(analyze_source(src, select=["RPR003"])) == ["RPR003"]

    def test_repro_errors_allowed(self):
        src = (
            "from repro.errors import ConfigurationError\n"
            "def f(x):\n"
            "    raise ConfigurationError('bad')\n"
        )
        assert analyze_source(src, select=["RPR003"]) == []

    def test_programming_errors_allowed(self):
        src = (
            "def f(x):\n"
            "    raise TypeError('wrong type')\n"
            "def g():\n"
            "    raise NotImplementedError\n"
        )
        assert analyze_source(src, select=["RPR003"]) == []

    def test_bare_reraise_allowed(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        raise\n"
        )
        assert analyze_source(src, select=["RPR003"]) == []

    def test_locally_defined_shadow_allowed(self):
        src = (
            "class ValueError(Exception):\n"
            "    pass\n"
            "def f():\n"
            "    raise ValueError('local class, not the builtin')\n"
        )
        assert analyze_source(src, select=["RPR003"]) == []

    def test_main_without_handler_flagged(self):
        src = (
            "def main(argv=None):\n"
            "    return run(argv)\n"
        )
        findings = analyze_source(src, select=["RPR003"])
        assert rules_of(findings) == ["RPR003"]
        assert "traceback" in findings[0].message

    def test_main_with_repro_error_handler_clean(self):
        src = (
            "from repro.errors import ReproError\n"
            "def main(argv=None):\n"
            "    try:\n"
            "        return run(argv)\n"
            "    except ReproError as exc:\n"
            "        print(exc)\n"
            "        return 1\n"
        )
        assert analyze_source(src, select=["RPR003"]) == []

    def test_method_named_main_not_flagged(self):
        src = (
            "class App:\n"
            "    def main(self):\n"
            "        return 0\n"
        )
        assert analyze_source(src, select=["RPR003"]) == []


def _write_rpr004_project(tmp_path, params_src, space_src, pipeline_src):
    root = tmp_path / "proj"
    (root / "kfusion").mkdir(parents=True)
    (root / "hypermapper").mkdir()
    (root / "kfusion" / "params.py").write_text(params_src)
    (root / "hypermapper" / "space.py").write_text(space_src)
    (root / "kfusion" / "pipeline.py").write_text(pipeline_src)
    return root


CLEAN_PARAMS = '''\
DEFAULTS = {"alpha": 2, "beta": 0.5}


def parameter_specs():
    return [
        ParameterSpec("alpha", "integer", DEFAULTS["alpha"], low=1, high=4),
        ParameterSpec("beta", "real", DEFAULTS["beta"], low=0.0, high=1.0),
    ]


class KFusionParams:
    alpha: int = 2
    beta: float = 0.5
'''

CLEAN_SPACE = '''\
def kfusion_design_space():
    return tuple(parameter_specs())
'''

CLEAN_PIPELINE = '''\
def run(params):
    return params.alpha + params.beta
'''


class TestDesignSpaceConsistency:
    """RPR004 — the cross-module checker and its pure comparison core."""

    def test_clean_fixture_passes(self, tmp_path):
        root = _write_rpr004_project(
            tmp_path, CLEAN_PARAMS, CLEAN_SPACE, CLEAN_PIPELINE
        )
        assert analyze_paths([root], select=["RPR004"]) == []

    def test_orphan_default_flagged(self, tmp_path):
        params = CLEAN_PARAMS.replace(
            '"beta": 0.5}', '"beta": 0.5, "gamma": 3}'
        )
        root = _write_rpr004_project(
            tmp_path, params, CLEAN_SPACE, CLEAN_PIPELINE
        )
        findings = analyze_paths([root], select=["RPR004"])
        assert rules_of(findings) == ["RPR004"]
        assert "gamma" in findings[0].message

    def test_default_mismatch_flagged(self, tmp_path):
        params = CLEAN_PARAMS.replace(
            'ParameterSpec("alpha", "integer", DEFAULTS["alpha"],',
            'ParameterSpec("alpha", "integer", 3,',
        )
        root = _write_rpr004_project(
            tmp_path, params, CLEAN_SPACE, CLEAN_PIPELINE
        )
        findings = analyze_paths([root], select=["RPR004"])
        assert any("alpha" in f.message and "!=" in f.message
                   for f in findings)

    def test_unread_knob_flagged(self, tmp_path):
        pipeline = 'def run(params):\n    return params.alpha\n'
        root = _write_rpr004_project(
            tmp_path, CLEAN_PARAMS, CLEAN_SPACE, pipeline
        )
        findings = analyze_paths([root], select=["RPR004"])
        assert any("never read" in f.message and "beta" in f.message
                   for f in findings)

    def test_hand_maintained_space_flagged(self, tmp_path):
        space = 'def kfusion_design_space():\n    return ()\n'
        root = _write_rpr004_project(
            tmp_path, CLEAN_PARAMS, space, CLEAN_PIPELINE
        )
        findings = analyze_paths([root], select=["RPR004"])
        assert any("parameter_specs" in f.message for f in findings)

    def test_not_applied_without_both_modules(self, tmp_path):
        root = tmp_path / "proj"
        (root / "kfusion").mkdir(parents=True)
        (root / "kfusion" / "params.py").write_text(CLEAN_PARAMS)
        assert analyze_paths([root], select=["RPR004"]) == []

    def test_compare_flags_out_of_bounds_default(self):
        spec = SpecInfo(name="alpha", kind="integer", default=9,
                        low=1, high=4, choices=None, lineno=1)
        problems = compare_space_and_consumer(
            [spec], {"alpha": (9, 1)}, {"alpha": (9, 2)}, {"alpha"}
        )
        assert any("outside declared bounds" in msg
                   for _, _, msg in problems)

    def test_compare_flags_missing_consumer_field(self):
        spec = SpecInfo(name="alpha", kind="integer", default=2,
                        low=1, high=4, choices=None, lineno=1)
        problems = compare_space_and_consumer(
            [spec], {"alpha": (2, 1)}, {}, {"alpha"}
        )
        assert any("no KFusionParams field" in msg for _, _, msg in problems)

    def test_compare_flags_field_outside_space(self):
        problems = compare_space_and_consumer(
            [], {}, {"alpha": (2, 7)}, {"alpha"}
        )
        assert any("not declared in the design space" in msg
                   for _, _, msg in problems)

    def test_compare_flags_categorical_default_not_in_choices(self):
        spec = SpecInfo(name="mode", kind="categorical", default="z",
                        low=None, high=None, choices=("a", "b"), lineno=3)
        problems = compare_space_and_consumer(
            [spec], {"mode": ("z", 1)}, {"mode": ("z", 2)}, {"mode"}
        )
        assert any("not among declared choices" in msg
                   for _, _, msg in problems)

    def test_compare_clean_synthetic(self):
        spec = SpecInfo(name="alpha", kind="integer", default=2,
                        low=1, high=4, choices=None, lineno=1)
        assert compare_space_and_consumer(
            [spec], {"alpha": (2, 1)}, {"alpha": (2, 2)}, {"alpha"}
        ) == []

    def test_real_tree_consistent(self):
        findings = analyze_paths([REPO_SRC], select=["RPR004"])
        assert findings == []


class TestContractSyntaxChecker:
    """RPR005 — the static side of @contract."""

    def test_good_contract_clean(self):
        src = (
            "from repro.analysis.contracts import contract\n"
            "@contract(depth='H,W:f64', pose='4,4:f64')\n"
            "def f(depth, pose):\n"
            "    return depth\n"
        )
        assert analyze_source(src, select=["RPR005"]) == []

    def test_malformed_string_flagged(self):
        src = (
            "from repro.analysis.contracts import contract\n"
            "@contract(depth='H,,W:f64')\n"
            "def f(depth):\n"
            "    return depth\n"
        )
        findings = analyze_source(src, select=["RPR005"])
        assert rules_of(findings) == ["RPR005"]

    def test_unknown_dtype_flagged(self):
        src = (
            "from repro.analysis.contracts import contract\n"
            "@contract(depth='H,W:q7')\n"
            "def f(depth):\n"
            "    return depth\n"
        )
        assert rules_of(analyze_source(src, select=["RPR005"])) == ["RPR005"]

    def test_unknown_parameter_flagged(self):
        src = (
            "from repro.analysis.contracts import contract\n"
            "@contract(nope='4,4:f64')\n"
            "def f(depth):\n"
            "    return depth\n"
        )
        findings = analyze_source(src, select=["RPR005"])
        assert "no parameter" in findings[0].message

    def test_contradictory_stacked_decorators_flagged(self):
        src = (
            "from repro.analysis.contracts import contract\n"
            "@contract(x='4,4:f64')\n"
            "@contract(x='3,3:f64')\n"
            "def f(x):\n"
            "    return x\n"
        )
        findings = analyze_source(src, select=["RPR005"])
        assert any("contradictory" in f.message for f in findings)

    def test_non_literal_contract_flagged(self):
        src = (
            "from repro.analysis.contracts import contract\n"
            "SPEC = '4,4:f64'\n"
            "@contract(x=SPEC)\n"
            "def f(x):\n"
            "    return x\n"
        )
        findings = analyze_source(src, select=["RPR005"])
        assert any("string literal" in f.message for f in findings)

    def test_unrelated_decorator_ignored(self):
        src = (
            "def contract_like(**kw):\n"
            "    return lambda f: f\n"
            "@other_decorator(x=1)\n"
            "def f(x):\n"
            "    return x\n"
        )
        assert analyze_source(src, select=["RPR005"]) == []


class TestProcessDisciplineChecker:
    """RPR006 — multiprocessing/concurrent.futures only inside repro.jobs."""

    def test_import_multiprocessing_flagged(self):
        findings = analyze_source("import multiprocessing\n",
                                  path="src/repro/crowd/campaign.py",
                                  select=["RPR006"])
        assert rules_of(findings) == ["RPR006"]

    def test_from_import_flagged(self):
        src = "from multiprocessing import Pool\n"
        assert rules_of(analyze_source(src, path="src/repro/cli.py",
                                       select=["RPR006"])) == ["RPR006"]

    def test_concurrent_futures_flagged(self):
        for src in (
            "from concurrent.futures import ProcessPoolExecutor\n",
            "from concurrent import futures\n",
            "import concurrent.futures\n",
        ):
            findings = analyze_source(src, path="src/repro/core/harness.py",
                                      select=["RPR006"])
            assert rules_of(findings) == ["RPR006"], src

    def test_attribute_use_flagged(self):
        src = (
            "import concurrent\n"
            "def f():\n"
            "    return concurrent.futures.ThreadPoolExecutor()\n"
        )
        findings = analyze_source(src, path="src/repro/core/harness.py",
                                  select=["RPR006"])
        assert rules_of(findings) == ["RPR006"]
        assert findings[0].line == 3

    def test_jobs_modules_exempt(self):
        src = "import multiprocessing\nfrom concurrent import futures\n"
        assert analyze_source(src, path="src/repro/jobs/pool.py",
                              select=["RPR006"]) == []

    def test_unrelated_imports_clean(self):
        src = "import json\nfrom concurrent_lib import thing\n"
        assert analyze_source(src, path="src/repro/cli.py",
                              select=["RPR006"]) == []

    # -- thread-lifecycle arm: Thread/Timer only in repro.jobs/repro.serve
    def test_thread_spawn_flagged_outside_lifecycle_owners(self):
        src = (
            "import threading\n"
            "t = threading.Thread(target=print)\n"
        )
        findings = analyze_source(src, path="src/repro/core/harness.py",
                                  select=["RPR006"])
        assert rules_of(findings) == ["RPR006"]
        assert findings[0].line == 2
        assert "repro.serve" in findings[0].message

    def test_from_import_thread_flagged(self):
        src = (
            "from threading import Thread\n"
            "worker = Thread(target=print)\n"
        )
        findings = analyze_source(src, path="src/repro/telemetry/tracer.py",
                                  select=["RPR006"])
        assert rules_of(findings) == ["RPR006"]

    def test_timer_flagged(self):
        src = "import threading\nthreading.Timer(1.0, print)\n"
        assert rules_of(analyze_source(src, path="src/repro/cli.py",
                                       select=["RPR006"])) == ["RPR006"]

    def test_thread_spawn_allowed_in_serve_and_jobs(self):
        src = "import threading\nt = threading.Thread(target=print)\n"
        for path in ("src/repro/serve/engine.py", "src/repro/jobs/pool.py"):
            assert analyze_source(src, path=path, select=["RPR006"]) == []

    def test_sync_primitives_stay_legal_below_module_scope(self):
        # class/function-scoped primitives are fine anywhere; only the
        # module-scope-lock arm (TestModuleScopeLocks in
        # test_concurrency.py) restricts where process-wide ones live
        src = (
            "import threading\n"
            "tls = threading.local()\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cond = threading.Condition(self._lock)\n"
            "def f():\n"
            "    return threading.Event()\n"
        )
        assert analyze_source(src, path="src/repro/telemetry/tracer.py",
                              select=["RPR006"]) == []


class TestDtypeDisciplineChecker:
    """RPR007 — no float64 temporaries in kfusion/perf hot paths."""

    HOT = "src/repro/perf/raycast.py"

    def test_default_allocator_flagged(self):
        src = "import numpy as np\nbuf = np.zeros((4, 4))\n"
        findings = analyze_source(src, path=self.HOT, select=["RPR007"])
        assert rules_of(findings) == ["RPR007"]
        assert "dtype" in findings[0].message

    def test_explicit_float64_dtype_flagged(self):
        for dtype in ("np.float64", "float", '"float64"'):
            src = (f"import numpy as np\n"
                   f"buf = np.empty(8, dtype={dtype})\n")
            findings = analyze_source(src, path=self.HOT, select=["RPR007"])
            assert rules_of(findings) == ["RPR007"], dtype

    def test_astype_float64_flagged(self):
        src = "def f(x):\n    return x.astype(float)\n"
        findings = analyze_source(src, path=self.HOT, select=["RPR007"])
        assert rules_of(findings) == ["RPR007"]

    def test_float32_clean(self):
        src = (
            "import numpy as np\n"
            "a = np.zeros((4, 4), dtype=np.float32)\n"
            "b = np.full(8, 1.0, dtype=np.float32)\n"
            "c = a.astype(np.float32)\n"
            "d = np.rint(b).astype(np.int32)\n"
        )
        assert analyze_source(src, path=self.HOT, select=["RPR007"]) == []

    def test_f64_waiver_honoured(self):
        src = ("import numpy as np\n"
               "A = x.astype(float)  # f64-ok: solver operates in f64\n")
        assert analyze_source(src, path=self.HOT, select=["RPR007"]) == []

    def test_kfusion_hot_module_in_scope(self):
        src = "import numpy as np\nbuf = np.zeros(3)\n"
        findings = analyze_source(src, path="src/repro/kfusion/tracking.py",
                                  select=["RPR007"])
        assert rules_of(findings) == ["RPR007"]

    def test_cold_modules_exempt(self):
        src = "import numpy as np\nbuf = np.zeros(3, dtype=float)\n"
        for path in ("src/repro/kfusion/params.py",
                     "src/repro/core/harness.py",
                     "src/repro/metrics/ate.py"):
            assert analyze_source(src, path=path, select=["RPR007"]) == [], \
                path


class TestContractRuntime:
    """The runtime side of @contract."""

    def test_parse_contract_roundtrip(self):
        spec = parse_contract("H,W:f64")
        assert spec.dims == ("H", "W")
        assert spec.kind == "f"
        assert not spec.ellipsis_leading
        spec = parse_contract("...,3:f64")
        assert spec.ellipsis_leading
        assert spec.dims == (3,)

    @pytest.mark.parametrize("bad", [
        "", "H,,W:f64", "4,4:q7", "H,...:f64", "-1,4:f64", "...",
    ])
    def test_parse_contract_rejects(self, bad):
        with pytest.raises(ContractError):
            parse_contract(bad)

    def test_matching_call_passes(self):
        @contract(pose="4,4:f64", points="...,3:f64")
        def f(pose, points):
            return points.shape

        assert f(np.eye(4), np.zeros((7, 3))) == (7, 3)
        assert f(np.eye(4), np.zeros((2, 5, 3))) == (2, 5, 3)

    def test_wrong_shape_rejected(self):
        @contract(pose="4,4:f64")
        def f(pose):
            return pose

        with pytest.raises(ContractError):
            f(np.eye(3))

    def test_wrong_trailing_dim_rejected(self):
        @contract(points="...,3:f64")
        def f(points):
            return points

        with pytest.raises(ContractError):
            f(np.zeros((5, 2)))

    def test_symbolic_dims_bind_within_call(self):
        @contract(a="H,W:f64", b="H,W:f64")
        def f(a, b):
            return a + b

        f(np.zeros((2, 3)), np.ones((2, 3)))
        with pytest.raises(ContractError):
            f(np.zeros((2, 3)), np.ones((3, 2)))

    def test_dtype_kind_enforced_with_widening(self):
        @contract(x="N:f64")
        def f(x):
            return x

        f(np.zeros(3))                  # float: exact
        f(np.zeros(3, dtype=np.int32))  # int widens to float: fine

        @contract(x="N:i64")
        def g(x):
            return x

        with pytest.raises(ContractError):
            g(np.zeros(3))              # float does not narrow to int

    def test_non_ndarray_arguments_skipped(self):
        @contract(points="...,3:f64")
        def f(points):
            return np.asarray(points)

        assert f([[1.0, 2.0, 3.0]]).shape == (1, 3)

    def test_keyword_call_checked(self):
        @contract(pose="4,4:f64")
        def f(a, pose=None):
            return pose

        with pytest.raises(ContractError):
            f(1, pose=np.eye(3))

    def test_unknown_parameter_fails_at_decoration(self):
        with pytest.raises(ContractError):
            @contract(nope="4,4:f64")
            def f(pose):
                return pose

    def test_contradictory_stack_fails_at_decoration(self):
        with pytest.raises(ContractError):
            @contract(x="4,4:f64")
            @contract(x="3,3:f64")
            def f(x):
                return x

    def test_contracts_attribute_merged(self):
        @contract(a="4,4:f64")
        @contract(b="N:f64")
        def f(a, b):
            return a

        assert set(f.__repro_contracts__) == {"a", "b"}


class TestBaseline:
    def _findings(self, tmp_path, n=2):
        src = "import time\n" + "x = time.time()\n" * n
        f = tmp_path / "legacy.py"
        f.write_text(src)
        return f, analyze_paths([f], select=["RPR001"])

    def test_roundtrip_suppresses_known_findings(self, tmp_path):
        _, findings = self._findings(tmp_path)
        path = tmp_path / "baseline.json"
        assert write_baseline(findings, path) == 2
        kept, suppressed = apply_baseline(findings, load_baseline(path))
        assert kept == []
        assert suppressed == 2

    def test_new_findings_exceed_allowance(self, tmp_path):
        _, findings = self._findings(tmp_path, n=1)
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        _, grown = self._findings(tmp_path, n=3)
        kept, suppressed = apply_baseline(grown, load_baseline(path))
        assert suppressed == 1
        assert len(kept) == 2

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(AnalysisError):
            load_baseline(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "fingerprints": {}}))
        with pytest.raises(AnalysisError):
            load_baseline(path)


class TestFingerprintV2:
    """Stable fingerprints: content + rule + symbol, no line numbers."""

    def _analyze(self, tmp_path, src, name="mod.py"):
        f = tmp_path / name
        f.write_text(src)
        return analyze_paths([f], select=["RPR001"])

    def test_fingerprint_survives_line_insertion(self, tmp_path):
        before = self._analyze(tmp_path, "import time\nx = time.time()\n")
        after = self._analyze(
            tmp_path,
            "import time\n\n\n# a new comment block\n\nx = time.time()\n",
        )
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint
        # the legacy v1 key was line-free too but message-anchored
        assert before[0].fingerprint_v1 == after[0].fingerprint_v1

    def test_symbol_disambiguates_identical_content(self, tmp_path):
        findings = self._analyze(
            tmp_path,
            "import time\n"
            "def f():\n"
            "    return time.time()\n"
            "def g():\n"
            "    return time.time()\n",
        )
        assert len(findings) == 2
        assert findings[0].content == findings[1].content
        assert {f.symbol for f in findings} == {"f", "g"}
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_v1_baseline_still_applies(self, tmp_path):
        findings = self._analyze(tmp_path, "import time\nx = time.time()\n")
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "fingerprints": {f.fingerprint_v1: 1 for f in findings},
        }))
        kept, suppressed = apply_baseline(findings, load_baseline(path))
        assert kept == [] and suppressed == 1

    def test_migration_rewrites_to_v2_and_drops_stale(self, tmp_path):
        findings = self._analyze(tmp_path, "import time\nx = time.time()\n")
        path = tmp_path / "baseline.json"
        fingerprints = {f.fingerprint_v1: 1 for f in findings}
        fingerprints["RPR001::gone.py::some deleted finding"] = 3
        path.write_text(json.dumps({"version": 1,
                                    "fingerprints": fingerprints}))
        migrated, dropped = migrate_baseline(findings, path)
        assert migrated == 1
        assert dropped == 3  # stale *allowances*, not distinct keys
        doc = json.loads(path.read_text())
        assert doc["version"] == 2
        kept, suppressed = apply_baseline(findings, load_baseline(path))
        assert kept == [] and suppressed == 1


class TestReporters:
    def _one_finding(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("import time\nt = time.time()\n")
        return analyze_paths([f], select=["RPR001"])

    def test_text_report(self, tmp_path):
        findings = self._one_finding(tmp_path)
        text = format_text(findings, suppressed=1)
        assert f"{findings[0].path}:2:" in text
        assert "RPR001" in text
        assert "1 error(s), 0 warning(s), 1 baseline-suppressed" in text

    def test_text_report_clean(self):
        assert format_text([]).startswith("clean:")

    def test_json_report_shape(self, tmp_path):
        findings = self._one_finding(tmp_path)
        doc = json.loads(format_json(findings))
        assert doc["summary"]["total"] == 1
        assert doc["summary"]["by_rule"] == {"RPR001": 1}
        entry = doc["findings"][0]
        assert entry["rule"] == "RPR001"
        assert entry["line"] == 2
        assert entry["severity"] == str(Severity.ERROR)


class TestRunLint:
    def test_clean_tree_exits_zero(self, tmp_path):
        f = tmp_path / "ok.py"
        f.write_text("x = 1\n")
        out = []
        assert run_lint([str(f)], echo=out.append) == 0
        assert out[0].startswith("clean:")

    def test_findings_exit_one(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("import time\nt = time.time()\n")
        out = []
        assert run_lint([str(f)], echo=out.append) == 1
        assert "RPR001" in out[0]

    def test_baseline_workflow(self, tmp_path):
        f = tmp_path / "legacy.py"
        f.write_text("import time\nt = time.time()\n")
        baseline = tmp_path / ".reprolint.json"
        out = []
        assert run_lint([str(f)], baseline_path=str(baseline),
                        update_baseline=True, echo=out.append) == 0
        assert baseline.is_file()
        # The accepted debt no longer fails the run...
        assert run_lint([str(f)], baseline_path=str(baseline),
                        echo=out.append) == 0
        # ...but a new violation still does.
        f.write_text("import time\nt = time.time()\nu = time.monotonic()\n")
        assert run_lint([str(f)], baseline_path=str(baseline),
                        echo=out.append) == 1

    def test_select_restricts_rules(self, tmp_path):
        f = tmp_path / "mixed.py"
        f.write_text(
            "import time\n"
            "def f():\n"
            "    raise ValueError(time.time())\n"
        )
        out = []
        assert run_lint([str(f)], select=["RPR003"], echo=out.append) == 1
        assert "RPR001" not in out[0] and "RPR003" in out[0]


class TestCli:
    def test_lint_subcommand_json(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "bad.py"
        f.write_text("import numpy as np\nnp.random.seed(0)\n")
        code = main(["lint", str(f), "--format", "json",
                     "--baseline", str(tmp_path / "none.json")])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["by_rule"] == {"RPR002": 1}

    def test_lint_subcommand_clean(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "ok.py"
        f.write_text("x = 1\n")
        assert main(["lint", str(f)]) == 0
        assert capsys.readouterr().out.startswith("clean:")

    def test_lint_select_flag(self, tmp_path, capsys):
        from repro.cli import main

        f = tmp_path / "bad.py"
        f.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(f), "--select", "RPR002"]) == 0
        capsys.readouterr()


class TestRepoIsClean:
    def test_src_repro_has_no_new_findings(self, monkeypatch):
        """The tree must satisfy its own linter, modulo the committed
        baseline (the reference backend's accepted RPR007 findings).
        Lints from the repo root so fingerprints match CI's invocation."""
        monkeypatch.chdir(REPO_ROOT)
        findings = analyze_paths(["src/repro"])
        baseline = load_baseline(REPO_ROOT / ".reprolint.json")
        kept, _suppressed = apply_baseline(findings, baseline)
        assert kept == []

    def test_baseline_only_covers_reference_kernels(self):
        """The committed baseline may only waive RPR007 in the reference
        kfusion kernels — repro.perf must be natively clean."""
        baseline = load_baseline(REPO_ROOT / ".reprolint.json")
        for fingerprint in baseline:
            rule, path, _ = fingerprint.split("::", 2)
            assert rule == "RPR007", fingerprint
            assert path.startswith("src/repro/kfusion/"), fingerprint
