"""Property-based tests for the ML substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    r2_score,
    spearman_rank_correlation,
)
from repro.ml.validation import _ranks

features = arrays(
    np.float64,
    st.tuples(st.integers(min_value=6, max_value=60),
              st.integers(min_value=1, max_value=4)),
    elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
)


@given(X=features, data=st.data())
@settings(max_examples=40, deadline=None)
def test_regressor_predictions_within_target_range(X, data):
    y = np.asarray(
        data.draw(
            arrays(np.float64, len(X),
                   elements=st.floats(min_value=-10.0, max_value=10.0,
                                      allow_nan=False))
        )
    )
    tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
    pred = tree.predict(X)
    # Leaf values are means of subsets: predictions stay in [min, max].
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9


@given(X=features, data=st.data())
@settings(max_examples=40, deadline=None)
def test_classifier_predicts_known_labels(X, data):
    y = np.asarray(
        data.draw(arrays(np.int64, len(X),
                         elements=st.integers(min_value=0, max_value=2)))
    )
    tree = DecisionTreeClassifier(max_depth=8).fit(X, y)
    pred = tree.predict(X)
    assert set(np.unique(pred)) <= set(np.unique(y))


@given(X=features)
@settings(max_examples=40, deadline=None)
def test_deep_regressor_interpolates_distinct_rows(X):
    # With all-distinct rows a deep tree reproduces the training targets.
    X = np.unique(X, axis=0)
    if len(X) < 2:
        return
    y = np.arange(len(X), dtype=float)
    tree = DecisionTreeRegressor(max_depth=40).fit(X, y)
    pred = tree.predict(X)
    # Rows identical in all features must share a prediction; distinct rows
    # may still collide only if identical.
    for i in range(len(X)):
        same = np.all(X == X[i], axis=1)
        assert np.allclose(pred[same], pred[same][0])


@given(a=arrays(np.float64, st.integers(min_value=2, max_value=40),
                elements=st.floats(min_value=-100, max_value=100,
                                   allow_nan=False)))
@settings(max_examples=60, deadline=None)
def test_spearman_self_correlation(a):
    if np.ptp(a) == 0:
        assert spearman_rank_correlation(a, a) == 0.0
    else:
        assert spearman_rank_correlation(a, a) == 1.0


@given(a=arrays(np.float64, st.integers(min_value=2, max_value=40),
                elements=st.floats(min_value=-100, max_value=100,
                                   allow_nan=False)))
@settings(max_examples=60, deadline=None)
def test_ranks_are_permutation_sums(a):
    r = _ranks(a)
    # Average ranks always sum to n(n-1)/2.
    n = len(a)
    assert np.isclose(r.sum(), n * (n - 1) / 2.0)


@given(y=arrays(np.float64, st.integers(min_value=2, max_value=30),
                elements=st.floats(min_value=-10, max_value=10,
                                   allow_nan=False)))
@settings(max_examples=60, deadline=None)
def test_r2_of_perfect_prediction(y):
    assert r2_score(y, y) == 1.0
