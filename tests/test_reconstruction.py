"""Tests for map-quality evaluation against the ground-truth scene."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.geometry import PinholeCamera, se3
from repro.kfusion import TSDFVolume
from repro.kfusion.integration import integrate
from repro.metrics import reconstruction_error
from repro.scene import render_depth


class TestReconstruction:
    def test_fused_frame_matches_scene(self, scene):
        cam = PinholeCamera.kinect_like(80, 60)
        world_pose = se3.look_at((1.5, 1.2, 1.5), scene.center, up=(0, 1, 0))
        vol_pose = se3.make_pose(np.eye(3), [2.5, 2.5, 0.0])
        depth = render_depth(scene, cam, world_pose)
        volume = TSDFVolume(128, 5.0)
        integrate(volume, depth, cam, vol_pose, mu=0.1)

        world_from_volume = world_pose @ se3.inverse(vol_pose)
        res = reconstruction_error(volume, scene, world_from_volume)
        assert res.surface_points > 100
        assert res.mean_abs < 0.05
        assert res.completeness > 0.7
        assert res.p95 >= res.mean_abs

    def test_wrong_alignment_increases_error(self, scene):
        cam = PinholeCamera.kinect_like(80, 60)
        world_pose = se3.look_at((1.5, 1.2, 1.5), scene.center, up=(0, 1, 0))
        vol_pose = se3.make_pose(np.eye(3), [2.5, 2.5, 0.0])
        depth = render_depth(scene, cam, world_pose)
        volume = TSDFVolume(64, 5.0)
        integrate(volume, depth, cam, vol_pose, mu=0.1)

        good = world_pose @ se3.inverse(vol_pose)
        bad = se3.make_pose(np.eye(3), [0.3, 0.0, 0.0]) @ good
        res_good = reconstruction_error(volume, scene, good)
        res_bad = reconstruction_error(volume, scene, bad)
        assert res_bad.mean_abs > res_good.mean_abs * 2

    def test_empty_volume_rejected(self, scene):
        with pytest.raises(DatasetError):
            reconstruction_error(TSDFVolume(16, 2.0), scene, np.eye(4))

    def test_subsampling_cap(self, scene):
        cam = PinholeCamera.kinect_like(80, 60)
        world_pose = se3.look_at((1.5, 1.2, 1.5), scene.center, up=(0, 1, 0))
        vol_pose = se3.make_pose(np.eye(3), [2.5, 2.5, 0.0])
        depth = render_depth(scene, cam, world_pose)
        volume = TSDFVolume(128, 5.0)
        integrate(volume, depth, cam, vol_pose, mu=0.15)
        res = reconstruction_error(volume, scene,
                                   world_pose @ se3.inverse(vol_pose),
                                   max_points=500)
        assert res.surface_points == 500
