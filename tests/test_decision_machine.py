"""Tests for the mobile decision machine (the poster's future work)."""

import numpy as np
import pytest

from repro.crowd.decision_machine import (
    FEATURE_NAMES,
    PORTFOLIO,
    DecisionMachine,
    device_features,
    oracle_label,
    portfolio_fps,
    portfolio_params,
    train_test_devices,
)
from repro.errors import OptimizationError, SimulationError
from repro.hypermapper.surrogate import surrogate_max_ate
from repro.platforms import phone_database


class TestPortfolio:
    def test_ordered_most_accurate_first(self):
        """The quality rank must match the surrogate's accuracy surface."""
        base = {
            "volume_size": 4.8, "mu_distance": 0.1, "icp_threshold": 1e-5,
            "pyramid_iterations_l1": 4, "pyramid_iterations_l2": 4,
            "tracking_rate": 1,
        }
        ates = []
        for entry in PORTFOLIO:
            config = {**base, **entry}
            config.setdefault("pyramid_iterations_l0", 8)
            ate, _ = surrogate_max_ate(config)
            ates.append(ate)
        # Monotone non-decreasing ATE along the portfolio (small noise
        # tolerance from the configuration-hashed scatter).
        for a, b in zip(ates, ates[1:]):
            assert b > a * 0.85

    def test_params_valid(self):
        for index in range(len(PORTFOLIO)):
            p = portfolio_params(index)
            assert p.volume_resolution >= 48

    def test_bad_index(self):
        with pytest.raises(OptimizationError):
            portfolio_params(len(PORTFOLIO))

    def test_fps_monotone_per_device(self):
        device = phone_database()[0]
        fps = portfolio_fps(device, n_frames=6)
        assert all(b > a for a, b in zip(fps, fps[1:]))


class TestOracle:
    def test_picks_most_accurate_feasible(self):
        assert oracle_label([10.0, 20.0, 35.0, 50.0], 30.0) == 2

    def test_all_infeasible_picks_fastest(self):
        assert oracle_label([5.0, 10.0, 20.0], 30.0) == 2

    def test_all_feasible_picks_best(self):
        assert oracle_label([40.0, 50.0], 30.0) == 0


class TestFeatures:
    def test_feature_vector_shape(self):
        f = device_features(phone_database()[0])
        assert f.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(f))

    def test_flagship_vs_budget_separable(self):
        db = {d.name: d for d in phone_database()}
        s7 = device_features(db["Samsung Galaxy S7"])
        moto = device_features(db["Motorola Moto G 2014"])
        assert s7[0] > moto[0]  # gpu gflops


class TestMachine:
    @pytest.fixture(scope="class")
    def fitted(self):
        train, test = train_test_devices(seed=1)
        return DecisionMachine(seed=0).fit(train), train, test

    def test_generalises_to_held_out(self, fitted):
        dm, _, test = fitted
        ev = dm.evaluate(test)
        assert ev.within_one >= 0.8
        assert ev.realtime_fraction >= 0.9

    def test_beats_fixed_configuration_on_quality(self, fitted):
        dm, _, test = fitted
        ev = dm.evaluate(test, fixed_index=2)
        assert ev.mean_quality_regret <= ev.mean_quality_loss_fixed

    def test_recommend_returns_params(self, fitted):
        dm, _, test = fitted
        p = dm.recommend(test[0])
        assert p.volume_resolution in {e["volume_resolution"]
                                       for e in PORTFOLIO}

    def test_weak_device_gets_lighter_config(self, fitted):
        dm, _, _ = fitted
        db = {d.name: d for d in phone_database()}
        weak = dm.predict(db["Motorola Moto G 2014"])
        strong = dm.predict(db["Samsung Galaxy S7"])
        assert weak >= strong

    def test_unfitted_rejected(self):
        dm = DecisionMachine()
        with pytest.raises(OptimizationError):
            dm.predict(phone_database()[0])
        with pytest.raises(OptimizationError):
            dm.evaluate(phone_database()[:3])

    def test_too_few_training_devices(self):
        with pytest.raises(OptimizationError):
            DecisionMachine().fit(phone_database()[:3])

    def test_empty_evaluation_rejected(self, fitted):
        dm, _, _ = fitted
        with pytest.raises(SimulationError):
            dm.evaluate([])


class TestSplit:
    def test_split_disjoint_and_complete(self):
        train, test = train_test_devices(test_fraction=0.3, seed=4)
        names_train = {d.name for d in train}
        names_test = {d.name for d in test}
        assert not names_train & names_test
        assert len(names_train) + len(names_test) == 83
