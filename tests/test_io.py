"""Tests for sequence serialisation round-trips."""

import numpy as np
import pytest

from repro.datasets import icl_nuim, load_sequence, save_sequence
from repro.errors import DatasetError


class TestRoundTrip:
    def test_depth_and_gt_preserved(self, tmp_path, tiny_sequence):
        path = str(tmp_path / "seq.npz")
        save_sequence(tiny_sequence, path)
        loaded = load_sequence(path)
        assert loaded.name == tiny_sequence.name
        assert len(loaded) == len(tiny_sequence)
        # float32 storage: compare with tolerance.
        assert np.allclose(loaded.frame(0).depth, tiny_sequence.frame(0).depth,
                           atol=1e-5)
        assert np.allclose(loaded.frame(3).ground_truth_pose,
                           tiny_sequence.frame(3).ground_truth_pose)
        loaded.validate()

    def test_camera_preserved(self, tmp_path, tiny_sequence):
        path = str(tmp_path / "seq.npz")
        save_sequence(tiny_sequence, path)
        loaded = load_sequence(path)
        cam_a = tiny_sequence.sensors.depth.camera
        cam_b = loaded.sensors.depth.camera
        assert cam_a.shape == cam_b.shape
        assert cam_a.fx == pytest.approx(cam_b.fx)

    def test_rgb_round_trip(self, tmp_path):
        seq = icl_nuim.load("lr_kt0", n_frames=2, width=32, height=24,
                            with_rgb=True)
        path = str(tmp_path / "rgb.npz")
        save_sequence(seq, path)
        loaded = load_sequence(path)
        assert loaded.sensors.has_rgb
        # uint8 storage: 1/255 tolerance.
        assert np.allclose(loaded.frame(0).rgb, seq.frame(0).rgb, atol=1 / 200)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_sequence(str(tmp_path / "nope.npz"))

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz at all")
        with pytest.raises(DatasetError):
            load_sequence(str(path))

    def test_timestamps_preserved(self, tmp_path, tiny_sequence):
        path = str(tmp_path / "seq.npz")
        save_sequence(tiny_sequence, path)
        loaded = load_sequence(path)
        assert loaded.frame(5).timestamp == pytest.approx(
            tiny_sequence.frame(5).timestamp
        )
