"""Tests for the Kinect noise model."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.scene import KinectNoiseModel


@pytest.fixture()
def smooth_depth():
    d = np.full((60, 80), 2.0)
    d[:, 40:] = 3.0  # a depth edge down the middle
    return d


class TestValidation:
    def test_negative_params_rejected(self):
        with pytest.raises(DatasetError):
            KinectNoiseModel(axial_sigma_at_1m=-1.0)

    def test_dropout_over_one_rejected(self):
        with pytest.raises(DatasetError):
            KinectNoiseModel(dropout_rate=1.5)

    def test_non_2d_rejected(self, rng):
        with pytest.raises(DatasetError):
            KinectNoiseModel().apply(np.zeros(10), rng)


class TestNoiseless:
    def test_identity(self, smooth_depth, rng):
        out = KinectNoiseModel.noiseless().apply(smooth_depth, rng)
        assert np.array_equal(out, smooth_depth)


class TestCorruption:
    def test_axial_noise_grows_with_depth(self, rng):
        model = KinectNoiseModel(axial_sigma_at_1m=0.002, lateral_pixels=0,
                                 dropout_rate=0, edge_dropout_boost=0,
                                 quantization_m=0)
        near = np.full((50, 50), 1.0)
        far = np.full((50, 50), 4.0)
        dn = model.apply(near, np.random.default_rng(0)) - near
        df = model.apply(far, np.random.default_rng(0)) - far
        assert df.std() > dn.std() * 4

    def test_dropout_invalidates_pixels(self, smooth_depth):
        model = KinectNoiseModel(axial_sigma_at_1m=0, lateral_pixels=0,
                                 dropout_rate=0.2, edge_dropout_boost=0,
                                 quantization_m=0)
        out = model.apply(smooth_depth, np.random.default_rng(0))
        frac = (out == 0).mean()
        assert 0.1 < frac < 0.3

    def test_edge_dropout_concentrates_at_edges(self, smooth_depth):
        model = KinectNoiseModel(axial_sigma_at_1m=0, lateral_pixels=0,
                                 dropout_rate=0.0, edge_dropout_boost=0.9,
                                 quantization_m=0)
        out = model.apply(smooth_depth, np.random.default_rng(0))
        dropped = out == 0
        edge_cols = dropped[:, 38:42].mean()
        flat_cols = dropped[:, 5:20].mean()
        assert edge_cols > 0.3
        assert flat_cols < 0.05

    def test_quantization_discretises(self):
        model = KinectNoiseModel(axial_sigma_at_1m=0, lateral_pixels=0,
                                 dropout_rate=0, edge_dropout_boost=0,
                                 quantization_m=0.01)
        d = np.full((10, 10), 2.0) + np.linspace(0, 0.001, 100).reshape(10, 10)
        out = model.apply(d, np.random.default_rng(0))
        assert len(np.unique(out)) < 20

    def test_never_negative(self, smooth_depth):
        out = KinectNoiseModel.harsh().apply(smooth_depth,
                                             np.random.default_rng(0))
        assert np.all(out >= 0.0)

    def test_invalid_stays_invalid(self, rng):
        d = np.zeros((20, 20))
        out = KinectNoiseModel.harsh().apply(d, rng)
        assert np.all(out == 0.0)

    def test_presets_ordered_by_strength(self):
        mild = KinectNoiseModel.mild()
        harsh = KinectNoiseModel.harsh()
        assert mild.axial_sigma_at_1m < harsh.axial_sigma_at_1m
        assert mild.dropout_rate < harsh.dropout_rate
