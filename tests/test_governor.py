"""Tests for the DVFS governor simulation."""

import pytest

from repro.errors import SimulationError
from repro.kfusion.params import KFusionParams
from repro.kfusion.workload_model import sequence_workloads
from repro.platforms.governor import GOVERNORS, simulate_with_governor


@pytest.fixture(scope="module")
def light_workloads():
    """A light configuration: finishes well within the frame period."""
    params = KFusionParams(volume_resolution=64, compute_size_ratio=2,
                           integration_rate=4)
    return sequence_workloads(params, 320, 240, 20)


@pytest.fixture(scope="module")
def heavy_workloads():
    """The default configuration: far over the frame period on the board."""
    return sequence_workloads(KFusionParams(integration_rate=1), 320, 240, 10)


class TestGovernors:
    def test_performance_pins_max(self, odroid, light_workloads):
        res = simulate_with_governor(odroid, light_workloads, "performance")
        assert set(res.gpu_freqs_ghz) == {odroid.gpu.max_freq_ghz}
        assert res.realtime_fraction == 1.0

    def test_powersave_pins_min(self, odroid, light_workloads):
        res = simulate_with_governor(odroid, light_workloads, "powersave")
        assert set(res.gpu_freqs_ghz) == {odroid.gpu.freqs_ghz[0]}

    def test_powersave_cheaper_and_slower(self, odroid, light_workloads):
        perf = simulate_with_governor(odroid, light_workloads, "performance")
        save = simulate_with_governor(odroid, light_workloads, "powersave")
        assert save.mean_frame_time_s > perf.mean_frame_time_s
        assert save.energy_j < perf.energy_j

    def test_ondemand_downclocks_light_load(self, odroid, light_workloads):
        res = simulate_with_governor(odroid, light_workloads, "ondemand")
        # The governor walks the clocks down over the sequence.
        assert res.gpu_freqs_ghz[-1] < res.gpu_freqs_ghz[0]

    def test_ondemand_keeps_heavy_load_clocked(self, odroid,
                                               heavy_workloads):
        res = simulate_with_governor(odroid, heavy_workloads, "ondemand")
        assert res.gpu_freqs_ghz[-1] == odroid.gpu.max_freq_ghz

    def test_ondemand_between_extremes_on_power(self, odroid,
                                                light_workloads):
        perf = simulate_with_governor(odroid, light_workloads, "performance")
        onde = simulate_with_governor(odroid, light_workloads, "ondemand")
        assert onde.streaming_power_w <= perf.streaming_power_w + 1e-9

    def test_unknown_governor(self, odroid, light_workloads):
        with pytest.raises(SimulationError):
            simulate_with_governor(odroid, light_workloads, "schedutil")

    def test_empty_workloads(self, odroid):
        with pytest.raises(SimulationError):
            simulate_with_governor(odroid, [], "ondemand")

    def test_all_governors_listed(self):
        assert set(GOVERNORS) == {"performance", "powersave", "ondemand"}
