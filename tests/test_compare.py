"""Tests for the comparison-matrix harness."""

import pytest

from repro.baselines import ICPOdometry, StaticSLAM
from repro.core.compare import MatrixEntry, run_matrix
from repro.datasets import icl_nuim
from repro.errors import ConfigurationError
from repro.kfusion import KinectFusion


@pytest.fixture(scope="module")
def sequences():
    return [
        icl_nuim.load("lr_kt0", n_frames=6, width=80, height=60),
        icl_nuim.load("lr_kt2", n_frames=6, width=80, height=60),
    ]


@pytest.fixture(scope="module")
def matrix(sequences):
    entries = [
        MatrixEntry("kfusion_128", KinectFusion,
                    {"volume_resolution": 128, "volume_size": 5.0,
                     "integration_rate": 1}),
        MatrixEntry("odometry", ICPOdometry, {}),
        MatrixEntry("static", StaticSLAM, {}),
    ]
    return run_matrix(entries, sequences)


class TestRunMatrix:
    def test_all_cells_present(self, matrix):
        assert matrix.entry_names == ["kfusion_128", "odometry", "static"]
        assert matrix.sequence_names == ["lr_kt0", "lr_kt2"]
        for entry in matrix.entry_names:
            for seq in matrix.sequence_names:
                assert matrix.get(entry, seq) is not None

    def test_cross_table(self, matrix):
        text = matrix.table("ate_max_m")
        assert "lr_kt0" in text and "lr_kt2" in text
        assert "kfusion_128" in text

    def test_cell_rows_flat(self, matrix):
        rows = matrix.cell_rows()
        assert len(rows) == 6
        assert {"entry", "sequence", "ate_max_m"} <= set(rows[0])

    def test_errors_recorded_not_raised(self, sequences):
        entries = [
            MatrixEntry("bad_ratio", KinectFusion,
                        {"compute_size_ratio": 8, "volume_size": 5.0}),
            MatrixEntry("odometry", ICPOdometry, {}),
        ]
        matrix = run_matrix(entries, sequences[:1])
        # The invalid entry failed on its cell; the other cell survived.
        with pytest.raises(ConfigurationError):
            matrix.get("bad_ratio", "lr_kt0")
        assert matrix.get("odometry", "lr_kt0") is not None
        assert "ERR" in matrix.table()

    def test_fail_fast(self, sequences):
        entries = [
            MatrixEntry("bad_ratio", KinectFusion,
                        {"compute_size_ratio": 8, "volume_size": 5.0}),
        ]
        with pytest.raises(ConfigurationError):
            run_matrix(entries, sequences[:1], fail_fast=True)

    def test_parallel_matches_serial(self, sequences, matrix):
        entries = [
            MatrixEntry("kfusion_128", KinectFusion,
                        {"volume_resolution": 128, "volume_size": 5.0,
                         "integration_rate": 1}),
            MatrixEntry("odometry", ICPOdometry, {}),
            MatrixEntry("static", StaticSLAM, {}),
        ]
        parallel = run_matrix(entries, sequences, workers=2)
        assert not parallel.errors
        for key, result in matrix.results.items():
            assert parallel.results[key].summary() == result.summary()

    def test_parallel_errors_recorded(self, sequences):
        entries = [
            MatrixEntry("bad_ratio", KinectFusion,
                        {"compute_size_ratio": 8, "volume_size": 5.0}),
            MatrixEntry("odometry", ICPOdometry, {}),
        ]
        parallel = run_matrix(entries, sequences[:1], workers=2)
        with pytest.raises(ConfigurationError):
            parallel.get("bad_ratio", "lr_kt0")
        assert parallel.get("odometry", "lr_kt0") is not None

    def test_validation(self, sequences):
        with pytest.raises(ConfigurationError):
            run_matrix([], sequences)
        entry = MatrixEntry("a", StaticSLAM, {})
        with pytest.raises(ConfigurationError):
            run_matrix([entry], [])
        with pytest.raises(ConfigurationError):
            run_matrix([entry, entry], sequences)
