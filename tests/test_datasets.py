"""Tests for the dataset layer: base sequences, synthetic generation,
preset loaders."""

import numpy as np
import pytest

from repro.core import Frame
from repro.datasets import InMemorySequence, SyntheticSequence, icl_nuim, tum
from repro.errors import DatasetError
from repro.scene import KinectNoiseModel


class TestInMemorySequence:
    def _frames(self, n=3, shape=(60, 80)):
        return [
            Frame(index=i, timestamp=i / 30.0, depth=np.ones(shape),
                  ground_truth_pose=np.eye(4))
            for i in range(n)
        ]

    def test_iteration_and_indexing(self, tiny_sequence):
        seq = InMemorySequence("x", tiny_sequence.sensors, self._frames())
        assert len(seq) == 3
        assert [f.index for f in seq] == [0, 1, 2]

    def test_out_of_range(self, tiny_sequence):
        seq = InMemorySequence("x", tiny_sequence.sensors, self._frames())
        with pytest.raises(DatasetError):
            seq.frame(3)
        with pytest.raises(DatasetError):
            seq.frame(-1)

    def test_empty_rejected(self, tiny_sequence):
        with pytest.raises(DatasetError):
            InMemorySequence("x", tiny_sequence.sensors, [])

    def test_ground_truth_trajectory(self, tiny_sequence):
        seq = InMemorySequence("x", tiny_sequence.sensors, self._frames())
        gt = seq.ground_truth()
        assert len(gt) == 3

    def test_ground_truth_missing_raises(self, tiny_sequence):
        frames = [Frame(index=0, timestamp=0.0, depth=np.ones((60, 80)))]
        seq = InMemorySequence("x", tiny_sequence.sensors, frames)
        with pytest.raises(DatasetError):
            seq.ground_truth()


class TestSyntheticSequence:
    def test_frames_cached(self, tiny_sequence):
        a = tiny_sequence.frame(0)
        b = tiny_sequence.frame(0)
        assert a is b

    def test_deterministic_given_seed(self, camera, scene):
        from repro.scene import orbit

        traj = orbit((0, 1.1, 0), 1.6, 1.3, n_frames=2)
        s1 = SyntheticSequence("a", scene, traj, camera, seed=3)
        s2 = SyntheticSequence("b", scene, traj, camera, seed=3)
        assert np.array_equal(s1.frame(1).depth, s2.frame(1).depth)

    def test_seed_changes_noise(self, camera, scene):
        from repro.scene import orbit

        traj = orbit((0, 1.1, 0), 1.6, 1.3, n_frames=2)
        s1 = SyntheticSequence("a", scene, traj, camera, seed=3)
        s2 = SyntheticSequence("b", scene, traj, camera, seed=4)
        assert not np.array_equal(s1.frame(1).depth, s2.frame(1).depth)

    def test_clean_depth_noiseless(self, clean_sequence):
        f = clean_sequence.frame(0)
        clean = clean_sequence.clean_depth(0)
        assert np.array_equal(f.depth, clean)

    def test_ground_truth_matches_trajectory(self, tiny_sequence):
        gt = tiny_sequence.ground_truth()
        assert np.allclose(gt.poses, tiny_sequence.trajectory.poses)

    def test_validate_passes(self, tiny_sequence):
        tiny_sequence.validate()

    def test_sensors_advertise_ground_truth(self, tiny_sequence):
        assert tiny_sequence.sensors.has_ground_truth
        assert not tiny_sequence.sensors.has_rgb

    def test_with_rgb(self, camera, scene):
        from repro.scene import orbit

        traj = orbit((0, 1.1, 0), 1.6, 1.3, n_frames=2)
        seq = SyntheticSequence("a", scene, traj, camera, with_rgb=True)
        assert seq.sensors.has_rgb
        assert seq.frame(0).rgb is not None


class TestPresets:
    @pytest.mark.parametrize("name", icl_nuim.SEQUENCE_NAMES)
    def test_icl_presets_load(self, name):
        seq = icl_nuim.load(name, n_frames=3, width=32, height=24)
        assert len(seq) == 3
        assert seq.name == name

    @pytest.mark.parametrize("name", tum.SEQUENCE_NAMES)
    def test_tum_presets_load(self, name):
        seq = tum.load(name, n_frames=3, width=32, height=24)
        assert seq.name == name

    def test_unknown_preset(self):
        with pytest.raises(DatasetError):
            icl_nuim.load("lr_kt9", n_frames=2)
        with pytest.raises(DatasetError):
            tum.load("of_kitchen", n_frames=2)

    def test_load_all(self):
        assert len(icl_nuim.load_all(n_frames=2, width=32, height=24)) == 4
        assert len(tum.load_all(n_frames=2, width=32, height=24)) == 2

    def test_per_frame_motion_is_small(self):
        # Hand-held realism: consecutive poses move by < 2.5 cm.
        for name in icl_nuim.SEQUENCE_NAMES:
            seq = icl_nuim.load(name, n_frames=12, width=32, height=24)
            steps = np.linalg.norm(
                np.diff(seq.trajectory.positions, axis=0), axis=-1
            )
            assert steps.max() < 0.025, name

    def test_noiseless_variant(self):
        seq = icl_nuim.load("lr_kt0", n_frames=2, width=32, height=24,
                            noise=KinectNoiseModel.noiseless())
        assert np.array_equal(seq.frame(0).depth, seq.clean_depth(0))
