"""Tests for feasibility constraints."""

import pytest

from repro.errors import OptimizationError
from repro.hypermapper import (
    Constraint,
    ConstraintSet,
    Evaluation,
    accuracy_limit,
    power_budget,
    realtime,
)


def evaluation(runtime=0.02, ate=0.03, power=2.0, fps=None):
    return Evaluation(
        configuration={},
        runtime_s=runtime,
        max_ate_m=ate,
        power_w=power,
        fps=fps if fps is not None else 1.0 / runtime,
    )


class TestConstraint:
    def test_less_than(self):
        c = Constraint("max_ate_m", 0.05)
        assert c.satisfied(evaluation(ate=0.03))
        assert not c.satisfied(evaluation(ate=0.06))

    def test_greater_than(self):
        c = Constraint("fps", 30.0, ">")
        assert c.satisfied(evaluation(runtime=0.01))
        assert not c.satisfied(evaluation(runtime=0.1))

    def test_unknown_metric(self):
        with pytest.raises(OptimizationError):
            Constraint("latency", 1.0)

    def test_unknown_op(self):
        with pytest.raises(OptimizationError):
            Constraint("fps", 1.0, ">=")

    def test_auto_name(self):
        assert str(Constraint("power_w", 3.0)) == "power_w<3"


class TestPresets:
    def test_paper_thresholds(self):
        assert accuracy_limit().bound == 0.05
        assert realtime().bound == 30.0
        assert power_budget().bound == 3.0

    def test_preset_names(self):
        assert str(accuracy_limit()) == "accurate"
        assert str(realtime()) == "fast"
        assert str(power_budget()) == "power_efficient"


class TestConstraintSet:
    def test_conjunction(self):
        cs = ConstraintSet.of([accuracy_limit(), power_budget(3.0)])
        assert cs.satisfied(evaluation(ate=0.01, power=2.0))
        assert not cs.satisfied(evaluation(ate=0.01, power=4.0))
        assert not cs.satisfied(evaluation(ate=0.09, power=2.0))

    def test_filter(self):
        cs = ConstraintSet.of([accuracy_limit()])
        evals = [evaluation(ate=0.01), evaluation(ate=0.9)]
        assert len(cs.filter(evals)) == 1

    def test_empty_set_accepts_all(self):
        cs = ConstraintSet.of([])
        assert cs.satisfied(evaluation(ate=100.0))
        assert str(cs) == "(none)"
