"""Property-based tests for the sensor noise model and depth handling."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kfusion.preprocessing import bilateral_filter, downsample_depth
from repro.scene import KinectNoiseModel

depth_maps = arrays(
    np.float64,
    (24, 32),
    elements=st.one_of(
        st.just(0.0),
        st.floats(min_value=0.4, max_value=5.0, allow_nan=False),
    ),
)


@given(depth=depth_maps, seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_noise_keeps_depth_nonnegative(depth, seed):
    model = KinectNoiseModel.harsh()
    out = model.apply(depth, np.random.default_rng(seed))
    assert out.shape == depth.shape
    assert np.all(out >= 0.0)
    assert np.all(np.isfinite(out))


@given(depth=depth_maps, seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_noise_never_creates_depth_from_nothing(depth, seed):
    """Invalid pixels may stay invalid or borrow a *neighbour* value via
    lateral jitter — but an all-invalid map must stay all-invalid."""
    model = KinectNoiseModel.harsh()
    if (depth > 0).any():
        return
    out = model.apply(depth, np.random.default_rng(seed))
    assert np.all(out == 0.0)


@given(depth=depth_maps)
@settings(max_examples=40, deadline=None)
def test_bilateral_filter_preserves_validity_mask(depth):
    out = bilateral_filter(depth)
    assert np.array_equal(out > 0.0, depth > 0.0)
    # Output values stay within the input's valid range.
    if (depth > 0).any():
        valid = depth[depth > 0]
        assert out[out > 0].min() >= valid.min() - 1e-9
        assert out[out > 0].max() <= valid.max() + 1e-9


@given(depth=depth_maps, ratio=st.sampled_from([1, 2, 4]))
@settings(max_examples=40, deadline=None)
def test_downsample_bounds(depth, ratio):
    out = downsample_depth(depth, ratio)
    assert out.shape == (depth.shape[0] // ratio, depth.shape[1] // ratio)
    if (depth > 0).any():
        valid = depth[depth > 0]
        assert out.max() <= valid.max() + 1e-9
        got = out[out > 0]
        if got.size:
            assert got.min() >= valid.min() - 1e-9
