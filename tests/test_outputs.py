"""Tests for the output manager."""

import numpy as np
import pytest

from repro.core import OutputKind, OutputManager
from repro.errors import ConfigurationError


class TestDeclaration:
    def test_declare_and_get(self):
        om = OutputManager()
        om.declare("pose", OutputKind.POSE)
        assert "pose" in om
        assert om.get("pose").kind is OutputKind.POSE

    def test_double_declare_rejected(self):
        om = OutputManager()
        om.declare("pose", OutputKind.POSE)
        with pytest.raises(ConfigurationError):
            om.declare("pose", OutputKind.POSE)

    def test_get_undeclared_rejected(self):
        with pytest.raises(ConfigurationError):
            OutputManager().get("pose")

    def test_names(self):
        om = OutputManager()
        om.declare("a", OutputKind.SCALAR)
        om.declare("b", OutputKind.FRAME)
        assert om.names() == ["a", "b"]


class TestValues:
    def test_set_and_read(self):
        om = OutputManager()
        out = om.declare("x", OutputKind.SCALAR)
        out.set(3.5, frame_index=7)
        assert om.get("x").value == 3.5
        assert om.get("x").updated_at_frame == 7

    def test_pose_convenience(self):
        om = OutputManager()
        om.set_pose(np.eye(4), 0)
        assert np.array_equal(om.pose(), np.eye(4))

    def test_pose_unset_raises(self):
        om = OutputManager()
        om.declare("pose", OutputKind.POSE)
        with pytest.raises(ConfigurationError):
            om.pose()
