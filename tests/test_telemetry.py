"""Tests for the tracing/metrics subsystem (repro.telemetry)."""

import json
import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.core.workload import FrameWorkload
from repro.telemetry import (
    DISABLED,
    RunManifest,
    TelemetryError,
    Tracer,
    aggregate_spans,
    current_tracer,
    load_spans,
    stage,
    summarize_trace_file,
    use_tracer,
)


class TestSpans:
    def test_basic_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work", frame=3):
            time.sleep(0.002)
        assert len(tracer) == 1
        ev = tracer.spans[0]
        assert ev.name == "work"
        assert ev.attrs == {"frame": 3}
        assert ev.duration_s >= 0.002
        assert ev.depth == 0 and ev.parent is None

    def test_nesting_tracks_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].parent == "outer"
        assert by_name["leaf"].depth == 2
        assert by_name["leaf"].parent == "inner"
        # Children complete (and are appended) before their parent.
        assert [s.name for s in tracer.spans] == ["leaf", "inner", "outer"]

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.spans[0].attrs["error"] == "ValueError"

    def test_timestamps_are_monotonic(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans_named("a")[0], tracer.spans_named("b")[0]
        assert b.start_ns >= a.start_ns + a.duration_ns

    def test_thread_safety(self):
        tracer = Tracer()

        def worker():
            for _ in range(50):
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans_named("outer")) == 200
        assert len(tracer.spans_named("inner")) == 200
        # Nesting is tracked per thread, never across threads.
        assert all(s.parent == "outer"
                   for s in tracer.spans_named("inner"))


class TestDisabledTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            pass
        tracer.count("n")
        tracer.gauge("g", 1.0)
        assert len(tracer) == 0
        assert tracer.counters == {} and tracer.gauges == {}

    def test_default_current_tracer_is_disabled(self):
        assert current_tracer() is DISABLED
        assert not DISABLED.enabled

    def test_disabled_span_is_shared_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_disabled_overhead_is_tiny(self):
        tracer = Tracer(enabled=False)
        n = 20000
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("x"):
                pass
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 50e-6  # far below any kernel's runtime


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        tracer = Tracer()
        tracer.count("evals")
        tracer.count("evals", 2)
        assert tracer.counters["evals"] == 3

    def test_gauge_keeps_last(self):
        tracer = Tracer()
        tracer.gauge("iter", 1)
        tracer.gauge("iter", 5)
        assert tracer.gauges["iter"] == 5.0

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.count("c")
        tracer.mark("m")
        tracer.clear()
        assert len(tracer) == 0 and tracer.counters == {}
        assert tracer.rate_windows == {}


class TestRateWindow:
    def test_rate_over_full_window(self):
        clock = _FakeClock()
        window = telemetry.RateWindow(window_s=10.0, clock=clock)
        for _ in range(20):
            window.mark()
            clock.now_s += 1.0
        # 10 marks survive inside the trailing 10 s window; the
        # cumulative total/count never evict.
        assert window.rate() == pytest.approx(1.0)
        assert window.count == 20 and window.total == pytest.approx(20.0)

    def test_short_history_uses_effective_window(self):
        clock = _FakeClock()
        window = telemetry.RateWindow(window_s=60.0, clock=clock)
        window.mark()
        clock.now_s = 2.0
        window.mark()
        # Only 2 s of history: rate is 2 events / 2 s, not / 60 s.
        assert window.rate() == pytest.approx(1.0)

    def test_empty_window_rate_zero(self):
        window = telemetry.RateWindow(clock=_FakeClock())
        assert window.rate() == 0.0

    def test_weighted_marks(self):
        clock = _FakeClock()
        window = telemetry.RateWindow(window_s=4.0, clock=clock)
        window.mark(value=3.0)
        clock.now_s = 2.0
        assert window.rate() == pytest.approx(1.5)

    def test_invalid_window_rejected(self):
        with pytest.raises(TelemetryError):
            telemetry.RateWindow(window_s=0.0)

    def test_tracer_mark_feeds_counter_and_rate(self):
        tracer = Tracer()
        tracer.mark("serve.frames", window_s=5.0)
        tracer.mark("serve.frames", window_s=5.0)
        assert tracer.counters["serve.frames"] == 2.0
        assert tracer.rate("serve.frames") > 0.0
        assert tracer.rate("never_marked") == 0.0

    def test_disabled_tracer_mark_noop(self):
        tracer = Tracer(enabled=False)
        tracer.mark("x")
        assert tracer.rate("x") == 0.0
        assert tracer.counters == {}


class _FakeClock:
    def __init__(self):
        self.now_s = 0.0

    def __call__(self) -> float:
        return self.now_s


class TestUseTracer:
    def test_install_and_restore(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with current_tracer().span("inside"):
                pass
        assert current_tracer() is DISABLED
        assert len(tracer.spans_named("inside")) == 1

    def test_nested_installs(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            with use_tracer(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer


class TestStageHelper:
    def test_stage_feeds_workload_and_tracer(self):
        workload = FrameWorkload(0)
        tracer = Tracer()
        with use_tracer(tracer):
            with stage(workload, "track", frame=0):
                time.sleep(0.001)
        assert workload.wall_times_s["track"] >= 0.001
        span = tracer.spans_named("track")[0]
        assert span.duration_s == pytest.approx(
            workload.wall_times_s["track"], rel=1e-6)

    def test_stage_without_tracer_still_times(self):
        workload = FrameWorkload(0)
        with stage(workload, "raycast"):
            pass
        assert "raycast" in workload.wall_times_s
        assert current_tracer() is DISABLED

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        a = tracer.span("a")
        b = tracer.span("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(TelemetryError):
            a.__exit__(None, None, None)


class TestAggregation:
    def _tracer_with(self, durations_ms):
        tracer = Tracer()
        for ms in durations_ms:
            tracer._push("k")
            tracer._pop("k", 0, int(ms * 1e6), {})
        return tracer

    def test_percentiles_and_max(self):
        durations = list(range(1, 101))  # 1..100 ms
        stats = aggregate_spans(self._tracer_with(durations).spans)["k"]
        assert stats.count == 100
        assert stats.max_s == pytest.approx(0.100)
        assert stats.p50_s == pytest.approx(0.0505, rel=0.02)
        assert stats.p95_s == pytest.approx(0.095, rel=0.02)
        assert stats.total_s == pytest.approx(sum(durations) / 1e3)
        assert stats.mean_s == pytest.approx(np.mean(durations) / 1e3)

    def test_single_span(self):
        stats = aggregate_spans(self._tracer_with([7.0]).spans)["k"]
        assert stats.p50_s == stats.p95_s == stats.max_s == pytest.approx(0.007)

    def test_summary_rows_sorted_by_total(self):
        tracer = Tracer()
        for name, ms in [("fast", 1), ("slow", 50)]:
            tracer._push(name)
            tracer._pop(name, 0, int(ms * 1e6), {})
        rows = telemetry.summary_rows(telemetry.aggregate_tracer(tracer))
        assert [r["span"] for r in rows] == ["slow", "fast"]


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.manifest = RunManifest.capture("kfusion", "lr_kt0",
                                          {"volume_resolution": 64}, seed=7)
    for frame in range(3):
        with tracer.span("frame", frame=frame):
            with tracer.span("track", frame=frame):
                pass
    tracer.count("frames", 3)
    tracer.gauge("last_frame", 2)
    return tracer


class TestExporters:
    def test_chrome_trace_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        telemetry.write_chrome_trace(_sample_tracer(), path)
        with open(path) as f:
            doc = json.load(f)
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 6
        for ev in complete:
            assert set(ev) >= {"name", "ph", "ts", "dur", "pid", "tid"}
            assert ev["dur"] >= 0
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and counters[0]["name"] == "frames"
        assert doc["metadata"]["seed"] == 7
        assert doc["metadata"]["algorithm"] == "kfusion"

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = _sample_tracer()
        telemetry.write_jsonl(tracer, path)
        with open(path) as f:
            records = [json.loads(line) for line in f]
        kinds = {r["type"] for r in records}
        assert kinds == {"manifest", "span", "counter", "gauge"}
        spans = load_spans(path)
        assert len(spans) == len(tracer.spans)
        original = tracer.spans_named("track")[0]
        loaded = [s for s in spans if s.name == "track"][0]
        assert loaded.duration_ns == original.duration_ns
        assert loaded.parent == "frame"
        assert loaded.attrs == {"frame": 0}

    def test_csv_summary(self, tmp_path):
        path = str(tmp_path / "summary.csv")
        telemetry.write_csv_summary(_sample_tracer(), path)
        with open(path) as f:
            header = f.readline().strip().split(",")
            lines = f.read().strip().splitlines()
        assert header == ["span", "count", "total_ms", "mean_ms",
                          "p50_ms", "p95_ms", "max_ms"]
        assert len(lines) == 2  # frame + track

    def test_export_dispatches_on_extension(self, tmp_path):
        tracer = _sample_tracer()
        assert telemetry.export(tracer, str(tmp_path / "a.jsonl")) == "jsonl"
        assert telemetry.export(tracer, str(tmp_path / "a.csv")) == "csv"
        assert telemetry.export(tracer, str(tmp_path / "a.json")) == "chrome"
        assert telemetry.export(tracer, str(tmp_path / "a.trace")) == "chrome"

    def test_summarize_trace_file_both_formats(self, tmp_path):
        tracer = _sample_tracer()
        chrome, jsonl = str(tmp_path / "t.json"), str(tmp_path / "t.jsonl")
        telemetry.export(tracer, chrome)
        telemetry.export(tracer, jsonl)
        for path in (chrome, jsonl):
            rows = summarize_trace_file(path)
            by_span = {r["span"]: r for r in rows}
            assert by_span["frame"]["count"] == 3
            assert by_span["track"]["count"] == 3
            assert set(rows[0]) >= {"p50_ms", "p95_ms", "max_ms"}

    def test_summarize_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not a trace")
        with pytest.raises(TelemetryError):
            summarize_trace_file(str(bad))
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(TelemetryError):
            summarize_trace_file(str(empty))

    def test_missing_file_raises_telemetry_error(self, tmp_path):
        with pytest.raises(TelemetryError):
            load_spans(str(tmp_path / "nope.json"))

    def test_unwritable_path_raises_telemetry_error(self, tmp_path):
        path = str(tmp_path / "no_such_dir" / "trace.json")
        with pytest.raises(TelemetryError):
            telemetry.export(_sample_tracer(), path)


class TestManifest:
    def test_capture_fields(self):
        m = RunManifest.capture("kfusion", "lr_kt0",
                                {"volume_resolution": 64}, seed=3,
                                frames=10)
        assert m.algorithm == "kfusion" and m.dataset == "lr_kt0"
        assert m.seed == 3 and m.extra == {"frames": 10}
        assert m.platform["numpy"]
        assert len(m.git_sha) in (7, 40) or m.git_sha == "unknown"
        json.loads(m.to_json())  # serialisable

    def test_as_dict_round_trips_configuration(self):
        m = RunManifest.capture("a", "b", {"x": 1})
        assert m.as_dict()["configuration"] == {"x": 1}
