"""Tests for the SLAMSystem lifecycle state machine."""

import numpy as np
import pytest

from repro.core import (
    DepthSensor,
    Frame,
    OutputKind,
    ParameterSpec,
    SensorSuite,
    SLAMSystem,
    TrackingStatus,
)
from repro.core.workload import FrameWorkload, KernelInvocation
from repro.errors import ConfigurationError
from repro.geometry import PinholeCamera


class ToySystem(SLAMSystem):
    """Minimal concrete system for lifecycle tests."""

    name = "toy"

    def parameter_specs(self):
        return [ParameterSpec("gain", "real", 1.0, low=0.0, high=2.0)]

    def do_init(self, sensors):
        self.outputs.declare("pose", OutputKind.POSE)
        self.inited = True

    def do_process(self, frame, workload):
        workload.add(KernelInvocation("noop", 10.0, 10.0))
        return TrackingStatus.OK

    def do_update_outputs(self):
        self.outputs.get("pose").set(np.eye(4), self.frames_processed - 1)


@pytest.fixture()
def sensors():
    return SensorSuite(depth=DepthSensor(PinholeCamera.kinect_like(16, 12)))


@pytest.fixture()
def frame():
    return Frame(index=0, timestamp=0.0, depth=np.ones((12, 16)))


class TestLifecycle:
    def test_full_cycle(self, sensors, frame):
        s = ToySystem()
        cfg = s.new_configuration()
        cfg["gain"] = 1.5
        s.init(sensors)
        s.update_frame(frame)
        status = s.process_once()
        assert status is TrackingStatus.OK
        s.update_outputs()
        assert np.array_equal(s.outputs.pose(), np.eye(4))
        assert s.frames_processed == 1
        s.clean()
        assert not s.initialised

    def test_init_twice_rejected(self, sensors):
        s = ToySystem()
        s.init(sensors)
        with pytest.raises(ConfigurationError):
            s.init(sensors)

    def test_process_before_init(self, frame):
        s = ToySystem()
        with pytest.raises(ConfigurationError):
            s.process_once()
        with pytest.raises(ConfigurationError):
            s.update_frame(frame)

    def test_process_without_frame(self, sensors):
        s = ToySystem()
        s.init(sensors)
        with pytest.raises(ConfigurationError):
            s.process_once()

    def test_frame_consumed_once(self, sensors, frame):
        s = ToySystem()
        s.init(sensors)
        s.update_frame(frame)
        s.process_once()
        with pytest.raises(ConfigurationError):
            s.process_once()

    def test_init_builds_default_config(self, sensors):
        s = ToySystem()
        s.init(sensors)  # no explicit new_configuration call
        assert s.configuration is not None
        assert s.configuration["gain"] == 1.0

    def test_workload_recorded(self, sensors, frame):
        s = ToySystem()
        s.init(sensors)
        s.update_frame(frame)
        s.process_once()
        wl = s.last_workload()
        assert wl.total_flops == 10.0

    def test_workload_before_processing(self, sensors):
        s = ToySystem()
        s.init(sensors)
        with pytest.raises(ConfigurationError):
            s.last_workload()

    def test_clean_idempotent(self, sensors):
        s = ToySystem()
        s.init(sensors)
        s.clean()
        s.clean()
        # Can re-init after clean.
        s.init(sensors)
        assert s.initialised
