"""Tests for design spaces."""

import numpy as np
import pytest

from repro.core import ParameterSpec
from repro.errors import OptimizationError
from repro.hypermapper import (
    DesignSpace,
    codesign_design_space,
    kfusion_design_space,
)


def small_space():
    return DesignSpace([
        ParameterSpec("res", "ordinal", 64, choices=(32, 64, 128)),
        ParameterSpec("mu", "real", 0.1, low=0.01, high=0.3),
        ParameterSpec("iters", "integer", 5, low=0, high=10),
        ParameterSpec("thr", "real", 1e-5, low=1e-8, high=1e-2,
                      log_scale=True),
        ParameterSpec("backend", "categorical", "opencl",
                      choices=("cpp", "opencl")),
    ])


class TestSampling:
    def test_samples_valid(self):
        space = small_space()
        rng = np.random.default_rng(0)
        for config in space.sample_many(50, rng):
            space.validate(config)

    def test_log_scale_sampling_spans_decades(self):
        space = small_space()
        rng = np.random.default_rng(0)
        thrs = [space.sample(rng)["thr"] for _ in range(200)]
        logs = np.log10(thrs)
        # Uniform in log space: spread across the 6 decades.
        assert logs.min() < -7
        assert logs.max() > -3
        assert -6 < np.median(logs) < -4

    def test_default_configuration(self):
        d = small_space().default_configuration()
        assert d["res"] == 64 and d["backend"] == "opencl"


class TestEncoding:
    def test_feature_vector_layout(self):
        space = small_space()
        f = space.to_features(space.default_configuration())
        assert f.shape == (5,)
        assert f[0] == 64.0
        assert f[3] == pytest.approx(-5.0)  # log10(1e-5)
        assert f[4] == 1.0  # index of "opencl"

    def test_feature_names_annotated(self):
        names = small_space().feature_names()
        assert "log10(thr)" in names
        assert "res" in names

    def test_matrix(self):
        space = small_space()
        rng = np.random.default_rng(0)
        M = space.to_feature_matrix(space.sample_many(7, rng))
        assert M.shape == (7, 5)

    def test_missing_parameter_rejected(self):
        space = small_space()
        with pytest.raises(OptimizationError):
            space.to_features({"res": 64})

    def test_empty_matrix_rejected(self):
        with pytest.raises(OptimizationError):
            small_space().to_feature_matrix([])


class TestGridAndValidation:
    def test_grid_sizes(self):
        space = DesignSpace([
            ParameterSpec("a", "ordinal", 1, choices=(1, 2)),
            ParameterSpec("b", "integer", 0, low=0, high=2),
        ])
        grid = space.grid()
        assert len(grid) == 6

    def test_grid_too_large_rejected(self):
        space = DesignSpace([
            ParameterSpec(f"p{i}", "integer", 0, low=0, high=100)
            for i in range(4)
        ])
        with pytest.raises(OptimizationError):
            space.grid()

    def test_validate_canonicalises(self):
        space = small_space()
        out = space.validate(dict(space.default_configuration(), iters=3.0))
        assert out["iters"] == 3
        with pytest.raises(OptimizationError):
            space.validate({"res": 64})

    def test_duplicate_names_rejected(self):
        spec = ParameterSpec("a", "integer", 0, low=0, high=1)
        with pytest.raises(OptimizationError):
            DesignSpace([spec, spec])

    def test_empty_rejected(self):
        with pytest.raises(OptimizationError):
            DesignSpace([])


class TestPresetSpaces:
    def test_kfusion_space_matches_params(self):
        space = kfusion_design_space()
        assert "volume_resolution" in space.names
        assert space.dimensions == 10

    def test_codesign_space_adds_platform_knobs(self, odroid):
        space = codesign_design_space(odroid)
        assert "backend" in space.names
        assert "cpu_freq_ghz" in space.names
        assert "gpu_freq_ghz" in space.names
        assert "cpu_cluster" in space.names  # big.LITTLE choice
        assert space.dimensions == 14
        # Odroid has no CUDA.
        backend_spec = {s.name: s for s in space.specs}["backend"]
        assert "cuda" not in backend_spec.choices
        cluster_spec = {s.name: s for s in space.specs}["cpu_cluster"]
        assert set(cluster_spec.choices) == {"big", "little"}
