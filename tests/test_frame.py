"""Tests for the Frame container."""

import numpy as np
import pytest

from repro.core import Frame
from repro.errors import DatasetError


def make_frame(**kwargs):
    defaults = dict(index=0, timestamp=0.0, depth=np.ones((6, 8)))
    defaults.update(kwargs)
    return Frame(**defaults)


class TestValidation:
    def test_depth_must_be_2d(self):
        with pytest.raises(DatasetError):
            make_frame(depth=np.ones(5))

    def test_rgb_shape_must_match(self):
        with pytest.raises(DatasetError):
            make_frame(rgb=np.ones((5, 8, 3)))

    def test_pose_must_be_4x4(self):
        with pytest.raises(DatasetError):
            make_frame(ground_truth_pose=np.eye(3))

    def test_valid_frame(self):
        f = make_frame(rgb=np.zeros((6, 8, 3)), ground_truth_pose=np.eye(4))
        assert f.shape == (6, 8)
        assert f.has_ground_truth


class TestBehaviour:
    def test_without_ground_truth_strips(self):
        f = make_frame(ground_truth_pose=np.eye(4))
        stripped = f.without_ground_truth()
        assert stripped.ground_truth_pose is None
        assert stripped.index == f.index
        assert np.array_equal(stripped.depth, f.depth)

    def test_without_ground_truth_noop(self):
        f = make_frame()
        assert f.without_ground_truth() is f

    def test_valid_depth_fraction(self):
        d = np.ones((4, 5))
        d[0, :] = 0.0
        f = make_frame(depth=d)
        assert f.valid_depth_fraction() == pytest.approx(0.75)

    def test_frames_are_immutable(self):
        f = make_frame()
        with pytest.raises(AttributeError):
            f.index = 3
