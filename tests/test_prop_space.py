"""Property-based tests for design spaces and samplers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypermapper import (
    kfusion_design_space,
    latin_hypercube_sample,
    random_sample,
)
from repro.hypermapper.surrogate import surrogate_max_ate


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_random_samples_always_validate(seed):
    space = kfusion_design_space()
    for config in random_sample(space, 5, seed=seed):
        space.validate(config)
        # Encoding must be finite for the model.
        assert np.all(np.isfinite(space.to_features(config)))


@given(seed=st.integers(min_value=0, max_value=10_000),
       n=st.integers(min_value=1, max_value=20))
@settings(max_examples=30, deadline=None)
def test_lhs_samples_always_validate(seed, n):
    space = kfusion_design_space()
    for config in latin_hypercube_sample(space, n, seed=seed):
        space.validate(config)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_surrogate_total_over_space(seed):
    """The surrogate accuracy surface is total, positive and finite over
    the whole design space."""
    space = kfusion_design_space()
    for config in random_sample(space, 3, seed=seed):
        ate, failed = surrogate_max_ate(config, seed=seed)
        assert np.isfinite(ate)
        assert ate > 0.0
        assert isinstance(failed, bool)


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_feature_encoding_round_trips_order(seed):
    """Encoding preserves the identity of configurations (distinct configs
    get distinct feature vectors almost surely)."""
    space = kfusion_design_space()
    configs = random_sample(space, 6, seed=seed)
    M = space.to_feature_matrix(configs)
    assert M.shape == (6, space.dimensions)
    # Identical configs encode identically.
    assert np.allclose(space.to_features(configs[0]), M[0])
