"""Tests for Pareto-front utilities."""

import numpy as np
import pytest

from repro.errors import OptimizationError
from repro.hypermapper import dominated_by, hypervolume_2d, pareto_front, pareto_mask


class TestMask:
    def test_simple_front(self):
        pts = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0], [3.0, 3.0]])
        mask = pareto_mask(pts)
        assert list(mask) == [True, True, True, False]

    def test_single_point(self):
        assert pareto_mask(np.array([[1.0, 1.0]]))[0]

    def test_duplicates_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert pareto_mask(pts).all()

    def test_dominated_chain(self):
        pts = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        assert list(pareto_mask(pts)) == [True, False, False]

    def test_bad_shape(self):
        with pytest.raises(OptimizationError):
            pareto_mask(np.zeros(3))
        with pytest.raises(OptimizationError):
            pareto_mask(np.zeros((0, 2)))


class TestFront:
    def test_sorted_by_first_objective(self):
        pts = np.array([[3.0, 1.0], [1.0, 3.0], [2.0, 2.0]])
        front = pareto_front(pts)
        assert np.allclose(front[:, 0], [1.0, 2.0, 3.0])

    def test_three_objectives(self):
        pts = np.array([[1, 1, 5], [1, 1, 4], [0, 2, 6]], dtype=float)
        front = pareto_front(pts)
        assert len(front) == 2


class TestHypervolume:
    def test_single_point_area(self):
        hv = hypervolume_2d(np.array([[1.0, 1.0]]), (2.0, 2.0))
        assert hv == pytest.approx(1.0)

    def test_staircase(self):
        front = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert hypervolume_2d(front, (2.0, 2.0)) == pytest.approx(3.0)

    def test_points_beyond_reference_ignored(self):
        assert hypervolume_2d(np.array([[3.0, 3.0]]), (2.0, 2.0)) == 0.0

    def test_dominated_points_do_not_add(self):
        a = hypervolume_2d(np.array([[1.0, 1.0]]), (3.0, 3.0))
        b = hypervolume_2d(np.array([[1.0, 1.0], [2.0, 2.0]]), (3.0, 3.0))
        assert a == pytest.approx(b)

    def test_monotone_in_front_quality(self):
        worse = hypervolume_2d(np.array([[1.5, 1.5]]), (3.0, 3.0))
        better = hypervolume_2d(np.array([[1.0, 1.0]]), (3.0, 3.0))
        assert better > worse

    def test_bad_shape(self):
        with pytest.raises(OptimizationError):
            hypervolume_2d(np.zeros((2, 3)), (1.0, 1.0))


class TestDominatedBy:
    def test_basic(self):
        front = np.array([[1.0, 1.0]])
        assert dominated_by(np.array([2.0, 2.0]), front)
        assert not dominated_by(np.array([0.5, 2.0]), front)
        assert not dominated_by(np.array([1.0, 1.0]), front)

    def test_empty_front(self):
        assert not dominated_by(np.array([1.0, 1.0]), np.empty((0, 2)))
