"""Property-based round-trip tests for the TUM trajectory format."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.datasets.tum_format import load_tum_trajectory, save_tum_trajectory
from repro.geometry import se3
from repro.scene.trajectory import Trajectory

twists = arrays(
    np.float64,
    st.tuples(st.integers(min_value=1, max_value=12), st.just(6)),
    elements=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
)


@given(xi=twists)
@settings(max_examples=30, deadline=None)
def test_round_trip_preserves_poses(xi, tmp_path_factory):
    poses = np.stack([se3.se3_exp(row) for row in xi])
    traj = Trajectory(poses=poses,
                      timestamps=np.arange(len(poses)) / 30.0)
    path = str(tmp_path_factory.mktemp("tum") / "t.txt")
    save_tum_trajectory(traj, path)
    loaded = load_tum_trajectory(path)
    assert len(loaded) == len(traj)
    for a, b in zip(traj.poses, loaded.poses):
        dt, dr = se3.pose_distance(a, b)
        assert dt < 1e-4
        assert dr < 1e-4


@given(xi=twists)
@settings(max_examples=30, deadline=None)
def test_second_round_trip_converges(xi, tmp_path_factory):
    """Quantisation is stable: the second round trip adds no extra error
    beyond the first (6-decimal text is a fixed point after one pass)."""
    poses = np.stack([se3.se3_exp(row) for row in xi])
    traj = Trajectory(poses=poses,
                      timestamps=np.arange(len(poses)) / 30.0)
    base = tmp_path_factory.mktemp("tum")
    p1, p2 = str(base / "a.txt"), str(base / "b.txt")
    save_tum_trajectory(traj, p1)
    once = load_tum_trajectory(p1)
    save_tum_trajectory(once, p2)
    twice = load_tum_trajectory(p2)
    for a, b in zip(once.poses, twice.poses):
        dt, dr = se3.pose_distance(a, b)
        assert dt < 1e-5
        assert dr < 1e-5
