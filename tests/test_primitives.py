"""Unit tests for SDF primitives and CSG."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.scene import Box, Cylinder, Negation, Plane, Sphere, Union


class TestSphere:
    def test_distances(self):
        s = Sphere(center=(0, 0, 0), radius=1.0)
        d = s.distance(np.array([[0, 0, 0], [2, 0, 0], [1, 0, 0]]))
        assert np.allclose(d, [-1.0, 1.0, 0.0])

    def test_rejects_bad_radius(self):
        with pytest.raises(GeometryError):
            Sphere(center=(0, 0, 0), radius=0.0)

    def test_normal_points_outward(self):
        s = Sphere(center=(0, 0, 0), radius=1.0)
        n = s.normal(np.array([[2.0, 0, 0]]))
        assert np.allclose(n, [[1, 0, 0]], atol=1e-4)


class TestBox:
    def test_inside_negative(self):
        b = Box(center=(0, 0, 0), half=(1, 1, 1))
        assert b.distance(np.array([[0, 0, 0]]))[0] == pytest.approx(-1.0)

    def test_face_distance(self):
        b = Box(center=(0, 0, 0), half=(1, 2, 3))
        assert b.distance(np.array([[3, 0, 0]]))[0] == pytest.approx(2.0)

    def test_corner_distance(self):
        b = Box(center=(0, 0, 0), half=(1, 1, 1))
        d = b.distance(np.array([[2, 2, 2]]))[0]
        assert d == pytest.approx(np.sqrt(3.0))

    def test_rejects_bad_half(self):
        with pytest.raises(GeometryError):
            Box(center=(0, 0, 0), half=(1, -1, 1))


class TestPlane:
    def test_signed_distance(self):
        p = Plane(direction=(0, 1, 0), offset=0.0)
        d = p.distance(np.array([[0, 2, 0], [0, -3, 0]]))
        assert np.allclose(d, [2.0, -3.0])

    def test_normalises_direction(self):
        p = Plane(direction=(0, 2, 0), offset=2.0)
        assert p.distance(np.array([[0, 1, 0]]))[0] == pytest.approx(0.0)

    def test_rejects_zero_direction(self):
        with pytest.raises(GeometryError):
            Plane(direction=(0, 0, 0), offset=0.0)


class TestCylinder:
    def test_radial_distance(self):
        c = Cylinder(center=(0, 0, 0), radius=1.0, half_height=2.0)
        assert c.distance(np.array([[3, 0, 0]]))[0] == pytest.approx(2.0)

    def test_axial_distance(self):
        c = Cylinder(center=(0, 0, 0), radius=1.0, half_height=2.0)
        assert c.distance(np.array([[0, 4, 0]]))[0] == pytest.approx(2.0)

    def test_inside(self):
        c = Cylinder(center=(0, 0, 0), radius=1.0, half_height=2.0)
        assert c.distance(np.array([[0, 0, 0]]))[0] < 0

    def test_rejects_bad_params(self):
        with pytest.raises(GeometryError):
            Cylinder(center=(0, 0, 0), radius=-1.0, half_height=1.0)


class TestCSG:
    def test_union_is_min(self):
        a = Sphere(center=(0, 0, 0), radius=1.0)
        b = Sphere(center=(4, 0, 0), radius=1.0)
        u = Union([a, b])
        pts = np.array([[2.0, 0, 0]])
        assert u.distance(pts)[0] == pytest.approx(1.0)

    def test_union_operator(self):
        a = Sphere(center=(0, 0, 0), radius=1.0)
        b = Sphere(center=(4, 0, 0), radius=1.0)
        assert isinstance(a | b, Union)

    def test_union_empty_rejected(self):
        with pytest.raises(GeometryError):
            Union([])

    def test_nearest_child_and_albedo(self):
        a = Sphere(center=(0, 0, 0), radius=1.0, albedo=(1, 0, 0))
        b = Sphere(center=(4, 0, 0), radius=1.0, albedo=(0, 1, 0))
        u = Union([a, b])
        pts = np.array([[0.5, 0, 0], [4.2, 0, 0]])
        assert list(u.nearest_child(pts)) == [0, 1]
        alb = u.albedo_at(pts)
        assert np.allclose(alb[0], [1, 0, 0])
        assert np.allclose(alb[1], [0, 1, 0])

    def test_negation_flips_sign(self):
        s = Sphere(center=(0, 0, 0), radius=1.0)
        n = Negation(s)
        assert n.distance(np.array([[0, 0, 0]]))[0] == pytest.approx(1.0)
        assert n.distance(np.array([[2, 0, 0]]))[0] == pytest.approx(-1.0)
