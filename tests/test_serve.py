"""Tests for repro.serve: transport, sessions, engine, loadgen (S21).

The two tests the subsystem exists to pass:

* **overload semantics** — bounded ingress queues, counted drops, no
  deadlock, and later frames still processed after an overload burst
  (`TestOverloadSemantics`);
* **concurrent == serial** — N interleaved sessions produce per-session
  pose/status sequences bit-identical to running each client alone
  (`TestConcurrentSerialEquivalence`).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ServeError
from repro.serve import (
    DROP_POLICIES,
    InProcessTransport,
    LoadSpec,
    ServeEngine,
    ServePolicy,
    Session,
    SessionClose,
    SessionFrame,
    SessionOpen,
    SessionState,
    build_schedule,
    run_load,
)
from repro.telemetry import Tracer, use_tracer


class FakeClock:
    """Injectable monotonic clock: advances only when told to."""

    def __init__(self):
        self.now_s = 0.0

    def __call__(self) -> float:
        return self.now_s

    def advance(self, dt_s: float) -> None:
        self.now_s += dt_s


def _frame(sequence, i: int, index: int | None = None):
    base = sequence.frame(i % len(sequence)).without_ground_truth()
    return replace(base, index=i if index is None else index)


def _open(sequence, cid: str, algorithm: str = "static") -> SessionOpen:
    return SessionOpen(client_id=cid, sensors=sequence.sensors,
                       algorithm=algorithm)


# -- transport ---------------------------------------------------------------

class TestInProcessTransport:
    def test_fifo_order_and_pending(self, tiny_sequence):
        t = InProcessTransport()
        msgs = [_open(tiny_sequence, "a"),
                SessionFrame("a", _frame(tiny_sequence, 0)),
                SessionClose("a")]
        for m in msgs:
            t.send(m)
        assert t.pending == 3
        assert t.poll() == msgs
        assert t.pending == 0

    def test_poll_max_messages(self, tiny_sequence):
        t = InProcessTransport()
        for i in range(5):
            t.send(SessionFrame("a", _frame(tiny_sequence, i)))
        first = t.poll(2)
        assert [m.frame.index for m in first] == [0, 1]
        assert t.pending == 3
        assert [m.frame.index for m in t.poll()] == [2, 3, 4]

    def test_send_after_close_rejected(self, tiny_sequence):
        t = InProcessTransport()
        t.send(SessionClose("a"))
        t.close()
        with pytest.raises(ServeError):
            t.send(SessionClose("b"))
        # Pending messages stay pollable after close.
        assert t.poll() == [SessionClose("a")]

    def test_foreign_message_rejected(self):
        t = InProcessTransport()
        with pytest.raises(ServeError):
            t.send({"kind": "open"})

    def test_wait_reports_pending(self):
        t = InProcessTransport()
        assert t.wait(0.0) is False
        t.send(SessionClose("a"))
        assert t.wait(0.0) is True


# -- policy + session --------------------------------------------------------

class TestServePolicy:
    def test_defaults_valid(self):
        p = ServePolicy()
        assert p.queue_capacity >= 1 and p.drop_policy in DROP_POLICIES

    @pytest.mark.parametrize("kwargs", [
        {"queue_capacity": 0},
        {"frames_per_round": 0},
        {"drop_policy": "random"},
        {"max_latency_samples": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ServeError):
            ServePolicy(**kwargs)


class TestSession:
    def _session(self, **policy_kwargs) -> Session:
        return Session("c0", system=None,
                       policy=ServePolicy(**policy_kwargs))

    def test_drop_oldest_evicts_head(self, tiny_sequence):
        s = self._session(queue_capacity=2, drop_policy="oldest")
        for i in range(3):
            s.enqueue(_frame(tiny_sequence, i), now_s=float(i))
        assert s.frames_dropped == 1
        assert s.queue_depth == 2
        # Latest-wins: frame 0 died, 1 and 2 survive.
        assert [s.take()[0].index for _ in range(2)] == [1, 2]

    def test_drop_newest_rejects_arrival(self, tiny_sequence):
        s = self._session(queue_capacity=2, drop_policy="newest")
        admitted = [s.enqueue(_frame(tiny_sequence, i), now_s=0.0)
                    for i in range(3)]
        assert admitted == [True, True, False]
        assert s.frames_dropped == 1
        assert [s.take()[0].index for _ in range(2)] == [0, 1]

    def test_non_active_states_drop_counted(self, tiny_sequence):
        s = self._session()
        s.begin_drain()
        assert s.enqueue(_frame(tiny_sequence, 0), now_s=0.0) is False
        assert s.frames_dropped == 1 and s.queue_depth == 0

    def test_take_empty_raises(self):
        with pytest.raises(ServeError):
            self._session().take()

    def test_crash_clears_backlog_counted(self, tiny_sequence):
        s = self._session(queue_capacity=8)
        for i in range(3):
            s.enqueue(_frame(tiny_sequence, i), now_s=0.0)
        s.mark_crashed("boom")
        assert s.state is SessionState.CRASHED
        assert s.queue_depth == 0 and s.frames_dropped == 3
        assert s.stats()["error"] == "boom"


# -- engine ------------------------------------------------------------------

class TestServeEngine:
    def _engine(self, **policy_kwargs):
        clock = FakeClock()
        engine = ServeEngine(InProcessTransport(),
                             policy=ServePolicy(**policy_kwargs),
                             clock=clock)
        return engine, engine.transport, clock

    def test_open_process_close_lifecycle(self, tiny_sequence):
        engine, transport, _ = self._engine()
        transport.send(_open(tiny_sequence, "c0"))
        for i in range(3):
            transport.send(SessionFrame("c0", _frame(tiny_sequence, i)))
        transport.send(SessionClose("c0"))
        engine.run_until_idle()
        stats = engine.stats()
        assert stats["sessions"] == {
            "opened": 1, "closed": 1, "crashed": 0,
            "by_state": {"closed": 1},
        }
        assert stats["frames"]["processed"] == 3
        assert stats["frames"]["dropped"] == 0
        assert engine.session("c0").state is SessionState.CLOSED

    def test_round_robin_budget_interleaves(self, tiny_sequence):
        engine, transport, _ = self._engine(frames_per_round=2,
                                            queue_capacity=16)
        for cid in ("a", "b"):
            transport.send(_open(tiny_sequence, cid))
            for i in range(6):
                transport.send(SessionFrame(cid, _frame(tiny_sequence, i)))
        assert engine.step() == 4  # 2 budget x 2 sessions
        assert engine.session("a").frames_processed == 2
        assert engine.session("b").frames_processed == 2
        assert engine.run_until_idle() == 8

    def test_protocol_errors_counted_not_fatal(self, tiny_sequence):
        engine, transport, _ = self._engine()
        transport.send(_open(tiny_sequence, "c0"))
        transport.send(_open(tiny_sequence, "c0"))           # duplicate
        transport.send(SessionFrame("ghost", _frame(tiny_sequence, 0)))
        transport.send(SessionClose("ghost"))
        transport.send(SessionOpen(client_id="bad",
                                   sensors=tiny_sequence.sensors,
                                   algorithm="no_such_algorithm"))
        engine.run_until_idle()
        stats = engine.stats()
        assert stats["protocol_errors"] == 4
        assert len(stats["recent_protocol_errors"]) == 4
        assert stats["sessions"]["opened"] == 1

    def test_crash_quarantines_one_session(self, tiny_sequence):
        engine, transport, _ = self._engine()
        transport.send(_open(tiny_sequence, "ok"))
        transport.send(_open(tiny_sequence, "doomed"))
        engine.step()
        # Sabotage one session's system; the other must keep serving.
        engine.session("doomed").system.update_frame = None
        for cid in ("ok", "doomed"):
            transport.send(SessionFrame(cid, _frame(tiny_sequence, 0)))
        engine.run_until_idle()
        assert engine.session("doomed").state is SessionState.CRASHED
        assert engine.session("ok").frames_processed == 1
        stats = engine.stats()
        assert stats["sessions"]["crashed"] == 1
        # A crashed session keeps dropping (counted) without reviving.
        transport.send(SessionFrame("doomed", _frame(tiny_sequence, 1)))
        engine.run_until_idle()
        assert engine.session("doomed").frames_dropped == 1

    def test_latency_uses_injected_clock(self, tiny_sequence):
        engine, transport, clock = self._engine()
        transport.send(_open(tiny_sequence, "c0"))
        engine.step()
        transport.send(SessionFrame("c0", _frame(tiny_sequence, 0)))
        engine.drain_transport()
        clock.advance(0.5)
        engine.step()
        [sample] = engine.session("c0").latency_samples
        assert sample == pytest.approx(0.5)

    def test_stats_snapshot_json_safe(self, tiny_sequence):
        import json

        engine, transport, _ = self._engine()
        transport.send(_open(tiny_sequence, "c0"))
        transport.send(SessionFrame("c0", _frame(tiny_sequence, 0)))
        engine.run_until_idle()
        stats = engine.stats()
        json.dumps(stats)  # must not raise
        assert stats["per_session"]["c0"]["frames_processed"] == 1
        assert stats["throughput"]["processed_fps"] >= 0.0

    def test_serve_telemetry_counters(self, tiny_sequence):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            engine = ServeEngine(InProcessTransport(),
                                 policy=ServePolicy())
            engine.transport.send(_open(tiny_sequence, "c0"))
            engine.transport.send(
                SessionFrame("c0", _frame(tiny_sequence, 0)))
            engine.run_until_idle()
        assert tracer.counters["serve.sessions_opened"] == 1
        assert tracer.counters["serve.frames_processed"] == 1
        assert any(s.name == "serve.frame" for s in tracer.spans)


class TestOverloadSemantics:
    """Satellite: overload is explicit — bounded, counted, alive."""

    def test_burst_past_capacity_drops_counted_then_recovers(
            self, tiny_sequence):
        clock = FakeClock()
        engine = ServeEngine(
            InProcessTransport(),
            policy=ServePolicy(queue_capacity=4, frames_per_round=2,
                               drop_policy="oldest"),
            clock=clock,
        )
        transport = engine.transport
        transport.send(_open(tiny_sequence, "c0"))
        engine.step()

        # Burst: 12 frames with no scheduling in between.
        for i in range(12):
            transport.send(SessionFrame("c0", _frame(tiny_sequence, i)))
        engine.drain_transport()
        session = engine.session("c0")
        assert session.queue_depth == 4          # bounded, not 12
        assert session.frames_dropped == 8       # every drop counted
        # Latest-wins kept the freshest frames.
        assert [f.index for f, _ in session._queue] == [8, 9, 10, 11]

        # No deadlock: run_until_idle converges within its tripwire.
        processed = engine.run_until_idle(max_rounds=50)
        assert processed == 4

        # Later frames are still processed after the overload burst.
        transport.send(SessionFrame("c0", _frame(tiny_sequence, 12)))
        engine.run_until_idle()
        assert session.frames_processed == 5
        stats = engine.stats()
        assert stats["frames"]["received"] == 13
        assert stats["frames"]["dropped"] == 8
        assert stats["frames"]["drop_rate"] == pytest.approx(8 / 13)

    def test_drop_newest_keeps_committed_frames(self, tiny_sequence):
        engine = ServeEngine(
            InProcessTransport(),
            policy=ServePolicy(queue_capacity=3, drop_policy="newest"),
            clock=FakeClock(),
        )
        engine.transport.send(_open(tiny_sequence, "c0"))
        engine.step()
        for i in range(6):
            engine.transport.send(
                SessionFrame("c0", _frame(tiny_sequence, i)))
        engine.drain_transport()
        session = engine.session("c0")
        assert [f.index for f, _ in session._queue] == [0, 1, 2]
        assert session.frames_dropped == 3
        engine.run_until_idle()
        assert [r.frame_index for r in session.results] == [0, 1, 2]


class TestConcurrentSerialEquivalence:
    """Acceptance: N concurrent sessions == N serial runs, bit for bit."""

    N_SESSIONS = 3
    N_FRAMES = 4
    CONFIG = {"volume_resolution": 64}

    def _run(self, sequence, client_ids, interleaved: bool):
        """Drive sessions through one engine; together or one at a time."""
        engine = ServeEngine(
            InProcessTransport(),
            policy=ServePolicy(queue_capacity=16, frames_per_round=1),
            clock=FakeClock(),
        )
        transport = engine.transport

        def push_all(cid):
            transport.send(SessionOpen(
                client_id=cid, sensors=sequence.sensors,
                algorithm="kfusion", configuration=dict(self.CONFIG),
            ))
            for i in range(self.N_FRAMES):
                transport.send(SessionFrame(cid, _frame(sequence, i)))
            transport.send(SessionClose(cid))

        if interleaved:
            # All sessions live at once; frames_per_round=1 forces true
            # round-robin interleaving of the per-frame work.
            for cid in client_ids:
                push_all(cid)
            engine.run_until_idle()
        else:
            for cid in client_ids:
                push_all(cid)
                engine.run_until_idle()
        return {
            cid: (engine.session(cid).status_sequence(),
                  engine.session(cid).pose_sequence())
            for cid in client_ids
        }

    def test_interleaved_matches_serial_bitwise(self, tiny_sequence):
        cids = [f"c{i}" for i in range(self.N_SESSIONS)]
        concurrent = self._run(tiny_sequence, cids, interleaved=True)
        serial = self._run(tiny_sequence, cids, interleaved=False)
        for cid in cids:
            statuses_c, poses_c = concurrent[cid]
            statuses_s, poses_s = serial[cid]
            assert len(statuses_c) == self.N_FRAMES
            assert statuses_c == statuses_s
            assert poses_c == poses_s  # raw float64 bytes: bit-identical


# -- threaded mode -----------------------------------------------------------

class TestThreadedEngine:
    def test_start_stop_and_double_start_rejected(self):
        engine = ServeEngine(InProcessTransport())
        engine.start()
        try:
            assert engine.running
            with pytest.raises(ServeError):
                engine.start()
        finally:
            engine.stop()
        assert not engine.running

    def test_threaded_processes_pushed_frames(self, tiny_sequence):
        engine = ServeEngine(InProcessTransport(),
                             policy=ServePolicy(queue_capacity=32))
        engine.start()
        try:
            engine.transport.send(_open(tiny_sequence, "c0"))
            for i in range(5):
                engine.transport.send(
                    SessionFrame("c0", _frame(tiny_sequence, i)))
            engine.transport.send(SessionClose("c0"))
            engine.stop(drain=True)
        finally:
            engine.close()
        stats = engine.stats()
        assert stats["frames"]["processed"] + stats["frames"]["dropped"] == 5
        assert stats["sessions"]["by_state"] == {"closed": 1}

    def test_threaded_stress_producers_and_stats_poller(self, tiny_sequence):
        """N producer threads race the scheduler while a poller hammers
        stats(): no exceptions, every offered frame accounted, and the
        frame counters never move backwards between polls (each stats()
        snapshot is taken under the scheduling lock, so a torn round
        would show up as non-monotone counters)."""
        import threading  # noqa: RPR006 — exercising the engine's own locking

        engine = ServeEngine(InProcessTransport(),
                             policy=ServePolicy(queue_capacity=256))
        n_clients, n_frames = 4, 8
        errors: list[BaseException] = []
        polls: list[tuple[int, int]] = []
        stop = threading.Event()

        def produce(cid: str) -> None:
            try:
                engine.transport.send(_open(tiny_sequence, cid))
                for i in range(n_frames):
                    engine.transport.send(
                        SessionFrame(cid, _frame(tiny_sequence, i)))
                engine.transport.send(SessionClose(cid))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def poll() -> None:
            try:
                while not stop.is_set():
                    frames = engine.stats()["frames"]
                    polls.append((frames["received"],
                                  frames["processed"] + frames["dropped"]))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        poller = threading.Thread(target=poll)
        producers = [threading.Thread(target=produce, args=(f"c{i}",))
                     for i in range(n_clients)]
        engine.start()
        try:
            poller.start()
            for t in producers:
                t.start()
            for t in producers:
                t.join()
            engine.stop(drain=True)
        finally:
            stop.set()
            poller.join()
            engine.close()

        assert errors == []
        stats = engine.stats()
        offered = n_clients * n_frames
        assert stats["frames"]["received"] == offered
        assert (stats["frames"]["processed"]
                + stats["frames"]["dropped"]) == offered
        assert stats["sessions"]["by_state"] == {"closed": n_clients}
        assert polls, "poller must have observed the engine at least once"
        received = [r for r, _ in polls]
        settled = [s for _, s in polls]
        assert received == sorted(received)
        assert settled == sorted(settled)


# -- load generator ----------------------------------------------------------

class TestLoadgen:
    def test_schedule_deterministic_and_ordered(self):
        spec = LoadSpec(clients=5, frames_per_client=3, seed=7)
        plans_a, events_a = build_schedule(spec)
        plans_b, events_b = build_schedule(spec)
        assert plans_a == plans_b and events_a == events_b
        times = [e.time_s for e in events_a]
        assert times == sorted(times)
        assert times[0] == 0.0  # first client arrives immediately
        # 5 opens + 15 frames + 5 closes.
        assert len(events_a) == 25

    def test_schedule_heavy_tail_varies_fps(self):
        _plans, events = build_schedule(LoadSpec(clients=16, seed=1))
        fps = {e.client.fps for e in events}
        assert len(fps) == 16  # lognormal draw: all distinct

    @pytest.mark.parametrize("kwargs", [
        {"clients": 0},
        {"frames_per_client": 0},
        {"arrival_shape": 1.0},
        {"fps_median": 0.0},
        {"speed": 0.0},
    ])
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(ServeError):
            LoadSpec(**kwargs)

    def test_run_load_sync_accounts_every_frame(self, tiny_sequence):
        engine = ServeEngine(InProcessTransport(),
                             policy=ServePolicy(queue_capacity=8))
        spec = LoadSpec(clients=4, frames_per_client=5, speed=200.0,
                        seed=3)
        report = run_load(engine, tiny_sequence, spec, algorithm="static")
        assert report.offered_frames == 20
        frames = report.engine_stats["frames"]
        assert frames["processed"] + frames["dropped"] == 20
        assert report.engine_stats["sessions"]["by_state"] == {"closed": 4}
        assert report.as_dict()["spec"]["clients"] == 4

    def test_run_load_threaded_requires_running_engine(self, tiny_sequence):
        engine = ServeEngine(InProcessTransport())
        with pytest.raises(ServeError):
            run_load(engine, tiny_sequence, LoadSpec(clients=1),
                     threaded=True)
