"""Property-based tests for Pareto utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hypermapper import hypervolume_2d, pareto_mask

objective_arrays = arrays(
    np.float64,
    st.tuples(st.integers(min_value=1, max_value=30),
              st.integers(min_value=2, max_value=4)),
    elements=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)

fronts_2d = arrays(
    np.float64,
    st.tuples(st.integers(min_value=1, max_value=20), st.just(2)),
    elements=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)


@given(pts=objective_arrays)
@settings(max_examples=80, deadline=None)
def test_front_members_are_mutually_nondominated(pts):
    mask = pareto_mask(pts)
    front = pts[mask]
    for i in range(len(front)):
        for j in range(len(front)):
            if i == j:
                continue
            dominates = np.all(front[j] <= front[i]) and np.any(
                front[j] < front[i]
            )
            assert not dominates


@given(pts=objective_arrays)
@settings(max_examples=80, deadline=None)
def test_at_least_one_nondominated(pts):
    assert pareto_mask(pts).any()


@given(pts=objective_arrays)
@settings(max_examples=80, deadline=None)
def test_minimum_of_each_objective_in_front(pts):
    mask = pareto_mask(pts)
    for k in range(pts.shape[1]):
        i = int(np.argmin(pts[:, k]))
        # The argmin row may be dominated only by a row equal in objective
        # k; in that case some front member shares its minimum value.
        assert np.isclose(pts[mask][:, k].min(), pts[:, k].min())


@given(front=fronts_2d)
@settings(max_examples=80, deadline=None)
def test_hypervolume_bounded_by_reference_box(front):
    ref = (6.0, 6.0)
    hv = hypervolume_2d(front, ref)
    assert 0.0 <= hv <= 36.0


@given(front=fronts_2d, extra=st.floats(min_value=0.0, max_value=5.0))
@settings(max_examples=80, deadline=None)
def test_hypervolume_monotone_under_adding_points(front, extra):
    ref = (6.0, 6.0)
    hv_before = hypervolume_2d(front, ref)
    added = np.vstack([front, [extra, extra]])
    assert hypervolume_2d(added, ref) >= hv_before - 1e-12
