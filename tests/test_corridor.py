"""Tests for the corridor scene and the ICP degeneracy it exposes."""

import numpy as np
import pytest

from repro.core import run_benchmark
from repro.datasets import SyntheticSequence
from repro.geometry import PinholeCamera, se3
from repro.kfusion import KinectFusion
from repro.scene import KinectNoiseModel
from repro.scene.corridor import WIDTH, corridor
from repro.scene.trajectory import Trajectory


def walk_sequence(scene, n_frames=10, step=0.012, seed=0):
    """Walk along the corridor's long axis, looking straight ahead."""
    cam = PinholeCamera.kinect_like(80, 60)
    poses = []
    for i in range(n_frames):
        eye = np.array([-2.0 + i * step, 1.2, 0.0])
        target = eye + np.array([1.0, -0.05, 0.0])
        poses.append(se3.look_at(eye, target, up=(0, 1, 0)))
    traj = Trajectory(poses=np.stack(poses),
                      timestamps=np.arange(n_frames) / 30.0)
    return SyntheticSequence(
        f"walk_{scene.name}", scene, traj, cam,
        noise=KinectNoiseModel.mild(), seed=seed,
    )


class TestSceneGeometry:
    def test_interior_is_free(self):
        s = corridor()
        assert s.distance(np.array([[0.0, 1.2, 0.0]]))[0] > 0.2

    def test_walls_close_on_z(self):
        s = corridor(bare=True)
        d = s.distance(np.array([[0.0, 1.1, 0.0]]))[0]
        assert d == pytest.approx(WIDTH / 2.0, abs=0.01)

    def test_fixtures_only_in_furnished_variant(self):
        probe = np.array([[-1.5, 1.0, -WIDTH / 2 + 0.05]])
        assert corridor(bare=True).distance(probe)[0] > 0.0
        assert corridor(bare=False).distance(probe)[0] <= 0.0

    def test_names(self):
        assert corridor().name == "corridor"
        assert corridor(bare=True).name == "corridor_bare"


class TestDegeneracy:
    """The along-corridor direction is unconstrained on bare walls."""

    @pytest.fixture(scope="class")
    def results(self):
        config = {"volume_resolution": 128, "volume_size": 6.4,
                  "integration_rate": 1}
        out = {}
        for bare in (True, False):
            seq = walk_sequence(corridor(bare=bare))
            out[bare] = run_benchmark(KinectFusion(), seq,
                                      configuration=config)
        return out

    def test_bare_corridor_worse_than_furnished(self, results):
        bare = results[True]
        furnished = results[False]
        # Along-axis sliding: the bare corridor's error is larger (or it
        # loses tracking outright).
        bare_err = bare.ate.max if bare.ate else float("inf")
        furn_err = furnished.ate.max if furnished.ate else float("inf")
        bare_lost = bare.collector.tracked_fraction() < 1.0
        assert bare_lost or bare_err > furn_err

    def test_furnished_corridor_trackable(self, results):
        furnished = results[False]
        assert furnished.collector.tracked_fraction() >= 0.8
        assert furnished.ate.max < 0.08
