"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_override, build_parser, main


class TestParsing:
    def test_override_int(self):
        assert _parse_override("volume_resolution=128") == (
            "volume_resolution", 128,
        )

    def test_override_float(self):
        name, value = _parse_override("mu_distance=0.05")
        assert name == "mu_distance"
        assert value == pytest.approx(0.05)

    def test_override_string(self):
        assert _parse_override("backend=opencl") == ("backend", "opencl")

    def test_override_missing_equals(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_override("justaname")

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--dataset", "lr_kt0",
                                  "--frames", "3"])
        assert args.dataset == "lr_kt0"
        assert args.frames == 3

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])


class TestCommands:
    def test_run_command(self, capsys):
        code = main([
            "run", "--dataset", "lr_kt0", "--algorithm", "icp_odometry",
            "--frames", "4", "--width", "32", "--height", "24",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "icp_odometry on lr_kt0" in out
        assert "ate_max_m" in out

    def test_run_with_override(self, capsys):
        code = main([
            "run", "--dataset", "lr_kt0", "--algorithm", "kfusion",
            "--frames", "3", "--width", "32", "--height", "24",
            "--set", "volume_resolution=48",
            "--set", "volume_size=5.0",
        ])
        assert code == 0

    def test_run_bad_override_reports_error(self, capsys):
        code = main([
            "run", "--dataset", "lr_kt0", "--frames", "3",
            "--width", "32", "--height", "24",
            "--set", "volume_resolution=7",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_devices_command(self, capsys):
        assert main(["devices"]) == 0
        assert "83 devices" in capsys.readouterr().out

    def test_serve_command_sync(self, capsys, tmp_path):
        stats_path = tmp_path / "stats.json"
        code = main([
            "serve", "--clients", "3", "--frames", "4",
            "--stream-frames", "4", "--width", "32", "--height", "24",
            "--speed", "100", "--set", "volume_resolution=48",
            "--set", "volume_size=5.0",
            "--stats-out", str(stats_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve" in out
        import json

        stats = json.loads(stats_path.read_text())
        engine = stats["engine"]
        assert engine["sessions"]["crashed"] == 0
        assert engine["sessions"]["by_state"] == {"closed": 3}
        frames = engine["frames"]
        assert frames["processed"] + frames["dropped"] == 12

    def test_serve_command_threaded(self, capsys, tmp_path):
        code = main([
            "serve", "--clients", "2", "--frames", "3",
            "--stream-frames", "3", "--width", "32", "--height", "24",
            "--speed", "100", "--threaded", "--algorithm", "icp_odometry",
            "--stats-out", str(tmp_path / "stats.json"),
        ])
        assert code == 0

    def test_evaluate_command(self, capsys, tmp_path):
        from repro.datasets import save_tum_trajectory
        from repro.scene import orbit

        gt = orbit((0, 1, 0), 1.5, 1.2, n_frames=8)
        est = orbit((0, 1, 0), 1.5, 1.2, n_frames=8,
                    jitter_trans_std=0.002, seed=3)
        gt_path = str(tmp_path / "gt.txt")
        est_path = str(tmp_path / "est.txt")
        save_tum_trajectory(gt, gt_path)
        save_tum_trajectory(est, est_path)
        assert main(["evaluate", est_path, gt_path]) == 0
        out = capsys.readouterr().out
        assert "ATE" in out
        assert "RPE" in out
        assert "endpoint drift" in out

    def test_evaluate_missing_file(self, capsys, tmp_path):
        code = main(["evaluate", str(tmp_path / "a.txt"),
                     str(tmp_path / "b.txt")])
        assert code == 1

    def test_dse_command_small(self, capsys, tmp_path):
        csv = str(tmp_path / "samples.csv")
        code = main(["dse", "--samples", "30", "--iterations", "2",
                     "--csv", csv])
        assert code == 0
        out = capsys.readouterr().out
        assert "Design-space exploration" in out
        assert "evaluations:" in out
        assert (tmp_path / "samples.csv").exists()

    def test_backends_command(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "opencl" in out and "cuda" in out

    def test_dse_workers_and_store(self, capsys, tmp_path):
        store = str(tmp_path / "store.jsonl")
        args = ["dse", "--samples", "20", "--iterations", "1",
                "--workers", "2", "--store", store]
        assert main(args) == 0
        assert "Design-space exploration" in capsys.readouterr().out
        assert (tmp_path / "store.jsonl").exists()
        # Same store without --resume: refused, not silently reused.
        assert main(args) == 1
        assert "--resume" in capsys.readouterr().err
        # With --resume: runs entirely from the store.
        assert main(args + ["--resume"]) == 0
        assert "Design-space exploration" in capsys.readouterr().out

    def test_crowd_workers(self, capsys):
        assert main(["crowd", "--workers", "2"]) == 0
        assert "geomean" in capsys.readouterr().out


class TestTraceCommands:
    def _run_traced(self, capsys, trace_path):
        code = main([
            "run", "--dataset", "lr_kt0", "--algorithm", "kfusion",
            "--frames", "4", "--width", "32", "--height", "24",
            "--set", "volume_resolution=48", "--set", "volume_size=5.0",
            "--trace", trace_path,
        ])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        return trace_path

    def test_run_trace_chrome(self, capsys, tmp_path):
        import json

        path = self._run_traced(capsys, str(tmp_path / "out.json"))
        with open(path) as f:
            doc = json.load(f)  # must be valid chrome trace JSON
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        for stage_name in ("preprocess", "track", "integrate", "raycast"):
            assert names.count(stage_name) == 4  # one per frame
        assert doc["metadata"]["algorithm"] == "kfusion"

    def test_run_trace_jsonl_and_summarize(self, capsys, tmp_path):
        path = self._run_traced(capsys, str(tmp_path / "out.jsonl"))
        assert main(["trace", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        for col in ("p50_ms", "p95_ms", "max_ms"):
            assert col in out
        for stage_name in ("preprocess", "track", "integrate", "raycast"):
            assert stage_name in out

    def test_summarize_chrome_trace(self, capsys, tmp_path):
        path = self._run_traced(capsys, str(tmp_path / "out.json"))
        assert main(["trace", "summarize", path]) == 0
        assert "frame" in capsys.readouterr().out

    def test_summarize_bad_file_reports_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("definitely not json")
        assert main(["trace", "summarize", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_summarize_missing_file_reports_error(self, capsys, tmp_path):
        assert main(["trace", "summarize",
                     str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_to_missing_dir_reports_error(self, capsys, tmp_path):
        code = main([
            "run", "--dataset", "lr_kt0", "--frames", "3",
            "--width", "32", "--height", "24",
            "--set", "volume_resolution=48", "--set", "volume_size=5.0",
            "--trace", str(tmp_path / "no_such_dir" / "out.json"),
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        # The benchmark itself still completed and reported.
        assert "kfusion on lr_kt0" in captured.out

    def test_dse_trace(self, capsys, tmp_path):
        path = str(tmp_path / "dse.jsonl")
        code = main(["dse", "--samples", "30", "--iterations", "2",
                     "--trace", path])
        assert code == 0
        from repro.telemetry import load_spans

        spans = load_spans(path)
        names = {s.name for s in spans}
        assert "dse.iteration" in names
        assert "dse.fit_models" in names


class TestGraphCommands:
    """``repro graph`` subcommands and the ``run --pipeline`` flag.

    ``graph check`` follows the lint exit-code contract: 0 clean, 1 on
    findings (a graph that fails to compile), 2 on an internal error
    (e.g. an unreadable policy file).
    """

    def test_graph_check_clean(self, capsys):
        assert main(["graph", "check"]) == 0
        out = capsys.readouterr().out
        assert "ok   kfusion" in out
        assert "ok   icp_odometry" in out

    def test_graph_check_single_graph(self, capsys):
        assert main(["graph", "check", "--graph", "kfusion"]) == 0
        out = capsys.readouterr().out
        assert "preprocess -> track -> integrate -> raycast" in out

    def test_graph_check_broken_graph_exits_1(self, capsys, monkeypatch):
        from repro.graph import Edge, GraphSpec
        from repro.graph.spec import _GRAPHS

        def broken():
            # Two kfusion stages wired into a loop: compile must fail.
            return GraphSpec(
                name="broken",
                nodes=(("track", "kfusion.track"),
                       ("integrate", "kfusion.integrate")),
                edges=(Edge("track", "tracked", "integrate", "tracked"),),
            )

        monkeypatch.setitem(_GRAPHS, "zz-broken", broken)
        assert main(["graph", "check", "--graph", "zz-broken"]) == 1
        assert "FAIL zz-broken" in capsys.readouterr().out

    def test_graph_check_unknown_graph_exits_1(self, capsys):
        assert main(["graph", "check", "--graph", "teapot"]) == 1
        assert "FAIL teapot" in capsys.readouterr().out

    def test_graph_check_bad_policy_exits_2(self, capsys, tmp_path):
        assert main(["graph", "check",
                     "--policy", str(tmp_path / "nope.toml")]) == 2
        assert "internal error" in capsys.readouterr().err

    def test_graph_show(self, capsys):
        assert main(["graph", "show", "kfusion"]) == 0
        out = capsys.readouterr().out
        assert "schedule: preprocess -> track -> integrate -> raycast" in out
        assert "edge track.tracked -> integrate.tracked" in out

    def test_graph_show_unknown_reports_error(self, capsys):
        assert main(["graph", "show", "teapot"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_graph_diff_equivalent(self, capsys):
        code = main([
            "graph", "diff", "--frames", "4", "--width", "32",
            "--height", "24", "--set", "volume_resolution=48",
            "--set", "volume_size=5.0",
        ])
        assert code == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_graph_diff_odometry(self, capsys):
        code = main([
            "graph", "diff", "--algorithm", "icp_odometry",
            "--frames", "4", "--width", "32", "--height", "24",
        ])
        assert code == 0
        assert "icp_odometry" in capsys.readouterr().out

    def test_run_pipeline_flag(self, capsys):
        for pipeline in ("graph", "legacy"):
            code = main([
                "run", "--dataset", "lr_kt0", "--frames", "3",
                "--width", "32", "--height", "24",
                "--pipeline", pipeline,
                "--set", "volume_resolution=48",
                "--set", "volume_size=5.0",
            ])
            assert code == 0
            assert "kfusion on lr_kt0" in capsys.readouterr().out
