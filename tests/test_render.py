"""Tests for the volume visualisation (GUI model render)."""

import numpy as np
import pytest

from repro.core import run_benchmark
from repro.errors import GeometryError
from repro.geometry import PinholeCamera, se3
from repro.kfusion import KinectFusion, TSDFVolume
from repro.kfusion.integration import integrate
from repro.kfusion.render import ascii_render, depth_to_grayscale, render_volume


@pytest.fixture(scope="module")
def wall_setup():
    cam = PinholeCamera.kinect_like(64, 48)
    pose = se3.make_pose(np.eye(3), [1.0, 1.0, 0.0])
    volume = TSDFVolume(64, 2.0)
    integrate(volume, np.full(cam.shape, 1.0), cam, pose, mu=0.15)
    return volume, cam, pose


class TestRenderVolume:
    def test_shape_and_range(self, wall_setup):
        volume, cam, pose = wall_setup
        img = render_volume(volume, cam, pose, mu=0.15)
        assert img.shape == cam.shape
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_surface_brighter_than_background(self, wall_setup):
        volume, cam, pose = wall_setup
        img = render_volume(volume, cam, pose, mu=0.15)
        assert img[24, 32] > 0.2  # wall centre is lit
        assert img[0, 0] == 0.0  # no surface at the corner rays

    def test_ambient_floor(self, wall_setup):
        volume, cam, pose = wall_setup
        img = render_volume(volume, cam, pose, mu=0.15, ambient=0.5)
        hit = img > 0.0
        assert img[hit].min() >= 0.5 - 1e-9

    def test_zero_light_rejected(self, wall_setup):
        volume, cam, pose = wall_setup
        with pytest.raises(GeometryError):
            render_volume(volume, cam, pose, mu=0.15, light_dir=(0, 0, 0))


class TestHelpers:
    def test_depth_to_grayscale(self):
        d = np.array([[0.0, 3.0], [6.0, 9.0]])
        img = depth_to_grayscale(d, max_range=6.0)
        assert img[0, 0] == 0.0
        assert img[0, 1] == pytest.approx(0.5)
        assert img[1, 1] == 1.0

    def test_ascii_render_dimensions(self):
        img = np.linspace(0, 1, 64 * 48).reshape(48, 64)
        art = ascii_render(img, width=32)
        lines = art.splitlines()
        assert 0 < len(lines) <= 24
        assert all(len(line) <= 33 for line in lines)

    def test_ascii_render_intensity_ramp(self):
        dark = ascii_render(np.zeros((16, 16)))
        bright = ascii_render(np.ones((16, 16)))
        assert set(dark) <= {" ", "\n"}
        assert "@" in bright


class TestPipelineIntegration:
    def test_model_render_output(self, tiny_sequence):
        result = run_benchmark(
            KinectFusion(publish_render=True), tiny_sequence,
            configuration={"volume_resolution": 64, "volume_size": 5.0,
                           "integration_rate": 1},
            evaluate_accuracy=False,
        )
        # Render kernel charged on every frame.
        for record in result.collector.records:
            assert any(k.name == "render" for k in record.workload.kernels)

    def test_render_off_by_default(self, tiny_sequence):
        system = KinectFusion()
        system.new_configuration().update(
            {"volume_resolution": 32, "volume_size": 5.0}
        )
        system.init(tiny_sequence.sensors)
        assert "model_render" not in system.outputs.names()
        system.clean()
