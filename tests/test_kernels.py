"""Tests for the analytic kernel cost formulas."""

import pytest

from repro.kfusion import kernels


class TestScaling:
    def test_integrate_cubic_in_resolution(self):
        a = kernels.integrate(64)
        b = kernels.integrate(128)
        assert b.flops / a.flops == pytest.approx(8.0)
        assert b.bytes_accessed / a.bytes_accessed == pytest.approx(8.0)

    def test_pixel_kernels_linear(self):
        for fn in (kernels.bilateral_filter, kernels.depth_to_vertex,
                   kernels.vertex_to_normal, kernels.track_iteration,
                   kernels.reduce_iteration, kernels.half_sample,
                   kernels.acquire, kernels.render):
            a = fn(1000)
            b = fn(2000)
            assert b.flops == pytest.approx(2 * a.flops), fn.__name__

    def test_bilateral_window_scaling(self):
        small = kernels.bilateral_filter(1000, radius=1)
        big = kernels.bilateral_filter(1000, radius=2)
        assert big.flops / small.flops == pytest.approx(25 / 9)

    def test_raycast_steps_grow_with_volume(self):
        a = kernels.raycast(1000, volume_size=2.0, mu=0.1, voxel_size=0.05)
        b = kernels.raycast(1000, volume_size=4.0, mu=0.1, voxel_size=0.05)
        assert b.flops == pytest.approx(2 * a.flops)

    def test_raycast_step_rule(self):
        # Larger mu -> larger steps -> fewer flops.
        fine = kernels.raycast(1000, 4.0, mu=0.05, voxel_size=0.01)
        coarse = kernels.raycast(1000, 4.0, mu=0.2, voxel_size=0.01)
        assert coarse.flops < fine.flops

    def test_solve_is_serial_and_cpu(self):
        s = kernels.solve()
        assert s.parallel_fraction == 0.0
        assert not s.gpu_eligible

    def test_all_kernels_gpu_eligible_except_solve(self):
        assert kernels.integrate(32).gpu_eligible
        assert kernels.track_iteration(100).gpu_eligible

    def test_downsample_counts_both_sides(self):
        k = kernels.downsample(4000, 1000)
        assert k.bytes_accessed == pytest.approx(4 * (4000 + 1000))
