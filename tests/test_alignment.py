"""Tests for Umeyama/Horn trajectory alignment."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import se3
from repro.metrics import align_trajectories, umeyama


class TestUmeyama:
    def test_recovers_known_transform(self, rng):
        src = rng.normal(size=(30, 3))
        T_true = se3.make_pose(se3.so3_exp(rng.normal(size=3)),
                               rng.normal(size=3))
        dst = se3.transform_points(T_true, src)
        T, scale = umeyama(src, dst)
        assert scale == 1.0
        assert np.allclose(T, T_true, atol=1e-9)

    def test_recovers_scale(self, rng):
        src = rng.normal(size=(30, 3))
        dst = 2.5 * src + np.array([1.0, 0, 0])
        T, scale = umeyama(src, dst, with_scale=True)
        assert scale == pytest.approx(2.5, rel=1e-9)

    def test_no_reflection(self, rng):
        src = rng.normal(size=(20, 3))
        dst = src.copy()
        dst[:, 0] = -dst[:, 0]  # mirrored target
        T, _ = umeyama(src, dst)
        assert np.linalg.det(T[:3, :3]) == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(GeometryError):
            umeyama(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_shape_mismatch(self):
        with pytest.raises(GeometryError):
            umeyama(np.zeros((5, 3)), np.zeros((6, 3)))

    def test_degenerate_scale_source(self):
        src = np.zeros((5, 3))
        with pytest.raises(GeometryError):
            umeyama(src, src, with_scale=True)


class TestAlign:
    def test_aligned_error_is_zero_for_rigid_offset(self, rng):
        est = rng.normal(size=(20, 3))
        T = se3.make_pose(se3.so3_exp([0.1, 0.2, 0.3]), [1, 2, 3])
        ref = se3.transform_points(T, est)
        aligned = align_trajectories(est, ref)
        assert np.allclose(aligned, ref, atol=1e-9)

    def test_alignment_reduces_error(self, rng):
        est = rng.normal(size=(20, 3))
        ref = se3.transform_points(
            se3.make_pose(np.eye(3), [0.5, 0, 0]), est
        ) + rng.normal(0, 0.001, size=(20, 3))
        before = np.linalg.norm(est - ref, axis=-1).mean()
        after = np.linalg.norm(align_trajectories(est, ref) - ref,
                               axis=-1).mean()
        assert after < before
