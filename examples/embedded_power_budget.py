"""The headline experiment: real-time dense SLAM within 1 W on the ODROID.

Runs the co-design search (algorithmic parameters + backend + DVFS) under
the constraints {Max ATE < 5 cm, >= 30 FPS, < 1 W streaming power} and
reports the improvement over the default and the hand-tuned state of the
art — the poster's "4.8x execution time improvement and 2.8x power
reduction".

Usage::

    python examples/embedded_power_budget.py
"""

from repro.core import format_table
from repro.experiments import headline
from repro.kfusion import KFusionParams
from repro.kfusion.workload_model import sequence_workloads
from repro.platforms import odroid_xu3
from repro.platforms.governor import GOVERNORS, simulate_with_governor


def governor_comparison(tuned_configuration: dict) -> list[dict]:
    """How Linux's DVFS governors would run the tuned configuration."""
    params = KFusionParams(**{
        k: v for k, v in tuned_configuration.items()
        if k in KFusionParams().__dataclass_fields__
    })
    workloads = sequence_workloads(params, 320, 240, 30)
    device = odroid_xu3()
    rows = []
    for governor in GOVERNORS:
        res = simulate_with_governor(device, workloads, governor)
        rows.append(
            {
                "governor": governor,
                "fps": res.fps,
                "streaming_power_w": res.streaming_power_w,
                "realtime": res.realtime_fraction,
                "final_gpu_ghz": res.gpu_freqs_ghz[-1],
            }
        )
    return rows


def main() -> None:
    result = headline.run(seed=7)

    print(format_table(result.rows(),
                       title="ODROID-XU3 configurations (simulated)"))
    print(f"constraints: {result.constraints}")
    print()
    print(f"vs state of the art: "
          f"{result.time_improvement_vs_sota:.1f}x faster, "
          f"{result.power_reduction_vs_sota:.1f}x less power")
    print(f"vs default:          "
          f"{result.time_improvement_vs_default:.1f}x faster, "
          f"{result.power_reduction_vs_default:.1f}x less power")
    print(f"real-time within the 1 W budget: "
          f"{result.realtime_within_budget}")
    print()
    print("Tuned configuration:")
    for key, value in sorted(result.tuned.configuration.items()):
        print(f"  {key} = {value}")

    print()
    print(format_table(
        governor_comparison(result.tuned.configuration),
        title="The tuned configuration under Linux DVFS governors "
              "(ondemand approaches the co-design's fixed low clock)",
    ))


if __name__ == "__main__":
    main()
