"""Design-space exploration of KinectFusion (the paper's Figure 2).

Phase 1: random sampling of the 10-parameter algorithmic space.
Phase 2: active learning with the random-forest model.
Output: the (runtime, Max ATE) picture, the best configurations under the
5 cm accuracy limit, and the extracted knowledge rules.

Usage::

    python examples/design_space_exploration.py
"""

import numpy as np

from repro.core import format_table
from repro.experiments import fig2_dse
from repro.hypermapper import format_knowledge


def main() -> None:
    figure = fig2_dse.run_surrogate(
        n_random=150,
        n_initial=40,
        n_iterations=10,
        samples_per_iteration=8,
        seed=1,
    )

    print("=== Exploration strategies (runtime vs Max ATE) ===")
    for which in ("random", "active"):
        pts = figure.scatter_points(which)
        feasible = pts[pts[:, 1] < figure.accuracy_limit_m]
        print(
            f"{which:>7}: {len(pts)} evaluations, "
            f"{len(feasible)} under the {figure.accuracy_limit_m*100:.0f} cm "
            f"accuracy limit, fastest feasible "
            f"{feasible[:, 0].min() * 1e3:.1f} ms"
            if len(feasible)
            else f"{which:>7}: {len(pts)} evaluations, none feasible"
        )

    print()
    print(format_table(figure.summary_rows(),
                       title="Default vs best configurations"))

    print("=== Knowledge extraction (Figure 2, right) ===")
    print(format_knowledge(figure.knowledge))

    best = figure.best_active
    if best is not None:
        print("Best configuration found by active learning:")
        for key, value in sorted(best.configuration.items()):
            print(f"  {key} = {value}")


if __name__ == "__main__":
    main()
