"""Dataset tooling: generate, inspect, save and reload sequences.

Shows the dataset substrate on its own: procedural scenes, trajectory
generators, the Kinect noise model, and the ``.npz`` sequence format
(the analogue of SLAMBench's ``.slam`` files).

Usage::

    python examples/dataset_tools.py [output.npz]
"""

import sys

import numpy as np

from repro.core import format_table
from repro.datasets import SyntheticSequence, load_sequence, save_sequence
from repro.geometry import PinholeCamera
from repro.scene import KinectNoiseModel, living_room, office, orbit


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "custom_sequence.npz"

    # Build a custom sequence: office scene, custom orbit, harsh noise.
    scene = office()
    camera = PinholeCamera.kinect_like(width=96, height=72)
    trajectory = orbit(
        center=scene.center, radius=1.4, height=1.3, n_frames=12,
        sweep_deg=10.0, jitter_trans_std=0.001, seed=42,
    )
    sequence = SyntheticSequence(
        name="of_custom",
        scene=scene,
        trajectory=trajectory,
        camera=camera,
        noise=KinectNoiseModel.harsh(),
        with_rgb=True,
        seed=42,
    )
    sequence.validate()

    rows = []
    for frame in sequence:
        clean = sequence.clean_depth(frame.index)
        corrupted = np.abs(frame.depth - clean)[frame.depth > 0]
        rows.append(
            {
                "frame": frame.index,
                "valid_depth": frame.valid_depth_fraction(),
                "mean_noise_mm": float(corrupted.mean() * 1e3),
                "depth_min_m": float(frame.depth[frame.depth > 0].min()),
                "depth_max_m": float(frame.depth.max()),
            }
        )
    print(format_table(rows[:6], title="Rendered frames (harsh noise)"))

    save_sequence(sequence, out_path)
    loaded = load_sequence(out_path)
    loaded.validate()
    print(f"saved + reloaded {out_path}: {len(loaded)} frames, "
          f"camera {loaded.sensors.depth.camera.shape}, "
          f"gt={loaded.sensors.has_ground_truth}, "
          f"rgb={loaded.sensors.has_rgb}")

    # The living room is available too:
    lr = living_room()
    probe = np.array([[0.0, 1.2, 0.0]])
    print(f"living room: free space at centre = "
          f"{lr.distance(probe)[0]:.2f} m to the nearest surface")


if __name__ == "__main__":
    main()
