"""Quickstart: benchmark KinectFusion on a synthetic living-room sequence.

Runs the dense SLAM pipeline over an ICL-NUIM-style sequence, evaluates
trajectory accuracy against ground truth, and simulates speed/power on the
ODROID-XU3 — the core SLAMBench loop in ~30 lines.

Usage::

    python examples/quickstart.py
"""

from repro.core import format_table, run_benchmark
from repro.datasets import icl_nuim
from repro.kfusion import KinectFusion
from repro.platforms import PlatformConfig, odroid_xu3


def main() -> None:
    # A laptop-scale instance of the lr_kt0 sequence (the real one is
    # 640x480 x ~900 frames; same generator, smaller knobs).
    sequence = icl_nuim.load("lr_kt0", n_frames=20, width=80, height=60)

    result = run_benchmark(
        KinectFusion(),
        sequence,
        configuration={
            "volume_resolution": 128,
            "volume_size": 5.0,
            "integration_rate": 1,
        },
        device=odroid_xu3(),
        platform_config=PlatformConfig(backend="opencl"),
    )

    print(f"sequence: {result.sequence}  algorithm: {result.algorithm}")
    print(
        format_table(
            [result.summary()],
            columns=[
                "frames", "tracked_fraction", "ate_max_m", "ate_rmse_m",
                "sim_fps", "sim_power_w",
            ],
            title="\nBenchmark summary",
        )
    )

    rows = [
        {
            "frame": r.index,
            "status": r.status.value,
            "wall_ms": r.wall_time_s * 1e3,
            "valid_depth": r.valid_depth_fraction,
        }
        for r in result.collector.records[:8]
    ]
    print(format_table(rows, title="First frames (per-frame stream)"))


if __name__ == "__main__":
    main()
