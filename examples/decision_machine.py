"""The decision machine for mobile phones (the poster's future work).

Trains a classifier that maps device specifications to the most accurate
KinectFusion configuration still real-time on that device, using the
crowdsourced device population, and shows its recommendations for a few
well-known phones.

Usage::

    python examples/decision_machine.py
"""

from repro.core import format_table
from repro.crowd import (
    PORTFOLIO,
    DecisionMachine,
    portfolio_fps,
    train_test_devices,
)
from repro.platforms import phone_database


def main() -> None:
    train, test = train_test_devices(test_fraction=0.3, seed=0)
    machine = DecisionMachine(target_fps=30.0, seed=0).fit(train)
    evaluation = machine.evaluate(test, fixed_index=2)

    print(f"portfolio ({len(PORTFOLIO)} entries, most accurate first):")
    for i, entry in enumerate(PORTFOLIO):
        print(f"  P{i}: {entry}")
    print()
    print(f"held-out devices: {evaluation.devices}")
    print(f"exact oracle match: {evaluation.exact_match:.0%}   "
          f"within one level: {evaluation.within_one:.0%}")
    print(f"real-time with the predicted config: "
          f"{evaluation.realtime_fraction:.0%}")
    print(f"quality regret: machine {evaluation.mean_quality_regret:.2f} "
          f"levels vs fixed-config {evaluation.mean_quality_loss_fixed:.2f}")
    print()

    db = {d.name: d for d in phone_database()}
    showcase = [
        "Samsung Galaxy S7", "Google Pixel", "LG Nexus 5",
        "Motorola Moto G 2014", "Nvidia Shield Tablet",
    ]
    rows = []
    for name in showcase:
        device = db[name]
        choice = machine.predict(device)
        fps = portfolio_fps(device, n_frames=6)
        rows.append(
            {
                "device": name,
                "recommended": f"P{choice}",
                "volume": PORTFOLIO[choice]["volume_resolution"],
                "fps_at_choice": fps[choice],
                "fps_at_P0": fps[0],
            }
        )
    print(format_table(rows, title="Recommendations"))


if __name__ == "__main__":
    main()
