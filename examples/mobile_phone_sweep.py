"""The Android crowdsourcing study (the paper's Figure 3).

Takes the ODROID-tuned configuration (from the headline co-design search),
strips its platform-specific knobs, and runs default-vs-tuned on all 83
devices of the mobile database, printing the speed-up histogram and the
per-device extremes.

Usage::

    python examples/mobile_phone_sweep.py
"""

from repro.core import format_table
from repro.crowd import device_table
from repro.experiments import fig3_android


def main() -> None:
    figure = fig3_android.run(seed=0)

    print("Tuned configuration shipped to the devices "
          "(platform knobs stripped):")
    for key, value in sorted(figure.tuned_configuration.items()):
        print(f"  {key} = {value}")
    print()

    s = figure.summary
    print(figure.histogram())
    print(f"median speed-up: {s.summary.median:.1f}x   "
          f"geometric mean: {s.geometric_mean:.1f}x   "
          f"range: [{s.summary.minimum:.1f}x, {s.summary.maximum:.1f}x]")
    print(f"devices at >= 25 FPS: default {s.realtime_default}/83, "
          f"tuned {s.realtime_tuned}/83")
    print()
    print(format_table(figure.by_form_factor,
                       title="Speed-up by form factor"))
    print(format_table(figure.by_year, title="Speed-up by device year"))
    print(device_table(figure.runs, top=8))


if __name__ == "__main__":
    main()
