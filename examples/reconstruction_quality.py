"""Map quality end to end: run SLAM, extract the mesh, score it, export.

Exercises the full 3D-model path: KinectFusion over a synthetic sequence,
marching-tetrahedra mesh extraction from the TSDF, exact surface error
against the generating scene SDF, and export of the mesh (OBJ) plus the
estimated/ground-truth trajectories (TUM format) for external tools.

Usage::

    python examples/reconstruction_quality.py [output_dir]
"""

import os
import sys

import numpy as np

from repro.core import format_table
from repro.datasets import icl_nuim, save_tum_trajectory
from repro.geometry import se3
from repro.kfusion import KinectFusion, ascii_render, extract_mesh, render_volume
from repro.metrics import reconstruction_error, trajectory_drift


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "reconstruction_out"
    os.makedirs(out_dir, exist_ok=True)

    sequence = icl_nuim.load("lr_kt0", n_frames=15, width=80, height=60)
    system = KinectFusion()
    system.new_configuration().update(
        {"volume_resolution": 128, "volume_size": 5.0, "integration_rate": 1}
    )
    system.init(sequence.sensors)
    poses, stamps = [], []
    try:
        for frame in sequence:
            system.update_frame(frame.without_ground_truth())
            system.process_once()
            system.update_outputs()
            poses.append(system.outputs.pose())
            stamps.append(frame.timestamp)

        assert system.volume is not None
        mesh = extract_mesh(system.volume)
        shaded = render_volume(system.volume, system.compute_camera,
                               poses[-1], mu=0.1)
    finally:
        volume = system.volume
        camera = system.compute_camera

    # Score the map against the exact scene SDF.
    world_from_volume = sequence.trajectory[0] @ se3.inverse(poses[0])
    recon = reconstruction_error(volume, sequence.scene, world_from_volume)

    # Score the trajectory.
    from repro.scene.trajectory import Trajectory

    estimated = Trajectory(poses=np.stack(poses),
                           timestamps=np.asarray(stamps))
    drift = trajectory_drift(estimated.relative(0),
                             sequence.ground_truth().relative(0))

    print(format_table(
        [
            {
                "mesh_vertices": mesh.n_vertices,
                "mesh_triangles": mesh.n_triangles,
                "surface_area_m2": mesh.surface_area(),
                "surface_err_mean_cm": recon.mean_abs * 100,
                "completeness": recon.completeness,
                "drift_percent": drift.endpoint_drift_percent,
            }
        ],
        title="Reconstruction quality",
    ))

    obj_path = os.path.join(out_dir, "model.obj")
    mesh.save_obj(obj_path, comment="repro kfusion reconstruction")
    save_tum_trajectory(estimated, os.path.join(out_dir, "estimated.txt"),
                        comment="kfusion estimate")
    save_tum_trajectory(sequence.ground_truth(),
                        os.path.join(out_dir, "groundtruth.txt"),
                        comment="synthetic ground truth")
    print(f"wrote {obj_path} (+ estimated.txt, groundtruth.txt)")
    print("\nShaded model render (what the GUI shows):")
    print(ascii_render(shaded, width=64))


if __name__ == "__main__":
    main()
