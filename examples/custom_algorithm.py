"""Plugging a custom SLAM system into the framework.

SLAMBench's point is that *any* SLAM algorithm can be benchmarked under
the same lifecycle and metrics.  This example implements a new system —
a constant-velocity dead-reckoning tracker seeded by dense ICP — against
the public :class:`~repro.core.SLAMSystem` API, registers it, and compares
it with the built-in algorithms on the same sequence.

Usage::

    python examples/custom_algorithm.py
"""

import numpy as np

from repro.baselines import ICPOdometry
from repro.core import (
    Frame,
    OutputKind,
    ParameterSpec,
    SensorSuite,
    SLAMSystem,
    TrackingStatus,
    format_table,
    run_benchmark,
)
from repro.core.workload import FrameWorkload
from repro.datasets import icl_nuim
from repro.geometry import se3
from repro.kfusion import KinectFusion, kernels


class ConstantVelocitySLAM(SLAMSystem):
    """Dead reckoning: replay the last observed inter-frame motion.

    It runs dense ICP only every ``keyframe_rate`` frames; in between it
    extrapolates with a constant-velocity model — a classic cheap tracker
    that trades accuracy for near-zero compute.
    """

    name = "const_velocity"

    def __init__(self):
        super().__init__()
        self._odometry = ICPOdometry()
        self._pose = np.eye(4)
        self._velocity = np.eye(4)  # last relative motion
        self._status = TrackingStatus.BOOTSTRAP

    def parameter_specs(self) -> list[ParameterSpec]:
        return [
            ParameterSpec(
                "keyframe_rate", "integer", 3, low=1, high=10,
                description="run dense ICP every Nth frame",
            ),
        ]

    def do_init(self, sensors: SensorSuite) -> None:
        self._odometry.new_configuration()
        self._odometry.init(sensors)
        self._pose = np.eye(4)
        self._velocity = np.eye(4)
        self.outputs.declare("pose", OutputKind.POSE)
        self.outputs.declare("tracking_status", OutputKind.TRACKING_STATUS)

    def do_process(self, frame: Frame, workload: FrameWorkload) -> TrackingStatus:
        assert self.configuration is not None
        rate = self.configuration["keyframe_rate"]
        if frame.index % rate == 0:
            prev = self._pose
            self._odometry.update_frame(frame)
            status = self._odometry.process_once()
            workload.extend(self._odometry.last_workload().kernels)
            self._odometry.update_outputs()
            self._pose = self._odometry.outputs.pose()
            if frame.index > 0:
                self._velocity = se3.inverse(prev) @ self._pose
            self._status = status
        else:
            # Dead reckoning costs essentially one pose composition.
            self._pose = self._pose @ self._velocity
            workload.add(kernels.solve())
            self._status = TrackingStatus.OK
        return self._status

    def do_update_outputs(self) -> None:
        idx = self.frames_processed - 1
        self.outputs.get("pose").set(self._pose.copy(), idx)
        self.outputs.get("tracking_status").set(self._status, idx)

    def do_clean(self) -> None:
        self._odometry.clean()


def main() -> None:
    sequence = icl_nuim.load("lr_kt0", n_frames=18, width=80, height=60)

    systems = [
        (KinectFusion(), {"volume_resolution": 128, "volume_size": 5.0,
                          "integration_rate": 1}),
        (ICPOdometry(), {}),
        (ConstantVelocitySLAM(), {"keyframe_rate": 3}),
    ]
    rows = []
    for system, config in systems:
        result = run_benchmark(system, sequence, configuration=config)
        total_flops = sum(
            r.workload.total_flops for r in result.collector.records
        )
        rows.append(
            {
                "algorithm": result.algorithm,
                "ate_max_m": result.ate.max,
                "ate_rmse_m": result.ate.rmse,
                "tracked": result.collector.tracked_fraction(),
                "gflops_total": total_flops / 1e9,
            }
        )
    print(format_table(rows, title="Custom algorithm vs built-ins "
                                   "(same sequence, same metrics)"))
    print("Note the trade-off: dead reckoning slashes compute but pays in "
          "trajectory error.")


if __name__ == "__main__":
    main()
