"""repro — a Python reproduction of *"Algorithmic Performance-Accuracy
Trade-off in 3D Vision Applications"* (Bodin, Nardi, Wagstaff, Kelly,
O'Boyle — ISPASS 2018).

The package rebuilds the paper's three systems from scratch:

* **SLAMBench** (``repro.core``, ``repro.kfusion``, ``repro.datasets``,
  ``repro.metrics``, ``repro.platforms``): a benchmarking framework around
  a NumPy KinectFusion, measuring speed, trajectory accuracy (ATE) and
  power over synthetic ICL-NUIM/TUM-style RGB-D sequences.
* **HyperMapper** (``repro.hypermapper``, ``repro.ml``): multi-objective
  design-space exploration with a from-scratch random-forest model,
  Pareto analysis, constraints and decision-tree knowledge extraction.
* **The Android crowdsourcing study** (``repro.crowd``): an 83-device
  mobile database and campaign simulation.

Quick start::

    from repro.core import run_benchmark
    from repro.datasets import icl_nuim
    from repro.kfusion import KinectFusion
    from repro.platforms import odroid_xu3, PlatformConfig

    seq = icl_nuim.load("lr_kt0", n_frames=20, width=80, height=60)
    result = run_benchmark(
        KinectFusion(), seq,
        configuration={"volume_resolution": 128, "volume_size": 5.0},
        device=odroid_xu3(), platform_config=PlatformConfig(backend="opencl"),
    )
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from .version import __version__

__all__ = ["__version__"]
