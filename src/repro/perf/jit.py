"""Optional numba-jitted kernel backend.

The ``"jit"`` backend is the fast pipeline with its two scalar-heavy
inner loops compiled by numba: the trilinear TSDF sample/gradient the
raycaster calls every march step, and ICP's per-pixel projective
association (transform, project, gather, gate).  Everything around
those loops — the march itself, the Gauss-Newton solver, preprocess,
integrate — is shared with the fast backend, so the jit backend's
equivalence argument reduces to the inner loops recomputing the same
quantities scalar-wise that the fast kernels compute vectorised.

numba is an *optional* dependency: when it is absent this module still
imports cleanly, :data:`HAVE_NUMBA` is False, and
:func:`register_jit_backend` is a no-op — the registry then holds
exactly the reference/fast/sparse trio.  CI runs one job with numba
installed (golden-equivalence subset on "jit") and one without (clean
skip), so both halves of the gate stay proven.

The jitted ICP front end allocates its per-level scratch per call
rather than through the arena: this module only runs where numba is
installed, and keeping it outside the arena's budget formula means the
memory model (``kfusion.memory``) stays a function of the always-on
backends.
"""

from __future__ import annotations

import numpy as np

from ..errors import PerfError, TrackingError
from ..geometry import se3
from ..kfusion.tracking import (
    MAX_RMSE,
    MIN_INLIER_FRACTION,
    ReferenceModel,
    TrackResult,
    _huber_weights,
)
from ..kfusion.volume import TSDFVolume
from . import raycast as _fast_raycast
from .common import PROJECT_EDGE_EPS, PROJECT_MIN_Z
from .tracking import (
    _COS_NORMAL_THRESHOLD,
    _DIST_SQ_THRESHOLD,
    _PreparedReference,
)
from .workspace import FrameWorkspace

try:
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised by the no-numba CI job
    njit = None
    HAVE_NUMBA = False


if HAVE_NUMBA:

    @njit(cache=True)
    def _sample_kernel(tsdf, weight, r, inv_voxel, points, values, valid):
        """Scalar trilinear sampling, reference invalid-to-1.0 semantics."""
        one = np.float32(1.0)
        half = np.float32(0.5)
        for i in range(points.shape[0]):
            px = points[i, 0] * inv_voxel - half
            py = points[i, 1] * inv_voxel - half
            pz = points[i, 2] * inv_voxel - half
            bx = int(np.floor(px))
            by = int(np.floor(py))
            bz = int(np.floor(pz))
            inside = (bx >= 0 and bx <= r - 2 and by >= 0 and by <= r - 2
                      and bz >= 0 and bz <= r - 2)
            fx = px - np.float32(bx)
            fy = py - np.float32(by)
            fz = pz - np.float32(bz)
            cbx = min(max(bx, 0), r - 2)
            cby = min(max(by, 0), r - 2)
            cbz = min(max(bz, 0), r - 2)

            value = np.float32(0.0)
            observed = True
            for c in range(8):
                ox = c & 1
                oy = (c >> 1) & 1
                oz = (c >> 2) & 1
                idx = ((cbx + ox) * r + (cby + oy)) * r + (cbz + oz)
                w = (fx if ox == 1 else one - fx)
                w = w * (fy if oy == 1 else one - fy)
                w = w * (fz if oz == 1 else one - fz)
                value += w * tsdf[idx]
                observed = observed and weight[idx] > np.float32(0.0)

            if inside and observed:
                values[i] = value
                valid[i] = True
            else:
                values[i] = one
                valid[i] = False

    @njit(cache=True)
    def _associate_kernel(cur_v, cur_n, valid_cur, Rp, tp, Rc, tc,
                          fx, fy, cx, cy, width, height,
                          ref_v, ref_n, has_ref, dist_sq_thr, cos_thr,
                          min_z, eps, p_vol, r_n, diff, matched):
        """Per-pixel ICP association: transform, project, gather, gate.

        Same gates as the fast front end (``perf.tracking._solve_level``):
        projective validity, reference presence, squared-distance and
        normal-angle thresholds.  Writes the volume-frame point, matched
        reference normal and vertex difference for the f64 solver.
        """
        n = cur_v.shape[0]
        for i in range(n):
            x = cur_v[i, 0]
            y = cur_v[i, 1]
            z = cur_v[i, 2]
            px = Rp[0, 0] * x + Rp[0, 1] * y + Rp[0, 2] * z + tp[0]
            py = Rp[1, 0] * x + Rp[1, 1] * y + Rp[1, 2] * z + tp[1]
            pz = Rp[2, 0] * x + Rp[2, 1] * y + Rp[2, 2] * z + tp[2]
            p_vol[i, 0] = px
            p_vol[i, 1] = py
            p_vol[i, 2] = pz
            matched[i] = False
            if not valid_cur[i]:
                continue

            qx = Rc[0, 0] * px + Rc[0, 1] * py + Rc[0, 2] * pz + tc[0]
            qy = Rc[1, 0] * px + Rc[1, 1] * py + Rc[1, 2] * pz + tc[1]
            qz = Rc[2, 0] * px + Rc[2, 1] * py + Rc[2, 2] * pz + tc[2]
            if qz <= min_z:
                continue
            u = fx * qx / qz + cx
            v = fy * qy / qz + cy
            if not (np.isfinite(u) and np.isfinite(v)):
                continue
            if u < -eps or u > width - 1 + eps:
                continue
            if v < -eps or v > height - 1 + eps:
                continue
            ui = int(np.rint(u))
            vi = int(np.rint(v))
            ui = min(max(ui, 0), width - 1)
            vi = min(max(vi, 0), height - 1)
            flat = vi * width + ui
            if not has_ref[flat]:
                continue

            dx = ref_v[flat, 0] - px
            dy = ref_v[flat, 1] - py
            dz = ref_v[flat, 2] - pz
            if dx * dx + dy * dy + dz * dz >= dist_sq_thr:
                continue
            a = cur_n[i, 0]
            b = cur_n[i, 1]
            c = cur_n[i, 2]
            nx = Rp[0, 0] * a + Rp[0, 1] * b + Rp[0, 2] * c
            ny = Rp[1, 0] * a + Rp[1, 1] * b + Rp[1, 2] * c
            nz = Rp[2, 0] * a + Rp[2, 1] * b + Rp[2, 2] * c
            cos_angle = (nx * ref_n[flat, 0] + ny * ref_n[flat, 1]
                         + nz * ref_n[flat, 2])
            if cos_angle <= cos_thr:
                continue

            matched[i] = True
            r_n[i, 0] = ref_n[flat, 0]
            r_n[i, 1] = ref_n[flat, 1]
            r_n[i, 2] = ref_n[flat, 2]
            diff[i, 0] = dx
            diff[i, 1] = dy
            diff[i, 2] = dz


def _require_numba() -> None:
    if not HAVE_NUMBA:
        raise PerfError(
            "the 'jit' kernel backend requires numba, which is not "
            "installed; use the 'fast' or 'sparse' backend instead"
        )


def sample_f32_jit(volume: TSDFVolume,
                   points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Jitted counterpart of :func:`repro.perf.trilinear.sample_f32`."""
    _require_numba()
    pts = np.ascontiguousarray(points, dtype=np.float32)
    n = pts.shape[0]
    values = np.empty(n, dtype=np.float32)
    valid = np.empty(n, dtype=np.bool_)
    _sample_kernel(
        volume.tsdf.reshape(-1), volume.weight.reshape(-1),
        volume.resolution, np.float32(1.0 / volume.voxel_size),
        pts, values, valid,
    )
    return values, valid


def gradient_f32_jit(volume: TSDFVolume, points: np.ndarray) -> np.ndarray:
    """Jitted counterpart of :func:`repro.perf.trilinear.gradient_f32`."""
    eps = np.float32(volume.voxel_size)
    n = len(points)
    queries = np.empty((6, n, 3), dtype=np.float32)
    for axis in range(3):
        queries[2 * axis] = points
        queries[2 * axis][:, axis] += eps
        queries[2 * axis + 1] = points
        queries[2 * axis + 1][:, axis] -= eps
    vals, _ = sample_f32_jit(volume, queries.reshape(-1, 3))
    vals = vals.reshape(6, n)
    g = np.empty((n, 3), dtype=np.float32)
    inv = np.float32(1.0) / (np.float32(2.0) * eps)
    for axis in range(3):
        np.subtract(vals[2 * axis], vals[2 * axis + 1], out=g[:, axis])
        g[:, axis] *= inv
    return g


def raycast_model(volume, camera, pose_volume_from_camera, mu, ws,
                  near=0.1, far=None):
    """The fast march with jitted trilinear sample/gradient."""
    _require_numba()
    return _fast_raycast.raycast_model(
        volume, camera, pose_volume_from_camera, mu, ws,
        near=near, far=far,
        sample_fn=sample_f32_jit, gradient_fn=gradient_f32_jit,
    )


def _solve_level_jit(cur_vertices, cur_normals,
                     prepared: _PreparedReference, pose, iterations,
                     icp_threshold, huber_delta=None):
    """Gauss-Newton at one level: jitted association, reference solver.

    The f64 solver body below is ``perf.tracking._solve_level``'s
    verbatim; only the per-pixel front end differs.
    """
    n_px = cur_vertices.shape[0] * cur_vertices.shape[1]
    cur_v = np.ascontiguousarray(cur_vertices.reshape(-1, 3),
                                 dtype=np.float32)
    cur_n = np.ascontiguousarray(cur_normals.reshape(-1, 3),
                                 dtype=np.float32)
    valid_cur = np.any(cur_n != 0.0, axis=-1)
    n_valid = max(int(valid_cur.sum()), 1)

    ref_cam = prepared.camera
    Rc = np.ascontiguousarray(prepared.cam_from_vol[:3, :3],
                              dtype=np.float32)
    tc = np.ascontiguousarray(prepared.cam_from_vol[:3, 3],
                              dtype=np.float32)

    p_vol = np.empty((n_px, 3), dtype=np.float32)
    r_n = np.empty((n_px, 3), dtype=np.float32)
    diff = np.empty((n_px, 3), dtype=np.float32)
    matched = np.empty(n_px, dtype=np.bool_)

    rmse = float("inf")
    inlier_fraction = 0.0
    used = 0

    for _ in range(iterations):
        Rp = np.ascontiguousarray(pose[:3, :3], dtype=np.float32)
        tp = np.ascontiguousarray(pose[:3, 3], dtype=np.float32)
        _associate_kernel(
            cur_v, cur_n, valid_cur, Rp, tp, Rc, tc,
            np.float32(ref_cam.fx), np.float32(ref_cam.fy),
            np.float32(ref_cam.cx), np.float32(ref_cam.cy),
            ref_cam.width, ref_cam.height,
            prepared.vertices, prepared.normals, prepared.has_ref,
            np.float32(_DIST_SQ_THRESHOLD),
            np.float32(_COS_NORMAL_THRESHOLD),
            np.float32(PROJECT_MIN_Z), np.float32(PROJECT_EDGE_EPS),
            p_vol, r_n, diff, matched,
        )
        n_matched = int(matched.sum())
        inlier_fraction = n_matched / n_valid
        if n_matched < 6:
            break

        n_m = r_n[matched].astype(float)  # f64-ok: solver operates in f64
        p_m = p_vol[matched].astype(float)  # f64-ok: solver operates in f64
        d_m = diff[matched].astype(float)  # f64-ok: solver operates in f64
        e = np.einsum("ij,ij->i", n_m, d_m)
        rmse = float(np.sqrt(np.mean(e * e)))

        J = np.concatenate([n_m, np.cross(p_m, n_m)], axis=1)
        if huber_delta is not None:
            w = _huber_weights(e, huber_delta)
            A = (J * w[:, None]).T @ J
            b = (J * w[:, None]).T @ e
        else:
            A = J.T @ J
            b = J.T @ e
        lam = 1e-4 * np.trace(A) / 6.0 + 1e-12
        try:
            xi = np.linalg.solve(A + lam * np.eye(6), b)
        except np.linalg.LinAlgError:
            break
        norm = float(np.linalg.norm(xi))
        if norm > 0.1:
            xi = xi * (0.1 / norm)
        used += 1

        pose = se3.se3_exp(xi) @ pose
        pose[:3, :3] = se3.orthonormalize(pose[:3, :3])

        if float(np.linalg.norm(xi)) < icp_threshold:
            break

    return pose, rmse, inlier_fraction, used


def track(
    vertex_pyramid: list[np.ndarray],
    normal_pyramid: list[np.ndarray],
    reference: ReferenceModel,
    initial_pose: np.ndarray,
    pyramid_iterations: tuple[int, ...],
    icp_threshold: float,
    ws: FrameWorkspace,
    huber_delta: float | None = None,
) -> TrackResult:
    """Track one frame (same contract as ``perf.tracking.track``)."""
    _require_numba()
    if len(vertex_pyramid) != len(pyramid_iterations):
        raise TrackingError(
            f"{len(vertex_pyramid)} pyramid levels but "
            f"{len(pyramid_iterations)} iteration counts"
        )
    prepared = _PreparedReference(reference)
    pose = np.asarray(initial_pose, dtype=float).copy()  # f64-ok: pose
    rmse = float("inf")
    inlier_fraction = 0.0
    per_level = [0] * len(vertex_pyramid)

    for level in reversed(range(len(vertex_pyramid))):
        iters = pyramid_iterations[level]
        if iters <= 0:
            continue
        pose, rmse, inlier_fraction, used = _solve_level_jit(
            vertex_pyramid[level],
            normal_pyramid[level],
            prepared,
            pose,
            iters,
            icp_threshold,
            huber_delta=huber_delta,
        )
        per_level[level] = used

    tracked = (
        np.isfinite(rmse)
        and rmse < MAX_RMSE
        and inlier_fraction > MIN_INLIER_FRACTION
    )
    return TrackResult(
        pose=pose,
        tracked=bool(tracked),
        rmse=float(rmse),
        inlier_fraction=float(inlier_fraction),
        iterations=int(sum(per_level)),
        iterations_per_level=tuple(per_level),
    )


def register_jit_backend() -> None:
    """Register ``"jit"`` when numba is importable; silent no-op otherwise.

    Called by :mod:`repro.perf.registry` at the end of its own module
    body (the lazy import below is the other half of that handshake —
    importing the registry at this module's top level would be
    circular).  Idempotent so repeated registry imports cannot trip the
    duplicate-name guard.
    """
    if not HAVE_NUMBA:
        return
    from .registry import (
        FAST_BACKEND,
        KernelBackend,
        kernel_backend_names,
        register_kernel_backend,
    )

    if "jit" in kernel_backend_names():
        return
    register_kernel_backend(KernelBackend(
        name="jit",
        bilateral_filter=FAST_BACKEND.bilateral_filter,
        build_pyramid=FAST_BACKEND.build_pyramid,
        vertex_normal_pyramid=FAST_BACKEND.vertex_normal_pyramid,
        track=track,
        integrate=FAST_BACKEND.integrate,
        raycast_model=raycast_model,
        make_workspace=FAST_BACKEND.make_workspace,
    ))
