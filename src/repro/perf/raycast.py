"""Compacted-ray TSDF raycasting.

The reference raycaster keeps full-size per-ray state alive for the
whole march and re-derives the active set with ``flatnonzero`` plus
full-array fancy indexing at *every* step — cost stays O(total rays)
per step even when a handful of rays are still marching.  Here the
working set is physically compacted after each step: rays that hit or
leave the volume are dropped from the arrays, so step cost tracks the
number of *live* rays.  Sampling and gradients go through the fused
float32 trilinear gathers of :mod:`repro.perf.trilinear`.

The march itself (step size, zero-crossing detection, linear crossing
refinement, termination) is the reference algorithm, so both backends
see the same surface.

Output is the tracker's :class:`ReferenceModel` directly (volume-frame
maps); the reference pipeline raycasts in the camera frame and then
transforms the valid pixels back to the volume frame, which the fast
path skips entirely — the march already works in volume coordinates.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..geometry import PinholeCamera
from ..kfusion.tracking import ReferenceModel
from ..kfusion.volume import TSDFVolume
from .common import translation_f32, unit_rays_f32
from .trilinear import gradient_f32, sample_f32
from .workspace import FrameWorkspace


@contract(pose_volume_from_camera="4,4:f64")
def raycast_model(
    volume: TSDFVolume,
    camera: PinholeCamera,
    pose_volume_from_camera: np.ndarray,
    mu: float,
    ws: FrameWorkspace,
    near: float = 0.1,
    far: float | None = None,
    sample_fn=sample_f32,
    gradient_fn=gradient_f32,
) -> ReferenceModel:
    """March all pixel rays; return the volume-frame surface prediction.

    ``sample_fn``/``gradient_fn`` let a backend swap the trilinear inner
    loops (the jit backend injects numba-compiled ones) while keeping
    this march — step size, crossing detection, refinement, compaction —
    as the single implementation.
    """
    if far is None:
        far = float(np.sqrt(3.0)) * volume.size + near
    near = np.float32(near)
    far = np.float32(far)

    R = np.asarray(pose_volume_from_camera[:3, :3], dtype=np.float32)
    origin = translation_f32(pose_volume_from_camera)
    dirs_all = ws.buffer("rc_dirs", (camera.pixel_count, 3))
    np.matmul(unit_rays_f32(camera), R.T, out=dirs_all)

    n_rays = camera.pixel_count
    step = np.float32(max(0.75 * mu, volume.voxel_size))

    hit_t = ws.zeros("rc_hit_t", (n_rays,))
    hit = ws.zeros("rc_hit", (n_rays,), dtype=bool)

    # Compacted working set: full-size initial state lives in the arena
    # (the budget's "per-ray march state"); compaction then shrinks the
    # views as rays retire, so later steps cost O(live rays).
    active_idx = np.arange(n_rays, dtype=np.int64)
    dirs = dirs_all
    t = ws.buffer("rc_t", (n_rays,))
    t.fill(near)
    prev_val = ws.buffer("rc_prev_val", (n_rays,))
    prev_val.fill(1.0)
    prev_valid = ws.zeros("rc_prev_valid", (n_rays,), dtype=bool)

    max_steps = int(np.ceil((far - near) / step)) + 1
    for _ in range(max_steps):
        if active_idx.size == 0:
            break
        pts = origin + t[:, None] * dirs
        val, valid = sample_fn(volume, pts)

        # Zero crossing: previous sample positive, current negative.
        crossing = prev_valid & valid & (prev_val > 0.0) & (val <= 0.0)
        if crossing.any():
            c = active_idx[crossing]
            f0 = prev_val[crossing]
            f1 = val[crossing]
            denom = np.where(np.abs(f0 - f1) > 1e-12, f0 - f1,
                             np.float32(1e-12))
            hit_t[c] = (t[crossing] - step) + (f0 / denom) * step
            hit[c] = True

        # Compact: drop rays that hit or would march past the far plane.
        keep = ~crossing & (t + step <= far)
        active_idx = active_idx[keep]
        dirs = dirs[keep]
        t = t[keep]
        t += step
        prev_val = val[keep]
        prev_valid = valid[keep]

    h, w = camera.shape
    v_map = ws.zeros("rc_vertices", (n_rays, 3))
    n_map = ws.zeros("rc_normals", (n_rays, 3))
    if hit.any():
        hit_idx = np.flatnonzero(hit)
        pts_vol = origin + hit_t[hit_idx, None] * dirs_all[hit_idx]
        grad = gradient_fn(volume, pts_vol)
        norm = np.linalg.norm(grad, axis=-1)
        good = norm > 1e-12
        keep = hit_idx[good]
        v_map[keep] = pts_vol[good]
        n_map[keep] = grad[good] / norm[good, None]

    return ReferenceModel(
        vertices=v_map.reshape(h, w, 3),
        normals=n_map.reshape(h, w, 3),
        camera=camera,
        pose_volume_from_camera=np.asarray(
            pose_volume_from_camera, dtype=float  # f64-ok: pose, 16 values
        ).copy(),
    )
