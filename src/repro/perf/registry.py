"""The kernel-backend registry.

Following SLAMBench2's treatment of multiple implementations of the
*same* algorithm as first-class comparable artifacts, a
:class:`KernelBackend` bundles one implementation of each of the five
hot per-frame kernels behind a uniform call seam, and the pipeline picks
one by name at init time (``KinectFusion(kernel_backend=...)``,
``repro-benchmark run --kernel-backend ...``).

Three backends always ship:

* ``"reference"`` — the float64 textbook kernels of ``repro.kfusion``,
  bit-identical to what the pipeline ran before this registry existed
  (the golden-run values are pinned against it);
* ``"fast"`` (the default) — the float32 workspace kernels of
  ``repro.perf``, proven equivalent by the golden equivalence suite
  (identical tracked/status sequences, ATE within the documented
  float32 tolerance; see DESIGN.md S17);
* ``"sparse"`` — the fast preprocess/track kernels over a lazily
  allocated voxel-block volume (:mod:`repro.kfusion.sparse`), with
  band-restricted integration and space-skipping raycast
  (:mod:`repro.perf.sparse_integrate` / ``sparse_raycast``; DESIGN.md
  S22).

A fourth, ``"jit"``, registers only when numba is importable
(:mod:`repro.perf.jit`): the fast pipeline with numba-compiled
trilinear and ICP-association inner loops.

Every backend function takes the run's
:class:`~repro.perf.workspace.FrameWorkspace` as its last positional
argument; the reference adapters ignore it (``make_workspace`` returns
``None`` for the reference backend, so no arena is ever allocated).
Backends that need a non-dense map also override ``make_volume``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..analysis.contracts import contract
from ..errors import PerfError
from ..geometry import PinholeCamera, se3
from ..kfusion import preprocessing as _ref_pre
from ..kfusion import tracking as _ref_track
from ..kfusion.integration import integrate as _ref_integrate
from ..kfusion.params import KFusionParams
from ..kfusion.raycast import raycast as _ref_raycast
from ..kfusion.sparse import SparseTSDFVolume
from ..kfusion.tracking import ReferenceModel, TrackResult
from ..kfusion.volume import TSDFVolume
from . import integrate as _fast_integrate
from . import preprocess as _fast_pre
from . import raycast as _fast_raycast
from . import sparse_integrate as _sparse_integrate
from . import sparse_raycast as _sparse_raycast
from . import tracking as _fast_track
from .workspace import FrameWorkspace

#: The pipeline's default backend.
DEFAULT_KERNEL_BACKEND = "fast"


@dataclass(frozen=True)
class KernelBackend:
    """One selectable implementation of the five hot per-frame kernels.

    All callables share the reference functions' contracts; ``ws`` is
    the backend's workspace (``None`` for workspace-less backends).
    """

    name: str
    bilateral_filter: Callable[..., np.ndarray]
    build_pyramid: Callable[..., list[np.ndarray]]
    vertex_normal_pyramid: Callable[..., tuple]
    track: Callable[..., TrackResult]
    integrate: Callable[..., int]
    raycast_model: Callable[..., ReferenceModel]
    make_workspace: Callable[..., Any] = field(default=lambda *a: None)
    #: ``(resolution, size) -> volume``; dense grid unless overridden.
    make_volume: Callable[..., Any] = field(default=TSDFVolume)


_BACKENDS: dict[str, KernelBackend] = {}


def register_kernel_backend(backend: KernelBackend) -> None:
    """Add a backend to the registry (unique names enforced)."""
    if backend.name in _BACKENDS:
        raise PerfError(f"kernel backend {backend.name!r} already registered")
    # effect-ok: import-time write-once registry (duplicates rejected above)
    _BACKENDS[backend.name] = backend


def get_kernel_backend(name: str) -> KernelBackend:
    """Look up a backend by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise PerfError(
            f"unknown kernel backend {name!r}; "
            f"registered: {kernel_backend_names()}"
        ) from None


def kernel_backend_names() -> list[str]:
    return sorted(_BACKENDS)


# -- reference adapters -----------------------------------------------------
def _ref_bilateral(depth, ws):
    return _ref_pre.bilateral_filter(depth)


def _ref_build_pyramid(depth, levels, ws):
    return _ref_pre.build_pyramid(depth, levels)


def _ref_vertex_normal_pyramid(pyramid, camera, ws):
    return _ref_pre.vertex_normal_pyramid(pyramid, camera)


def _ref_track_fn(vertices, normals, reference, pose, iters, icp_threshold,
                  ws, huber_delta=None):
    return _ref_track.track(vertices, normals, reference, pose, iters,
                            icp_threshold, huber_delta=huber_delta)


def _ref_integrate_fn(volume, depth, camera, pose, mu, ws):
    return _ref_integrate(volume, depth, camera, pose, mu)


@contract(pose_volume_from_camera="4,4:f64")
def _ref_raycast_model(volume, camera, pose_volume_from_camera, mu, ws):
    """Raycast + camera-to-volume lift, exactly as the pipeline inlined it."""
    pose = pose_volume_from_camera
    vertices_cam, normals_cam = _ref_raycast(volume, camera, pose, mu)
    h, w = camera.shape
    flat_v = vertices_cam.reshape(-1, 3)
    flat_n = normals_cam.reshape(-1, 3)
    valid = np.any(flat_n != 0.0, axis=-1)
    v_vol = np.zeros_like(flat_v)
    n_vol = np.zeros_like(flat_n)
    v_vol[valid] = se3.transform_points(pose, flat_v[valid])
    n_vol[valid] = flat_n[valid] @ pose[:3, :3].T
    return ReferenceModel(
        vertices=v_vol.reshape(h, w, 3),
        normals=n_vol.reshape(h, w, 3),
        camera=camera,
        pose_volume_from_camera=np.asarray(
            pose, dtype=float  # f64-ok: pose, 16 values
        ).copy(),
    )


# -- fast adapters ----------------------------------------------------------
def _fast_make_workspace(input_camera: PinholeCamera, params: KFusionParams,
                         levels: int) -> FrameWorkspace:
    return FrameWorkspace(input_camera, params, levels)


def _fast_track_fn(vertices, normals, reference, pose, iters, icp_threshold,
                   ws, huber_delta=None):
    return _fast_track.track(vertices, normals, reference, pose, iters,
                             icp_threshold, ws, huber_delta=huber_delta)


REFERENCE_BACKEND = KernelBackend(
    name="reference",
    bilateral_filter=_ref_bilateral,
    build_pyramid=_ref_build_pyramid,
    vertex_normal_pyramid=_ref_vertex_normal_pyramid,
    track=_ref_track_fn,
    integrate=_ref_integrate_fn,
    raycast_model=_ref_raycast_model,
)

FAST_BACKEND = KernelBackend(
    name="fast",
    bilateral_filter=_fast_pre.bilateral_filter,
    build_pyramid=_fast_pre.build_pyramid,
    vertex_normal_pyramid=_fast_pre.vertex_normal_pyramid,
    track=_fast_track_fn,
    integrate=_fast_integrate.integrate,
    raycast_model=_fast_raycast.raycast_model,
    make_workspace=_fast_make_workspace,
)


# -- sparse adapters --------------------------------------------------------
def _sparse_make_workspace(input_camera: PinholeCamera,
                           params: KFusionParams,
                           levels: int) -> FrameWorkspace:
    return FrameWorkspace(input_camera, params, levels, backend="sparse")


def _sparse_make_volume(resolution: int, size: float) -> SparseTSDFVolume:
    return SparseTSDFVolume(resolution, size)


SPARSE_BACKEND = KernelBackend(
    name="sparse",
    bilateral_filter=_fast_pre.bilateral_filter,
    build_pyramid=_fast_pre.build_pyramid,
    vertex_normal_pyramid=_fast_pre.vertex_normal_pyramid,
    track=_fast_track_fn,
    integrate=_sparse_integrate.integrate,
    raycast_model=_sparse_raycast.raycast_model,
    make_workspace=_sparse_make_workspace,
    make_volume=_sparse_make_volume,
)

register_kernel_backend(REFERENCE_BACKEND)
register_kernel_backend(FAST_BACKEND)
register_kernel_backend(SPARSE_BACKEND)

# The numba-jitted backend is optional: repro.perf.jit registers it here
# only when numba imports cleanly, so environments without numba see
# exactly the three backends above.
from . import jit as _jit  # noqa: E402  (needs the registry above)

_jit.register_jit_backend()
