"""Space-skipping raycast over the sparse voxel-block TSDF.

Same march as the fast dense raycaster — uniform step grid, zero
crossing where a valid positive sample is followed by a non-positive
one, linear refinement between them — restructured as a segmented
(ray x step) grid with two sparse accelerations:

* **Volume clipping** — per-ray entry/exit distances against the volume
  AABB (one slab test up front) bound each ray's emission range; rays
  retire between segments once past their exit.
* **Block skipping** — a sample whose 8³ block is clear in the volume's
  *dilated* occupancy mask cannot touch allocated data with any
  trilinear corner, so its value is exactly the empty-state 1.0 without
  sampling; one flat gather over a whole segment tile prunes those
  samples with no per-step loop at all.

Sampling near allocated blocks goes through a trilinear gather that is
bit-identical to :func:`repro.perf.trilinear.sample_f32` over the block
data (same op order, same corner order), so hits land where the dense
fast raycaster puts them wherever the truncation band was allocated.
Skipped samples stay *invalid*: a zero crossing's positive-side sample
always lies within one march step of the surface, inside the allocated
band front, so every dense hit still has a sampled valid predecessor —
while a ray arriving from unobserved (never-carved) space produces no
crossing in either backend.  Residual divergence against the dense
raycaster is limited to free space the dense integrate carved but the
band allocator skips, and is bounded end-to-end by the
golden-equivalence suite (identical status sequences, ATE within 2%).
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..geometry import PinholeCamera
from ..kfusion.sparse import BLOCK, BLOCK_VOXELS, SparseTSDFVolume
from ..kfusion.tracking import ReferenceModel
from .common import translation_f32, unit_rays_f32
from .trilinear import _CORNERS
from .workspace import FrameWorkspace

#: Corner offsets of :data:`repro.perf.trilinear._CORNERS` as (1, 8)
#: integer rows, for the corner-vectorised gather below.
_OX = np.array([c[0] for c in _CORNERS], dtype=np.int32)[None, :]
_OY = np.array([c[1] for c in _CORNERS], dtype=np.int32)[None, :]
_OZ = np.array([c[2] for c in _CORNERS], dtype=np.int32)[None, :]
_OXB = _OX.astype(bool)
_OYB = _OY.astype(bool)
_OZB = _OZ.astype(bool)


def sample_sparse_f32(
    volume: SparseTSDFVolume,
    points: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Trilinear TSDF at float32 volume-frame points, block-table gather.

    Bit-identical to :func:`repro.perf.trilinear.sample_f32` wherever the
    touched blocks are allocated; unallocated corners read the empty
    state (tsdf 1.0, weight 0.0), which is what the dense volume holds
    at any voxel integration never updated.  All 8 trilinear corners are
    gathered in one ``(n, 8)`` pass through the volume's dense
    coord->slot table — no hashing on this path — with the dense
    kernel's weight-product grouping and corner accumulation order
    preserved so the float32 results round identically.
    """
    r = volume.resolution
    nb = volume.blocks_per_side
    inv_voxel = np.float32(1.0 / volume.voxel_size)
    p = points * inv_voxel
    p -= np.float32(0.5)

    base = np.floor(p)
    frac = p - base
    base = base.astype(np.int32)

    inside = ((base >= 0) & (base <= r - 2)).all(axis=-1)
    np.clip(base, 0, r - 2, out=base)

    # (n, 8) corner voxel coordinates and their block-table slots.  All
    # index arithmetic stays int32: the largest flat voxel index is
    # blocks * BLOCK_VOXELS < 2^31 up to resolution 1024.
    ix = base[:, 0:1] + _OX  # effect-ok: batch-sized
    iy = base[:, 1:2] + _OY  # effect-ok: batch-sized
    iz = base[:, 2:3] + _OZ  # effect-ok: batch-sized
    bidx = ((ix >> 3) * np.int32(nb) + (iy >> 3)) * np.int32(nb) \
        + (iz >> 3)
    slots = volume.block_slot_table.take(bidx)
    local = ((ix & 7) * BLOCK + (iy & 7)) * BLOCK + (iz & 7)
    found = slots >= 0
    flat = np.where(found, slots, 0) * np.int32(BLOCK_VOXELS) + local
    tv = volume.tsdf_blocks.reshape(-1).take(flat)
    wv = volume.weight_blocks.reshape(-1).take(flat)
    tv[~found] = np.float32(1.0)
    wv[~found] = np.float32(0.0)

    # Corner weights with the dense grouping ((wx * wy) * wz), then the
    # same sequential corner-order accumulation as trilinear.sample_f32.
    one = np.float32(1.0)
    fx, fy, fz = frac[:, 0:1], frac[:, 1:2], frac[:, 2:3]
    w = np.where(_OXB, fx, one - fx)  # effect-ok: batch-sized
    w = w * np.where(_OYB, fy, one - fy)  # effect-ok: batch-sized
    w *= np.where(_OZB, fz, one - fz)
    w *= tv

    values = np.zeros(len(p), dtype=np.float32)  # effect-ok: batch-sized
    # (live-ray batches vary per step, as in trilinear.sample_f32)
    for c in range(8):
        values += w[:, c]

    valid = inside & (wv > 0.0).all(axis=-1)
    values[~valid] = np.float32(1.0)
    return values, valid


def _sample_scheduled(
    volume: SparseTSDFVolume,
    points: np.ndarray,
    ix: np.ndarray,
    iy: np.ndarray,
    iz: np.ndarray,
    cb: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`sample_sparse_f32` fast path for scheduled march samples.

    The segment tile already derived each sample's clipped corner voxel
    coordinates ``ix``/``iy``/``iz`` and corner block indices ``cb``,
    and its emission test proved every corner block allocated — so the
    slot lookups cannot miss and the empty-state fixups vanish.  The
    arithmetic is the same op sequence as :func:`sample_sparse_f32`
    (same floor/frac, same weight grouping, same corner accumulation
    order), so the float32 results are bit-equal.
    """
    r = volume.resolution
    inv_voxel = np.float32(1.0 / volume.voxel_size)
    p = points * inv_voxel
    p -= np.float32(0.5)
    fl = np.floor(p)
    frac = p - fl
    inside = ((fl >= 0) & (fl <= r - 2)).all(axis=-1)

    local = ((ix & 7) * BLOCK + (iy & 7)) * BLOCK + (iz & 7)
    slots = volume.block_slot_table.take(cb)
    flat = slots * np.int32(BLOCK_VOXELS) + local
    tv = volume.tsdf_blocks.reshape(-1).take(flat)
    wv = volume.weight_blocks.reshape(-1).take(flat)

    one = np.float32(1.0)
    fx, fy, fz = frac[:, 0:1], frac[:, 1:2], frac[:, 2:3]
    w = np.where(_OXB, fx, one - fx)  # effect-ok: batch-sized
    w = w * np.where(_OYB, fy, one - fy)  # effect-ok: batch-sized
    w *= np.where(_OZB, fz, one - fz)
    w *= tv

    values = np.zeros(len(p), dtype=np.float32)  # effect-ok: batch-sized
    # (same sequential corner accumulation as trilinear.sample_f32)
    for c in range(8):
        values += w[:, c]

    valid = inside & (wv > 0.0).all(axis=-1)
    values[~valid] = np.float32(1.0)
    return values, valid


def gradient_sparse_f32(volume: SparseTSDFVolume,
                        points: np.ndarray) -> np.ndarray:
    """Central-difference gradient via the sparse sampler (cf.
    :func:`repro.perf.trilinear.gradient_f32`)."""
    eps = np.float32(volume.voxel_size)
    n = len(points)
    queries = np.empty((6, n, 3), dtype=np.float32)  # effect-ok: batch-sized
    for axis in range(3):
        queries[2 * axis] = points
        queries[2 * axis][:, axis] += eps
        queries[2 * axis + 1] = points
        queries[2 * axis + 1][:, axis] -= eps
    vals, _ = sample_sparse_f32(volume, queries.reshape(-1, 3))
    vals = vals.reshape(6, n)
    g = np.empty((n, 3), dtype=np.float32)  # effect-ok: batch-sized
    inv = np.float32(1.0) / (np.float32(2.0) * eps)
    for axis in range(3):
        np.subtract(vals[2 * axis], vals[2 * axis + 1], out=g[:, axis])
        g[:, axis] *= inv
    return g


def _volume_slab(origin: np.ndarray, dirs: np.ndarray, size: float,
                 near: np.float32, t_enter: np.ndarray,
                 t_exit: np.ndarray) -> None:
    """Per-ray entry/exit distances against the volume AABB, into
    ``t_enter``/``t_exit`` (float32)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        t0 = (np.float32(0.0) - origin) / dirs  # effect-ok: per-frame rays
        t1 = (np.float32(size) - origin) / dirs  # effect-ok: per-frame rays
    lo = np.minimum(t0, t1)
    hi = np.maximum(t0, t1)
    # Axis-parallel rays: 0/0 -> nan; the axis imposes no bound.
    np.nan_to_num(lo, copy=False, nan=-np.inf)
    np.nan_to_num(hi, copy=False, nan=np.inf)
    np.max(lo, axis=-1, out=t_enter)
    np.min(hi, axis=-1, out=t_exit)
    np.maximum(t_enter, near, out=t_enter)


#: March-grid indices covered per segment of the segmented-grid march.
#: Short enough that rays hitting a surface retire before scheduling
#: much of the band behind it, long enough that a frame needs only a
#: handful of segments.
SEGMENT_STEPS = 16


@contract(pose_volume_from_camera="4,4:f64")
def raycast_model(
    volume: SparseTSDFVolume,
    camera: PinholeCamera,
    pose_volume_from_camera: np.ndarray,
    mu: float,
    ws: FrameWorkspace,
    near: float = 0.1,
    far: float | None = None,
) -> ReferenceModel:
    """March all pixel rays as a segmented (ray x step) grid.

    The march grid is the dense raycaster's t-sequence crossed with the
    live rays.  Instead of stepping rays one sample at a time, each
    iteration takes a *segment* of ``SEGMENT_STEPS`` consecutive grid
    indices and tests every (ray, index) pair at once: block occupancy
    (dilated) prefilters the tile in one flat gather, then the
    surviving samples' 8 trilinear corner blocks are checked and only
    samples with all corners allocated are evaluated — any other
    sample has a weight-0 corner by construction, so it is invalid and
    reads 1.0 without sampling.  ``np.flatnonzero`` over the C-ordered
    tile yields the evaluated samples ray-major and t-ascending for
    free, so each ray's first zero crossing is selected vectorised: a
    crossing is two *t-adjacent* samples, both valid, spanning the
    sign change — exactly the step-by-step march's ``prev``/current
    test, because a sample skipped between them would have been
    invalid and broken the pair.  Rays whose first crossing is found
    retire between segments (the dense march would have stopped
    there); segments share their boundary index, so a crossing pair
    straddling the cut reforms in the next segment.
    """
    if far is None:
        far = float(np.sqrt(3.0)) * volume.size + near
    near = np.float32(near)
    far = np.float32(far)

    R = np.asarray(pose_volume_from_camera[:3, :3], dtype=np.float32)
    origin = translation_f32(pose_volume_from_camera)
    dirs_all = ws.buffer("rc_dirs", (camera.pixel_count, 3))
    np.matmul(unit_rays_f32(camera), R.T, out=dirs_all)

    n_rays = camera.pixel_count
    step = np.float32(max(0.75 * mu, volume.voxel_size))

    hit_t = ws.zeros("rc_hit_t", (n_rays,))
    hit = ws.zeros("rc_hit", (n_rays,), dtype=bool)

    te = ws.buffer("rc_t_enter", (n_rays,))
    tx = ws.buffer("rc_t_exit", (n_rays,))
    _volume_slab(origin, dirs_all, volume.size, near, te, tx)

    inv_bm = np.float32(1.0 / (BLOCK * volume.voxel_size))
    nb = volume.blocks_per_side
    occ_flat = volume.block_occupancy_dilated.reshape(-1)
    alloc_flat = volume.block_occupancy.reshape(-1)

    # The dense raycaster advances every live ray by the same float32
    # ``t += step`` accumulation, so all its rays share one t-sequence.
    # Precompute that exact sequence (sequential f32 adds — NOT k*step,
    # whose different rounding would shift hit_t at the last ulp and
    # let the two backends drift apart frames later) and let each ray
    # carry an integer index into it: a skip of k whole steps lands on
    # the bit-identical t the dense march would have reached.
    max_steps = int(np.ceil((far - near) / step)) + 1
    ts = np.empty(max_steps + 2, dtype=np.float32)  # effect-ok: per-frame
    ts[0] = near
    for i in range(max_steps + 1):
        ts[i + 1] = ts[i] + step
    last = max_steps + 1

    # -- segmented grid march -------------------------------------------
    # Per-ray emission bounds.  The far bound is the dense march's exact
    # loop condition (``t <= far``); the AABB entry/exit bounds are
    # padded by one step — a sample outside the volume is invalid in
    # the trilinear sampler regardless, so the pad only costs a few
    # extra evaluated-and-discarded samples and can never change which
    # crossing pairs form.
    alive = np.arange(n_rays, dtype=np.int64)
    dirs = dirs_all
    lb = te - step
    ub = np.minimum(tx + step, far)

    inv_vox = np.float32(1.0 / volume.voxel_size)
    r = volume.resolution
    s = 0
    while alive.size:
        e = min(s + SEGMENT_STEPS, last)
        t_seg = ts[s:e + 1]
        k = t_seg.size
        # (rays, k) tile: in-bounds candidates whose 8^3 block is set in
        # the dilated occupancy — everything else reads 1.0 unsampled.
        cand = t_seg[None, :] >= lb[:, None]  # effect-ok: tile-sized
        cand &= t_seg[None, :] <= ub[:, None]
        pts = origin + t_seg[None, :, None] * dirs[:, None, :]
        blk = pts * inv_bm  # effect-ok: tile-sized
        np.floor(blk, out=blk)
        blk = blk.astype(np.int32)
        np.clip(blk, 0, nb - 1, out=blk)
        bidx = (blk[..., 0] * np.int32(nb) + blk[..., 1]) \
            * np.int32(nb) + blk[..., 2]
        dil = occ_flat.take(bidx)
        dil &= cand
        # C-order flatnonzero enumerates the tile ray-major and
        # t-ascending — exactly the order the crossing scan needs.
        rows = np.flatnonzero(dil.reshape(-1))  # effect-ok: tile-sized
        if rows.size:
            pf = pts.reshape(-1, 3)[rows]
            p = pf * inv_vox  # effect-ok: batch-sized
            p -= np.float32(0.5)
            base = np.floor(p).astype(np.int32)
            np.clip(base, 0, r - 2, out=base)
            ix = base[:, 0:1] + _OX  # effect-ok: batch-sized
            iy = base[:, 1:2] + _OY  # effect-ok: batch-sized
            iz = base[:, 2:3] + _OZ  # effect-ok: batch-sized
            cb = ((ix >> 3) * np.int32(nb) + (iy >> 3)) * np.int32(nb) \
                + (iz >> 3)
            emit = alloc_flat.take(cb).all(axis=1)
            if emit.any():
                sel = rows[emit]  # effect-ok: batch-sized
                ray_l = sel // k
                tidx_o = s + sel % k
                v, valid = _sample_scheduled(
                    volume, pf[emit], ix[emit], iy[emit], iz[emit],
                    cb[emit],
                )

                same = ray_l[1:] == ray_l[:-1]
                same &= tidx_o[1:] == tidx_o[:-1] + 1
                same &= valid[:-1] & valid[1:]
                same &= v[:-1] > 0.0
                same &= v[1:] <= 0.0
                j = np.flatnonzero(same)  # effect-ok: hit-sized
                if j.size:
                    uniq, first = np.unique(ray_l[j], return_index=True)
                    jj = j[first]
                    f0 = v[jj]
                    f1 = v[jj + 1]
                    denom = np.where(np.abs(f0 - f1) > 1e-12, f0 - f1,
                                     np.float32(1e-12))
                    g = alive[uniq]
                    hit_t[g] = (ts[tidx_o[jj] + 1] - step) \
                        + (f0 / denom) * step
                    hit[g] = True
        if e >= last:
            break
        # Retire rays that found their crossing or left their bounds;
        # the next segment starts at this one's end index, so the
        # shared boundary sample re-forms any pair split by the cut.
        keep = ~hit[alive]
        keep &= ts[e + 1] <= ub
        if not keep.all():
            alive = alive[keep]
            dirs = dirs[keep]
            lb = lb[keep]
            ub = ub[keep]
        s = e

    h, w = camera.shape
    v_map = ws.zeros("rc_vertices", (n_rays, 3))
    n_map = ws.zeros("rc_normals", (n_rays, 3))
    if hit.any():
        hit_idx = np.flatnonzero(hit)
        pts_vol = origin + hit_t[hit_idx, None] * dirs_all[hit_idx]
        grad = gradient_sparse_f32(volume, pts_vol)
        norm = np.linalg.norm(grad, axis=-1)
        good = norm > 1e-12
        keep = hit_idx[good]
        v_map[keep] = pts_vol[good]
        n_map[keep] = grad[good] / norm[good, None]

    return ReferenceModel(
        vertices=v_map.reshape(h, w, 3),
        normals=n_map.reshape(h, w, 3),
        camera=camera,
        pose_volume_from_camera=np.asarray(
            pose_volume_from_camera, dtype=float  # f64-ok: pose, 16 values
        ).copy(),
    )
