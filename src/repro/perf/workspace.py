"""Preallocated per-frame buffer arena for the fast kernel backend.

The reference kernels allocate dozens of full-frame (and, for
integration, full-volume) float64 temporaries per frame.  The fast path
instead threads one :class:`FrameWorkspace` through the pipeline: every
optimized kernel asks the arena for its named float32 scratch buffers,
which are allocated on first use and reused on every subsequent frame.

The arena is *sized from the memory model*: its total footprint must
stay within :func:`repro.kfusion.memory.workspace_bytes` for the run's
configuration, so the fast path's memory story is the same one
SLAMBench-style explorations already trade against speed and accuracy.
Exceeding the budget raises :class:`~repro.errors.PerfError` — that is a
sizing bug in this package, never a data error.

Buffer lifetime contract: a buffer's contents are only meaningful within
the pipeline stage that filled it, with one deliberate exception — the
raycast output maps survive until the *next* frame's track stage reads
them (track runs before raycast within a frame, so single buffering is
safe; see the pipeline's raycast stage).
"""

from __future__ import annotations

import numpy as np

from ..errors import PerfError
from ..geometry import PinholeCamera
from ..kfusion.memory import workspace_bytes
from ..kfusion.params import KFusionParams


class FrameWorkspace:
    """Named, preallocated scratch buffers for the fast kernels.

    Args:
        input_camera: sensor-resolution intrinsics (sizes the budget the
            same way :func:`repro.kfusion.memory.frame_buffers_bytes`
            does).
        params: the run's KinectFusion configuration.
        levels: pyramid depth (the pipeline's ``PYRAMID_LEVELS``).
        backend: kernel backend the arena serves — selects the matching
            budget family in :func:`repro.kfusion.memory.workspace_bytes`.
    """

    def __init__(self, input_camera: PinholeCamera, params: KFusionParams,
                 levels: int = 3, backend: str = "fast"):
        self.params = params
        self.levels = levels
        self.backend = backend
        self.budget_bytes = workspace_bytes(
            params, input_camera.width, input_camera.height, levels,
            backend
        )
        self._buffers: dict[str, np.ndarray] = {}
        self._nbytes = 0

    @property
    def nbytes(self) -> int:
        """Bytes currently held by the arena."""
        return self._nbytes

    def __len__(self) -> int:
        return len(self._buffers)

    def buffer(self, name: str, shape: tuple[int, ...],
               dtype=np.float32) -> np.ndarray:
        """The named buffer, allocating (or resizing) it on demand.

        Contents are whatever the previous user left — callers that need
        zeros must use :meth:`zeros`.  A shape or dtype change frees the
        old buffer and allocates fresh (configurations are fixed within a
        run, so this only happens across runs reusing a system instance).
        """
        shape = tuple(int(s) for s in shape)
        arr = self._buffers.get(name)
        if arr is not None:
            if arr.shape == shape and arr.dtype == dtype:
                return arr
            self._nbytes -= arr.nbytes
        arr = np.empty(shape, dtype=dtype)
        if self._nbytes + arr.nbytes > self.budget_bytes:
            raise PerfError(
                f"workspace buffer {name!r} {shape}/{np.dtype(dtype).name} "
                f"would put the arena at {self._nbytes + arr.nbytes} bytes, "
                f"over its {self.budget_bytes}-byte budget "
                f"(kfusion.memory.workspace_bytes)"
            )
        self._buffers[name] = arr
        self._nbytes += arr.nbytes
        return arr

    def zeros(self, name: str, shape: tuple[int, ...],
              dtype=np.float32) -> np.ndarray:
        """Like :meth:`buffer` but cleared to zero."""
        arr = self.buffer(name, shape, dtype)
        arr.fill(0)
        return arr
