"""Fast float32 TSDF integration.

The reference kernel materialises a fresh ``(r^3, 3)`` float64 voxel
centre array (meshgrid + stack), transforms it with a dense ``(N, 3) @
(3, 3)`` matmul and projects through the float64 camera path — several
hundred megabytes of temporaries per frame at common resolutions.  The
fast kernel exploits the grid's separability: per-axis rotated
coordinate vectors (three length-``r`` arrays each) are broadcast into
the three full camera coordinates directly inside preallocated float32
workspace buffers, and the projection/rounding/update pipeline runs
with ``out=`` arithmetic end to end.

Update semantics (projective SDF, truncation, occlusion cut, running
weighted average with the weight cap) match the reference exactly.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..geometry import PinholeCamera, se3
from ..kfusion.integration import MAX_WEIGHT
from ..kfusion.volume import TSDFVolume
from .common import PROJECT_EDGE_EPS, PROJECT_MIN_Z
from .workspace import FrameWorkspace


@contract(depth="H,W:f32", pose_volume_from_camera="4,4:f64")
def integrate(
    volume: TSDFVolume,
    depth: np.ndarray,
    camera: PinholeCamera,
    pose_volume_from_camera: np.ndarray,
    mu: float,
    ws: FrameWorkspace,
) -> int:
    """Fuse one float32 depth frame into the TSDF volume."""
    r = volume.resolution
    n = r**3
    shape = (r, r, r)
    cam_from_vol = se3.inverse(pose_volume_from_camera)
    R = cam_from_vol[:3, :3].astype(np.float32)
    trans = cam_from_vol[:3, 3].astype(np.float32)

    # Voxel centres along one axis: (i + 0.5) * voxel_size, length r.
    axis = ws.buffer("int_axis", (r,))
    axis[:] = (np.arange(r, dtype=np.float32) + np.float32(0.5))
    axis *= np.float32(volume.voxel_size)

    # Separable rigid transform: camera coordinate k of voxel (i, j, l)
    # is R[k,0]*axis[i] + R[k,1]*axis[j] + R[k,2]*axis[l] + t[k].
    def cam_coord(k: int, out: np.ndarray) -> np.ndarray:
        ax = R[k, 0] * axis
        ay = R[k, 1] * axis
        az = R[k, 2] * axis + trans[k]
        np.add(ax[:, None, None] + ay[None, :, None], az[None, None, :],
               out=out)
        return out

    X = cam_coord(0, ws.buffer("int_x", shape))
    Y = cam_coord(1, ws.buffer("int_y", shape))
    Z = cam_coord(2, ws.buffer("int_z", shape))

    # Projection with PinholeCamera.project's exact validity rule.
    U = ws.buffer("int_u", shape)
    V = ws.buffer("int_v", shape)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(X, Z, out=U)
        U *= np.float32(camera.fx)
        U += np.float32(camera.cx)
        np.divide(Y, Z, out=V)
        V *= np.float32(camera.fy)
        V += np.float32(camera.cy)

    eps = np.float32(PROJECT_EDGE_EPS)
    in_view = ws.buffer("int_in_view", shape, dtype=bool)
    m = ws.buffer("int_mask", shape, dtype=bool)
    np.greater(Z, np.float32(PROJECT_MIN_Z), out=in_view)
    in_view &= np.isfinite(U, out=m)
    in_view &= np.isfinite(V, out=m)
    in_view &= np.greater_equal(U, -eps, out=m)
    in_view &= np.less_equal(U, np.float32(camera.width - 1) + eps, out=m)
    in_view &= np.greater_equal(V, -eps, out=m)
    in_view &= np.less_equal(V, np.float32(camera.height - 1) + eps, out=m)
    if not in_view.any():
        return 0

    # Round to the nearest pixel and clamp, as the reference does.
    np.nan_to_num(U, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
    np.nan_to_num(V, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
    np.rint(U, out=U)
    np.rint(V, out=V)
    np.clip(U, 0, camera.width - 1, out=U)
    np.clip(V, 0, camera.height - 1, out=V)
    # Flat pixel index (exact in float32: max index < 2^24).
    V *= np.float32(camera.width)
    V += U
    pix = ws.buffer("int_pix", shape, dtype=np.int32)
    np.copyto(pix, V, casting="unsafe")

    measured = U  # reuse: U's content is no longer needed
    np.take(depth.reshape(-1).astype(np.float32, copy=False), pix.reshape(-1),
            out=measured.reshape(-1))
    measured[~in_view] = 0.0

    # Projective signed distance: measured depth minus voxel depth.
    sdf = Z
    np.subtract(measured, Z, out=sdf)
    # updatable = in_view & measured > 0 & sdf > -mu
    updatable = in_view
    updatable &= measured > 0.0
    updatable &= sdf > np.float32(-mu)
    idx = np.flatnonzero(updatable.reshape(-1))
    if idx.size == 0:
        return 0

    tsdf_new = sdf.reshape(-1)[idx]
    tsdf_new /= np.float32(mu)
    np.clip(tsdf_new, -1.0, 1.0, out=tsdf_new)

    flat_t = volume.tsdf.reshape(-1)
    flat_w = volume.weight.reshape(-1)
    w_old = flat_w[idx]
    w_new = np.minimum(w_old + np.float32(1.0), np.float32(MAX_WEIGHT))
    flat_t[idx] = (flat_t[idx] * w_old + tsdf_new) / w_new
    flat_w[idx] = w_new
    return int(idx.size)
