"""Shared float32 helpers for the fast kernels.

Small, allocation-conscious counterparts of the float64 geometry
routines: rigid transforms that keep float32 operands in float32, a
projection that mirrors :meth:`PinholeCamera.project`'s validity
semantics exactly (same epsilons, same bounds), and a per-camera cache
of normalized float32 ray directions for the raycaster.
"""

from __future__ import annotations

import functools

import numpy as np

from ..geometry import PinholeCamera

#: Same border tolerance as :meth:`PinholeCamera.project`.
PROJECT_EDGE_EPS = 1e-6
#: Same minimum depth as :meth:`PinholeCamera.project`.
PROJECT_MIN_Z = 1e-9


def rotation_f32(pose: np.ndarray) -> np.ndarray:
    """The 3x3 rotation block of a float64 pose, as float32."""
    return np.ascontiguousarray(pose[:3, :3], dtype=np.float32)


def translation_f32(pose: np.ndarray) -> np.ndarray:
    """The translation of a float64 pose, as float32."""
    return np.ascontiguousarray(pose[:3, 3], dtype=np.float32)


def transform_points_f32(pose: np.ndarray, points: np.ndarray,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Float32 rigid transform of ``(N, 3)`` points.

    ``pose`` is the usual float64 4x4; ``points`` stay float32
    throughout (the float64 path upcasts, see ``se3.transform_points``).
    """
    R = rotation_f32(pose)
    t = translation_f32(pose)
    out = np.matmul(points, R.T, out=out)
    out += t
    return out


def rotate_vectors_f32(pose: np.ndarray, vectors: np.ndarray,
                       out: np.ndarray | None = None) -> np.ndarray:
    """Float32 rotation-only transform of ``(N, 3)`` vectors."""
    return np.matmul(vectors, rotation_f32(pose).T, out=out)


def project_f32(
    camera: PinholeCamera,
    points: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project float32 camera-frame points ``(N, 3)`` to pixels.

    Returns ``(u, v, valid)`` as separate arrays (no ``(N, 2)`` stack);
    the validity rule is bit-for-bit the one in
    :meth:`PinholeCamera.project`.
    """
    x, y, z = points[:, 0], points[:, 1], points[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        u = camera.fx * x / z + camera.cx
        v = camera.fy * y / z + camera.cy
    eps = PROJECT_EDGE_EPS
    valid = (
        (z > PROJECT_MIN_Z)
        & np.isfinite(u)
        & np.isfinite(v)
        & (u >= -eps)
        & (u <= camera.width - 1 + eps)
        & (v >= -eps)
        & (v <= camera.height - 1 + eps)
    )
    return u, v, valid


@functools.lru_cache(maxsize=None)
def unit_rays_f32(camera: PinholeCamera) -> np.ndarray:
    """Normalized float32 ray directions, ``(H*W, 3)``, cached per camera.

    The float64 equivalent is recomputed (grid + normalization) on every
    reference raycast call; cameras are frozen dataclasses, so caching on
    the instance value is sound.  The array is read-only.
    """
    rays = camera.pixel_rays().reshape(-1, 3).astype(np.float32)
    rays /= np.linalg.norm(rays, axis=-1, keepdims=True)
    rays.flags.writeable = False
    return rays


@functools.lru_cache(maxsize=None)
def pixel_rays_f32(camera: PinholeCamera) -> np.ndarray:
    """Float32 unit-z pixel rays ``(H, W, 3)``, cached per camera (read-only)."""
    rays = camera.pixel_rays().astype(np.float32)
    rays.flags.writeable = False
    return rays
