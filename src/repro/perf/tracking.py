"""Fast multi-scale point-to-plane ICP.

Same Gauss-Newton iteration as :mod:`repro.kfusion.tracking` — the pose
update, damping, trust region and quality gates are untouched float64
math — but the per-pixel front end (transform, projective association,
gathers, gating) runs in float32 with the loop-invariant work hoisted:

* the reference maps are flattened, downcast and their validity mask
  computed **once per frame** (the reference re-derives ``has_ref`` from
  a fresh gather every iteration of every level);
* the association gates (``cos(NORMAL_THRESHOLD)``, squared distance
  threshold) are constants, computed once;
* the transform and projection write into per-level workspace buffers
  reused across all Gauss-Newton iterations instead of allocating
  fresh ``(N, 3)`` float64 arrays six times per iteration.

The small matched-subset arrays (residuals, Jacobian) are extracted per
iteration and accumulated in float64 so the 6x6 normal equations and the
SE(3) update are numerically the reference solver.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrackingError
from ..geometry import se3
from ..kfusion.tracking import (
    DIST_THRESHOLD,
    MAX_RMSE,
    MIN_INLIER_FRACTION,
    NORMAL_THRESHOLD,
    ReferenceModel,
    TrackResult,
    _huber_weights,
)
from .common import project_f32
from .workspace import FrameWorkspace

_COS_NORMAL_THRESHOLD = float(np.cos(NORMAL_THRESHOLD))
_DIST_SQ_THRESHOLD = float(DIST_THRESHOLD) ** 2


class _PreparedReference:
    """Per-frame float32 view of the reference model (hoisted gathers)."""

    __slots__ = ("vertices", "normals", "has_ref", "camera", "cam_from_vol")

    def __init__(self, reference: ReferenceModel):
        self.vertices = np.ascontiguousarray(
            reference.vertices.reshape(-1, 3), dtype=np.float32
        )
        self.normals = np.ascontiguousarray(
            reference.normals.reshape(-1, 3), dtype=np.float32
        )
        self.has_ref = np.any(self.normals != 0.0, axis=-1)
        self.camera = reference.camera
        self.cam_from_vol = se3.inverse(reference.pose_volume_from_camera)


def _solve_level(
    cur_vertices: np.ndarray,
    cur_normals: np.ndarray,
    prepared: _PreparedReference,
    pose: np.ndarray,
    iterations: int,
    icp_threshold: float,
    level: int,
    ws: FrameWorkspace,
    huber_delta: float | None = None,
) -> tuple[np.ndarray, float, float, int]:
    """Gauss-Newton at one pyramid level (reference solver, fast front end)."""
    n_px = cur_vertices.shape[0] * cur_vertices.shape[1]
    cur_v = cur_vertices.reshape(-1, 3)
    cur_n = cur_normals.reshape(-1, 3)
    valid_cur = np.any(cur_n != 0.0, axis=-1)
    n_valid = max(int(valid_cur.sum()), 1)

    ref_cam = prepared.camera

    p_vol = ws.buffer(f"icp_pvol_l{level}", (n_px, 3))
    n_vol = ws.buffer(f"icp_nvol_l{level}", (n_px, 3))
    p_ref = ws.buffer(f"icp_pref_l{level}", (n_px, 3))

    rmse = float("inf")
    inlier_fraction = 0.0
    used = 0

    for _ in range(iterations):
        # Current vertices into the volume frame, then the reference
        # camera, all float32 into reused buffers.
        R32 = pose[:3, :3].astype(np.float32)
        t32 = pose[:3, 3].astype(np.float32)
        np.matmul(cur_v, R32.T, out=p_vol)
        p_vol += t32
        np.matmul(cur_n, R32.T, out=n_vol)
        Rc = prepared.cam_from_vol[:3, :3].astype(np.float32)
        tc = prepared.cam_from_vol[:3, 3].astype(np.float32)
        np.matmul(p_vol, Rc.T, out=p_ref)
        p_ref += tc

        u, v, in_view = project_f32(ref_cam, p_ref)
        np.nan_to_num(u, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
        np.nan_to_num(v, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
        flat = np.rint(v).astype(np.int32)
        np.clip(flat, 0, ref_cam.height - 1, out=flat)
        flat *= ref_cam.width
        ui = np.rint(u).astype(np.int32)
        np.clip(ui, 0, ref_cam.width - 1, out=ui)
        flat += ui

        r_v = prepared.vertices[flat]
        r_n = prepared.normals[flat]

        diff = r_v - p_vol
        dist_sq = np.einsum("ij,ij->i", diff, diff)
        cos_angle = np.einsum("ij,ij->i", n_vol, r_n)

        matched = (
            valid_cur
            & in_view
            & prepared.has_ref[flat]
            & (dist_sq < _DIST_SQ_THRESHOLD)
            & (cos_angle > _COS_NORMAL_THRESHOLD)
        )
        n_matched = int(matched.sum())
        inlier_fraction = n_matched / n_valid
        if n_matched < 6:
            break

        # Matched subset in float64: from here on this is the reference
        # solver verbatim.
        n_m = r_n[matched].astype(float)  # f64-ok: solver operates in f64
        p_m = p_vol[matched].astype(float)  # f64-ok: solver operates in f64
        d_m = diff[matched].astype(float)  # f64-ok: solver operates in f64
        e = np.einsum("ij,ij->i", n_m, d_m)
        rmse = float(np.sqrt(np.mean(e * e)))

        # effect-ok: matched-subset Jacobian, reference f64 solver verbatim
        J = np.concatenate([n_m, np.cross(p_m, n_m)], axis=1)
        if huber_delta is not None:
            w = _huber_weights(e, huber_delta)
            A = (J * w[:, None]).T @ J
            b = (J * w[:, None]).T @ e
        else:
            A = J.T @ J
            b = J.T @ e
        lam = 1e-4 * np.trace(A) / 6.0 + 1e-12
        try:
            xi = np.linalg.solve(A + lam * np.eye(6), b)
        except np.linalg.LinAlgError:
            break
        norm = float(np.linalg.norm(xi))
        if norm > 0.1:
            xi = xi * (0.1 / norm)
        used += 1

        pose = se3.se3_exp(xi) @ pose
        pose[:3, :3] = se3.orthonormalize(pose[:3, :3])

        if float(np.linalg.norm(xi)) < icp_threshold:
            break

    return pose, rmse, inlier_fraction, used


def track(
    vertex_pyramid: list[np.ndarray],
    normal_pyramid: list[np.ndarray],
    reference: ReferenceModel,
    initial_pose: np.ndarray,
    pyramid_iterations: tuple[int, ...],
    icp_threshold: float,
    ws: FrameWorkspace,
    huber_delta: float | None = None,
) -> TrackResult:
    """Track one frame (same contract as ``kfusion.tracking.track``)."""
    if len(vertex_pyramid) != len(pyramid_iterations):
        raise TrackingError(
            f"{len(vertex_pyramid)} pyramid levels but "
            f"{len(pyramid_iterations)} iteration counts"
        )
    prepared = _PreparedReference(reference)
    pose = np.asarray(initial_pose, dtype=float).copy()  # f64-ok: pose
    rmse = float("inf")
    inlier_fraction = 0.0
    per_level = [0] * len(vertex_pyramid)

    for level in reversed(range(len(vertex_pyramid))):
        iters = pyramid_iterations[level]
        if iters <= 0:
            continue
        pose, rmse, inlier_fraction, used = _solve_level(
            vertex_pyramid[level],
            normal_pyramid[level],
            prepared,
            pose,
            iters,
            icp_threshold,
            level,
            ws,
            huber_delta=huber_delta,
        )
        per_level[level] = used

    tracked = (
        np.isfinite(rmse)
        and rmse < MAX_RMSE
        and inlier_fraction > MIN_INLIER_FRACTION
    )
    return TrackResult(
        pose=pose,
        tracked=bool(tracked),
        rmse=float(rmse),
        inlier_fraction=float(inlier_fraction),
        iterations=int(sum(per_level)),
        iterations_per_level=tuple(per_level),
    )
