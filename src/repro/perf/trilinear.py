"""Fused float32 trilinear TSDF sampling.

The reference :meth:`TSDFVolume.sample_trilinear` recomputes voxel
coordinates, corner indices and weights for every call — and its
central-difference :meth:`TSDFVolume.gradient` makes six more
full-pipeline calls per query batch.  The fast path folds the whole
thing into flat-index gathers: corner indices are computed once per
batch, the value and the six central-difference lookups share one
vectorised sampler invocation, and everything stays float32.

Semantics match the reference exactly: points outside the grid or with
any zero-weight corner are invalid and sample to 1.0 ("far outside"),
including inside the gradient's finite differences.
"""

from __future__ import annotations

import numpy as np

from ..kfusion.volume import TSDFVolume

#: Corner offsets in (x, y, z), the reference kernel's iteration order.
_CORNERS = [(c & 1, (c >> 1) & 1, (c >> 2) & 1) for c in range(8)]


def sample_f32(
    volume: TSDFVolume,
    points: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Trilinear TSDF values at float32 volume-frame ``points`` ``(N, 3)``.

    Returns ``(values, valid)`` with the reference invalid-to-1.0
    convention, computed with flat-index corner gathers.
    """
    r = volume.resolution
    inv_voxel = np.float32(1.0 / volume.voxel_size)
    p = points * inv_voxel
    p -= np.float32(0.5)

    base = np.floor(p)
    frac = p - base
    base = base.astype(np.int32)

    inside = ((base >= 0) & (base <= r - 2)).all(axis=-1)
    np.clip(base, 0, r - 2, out=base)

    # Flat gather index of corner (0, 0, 0); the other corners are fixed
    # strides away, so the index arithmetic is done once per batch.
    flat000 = (base[:, 0].astype(np.int64) * r + base[:, 1]) * r + base[:, 2]
    tsdf_flat = volume.tsdf.reshape(-1)
    weight_flat = volume.weight.reshape(-1)

    fx, fy, fz = frac[:, 0], frac[:, 1], frac[:, 2]
    wx = (np.float32(1.0) - fx, fx)
    wy = (np.float32(1.0) - fy, fy)
    wz = (np.float32(1.0) - fz, fz)

    values = np.zeros(len(p), dtype=np.float32)  # effect-ok: batch-sized
    observed = np.ones(len(p), dtype=bool)  # effect-ok: batch-sized
    # (query batches are the compacted live-ray set, so their length
    # varies per call — a fixed-shape arena buffer cannot hold them)
    for ox, oy, oz in _CORNERS:
        idx = flat000 + ((ox * r + oy) * r + oz)
        values += (wx[ox] * wy[oy] * wz[oz]) * tsdf_flat[idx]
        observed &= weight_flat[idx] > 0.0

    valid = inside & observed
    values[~valid] = np.float32(1.0)
    return values, valid


def gradient_f32(volume: TSDFVolume, points: np.ndarray) -> np.ndarray:
    """Central-difference TSDF gradient at float32 points, ``(N, 3)``.

    One fused sampler call evaluates all six offset batches (the
    reference makes six separate ``sample_trilinear`` calls, each paying
    its own coordinate/corner setup).  ``eps`` is one voxel, as in the
    reference.
    """
    eps = np.float32(volume.voxel_size)
    n = len(points)
    queries = np.empty((6, n, 3), dtype=np.float32)  # effect-ok: batch-sized
    for axis in range(3):
        queries[2 * axis] = points
        queries[2 * axis][:, axis] += eps
        queries[2 * axis + 1] = points
        queries[2 * axis + 1][:, axis] -= eps
    vals, _ = sample_f32(volume, queries.reshape(-1, 3))
    vals = vals.reshape(6, n)
    g = np.empty((n, 3), dtype=np.float32)  # effect-ok: batch-sized
    inv = np.float32(1.0) / (np.float32(2.0) * eps)
    for axis in range(3):
        np.subtract(vals[2 * axis], vals[2 * axis + 1], out=g[:, axis])
        g[:, axis] *= inv
    return g
