"""Fast float32 preprocessing kernels.

Three changes over :mod:`repro.kfusion.preprocessing`:

* the bilateral filter slides window *views* over one zero-padded copy
  of the depth map instead of materialising 25 ``_shift2d`` full copies
  (plus 25 shifted validity masks), with the spatial-weight table
  precomputed once per (radius, sigma) pair;
* all maps are float32 and the heavy per-tap arithmetic runs through
  preallocated workspace buffers (``out=`` everywhere);
* vertex maps reuse the camera's cached pixel-ray grid.

Validity semantics are identical to the reference: the padding ring is
zero, so out-of-frame neighbours are invalid, invalid pixels contribute
nothing, and a pixel with no valid neighbour stays invalid.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..errors import ConfigurationError
from ..geometry import PinholeCamera
from ..kfusion.memory import BILATERAL_RADIUS
from .common import pixel_rays_f32
from .workspace import FrameWorkspace

#: Reference bilateral parameters (preprocessing.bilateral_filter).
SIGMA_SPACE = 1.5
SIGMA_DEPTH = 0.05

#: (radius, sigma_space) -> (2r+1, 2r+1) float32 spatial weight table.
_SPATIAL_TABLES: dict[tuple[int, float], np.ndarray] = {}


def spatial_weight_table(radius: int = BILATERAL_RADIUS,
                         sigma_space: float = SIGMA_SPACE) -> np.ndarray:
    """The per-tap spatial Gaussian weights, computed once and cached."""
    key = (radius, sigma_space)
    table = _SPATIAL_TABLES.get(key)
    if table is None:
        d = np.arange(-radius, radius + 1, dtype=np.float32)
        sq = d[:, None] ** 2 + d[None, :] ** 2
        table = np.exp(-sq / np.float32(2.0 * sigma_space * sigma_space))
        table.flags.writeable = False
        # (entries are immutable and identical for equal keys: replay-safe)
        # effect-ok: bounded memo cache keyed by (radius, sigma)
        _SPATIAL_TABLES[key] = table
    return table


@contract(depth="H,W:f64")
def bilateral_filter(depth: np.ndarray, ws: FrameWorkspace,
                     radius: int = BILATERAL_RADIUS,
                     sigma_space: float = SIGMA_SPACE,
                     sigma_depth: float = SIGMA_DEPTH) -> np.ndarray:
    """Edge-preserving depth smoothing on a zero-padded float32 image."""
    h, w = depth.shape
    d = ws.buffer("bf_depth", (h, w))
    np.copyto(d, depth, casting="unsafe")

    padded = ws.zeros("bf_padded", (h + 2 * radius, w + 2 * radius))
    padded[radius:radius + h, radius:radius + w] = d

    acc = ws.zeros("bf_acc", (h, w))
    wsum = ws.zeros("bf_wsum", (h, w))
    tap = ws.buffer("bf_tap", (h, w))

    table = spatial_weight_table(radius, sigma_space)
    inv_2sd = np.float32(1.0 / (2.0 * sigma_depth * sigma_depth))
    valid = d > 0.0

    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            window = padded[radius + dy:radius + dy + h,
                            radius + dx:radius + dx + w]
            # tap = w_spatial * exp(-(window - d)^2 * inv_2sd)
            np.subtract(window, d, out=tap)
            np.multiply(tap, tap, out=tap)
            tap *= -inv_2sd
            np.exp(tap, out=tap)
            tap *= table[dy + radius, dx + radius]
            # Invalid neighbours (zero depth, including the padding ring)
            # and invalid centre pixels contribute nothing.
            tap[~((window > 0.0) & valid)] = 0.0
            wsum += tap
            tap *= window
            acc += tap

    out = ws.buffer("bf_out", (h, w))
    low = wsum <= np.float32(1e-12)
    np.maximum(wsum, np.float32(1e-12), out=wsum)
    np.divide(acc, wsum, out=out)
    out[low] = 0.0
    return out


def downsample_f32(depth: np.ndarray, ratio: int,
                   out: np.ndarray | None = None) -> np.ndarray:
    """Valid-aware block average, float32 (reference ``downsample_depth``)."""
    h, w = depth.shape
    if h % ratio or w % ratio:
        raise ConfigurationError(
            f"depth {h}x{w} not divisible by ratio {ratio}"
        )
    blocks = depth.reshape(h // ratio, ratio, w // ratio, ratio)
    valid = blocks > 0.0
    counts = valid.sum(axis=(1, 3), dtype=np.float32)
    sums = np.where(valid, blocks, np.float32(0.0)).sum(
        axis=(1, 3), dtype=np.float32
    )
    result = np.divide(sums, np.maximum(counts, np.float32(1.0)), out=out)
    result[counts <= 0.0] = 0.0
    return result


def build_pyramid(depth: np.ndarray, levels: int,
                  ws: FrameWorkspace) -> list[np.ndarray]:
    """Float32 depth pyramid into workspace buffers, finest first.

    Early-out rules match the reference ``build_pyramid``.
    """
    pyramid = [depth]
    for level in range(1, levels):
        h, w = pyramid[-1].shape
        if h % 2 or w % 2 or h // 2 < 8 or w // 2 < 8:
            break
        out = ws.buffer(f"pyr_d{level}", (h // 2, w // 2))
        pyramid.append(downsample_f32(pyramid[-1], 2, out=out))
    return pyramid


def vertex_normal_pyramid(
    depth_pyramid: list[np.ndarray],
    camera: PinholeCamera,
    ws: FrameWorkspace,
) -> tuple[list[np.ndarray], list[np.ndarray], list[PinholeCamera]]:
    """Per-level float32 vertex/normal maps from cached pixel rays."""
    vertices, normals, cameras = [], [], []
    for level, depth in enumerate(depth_pyramid):
        cam = camera.scaled(2**level)
        if depth.shape != cam.shape:
            raise ConfigurationError(
                f"pyramid level {level} shape {depth.shape} != "
                f"camera {cam.shape}"
            )
        rays = pixel_rays_f32(cam)
        v = ws.buffer(f"pyr_v{level}", (*cam.shape, 3))
        d = ws.buffer(f"pyr_dv{level}", cam.shape)
        np.multiply(depth, np.isfinite(depth) & (depth > 0.0), out=d)
        np.multiply(rays, d[..., None], out=v)
        n = ws.buffer(f"pyr_n{level}", (*cam.shape, 3))
        _normals_f32(v, out=n)
        vertices.append(v)
        normals.append(n)
        cameras.append(cam)
    return vertices, normals, cameras


def _normals_f32(v: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Float32 central-difference normals (reference semantics)."""
    h, w = v.shape[:2]
    out.fill(0)
    if h < 3 or w < 3:
        return out

    mask = np.any(v != 0.0, axis=-1) & np.all(np.isfinite(v), axis=-1)
    dx = v[1:-1, 2:] - v[1:-1, :-2]
    dy = v[2:, 1:-1] - v[:-2, 1:-1]
    n = np.cross(dy, dx)
    norm = np.linalg.norm(n, axis=-1)

    ok = (
        mask[1:-1, 2:]
        & mask[1:-1, :-2]
        & mask[2:, 1:-1]
        & mask[:-2, 1:-1]
        & mask[1:-1, 1:-1]
        & (norm > 1e-12)
    )
    n /= np.where(norm > 1e-12, norm, np.float32(1.0))[..., None]
    flip = n[..., 2] > 0.0
    n[flip] = -n[flip]
    n[~ok] = 0.0
    out[1:-1, 1:-1] = n
    return out
