"""Optimized execution path for the five hot KinectFusion kernels.

``repro.perf`` is the reproduction's fast frame pipeline: float32
workspace kernels (:mod:`~repro.perf.preprocess`,
:mod:`~repro.perf.tracking`, :mod:`~repro.perf.integrate`), a
compacted-working-set raycaster (:mod:`~repro.perf.raycast`) over fused
trilinear gathers (:mod:`~repro.perf.trilinear`), all drawing scratch
from one preallocated :class:`FrameWorkspace` arena sized by
:func:`repro.kfusion.memory.workspace_bytes`.

Implementations are selected through the :class:`KernelBackend`
registry (``"fast"``, the default, vs ``"reference"``) and proven
equivalent by the golden suite in ``tests/test_perf.py``; see DESIGN.md
S17 for the equivalence policy and tolerance rationale.
"""

from .registry import (
    DEFAULT_KERNEL_BACKEND,
    FAST_BACKEND,
    KernelBackend,
    REFERENCE_BACKEND,
    SPARSE_BACKEND,
    get_kernel_backend,
    kernel_backend_names,
    register_kernel_backend,
)
from .workspace import FrameWorkspace

__all__ = [
    "DEFAULT_KERNEL_BACKEND",
    "FAST_BACKEND",
    "FrameWorkspace",
    "KernelBackend",
    "REFERENCE_BACKEND",
    "SPARSE_BACKEND",
    "get_kernel_backend",
    "kernel_backend_names",
    "register_kernel_backend",
]
