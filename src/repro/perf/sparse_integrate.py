"""Sparse voxel-block TSDF integration.

Two passes per frame:

1. **Allocate** — back-project every valid depth pixel and walk a short
   sample ladder along its ray through the truncation band (in front of
   the measured surface far enough to cover the raycaster's last
   empty-space step, behind it past +mu), allocating the 8³ blocks each
   sample's trilinear corner neighbourhood can touch.
2. **Update** — for every allocated block still inside the camera
   frustum (conservative plane test on block AABBs), apply the dense
   fast kernel's *exact* float32 op sequence (projection, validity,
   occlusion cut, running weighted average) to the block's voxels.

Because unallocated space reads as the empty state and the update rule
is bit-identical to :func:`repro.perf.integrate.integrate`, voxels in
allocated blocks carry bit-equal tsdf/weight to a dense run that saw
the same allocation-era frames (tests/test_sparse_volume.py pins the
static-camera case).  Free space *outside* the band is deliberately not
carved — that is the entire speedup — so sample *validity* in skipped
space differs from the dense volume; the sparse raycaster compensates
(see :mod:`repro.perf.sparse_raycast`) and the golden-equivalence suite
bounds the end-to-end effect (identical status sequences, ATE within
the documented 2%).
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..geometry import PinholeCamera, se3
from ..kfusion.integration import MAX_WEIGHT
from ..kfusion.memory import (
    sparse_band_samples,
    sparse_chunk_blocks,
)
from ..kfusion.sparse import (
    BLOCK,
    BLOCK_VOXELS,
    SparseTSDFVolume,
    unpack_block_coords,
)
from .common import PROJECT_EDGE_EPS, PROJECT_MIN_Z, pixel_rays_f32
from .workspace import FrameWorkspace


def band_offsets(mu: float, voxel: float) -> np.ndarray:
    """Depth offsets of the allocation ladder (float32, metres).

    Spans ``[-front, +back]`` around each measured depth: ``front``
    covers one raycast step plus the trilinear/gradient corner reach so
    the sample *before* a zero crossing still has every corner
    allocated; ``back`` covers the truncation band plus the same reach.
    Spacing of two voxels with the kernel's ±1-voxel block dilation
    leaves no gaps along the ray.
    """
    step = max(0.75 * mu, voxel)
    front = step + 3.0 * voxel
    back = mu + 3.0 * voxel
    n = sparse_band_samples(mu, voxel)
    return np.linspace(-front, back, n).astype(np.float32)


def _allocate_band(
    volume: SparseTSDFVolume,
    depth: np.ndarray,
    camera: PinholeCamera,
    pose_volume_from_camera: np.ndarray,
    mu: float,
    ws: FrameWorkspace,
) -> None:
    """Allocate every block the frame's truncation band can touch."""
    voxel = np.float32(volume.voxel_size)
    offsets = band_offsets(mu, volume.voxel_size)
    s = offsets.shape[0]
    px = camera.pixel_count
    rays = pixel_rays_f32(camera).reshape(-1, 3)

    dsamp = ws.buffer("int_band_depth", (px, s))
    np.add(depth.reshape(-1, 1), offsets[None, :], out=dsamp)

    pts_cam = ws.buffer("int_band_pts_cam", (px * s, 3))
    np.multiply(rays[:, None, :], dsamp[:, :, None],
                out=pts_cam.reshape(px, s, 3))
    R = np.ascontiguousarray(pose_volume_from_camera[:3, :3],
                             dtype=np.float32)
    t = np.ascontiguousarray(pose_volume_from_camera[:3, 3],
                             dtype=np.float32)
    pts = ws.buffer("int_band_pts", (px * s, 3))
    np.matmul(pts_cam, R.T, out=pts)
    pts += t

    vox = ws.buffer("int_band_vox", (px * s, 3), dtype=np.int32)
    np.floor_divide(pts, voxel, out=pts)
    np.copyto(vox, pts, casting="unsafe")

    r = volume.resolution
    ok = ws.buffer("int_band_ok", (px * s,), dtype=bool)
    # Valid pixel, and the ±1-voxel corner neighbourhood overlaps the
    # grid (samples far outside must not allocate clipped face blocks).
    np.all((vox >= -1) & (vox <= r), axis=-1, out=ok)
    ok &= np.repeat(depth.reshape(-1) > 0.0, s)  # effect-ok: batch-sized
    if not ok.any():
        return

    nb = volume.blocks_per_side
    # Lateral dilation: a voxel projecting to pixel p sits up to half a
    # ray spacing (depth / focal) off p's ray, which at coarse compute
    # resolutions exceeds a voxel — dilate by that many voxels (plus
    # one for the trilinear corner reach) so every voxel the dense
    # kernel updates inside the band lands in an allocated block.
    rad = ws.buffer("int_band_rad", (px * s,), dtype=np.int32)
    half_spacing = dsamp.reshape(-1) / np.float32(
        2.0 * min(camera.fx, camera.fy) * volume.voxel_size
    )
    np.copyto(rad, np.ceil(half_spacing), casting="unsafe")
    # Cap at 3 (+1 corner reach = 4): a ±4-voxel span can straddle at
    # most two blocks per axis, which is what the 8-corner key
    # enumeration below assumes; coarser-than-that ray spacing leaves
    # residual divergence the golden suite bounds.
    np.clip(rad, 0, 3, out=rad)
    rad += 1
    lo = np.clip((vox - rad[:, None]) >> 3, 0, nb - 1)  # effect-ok: batch
    hi = np.clip((vox + rad[:, None]) >> 3, 0, nb - 1)  # effect-ok: batch
    keys = ws.buffer("int_band_keys", (8, px * s), dtype=np.int64)
    shift = 20
    for c in range(8):
        cx = hi[:, 0] if c & 1 else lo[:, 0]
        cy = hi[:, 1] if c & 2 else lo[:, 1]
        cz = hi[:, 2] if c & 4 else lo[:, 2]
        k = keys[c]
        np.copyto(k, cx, casting="unsafe")
        k <<= shift
        k |= cy.astype(np.int64)
        k <<= shift
        k |= cz.astype(np.int64)
    wanted = np.unique(keys[:, ok])  # effect-ok: batch-sized
    volume.ensure_blocks(unpack_block_coords(wanted))  # effect-ok: new-block sized


def _visible_block_slots(
    volume: SparseTSDFVolume,
    camera: PinholeCamera,
    cam_from_vol: np.ndarray,
) -> np.ndarray:
    """Slots of allocated blocks whose AABB may intersect the frustum.

    Conservative: a block is culled only when all 8 AABB corners sit
    behind the camera, or (with every corner strictly in front) all
    fall outside the same image edge — the linear half-plane form of
    the projection bounds, so no division and no false exclusions.
    """
    n = volume.allocated_blocks
    if n == 0:
        return np.empty(0, dtype=np.int64)  # effect-ok: zero-length
    bm = volume.voxel_size * BLOCK
    base = volume.block_coords[:n].astype(float) * bm  # f64-ok: cull test
    # 8 AABB corners per block, (n, 8, 3).
    corners = np.empty((n, 8, 3))  # effect-ok: block-count sized  # f64-ok: cull test
    for c in range(8):
        corners[:, c, 0] = base[:, 0] + (bm if c & 1 else 0.0)
        corners[:, c, 1] = base[:, 1] + (bm if c & 2 else 0.0)
        corners[:, c, 2] = base[:, 2] + (bm if c & 4 else 0.0)
    flat = corners.reshape(-1, 3) @ cam_from_vol[:3, :3].T \
        + cam_from_vol[:3, 3]
    x, y, z = (flat[:, i].reshape(n, 8) for i in range(3))

    culled = np.all(z <= PROJECT_MIN_Z, axis=1)
    front = np.all(z > 0.0, axis=1)
    eps = PROJECT_EDGE_EPS + 1e-3  # slack: cull must never be wrong
    w1, h1 = camera.width - 1, camera.height - 1
    for coord, f, cc, limit in (
        (x, camera.fx, camera.cx, w1),
        (y, camera.fy, camera.cy, h1),
    ):
        low = f * coord + (cc + eps) * z  # u >= -eps  <=>  low >= 0
        high = f * coord - (limit + eps - cc) * z  # u <= limit+eps
        culled |= front & np.all(low < 0.0, axis=1)
        culled |= front & np.all(high > 0.0, axis=1)
    return np.flatnonzero(~culled)


@contract(depth="H,W:f32", pose_volume_from_camera="4,4:f64")
def integrate(
    volume: SparseTSDFVolume,
    depth: np.ndarray,
    camera: PinholeCamera,
    pose_volume_from_camera: np.ndarray,
    mu: float,
    ws: FrameWorkspace,
) -> int:
    """Fuse one float32 depth frame into the sparse TSDF volume."""
    _allocate_band(volume, depth, camera, pose_volume_from_camera, mu, ws)

    cam_from_vol = se3.inverse(pose_volume_from_camera)
    visible = _visible_block_slots(volume, camera, cam_from_vol)
    if visible.size == 0:
        return 0
    R = cam_from_vol[:3, :3].astype(np.float32)
    trans = cam_from_vol[:3, 3].astype(np.float32)

    r = volume.resolution
    nbv = volume.blocks_per_side * BLOCK
    # Per-axis rotated coordinate vectors over the padded block grid —
    # identical values to the dense kernel's `R[k, i] * axis` terms, so
    # the gathered camera coordinates are bit-equal per voxel.
    axis = ws.buffer("int_sp_axis", (nbv,))
    axis[:] = (np.arange(nbv, dtype=np.float32) + np.float32(0.5))
    axis *= np.float32(volume.voxel_size)
    rot = ws.buffer("int_sp_rot", (3, 3, nbv))
    for k in range(3):
        for i in range(3):
            np.multiply(np.float32(R[k, i]), axis, out=rot[k, i])
        rot[k, 2] += trans[k]

    chunk = sparse_chunk_blocks(volume.blocks_per_side)
    cv = chunk * BLOCK_VOXELS
    shape = (cv,)
    X = ws.buffer("int_sp_x", shape)
    Y = ws.buffer("int_sp_y", shape)
    Z = ws.buffer("int_sp_z", shape)
    U = ws.buffer("int_sp_u", shape)
    V = ws.buffer("int_sp_v", shape)
    IXb = ws.buffer("int_sp_ix", shape, dtype=np.int32)
    IYb = ws.buffer("int_sp_iy", shape, dtype=np.int32)
    IZb = ws.buffer("int_sp_iz", shape, dtype=np.int32)
    PIX = ws.buffer("int_sp_pix", shape, dtype=np.int32)
    GIDX = ws.buffer("int_sp_gidx", shape, dtype=np.int64)
    IN_VIEW = ws.buffer("int_sp_in_view", shape, dtype=bool)
    M = ws.buffer("int_sp_mask", shape, dtype=bool)

    lx, ly, lz = np.meshgrid(  # effect-ok: 8x8x8 constant
        np.arange(BLOCK, dtype=np.int32),
        np.arange(BLOCK, dtype=np.int32),
        np.arange(BLOCK, dtype=np.int32),
        indexing="ij",
    )
    local = (lx * BLOCK + ly) * BLOCK + lz  # block-row flat order
    depth_flat = depth.reshape(-1).astype(np.float32, copy=False)
    flat_t = volume.tsdf_blocks.reshape(-1)
    flat_w = volume.weight_blocks.reshape(-1)
    eps = np.float32(PROJECT_EDGE_EPS)
    updated = 0

    for at in range(0, visible.size, chunk):
        slots = visible[at:at + chunk]
        b = slots.size
        nvox = b * BLOCK_VOXELS
        bc = volume.block_coords[slots].astype(np.int32) * BLOCK
        ix = IXb[:nvox].reshape(b, BLOCK, BLOCK, BLOCK)
        iy = IYb[:nvox].reshape(b, BLOCK, BLOCK, BLOCK)
        iz = IZb[:nvox].reshape(b, BLOCK, BLOCK, BLOCK)
        np.add(bc[:, 0, None, None, None], lx[None], out=ix)
        np.add(bc[:, 1, None, None, None], ly[None], out=iy)
        np.add(bc[:, 2, None, None, None], lz[None], out=iz)
        ixf, iyf, izf = (a.reshape(-1) for a in (ix, iy, iz))

        # Camera coordinates, grouped exactly like the dense kernel:
        # (R[k,0]*ax_i + R[k,1]*ax_j) + (R[k,2]*ax_l + t_k).  The u
        # buffer doubles as gather scratch until the projection needs it.
        x, y, z = X[:nvox], Y[:nvox], Z[:nvox]
        u, v = U[:nvox], V[:nvox]
        in_view, m = IN_VIEW[:nvox], M[:nvox]
        for k, out in ((0, x), (1, y), (2, z)):
            np.take(rot[k, 0], ixf, out=out)
            np.take(rot[k, 1], iyf, out=u)
            np.add(out, u, out=out)
            np.take(rot[k, 2], izf, out=u)
            out += u

        with np.errstate(divide="ignore", invalid="ignore"):
            np.divide(x, z, out=u)
            u *= np.float32(camera.fx)
            u += np.float32(camera.cx)
            np.divide(y, z, out=v)
            v *= np.float32(camera.fy)
            v += np.float32(camera.cy)

        # No isfinite guard needed: u/v are only non-finite where the
        # division blew up, i.e. z <= PROJECT_MIN_Z, and those lanes are
        # already masked out by the depth test (nan compares False, so
        # the bound checks below also reject any nan that slips through).
        np.greater(z, np.float32(PROJECT_MIN_Z), out=in_view)
        in_view &= np.greater_equal(u, -eps, out=m)
        in_view &= np.less_equal(u, np.float32(camera.width - 1) + eps,
                                 out=m)
        in_view &= np.greater_equal(v, -eps, out=m)
        in_view &= np.less_equal(v, np.float32(camera.height - 1) + eps,
                                 out=m)
        if not in_view.any():
            continue

        np.nan_to_num(u, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
        np.nan_to_num(v, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
        np.rint(u, out=u)
        np.rint(v, out=v)
        np.clip(u, 0, camera.width - 1, out=u)
        np.clip(v, 0, camera.height - 1, out=v)
        v *= np.float32(camera.width)
        v += u
        pix = PIX[:nvox]
        np.copyto(pix, v, casting="unsafe")

        measured = u  # reuse, as the dense kernel does
        np.take(depth_flat, pix, out=measured)
        measured[~in_view] = 0.0

        sdf = z
        np.subtract(measured, z, out=sdf)
        updatable = in_view
        updatable &= measured > 0.0
        updatable &= sdf > np.float32(-mu)
        # Padding voxels past the logical grid exist only when the
        # resolution is not a multiple of the block size; the dense
        # kernel has no such voxels, so never write them.
        if nbv != r:
            updatable &= np.less(ixf, r, out=m)
            updatable &= np.less(iyf, r, out=m)
            updatable &= np.less(izf, r, out=m)
        idx = np.flatnonzero(updatable)  # effect-ok: batch-sized
        if idx.size == 0:
            continue

        gidx = GIDX[:nvox].reshape(b, BLOCK_VOXELS)
        np.add(slots[:, None] * BLOCK_VOXELS, local.reshape(-1)[None, :],
               out=gidx)
        tgt = gidx.reshape(-1)[idx]

        tsdf_new = sdf[idx]
        tsdf_new /= np.float32(mu)
        np.clip(tsdf_new, -1.0, 1.0, out=tsdf_new)

        w_old = flat_w[tgt]
        w_new = np.minimum(w_old + np.float32(1.0), np.float32(MAX_WEIGHT))
        flat_t[tgt] = (flat_t[tgt] * w_old + tsdf_new) / w_new
        flat_w[tgt] = w_new
        updated += int(idx.size)
    return updated
