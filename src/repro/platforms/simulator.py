"""The performance/power simulator.

Converts per-frame kernel workloads (``repro.core.workload``) into
execution time and energy on a :class:`~repro.platforms.device.DeviceModel`
under a chosen backend and DVFS setting.  The timing model is a roofline
per kernel launch::

    t = max(flops / throughput, bytes / bandwidth) + launch_overhead

with Amdahl's law applied to the CPU-parallel portion, and implementation
efficiency from the backend.  Energy charges the executing rail's dynamic
power for the kernel's duration; leakage and platform base power accrue
over the whole interval (see ``repro.platforms.power``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..errors import SimulationError

if TYPE_CHECKING:  # platforms sits below core in the layering; the
    # simulator consumes workload records structurally (duck typing), so
    # the import exists only for type checkers and never at runtime.
    from ..core.workload import FrameWorkload, KernelInvocation
from .backends import Backend, get_backend
from .device import CpuCluster, DeviceModel, Gpu
from .power import PowerTrace


@dataclass(frozen=True)
class PlatformConfig:
    """How the algorithm is deployed on the device.

    Attributes:
        backend: implementation name (``cpp``/``openmp``/``opencl``/``cuda``).
        cpu_freq_ghz: DVFS state for the executing CPU cluster (``None`` =
            max; snapped to the nearest available state).
        gpu_freq_ghz: DVFS state for the GPU (``None`` = max).
        cpu_cores: override of the core count (``None`` = backend default).
        kernel_efficiency: optional per-kernel-name throughput multipliers
            in (0, 1] modelling how well a device's compiler/architecture
            handles each kernel (GPU performance portability is far from
            uniform across vendors).
    """

    backend: str = "openmp"
    cpu_freq_ghz: float | None = None
    gpu_freq_ghz: float | None = None
    cpu_cores: int | None = None
    kernel_efficiency: Mapping[str, float] | None = None
    cpu_cluster: str | None = None  # big.LITTLE: run CPU work on this cluster


@dataclass(frozen=True)
class FrameTiming:
    """Simulated cost of one frame."""

    frame_index: int
    duration_s: float
    energy_j: float
    kernel_times_s: dict


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate of a full-sequence simulation.

    ``idle_power_w`` is the platform's floor (base + leakage) — what the
    power sensors read between frames when the pipeline keeps up with the
    camera and the SoC sits idle.
    """

    frame_timings: tuple[FrameTiming, ...]
    power: PowerTrace
    device_name: str
    backend: str
    idle_power_w: float = 0.0

    @property
    def total_time_s(self) -> float:
        return sum(f.duration_s for f in self.frame_timings)

    @property
    def mean_frame_time_s(self) -> float:
        if not self.frame_timings:
            raise SimulationError("no frames simulated")
        return self.total_time_s / len(self.frame_timings)

    @property
    def fps(self) -> float:
        return 1.0 / self.mean_frame_time_s

    @property
    def average_power_w(self) -> float:
        return self.power.average_power_w()

    @property
    def energy_per_frame_j(self) -> float:
        if not self.frame_timings:
            raise SimulationError("no frames simulated")
        return self.power.total_energy_j / len(self.frame_timings)

    def kernel_breakdown_s(self) -> dict:
        """Total simulated seconds per kernel name across all frames."""
        agg: dict[str, float] = {}
        for ft in self.frame_timings:
            for name, t in ft.kernel_times_s.items():
                agg[name] = agg.get(name, 0.0) + t
        return agg

    def streaming_average_power_w(self, frame_period_s: float = 1.0 / 30.0) -> float:
        """Average power when processing a live camera stream.

        Frames arrive every ``frame_period_s``.  When a frame finishes
        early the device idles at ``idle_power_w`` until the next frame;
        when it finishes late the next frame starts immediately (the
        pipeline falls behind, as on a real device).  This is the quantity
        the paper's power budget (1 W on the ODROID) refers to.
        """
        if frame_period_s <= 0:
            raise SimulationError("frame period must be positive")
        total_e = self.power.total_energy_j
        wall = 0.0
        idle = 0.0
        for ft in self.frame_timings:
            slot = max(ft.duration_s, frame_period_s)
            wall += slot
            idle += slot - ft.duration_s
        total_e += idle * self.idle_power_w
        return total_e / wall

    def realtime_fraction(self, frame_period_s: float = 1.0 / 30.0) -> float:
        """Fraction of frames processed within the camera frame period."""
        if not self.frame_timings:
            raise SimulationError("no frames simulated")
        ok = sum(1 for ft in self.frame_timings if ft.duration_s <= frame_period_s)
        return ok / len(self.frame_timings)


class PerformanceSimulator:
    """Maps kernel workloads onto a device model."""

    def __init__(self, device: DeviceModel, config: PlatformConfig | None = None):
        self.device = device
        self.config = config or PlatformConfig()
        self.backend: Backend = get_backend(self.config.backend)
        if not device.supports_backend(self.backend.name):
            raise SimulationError(
                f"device {device.name} cannot run backend {self.backend.name}"
            )
        self._cluster: CpuCluster = (
            device.cluster(self.config.cpu_cluster)
            if self.config.cpu_cluster is not None
            else device.biggest_cluster
        )
        self._cpu_freq = (
            self._cluster.nearest_freq(self.config.cpu_freq_ghz)
            if self.config.cpu_freq_ghz is not None
            else self._cluster.max_freq_ghz
        )
        if self.config.cpu_cores is not None:
            self._cores = min(self.config.cpu_cores, self._cluster.cores)
        elif self.backend.cpu_cores is None:
            self._cores = self._cluster.cores
        else:
            self._cores = min(self.backend.cpu_cores, self._cluster.cores)
        if self._cores < 1:
            raise SimulationError("need at least one CPU core")
        self._gpu: Gpu | None = device.gpu if self.backend.uses_gpu else None
        if self._gpu is not None:
            self._gpu_freq = (
                self._gpu.nearest_freq(self.config.gpu_freq_ghz)
                if self.config.gpu_freq_ghz is not None
                else self._gpu.max_freq_ghz
            )
        else:
            self._gpu_freq = 0.0

    # -- single kernel -------------------------------------------------------
    def kernel_time_s(self, kernel: "KernelInvocation") -> tuple[float, str]:
        """Simulated duration and executing rail of one kernel launch."""
        overhead = (
            self.device.kernel_launch_overhead_s
            * self.backend.launch_overhead_multiplier
        )
        per_kernel = 1.0
        if self.config.kernel_efficiency is not None:
            per_kernel = float(
                self.config.kernel_efficiency.get(kernel.name, 1.0)
            )
            if not 0.0 < per_kernel <= 1.0:
                raise SimulationError(
                    f"kernel_efficiency[{kernel.name!r}] must be in (0, 1]"
                )
        if self._gpu is not None and kernel.gpu_eligible:
            gflops = self._gpu.effective_gflops(self._gpu_freq)
            compute = kernel.flops / (gflops * 1e9 * self.backend.efficiency)
            mem = kernel.bytes_accessed / (self._gpu.bandwidth_gbs * 1e9)
            return max(compute, mem) / per_kernel + overhead, "gpu"

        freq = self._cpu_freq
        single = self._cluster.gflops(freq, 1) * 1e9 * self.backend.efficiency
        multi = self._cluster.gflops(freq, self._cores) * 1e9 * self.backend.efficiency
        serial_t = kernel.flops * (1.0 - kernel.parallel_fraction) / single
        parallel_t = kernel.flops * kernel.parallel_fraction / multi
        mem = kernel.bytes_accessed / (self.device.memory_bandwidth_gbs * 1e9)
        return max(serial_t + parallel_t, mem) / per_kernel + overhead, "cpu"

    def kernel_power_w(self, rail: str) -> float:
        """Dynamic power of the unit while executing a kernel."""
        if rail == "gpu":
            assert self._gpu is not None
            return self._gpu.dynamic_power(self._gpu_freq)
        if rail == "cpu":
            return self._cluster.dynamic_power(self._cpu_freq, self._cores)
        raise SimulationError(f"unknown rail {rail!r}")

    # -- whole sequence -------------------------------------------------------
    def simulate(self, workloads: "list[FrameWorkload]") -> SimulationResult:
        """Simulate a sequence of per-frame workloads."""
        from ..telemetry import current_tracer

        if not workloads:
            raise SimulationError("no workloads to simulate")
        with current_tracer().span("simulate", device=self.device.name,
                                   backend=self.backend.name,
                                   frames=len(workloads)):
            return self._simulate(workloads)

    def _simulate(self, workloads: "list[FrameWorkload]") -> SimulationResult:
        power = PowerTrace()
        timings = []
        for wl in workloads:
            frame_t = 0.0
            frame_e = 0.0
            per_kernel: dict[str, float] = {}
            for kernel in wl.kernels:
                t, rail = self.kernel_time_s(kernel)
                p = self.kernel_power_w(rail)
                power.charge(rail, p, t)
                frame_t += t
                frame_e += p * t
                per_kernel[kernel.name] = per_kernel.get(kernel.name, 0.0) + t
            power.advance(frame_t)
            timings.append(
                FrameTiming(
                    frame_index=wl.frame_index,
                    duration_s=frame_t,
                    energy_j=frame_e,
                    kernel_times_s=per_kernel,
                )
            )
        static_rails = {"cpu": self._cluster.static_power_w}
        if self._gpu is not None:
            static_rails["gpu"] = self._gpu.static_power_w
        power.finalize_base(self.device.base_power_w, static_rails)
        idle_power = self.device.base_power_w + sum(static_rails.values())
        return SimulationResult(
            frame_timings=tuple(timings),
            power=power,
            device_name=self.device.name,
            backend=self.backend.name,
            idle_power_w=idle_power,
        )
