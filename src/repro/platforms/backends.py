"""Implementation backends: C++, OpenMP, OpenCL, CUDA.

SLAMBench ships the same KinectFusion in four languages; the performance
difference between them is where kernels run and how well they exploit the
hardware.  A :class:`Backend` encodes that mapping for the simulator:
which unit executes GPU-eligible kernels, how many CPU cores are used, and
an implementation-efficiency factor (how close the code gets to the unit's
sustained throughput — e.g. hand-tuned CUDA is closer to peak than naive
C++).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .device import DeviceModel

BACKEND_NAMES = ("cpp", "openmp", "opencl", "cuda")


@dataclass(frozen=True)
class Backend:
    """One implementation variant of the algorithm.

    Attributes:
        name: one of ``cpp``, ``openmp``, ``opencl``, ``cuda``.
        uses_gpu: GPU-eligible kernels run on the GPU.
        cpu_cores: CPU cores used for CPU-side work (``None`` = all cores
            of the biggest cluster for openmp, 1 for cpp).
        efficiency: fraction of the executing unit's sustained throughput
            this implementation achieves.
        launch_overhead_multiplier: GPU command queues add per-kernel cost.
    """

    name: str
    uses_gpu: bool
    cpu_cores: int | None
    efficiency: float
    launch_overhead_multiplier: float = 1.0

    def __post_init__(self):
        if not 0.0 < self.efficiency <= 1.0:
            raise SimulationError(
                f"backend {self.name}: efficiency must be in (0, 1]"
            )

    def resolve_cores(self, device: DeviceModel) -> int:
        """CPU cores this backend uses on ``device``."""
        cluster = device.biggest_cluster
        if self.cpu_cores is None:
            return cluster.cores
        return min(self.cpu_cores, cluster.cores)


def get_backend(name: str) -> Backend:
    """Look up one of the four standard backends."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown backend {name!r}; choose from {BACKEND_NAMES}"
        ) from None


def available_backends(device: DeviceModel) -> list[Backend]:
    """The backends ``device`` can run, fastest-first by convention."""
    return [b for b in _BACKENDS.values() if device.supports_backend(b.name)]


_BACKENDS = {
    "cpp": Backend(
        name="cpp", uses_gpu=False, cpu_cores=1, efficiency=0.35
    ),
    "openmp": Backend(
        name="openmp", uses_gpu=False, cpu_cores=None, efficiency=0.24,
        launch_overhead_multiplier=1.2,
    ),
    "opencl": Backend(
        name="opencl", uses_gpu=True, cpu_cores=1, efficiency=0.55,
        launch_overhead_multiplier=4.0,
    ),
    "cuda": Backend(
        name="cuda", uses_gpu=True, cpu_cores=1, efficiency=0.70,
        launch_overhead_multiplier=3.0,
    ),
}
