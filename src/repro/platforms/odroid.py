"""The ODROID-XU3 device model — the paper's embedded target.

The XU3 carries a Samsung Exynos 5422: 4x Cortex-A15 (big, up to 2.0 GHz)
+ 4x Cortex-A7 (LITTLE, up to 1.4 GHz) and a Mali-T628 MP6 GPU, with
LPDDR3 at ~14.9 GB/s, and — crucially for SLAMBench — on-board INA231
power sensors per rail.  Throughput/power figures below are sustained
values for dense vision kernels, chosen to land the default OpenCL
KinectFusion in the few-FPS / ~3 W regime the papers report, so that the
tuned-vs-default ratios (4.8x time, 2.8x power) are meaningful.
"""

from __future__ import annotations

from .device import CpuCluster, DeviceModel, Gpu


def odroid_xu3() -> DeviceModel:
    """Build the ODROID-XU3 model."""
    big = CpuCluster(
        name="big",
        cores=4,
        max_freq_ghz=2.0,
        freqs_ghz=(0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0),
        flops_per_cycle=4.0,  # NEON, sustained for these kernels
        dynamic_power_w=4.4,
        static_power_w=0.25,
    )
    little = CpuCluster(
        name="little",
        cores=4,
        max_freq_ghz=1.4,
        freqs_ghz=(0.6, 0.8, 1.0, 1.2, 1.4),
        flops_per_cycle=2.0,  # in-order A7
        dynamic_power_w=0.7,
        static_power_w=0.08,
    )
    # Sustained (not peak) figures: the T628's theoretical ~109 GFLOPS is
    # unreachable for these kernels; measured dense-vision throughput on
    # this part is an order of magnitude lower, and the GPU sees only part
    # of the LPDDR3 bandwidth.
    mali = Gpu(
        name="mali_t628_mp6",
        gflops=30.0,
        max_freq_ghz=0.6,
        freqs_ghz=(0.177, 0.266, 0.350, 0.420, 0.480, 0.543, 0.6),
        bandwidth_gbs=4.5,
        dynamic_power_w=2.7,
        static_power_w=0.15,
        api="opencl",
    )
    return DeviceModel(
        name="odroid_xu3",
        clusters=(big, little),
        gpu=mali,
        memory_bandwidth_gbs=8.5,
        kernel_launch_overhead_s=8e-6,
        base_power_w=0.25,
        year=2014,
        form_factor="board",
    )


def desktop_gtx() -> DeviceModel:
    """A desktop CUDA machine (the 'state of the art' comparison class).

    Modelled on a mid-2010s quad-core + GTX-class discrete GPU, the
    platform the original KinectFusion and SLAMBench desktop numbers come
    from.
    """
    cpu = CpuCluster(
        name="big",
        cores=4,
        max_freq_ghz=3.5,
        freqs_ghz=(1.6, 2.4, 3.0, 3.5),
        flops_per_cycle=16.0,  # AVX2 FMA
        dynamic_power_w=60.0,
        static_power_w=8.0,
    )
    gpu = Gpu(
        name="gtx_titan",
        gflops=2500.0,
        max_freq_ghz=0.88,
        freqs_ghz=(0.33, 0.55, 0.7, 0.88),
        bandwidth_gbs=280.0,
        dynamic_power_w=180.0,
        static_power_w=15.0,
        api="cuda",
    )
    return DeviceModel(
        name="desktop_gtx",
        clusters=(cpu,),
        gpu=gpu,
        memory_bandwidth_gbs=25.0,
        kernel_launch_overhead_s=3e-6,
        base_power_w=30.0,
        year=2014,
        form_factor="board",
    )
