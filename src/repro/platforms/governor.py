"""DVFS governor simulation — frequency scaling under a live stream.

The ODROID results in the papers depend on Linux's frequency governors:
``performance`` pins max clocks, ``powersave`` pins the lowest, and
``ondemand`` raises clocks when the recent load is high and lowers them
when the device idles.  Because KinectFusion is a 30 Hz streaming
workload, the governor interacts with the configuration: a light
configuration lets ``ondemand`` drop the clocks and the power, a heavy
one pins them at maximum.

:func:`simulate_with_governor` replays a per-frame workload stream,
letting the governor pick the GPU/CPU DVFS state before each frame from
the previous frame's utilisation (duration / frame period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import SimulationError
from .device import DeviceModel
from .simulator import PerformanceSimulator, PlatformConfig

if TYPE_CHECKING:
    from ..core.workload import FrameWorkload

GOVERNORS = ("performance", "powersave", "ondemand")

#: ondemand thresholds (fractions of the frame period).
_UP_THRESHOLD = 0.85
_DOWN_THRESHOLD = 0.45


@dataclass(frozen=True)
class GovernorResult:
    """Outcome of a governed streaming run."""

    governor: str
    frame_times_s: tuple[float, ...]
    cpu_freqs_ghz: tuple[float, ...]
    gpu_freqs_ghz: tuple[float, ...]
    energy_j: float
    streaming_power_w: float
    realtime_fraction: float

    @property
    def mean_frame_time_s(self) -> float:
        return sum(self.frame_times_s) / len(self.frame_times_s)

    @property
    def fps(self) -> float:
        return 1.0 / self.mean_frame_time_s


def _step(levels: tuple[float, ...], current: float, direction: int) -> float:
    """Move one DVFS state up (+1) or down (-1) from ``current``."""
    idx = min(range(len(levels)), key=lambda i: abs(levels[i] - current))
    idx = max(0, min(len(levels) - 1, idx + direction))
    return levels[idx]


def simulate_with_governor(
    device: DeviceModel,
    workloads: "list[FrameWorkload]",
    governor: str = "ondemand",
    backend: str = "opencl",
    frame_period_s: float = 1.0 / 30.0,
) -> GovernorResult:
    """Stream the workloads through the device under a DVFS governor."""
    if governor not in GOVERNORS:
        raise SimulationError(
            f"unknown governor {governor!r}; choose from {GOVERNORS}"
        )
    if not workloads:
        raise SimulationError("no workloads to stream")
    if not device.supports_backend(backend):
        raise SimulationError(
            f"device {device.name} cannot run backend {backend}"
        )

    cluster = device.biggest_cluster
    cpu_levels = cluster.freqs_ghz
    gpu_levels = device.gpu.freqs_ghz if device.gpu else (0.0,)

    if governor == "performance":
        cpu_f, gpu_f = cpu_levels[-1], gpu_levels[-1]
    elif governor == "powersave":
        cpu_f, gpu_f = cpu_levels[0], gpu_levels[0]
    else:
        cpu_f, gpu_f = cpu_levels[-1], gpu_levels[-1]  # ondemand boots high

    frame_times: list[float] = []
    cpu_trace: list[float] = []
    gpu_trace: list[float] = []
    energy = 0.0
    idle_energy = 0.0
    realtime = 0

    for workload in workloads:
        sim = PerformanceSimulator(
            device,
            PlatformConfig(backend=backend, cpu_freq_ghz=cpu_f,
                           gpu_freq_ghz=gpu_f if device.gpu else None),
        )
        result = sim.simulate([workload])
        duration = result.frame_timings[0].duration_s
        frame_times.append(duration)
        cpu_trace.append(cpu_f)
        gpu_trace.append(gpu_f)
        energy += result.power.total_energy_j
        if duration <= frame_period_s:
            realtime += 1
            idle_energy += (frame_period_s - duration) * result.idle_power_w

        if governor == "ondemand":
            load = duration / frame_period_s
            if load > _UP_THRESHOLD:
                cpu_f = _step(cpu_levels, cpu_f, +1)
                gpu_f = _step(gpu_levels, gpu_f, +1)
            elif load < _DOWN_THRESHOLD:
                cpu_f = _step(cpu_levels, cpu_f, -1)
                gpu_f = _step(gpu_levels, gpu_f, -1)

    wall = sum(max(t, frame_period_s) for t in frame_times)
    return GovernorResult(
        governor=governor,
        frame_times_s=tuple(frame_times),
        cpu_freqs_ghz=tuple(cpu_trace),
        gpu_freqs_ghz=tuple(gpu_trace),
        energy_j=energy + idle_energy,
        streaming_power_w=(energy + idle_energy) / wall,
        realtime_fraction=realtime / len(workloads),
    )
