"""The 83-device mobile database for the Android crowdsourcing study.

Figure 3 of the paper reports, for 83 smartphones and tablets that ran the
SLAMBench Android app, the speed-up of the HyperMapper-tuned configuration
over the default.  We rebuild that population as a curated database of real
2013-2017 Android devices: each entry references an SoC template (CPU
clusters, GPU, memory) from which a :class:`DeviceModel` is constructed.

Throughput and power figures are sustained estimates for dense vision
kernels — accurate to the class of the SoC, which is what the experiment's
*shape* (distribution of speed-ups across a heterogeneous population)
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .device import CpuCluster, DeviceModel, Gpu


@dataclass(frozen=True)
class SocTemplate:
    """Shared silicon description for all devices using one SoC."""

    soc: str
    big_cores: int
    big_freq: float
    big_fpc: float
    big_dyn_w: float
    little_cores: int  # 0 = no LITTLE cluster
    little_freq: float
    gpu_name: str
    gpu_gflops: float
    gpu_freq: float
    gpu_dyn_w: float
    gpu_bw: float
    mem_bw: float


_SOCS = {
    t.soc: t
    for t in [
        # soc, bigN, bigGHz, fpc, bigW, litN, litGHz, gpu, GF, gGHz, gW, gBW, memBW
        SocTemplate("exynos5410", 4, 1.6, 8.0, 3.8, 4, 1.2, "sgx544mp3", 51.1, 0.48, 1.4, 6.0, 8.5),
        SocTemplate("exynos5420", 4, 1.9, 8.0, 4.2, 4, 1.3, "mali_t628mp6", 109.0, 0.533, 1.8, 10.0, 13.2),
        SocTemplate("exynos7420", 4, 2.1, 8.0, 4.5, 4, 1.5, "mali_t760mp8", 210.0, 0.772, 2.6, 14.0, 24.8),
        SocTemplate("exynos8890", 4, 2.3, 9.0, 4.8, 4, 1.6, "mali_t880mp12", 265.0, 0.65, 3.0, 16.0, 28.7),
        SocTemplate("exynos8895", 4, 2.3, 10.0, 4.6, 4, 1.7, "mali_g71mp20", 370.0, 0.546, 3.2, 18.0, 29.8),
        SocTemplate("snapdragon600", 4, 1.9, 6.0, 3.5, 0, 0.0, "adreno320", 97.0, 0.4, 1.5, 8.0, 8.5),
        SocTemplate("snapdragon800", 4, 2.26, 7.0, 4.0, 0, 0.0, "adreno330", 129.8, 0.45, 1.8, 10.0, 12.8),
        SocTemplate("snapdragon801", 4, 2.45, 7.0, 4.2, 0, 0.0, "adreno330", 158.0, 0.578, 2.0, 10.0, 14.9),
        SocTemplate("snapdragon805", 4, 2.65, 7.0, 4.6, 0, 0.0, "adreno420", 172.8, 0.6, 2.4, 12.0, 25.6),
        SocTemplate("snapdragon808", 2, 1.82, 8.0, 2.8, 4, 1.44, "adreno418", 153.6, 0.6, 2.0, 10.0, 14.9),
        SocTemplate("snapdragon810", 4, 2.0, 8.0, 4.8, 4, 1.55, "adreno430", 324.8, 0.65, 2.8, 14.0, 25.6),
        SocTemplate("snapdragon820", 4, 2.15, 10.0, 4.2, 0, 0.0, "adreno530", 498.5, 0.624, 3.0, 16.0, 28.8),
        SocTemplate("snapdragon835", 4, 2.45, 10.0, 4.0, 4, 1.9, "adreno540", 567.0, 0.71, 3.0, 18.0, 29.8),
        SocTemplate("snapdragon625", 4, 2.0, 4.0, 2.2, 4, 2.0, "adreno506", 130.0, 0.65, 1.2, 6.0, 7.4),
        SocTemplate("snapdragon617", 4, 1.5, 4.0, 2.0, 4, 1.2, "adreno405", 59.0, 0.55, 1.0, 5.0, 7.4),
        SocTemplate("snapdragon400", 4, 1.2, 3.0, 1.6, 0, 0.0, "adreno305", 21.6, 0.45, 0.7, 3.5, 5.3),
        SocTemplate("snapdragon410", 4, 1.4, 3.5, 1.7, 0, 0.0, "adreno306", 24.0, 0.45, 0.7, 3.5, 5.3),
        SocTemplate("kirin925", 4, 1.8, 8.0, 3.9, 4, 1.3, "mali_t628mp4", 72.6, 0.6, 1.6, 8.0, 12.8),
        SocTemplate("kirin950", 4, 2.3, 9.0, 4.4, 4, 1.8, "mali_t880mp4", 93.6, 0.9, 2.0, 10.0, 21.3),
        SocTemplate("kirin960", 4, 2.36, 10.0, 4.6, 4, 1.84, "mali_g71mp8", 150.0, 1.037, 2.8, 14.0, 23.9),
        SocTemplate("mt6595", 4, 2.2, 7.0, 3.8, 4, 1.7, "powervr_g6200", 76.8, 0.6, 1.5, 7.0, 12.8),
        SocTemplate("helio_x10", 8, 2.0, 4.0, 3.0, 0, 0.0, "powervr_g6200", 81.0, 0.7, 1.5, 7.0, 12.8),
        SocTemplate("helio_x20", 2, 2.3, 8.0, 3.2, 8, 1.85, "mali_t880mp4", 93.6, 0.78, 1.8, 9.0, 14.9),
        SocTemplate("tegra_k1", 4, 2.2, 8.0, 4.5, 0, 0.0, "kepler_gk20a", 365.0, 0.95, 3.5, 17.0, 17.0),
        SocTemplate("tegra_x1", 4, 1.9, 9.0, 4.5, 4, 1.3, "maxwell_gm20b", 512.0, 1.0, 4.0, 25.6, 25.6),
        SocTemplate("exynos5433", 4, 1.9, 8.0, 4.3, 4, 1.3, "mali_t760mp6", 142.0, 0.7, 2.2, 12.0, 13.2),
        SocTemplate("exynos7870", 8, 1.6, 4.0, 2.4, 0, 0.0, "mali_t830mp1", 23.6, 1.0, 0.8, 4.0, 7.4),
        SocTemplate("atom_z3580", 4, 2.33, 8.0, 4.0, 0, 0.0, "powervr_g6430", 153.6, 0.533, 2.0, 12.0, 12.8),
        SocTemplate("exynos4412", 4, 1.4, 4.0, 2.4, 0, 0.0, "mali_400mp4", 14.4, 0.44, 0.8, 3.2, 6.4),
        SocTemplate("snapdragon430", 8, 1.4, 3.5, 1.9, 0, 0.0, "adreno505", 48.6, 0.45, 0.8, 4.0, 5.3),
    ]
}

#: (device name, soc key, year, form factor). 83 entries — the population
#: size of the paper's crowdsourced study.
_DEVICES: tuple[tuple[str, str, int, str], ...] = (
    ("Samsung Galaxy S4", "exynos5410", 2013, "phone"),
    ("Samsung Galaxy Note 3", "snapdragon800", 2013, "phone"),
    ("Samsung Galaxy S5", "snapdragon801", 2014, "phone"),
    ("Samsung Galaxy Alpha", "exynos5430", 2014, "phone"),
    ("Samsung Galaxy Note 4", "snapdragon805", 2014, "phone"),
    ("Samsung Galaxy Note Edge", "snapdragon805", 2014, "phone"),
    ("Samsung Galaxy S6", "exynos7420", 2015, "phone"),
    ("Samsung Galaxy S6 Edge", "exynos7420", 2015, "phone"),
    ("Samsung Galaxy Note 5", "exynos7420", 2015, "phone"),
    ("Samsung Galaxy S7", "exynos8890", 2016, "phone"),
    ("Samsung Galaxy S7 Edge", "exynos8890", 2016, "phone"),
    ("Samsung Galaxy S8", "exynos8895", 2017, "phone"),
    ("Samsung Galaxy A5 2016", "exynos7870", 2016, "phone"),
    ("Samsung Galaxy J7", "exynos7870", 2016, "phone"),
    ("Samsung Galaxy Tab S", "exynos5420", 2014, "tablet"),
    ("Samsung Galaxy Tab S2", "exynos5433", 2015, "tablet"),
    ("LG G2", "snapdragon800", 2013, "phone"),
    ("LG G3", "snapdragon801", 2014, "phone"),
    ("LG G4", "snapdragon808", 2015, "phone"),
    ("LG G5", "snapdragon820", 2016, "phone"),
    ("LG G6", "snapdragon821", 2017, "phone"),
    ("LG V10", "snapdragon808", 2015, "phone"),
    ("LG V20", "snapdragon820", 2016, "phone"),
    ("LG Nexus 4", "snapdragon600", 2012, "phone"),
    ("LG Nexus 5", "snapdragon800", 2013, "phone"),
    ("LG Nexus 5X", "snapdragon808", 2015, "phone"),
    ("Motorola Nexus 6", "snapdragon805", 2014, "phone"),
    ("Huawei Nexus 6P", "snapdragon810", 2015, "phone"),
    ("Google Pixel", "snapdragon821", 2016, "phone"),
    ("Google Pixel XL", "snapdragon821", 2016, "phone"),
    ("Google Pixel 2", "snapdragon835", 2017, "phone"),
    ("HTC One M7", "snapdragon600", 2013, "phone"),
    ("HTC One M8", "snapdragon801", 2014, "phone"),
    ("HTC One M9", "snapdragon810", 2015, "phone"),
    ("HTC 10", "snapdragon820", 2016, "phone"),
    ("HTC U11", "snapdragon835", 2017, "phone"),
    ("OnePlus One", "snapdragon801", 2014, "phone"),
    ("OnePlus 2", "snapdragon810", 2015, "phone"),
    ("OnePlus 3", "snapdragon820", 2016, "phone"),
    ("OnePlus 3T", "snapdragon821", 2016, "phone"),
    ("OnePlus 5", "snapdragon835", 2017, "phone"),
    ("Sony Xperia Z1", "snapdragon800", 2013, "phone"),
    ("Sony Xperia Z2", "snapdragon801", 2014, "phone"),
    ("Sony Xperia Z3", "snapdragon801", 2014, "phone"),
    ("Sony Xperia Z5", "snapdragon810", 2015, "phone"),
    ("Sony Xperia X Performance", "snapdragon820", 2016, "phone"),
    ("Sony Xperia XZ", "snapdragon820", 2016, "phone"),
    ("Sony Xperia XZ Premium", "snapdragon835", 2017, "phone"),
    ("Motorola Moto G 2014", "snapdragon400", 2014, "phone"),
    ("Motorola Moto G3", "snapdragon410", 2015, "phone"),
    ("Motorola Moto G4 Plus", "snapdragon617", 2016, "phone"),
    ("Motorola Moto X Style", "snapdragon808", 2015, "phone"),
    ("Motorola Moto Z", "snapdragon820", 2016, "phone"),
    ("Huawei P8", "kirin925", 2015, "phone"),
    ("Huawei P9", "kirin950", 2016, "phone"),
    ("Huawei P10", "kirin960", 2017, "phone"),
    ("Huawei Mate 7", "kirin925", 2014, "phone"),
    ("Huawei Mate 8", "kirin950", 2015, "phone"),
    ("Huawei Mate 9", "kirin960", 2016, "phone"),
    ("Huawei Honor 7", "kirin925", 2015, "phone"),
    ("Huawei Honor 8", "kirin950", 2016, "phone"),
    ("Xiaomi Mi 3", "snapdragon800", 2013, "phone"),
    ("Xiaomi Mi 4", "snapdragon801", 2014, "phone"),
    ("Xiaomi Mi 5", "snapdragon820", 2016, "phone"),
    ("Xiaomi Mi 6", "snapdragon835", 2017, "phone"),
    ("Xiaomi Redmi Note 3", "snapdragon650", 2016, "phone"),
    ("Xiaomi Redmi Note 4", "snapdragon625", 2017, "phone"),
    ("Xiaomi Redmi 3", "snapdragon616", 2016, "phone"),
    ("Meizu MX4", "mt6595", 2014, "phone"),
    ("Meizu Pro 5", "exynos7420", 2015, "phone"),
    ("Meizu Pro 6", "helio_x25", 2016, "phone"),
    ("ZTE Axon 7", "snapdragon820", 2016, "phone"),
    ("ZTE Nubia Z11", "snapdragon820", 2016, "phone"),
    ("Asus Zenfone 2", "atom_z3580", 2015, "phone"),
    ("Asus Zenfone 3", "snapdragon625", 2016, "phone"),
    ("Lenovo Vibe Z2 Pro", "snapdragon801", 2014, "phone"),
    ("Lenovo ZUK Z2", "snapdragon820", 2016, "phone"),
    ("Nvidia Shield Tablet", "tegra_k1", 2014, "tablet"),
    ("Google Pixel C", "tegra_x1", 2015, "tablet"),
    ("Google Nexus 9", "tegra_k1", 2014, "tablet"),
    ("Samsung Galaxy Note 10.1", "exynos5420", 2014, "tablet"),
    ("Odroid U3 (community)", "exynos4412", 2013, "board"),
    ("Vernee Apollo", "helio_x20", 2016, "phone"),
)

#: SoC keys referenced above but sharing silicon with a listed template.
_SOC_ALIASES = {
    "exynos5430": "exynos5420",
    "exynos5433": "exynos5433",
    "snapdragon821": "snapdragon820",
    "snapdragon650": "snapdragon808",
    "snapdragon616": "snapdragon617",
    "helio_x25": "helio_x20",
}


def _resolve_soc(key: str) -> SocTemplate:
    key = _SOC_ALIASES.get(key, key)
    try:
        return _SOCS[key]
    except KeyError:
        raise SimulationError(f"unknown SoC template {key!r}") from None


def _dvfs_states(max_freq: float, n: int = 5) -> tuple[float, ...]:
    """Evenly spaced DVFS states from 40% to 100% of max."""
    return tuple(round(max_freq * (0.4 + 0.6 * i / (n - 1)), 3) for i in range(n))


def build_device(name: str, soc_key: str, year: int, form: str) -> DeviceModel:
    """Construct a :class:`DeviceModel` from an SoC template."""
    soc = _resolve_soc(soc_key)
    clusters = [
        CpuCluster(
            name="big",
            cores=soc.big_cores,
            max_freq_ghz=soc.big_freq,
            freqs_ghz=_dvfs_states(soc.big_freq),
            flops_per_cycle=soc.big_fpc,
            dynamic_power_w=soc.big_dyn_w,
            static_power_w=0.06 * soc.big_cores,
        )
    ]
    if soc.little_cores > 0:
        clusters.append(
            CpuCluster(
                name="little",
                cores=soc.little_cores,
                max_freq_ghz=soc.little_freq,
                freqs_ghz=_dvfs_states(soc.little_freq),
                flops_per_cycle=2.0,
                dynamic_power_w=0.18 * soc.little_cores,
                static_power_w=0.02 * soc.little_cores,
            )
        )
    gpu = Gpu(
        name=soc.gpu_name,
        gflops=soc.gpu_gflops,
        max_freq_ghz=soc.gpu_freq,
        freqs_ghz=_dvfs_states(soc.gpu_freq),
        bandwidth_gbs=soc.gpu_bw,
        dynamic_power_w=soc.gpu_dyn_w,
        static_power_w=0.1,
        api="cuda" if soc.gpu_name.startswith(("kepler", "maxwell")) else "opencl",
    )
    return DeviceModel(
        name=name,
        clusters=tuple(clusters),
        gpu=gpu,
        memory_bandwidth_gbs=soc.mem_bw,
        kernel_launch_overhead_s=12e-6,  # mobile GPU drivers are slower
        base_power_w=0.35,
        year=year,
        form_factor=form,
    )


def phone_database() -> list[DeviceModel]:
    """All 83 devices of the crowdsourcing study."""
    return [build_device(*entry) for entry in _DEVICES]


def device_count() -> int:
    return len(_DEVICES)
