"""Power accounting for simulated runs.

SLAMBench samples on-board power sensors (the ODROID-XU3's INA231 rails:
big cluster / LITTLE cluster / GPU / memory) while the pipeline runs.  The
simulator reproduces the same decomposition: every kernel execution charges
energy to the unit that ran it, plus platform base power over the whole
processing interval.  :class:`PowerTrace` accumulates those charges and
reports average power per rail — the quantities Figure 2's "power
efficient (< 3 W)" label and the 1 W headline refer to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass
class PowerTrace:
    """Accumulated energy per rail over a processing interval."""

    energy_j: dict = field(default_factory=dict)
    busy_time_s: dict = field(default_factory=dict)
    elapsed_s: float = 0.0

    def charge(self, rail: str, power_w: float, duration_s: float) -> None:
        """Charge ``duration_s`` seconds of ``power_w`` to ``rail``."""
        if duration_s < 0 or power_w < 0:
            raise SimulationError("negative power or duration")
        self.energy_j[rail] = self.energy_j.get(rail, 0.0) + power_w * duration_s
        self.busy_time_s[rail] = self.busy_time_s.get(rail, 0.0) + duration_s

    def advance(self, duration_s: float) -> None:
        """Advance wall-clock time (base power accrues over this)."""
        if duration_s < 0:
            raise SimulationError("negative duration")
        self.elapsed_s += duration_s

    def finalize_base(self, base_power_w: float,
                      static_rails: dict | None = None) -> None:
        """Charge platform base power and per-rail leakage over elapsed time."""
        self.charge("base", base_power_w, self.elapsed_s)
        # Undo double-advance: base is charged over elapsed, not busy, time.
        self.busy_time_s["base"] = 0.0
        for rail, watts in (static_rails or {}).items():
            self.charge(f"{rail}_static", watts, self.elapsed_s)
            self.busy_time_s[f"{rail}_static"] = 0.0

    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    def average_power_w(self) -> float:
        """Mean power over the processing interval."""
        if self.elapsed_s <= 0:
            raise SimulationError("no elapsed time recorded")
        return self.total_energy_j / self.elapsed_s

    def rail_power_w(self, rail: str) -> float:
        """Mean power of one rail over the interval (0 if never charged)."""
        if self.elapsed_s <= 0:
            raise SimulationError("no elapsed time recorded")
        return self.energy_j.get(rail, 0.0) / self.elapsed_s

    def breakdown(self) -> dict:
        """``{rail: mean power in W}`` snapshot."""
        if self.elapsed_s <= 0:
            raise SimulationError("no elapsed time recorded")
        return {rail: e / self.elapsed_s for rail, e in self.energy_j.items()}


def battery_life_hours(
    average_power_w: float,
    battery_wh: float = 11.0,
    system_overhead_w: float = 1.0,
) -> float:
    """How long a battery sustains continuous SLAM at ``average_power_w``.

    The Android study's practical question: a phone's ~11 Wh battery
    drains in a couple of hours running dense SLAM flat out.  The screen,
    radios and OS draw ``system_overhead_w`` on top of the SoC power the
    simulator reports.
    """
    if battery_wh <= 0:
        raise SimulationError("battery capacity must be positive")
    if average_power_w < 0 or system_overhead_w < 0:
        raise SimulationError("power draws must be non-negative")
    total = average_power_w + system_overhead_w
    if total <= 0:
        raise SimulationError("total draw must be positive")
    return battery_wh / total
