"""Simulated hardware platforms, backends and power accounting."""

from .backends import BACKEND_NAMES, Backend, available_backends, get_backend
from .device import CpuCluster, DeviceModel, Gpu
from .governor import GOVERNORS, GovernorResult, simulate_with_governor
from .odroid import desktop_gtx, odroid_xu3
from .phones import build_device, device_count, phone_database
from .power import PowerTrace, battery_life_hours
from .simulator import (
    FrameTiming,
    PerformanceSimulator,
    PlatformConfig,
    SimulationResult,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "available_backends",
    "get_backend",
    "CpuCluster",
    "DeviceModel",
    "Gpu",
    "GOVERNORS",
    "GovernorResult",
    "simulate_with_governor",
    "desktop_gtx",
    "odroid_xu3",
    "build_device",
    "device_count",
    "phone_database",
    "PowerTrace",
    "battery_life_hours",
    "FrameTiming",
    "PerformanceSimulator",
    "PlatformConfig",
    "SimulationResult",
]
