"""Device models: CPU clusters, GPUs, memory — the simulated hardware.

SLAMBench runs on real boards and phones and reads wall-clock timers and
power sensors; our reproduction substitutes a parametric device model (see
DESIGN.md).  A device is a set of CPU clusters (big.LITTLE capable), an
optional GPU, and a shared memory system.  Frequencies are DVFS states;
dynamic power follows the standard cubic frequency law
``P(f) = P_max * (f / f_max)^3`` (V roughly linear in f, P ~ f * V^2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class CpuCluster:
    """A homogeneous CPU cluster (e.g. 4x Cortex-A15).

    Attributes:
        name: cluster label (``"big"``, ``"little"``).
        cores: number of cores.
        max_freq_ghz: top DVFS state.
        freqs_ghz: available DVFS states (sorted ascending).
        flops_per_cycle: sustained FLOPs per cycle per core (SIMD width x
            issue x efficiency already folded in for *dense vision kernels*).
        dynamic_power_w: dynamic power of the whole cluster at max
            frequency, all cores busy.
        static_power_w: leakage of the whole cluster when powered.
    """

    name: str
    cores: int
    max_freq_ghz: float
    freqs_ghz: tuple[float, ...]
    flops_per_cycle: float
    dynamic_power_w: float
    static_power_w: float

    def __post_init__(self):
        if self.cores < 1:
            raise SimulationError(f"cluster {self.name}: needs >= 1 core")
        if not self.freqs_ghz:
            raise SimulationError(f"cluster {self.name}: no DVFS states")
        if sorted(self.freqs_ghz) != list(self.freqs_ghz):
            raise SimulationError(f"cluster {self.name}: freqs must be sorted")
        if max(self.freqs_ghz) > self.max_freq_ghz + 1e-9:
            raise SimulationError(
                f"cluster {self.name}: DVFS state above max_freq_ghz"
            )

    def gflops(self, freq_ghz: float, cores_used: int) -> float:
        """Peak GFLOP/s with ``cores_used`` cores at ``freq_ghz``."""
        if not 1 <= cores_used <= self.cores:
            raise SimulationError(
                f"cluster {self.name}: cores_used {cores_used} "
                f"outside [1, {self.cores}]"
            )
        return freq_ghz * self.flops_per_cycle * cores_used

    def dynamic_power(self, freq_ghz: float, cores_used: int) -> float:
        """Dynamic power (W) with ``cores_used`` busy cores at ``freq_ghz``."""
        per_core = self.dynamic_power_w / self.cores
        return per_core * cores_used * (freq_ghz / self.max_freq_ghz) ** 3

    def nearest_freq(self, freq_ghz: float) -> float:
        """Snap to the closest available DVFS state."""
        return min(self.freqs_ghz, key=lambda f: abs(f - freq_ghz))


@dataclass(frozen=True)
class Gpu:
    """An embedded GPU (Mali/Adreno/PowerVR class).

    Attributes:
        gflops: sustained GFLOP/s for dense vision kernels at max frequency.
        max_freq_ghz / freqs_ghz: DVFS states.
        bandwidth_gbs: GPU-visible memory bandwidth (GB/s).
        dynamic_power_w: dynamic power at max frequency, fully busy.
        static_power_w: leakage when powered.
        api: ``"opencl"`` or ``"cuda"`` — which backends can use it.
    """

    name: str
    gflops: float
    max_freq_ghz: float
    freqs_ghz: tuple[float, ...]
    bandwidth_gbs: float
    dynamic_power_w: float
    static_power_w: float
    api: str = "opencl"

    def __post_init__(self):
        if self.gflops <= 0 or self.bandwidth_gbs <= 0:
            raise SimulationError(f"gpu {self.name}: non-positive throughput")
        if self.api not in ("opencl", "cuda"):
            raise SimulationError(f"gpu {self.name}: unknown api {self.api!r}")

    def effective_gflops(self, freq_ghz: float) -> float:
        return self.gflops * freq_ghz / self.max_freq_ghz

    def dynamic_power(self, freq_ghz: float) -> float:
        return self.dynamic_power_w * (freq_ghz / self.max_freq_ghz) ** 3

    def nearest_freq(self, freq_ghz: float) -> float:
        return min(self.freqs_ghz, key=lambda f: abs(f - freq_ghz))


@dataclass(frozen=True)
class DeviceModel:
    """A complete device: clusters + optional GPU + memory.

    Attributes:
        kernel_launch_overhead_s: fixed cost per kernel launch (higher for
            GPU backends on mobile drivers).
        base_power_w: always-on platform power (memory, rails, SoC uncore).
    """

    name: str
    clusters: tuple[CpuCluster, ...]
    gpu: Gpu | None
    memory_bandwidth_gbs: float
    kernel_launch_overhead_s: float = 5e-6
    base_power_w: float = 0.3
    year: int = 2015
    form_factor: str = "board"  # "board" | "phone" | "tablet"

    def __post_init__(self):
        if not self.clusters:
            raise SimulationError(f"device {self.name}: needs >= 1 cluster")
        if self.memory_bandwidth_gbs <= 0:
            raise SimulationError(f"device {self.name}: bad memory bandwidth")

    def cluster(self, name: str) -> CpuCluster:
        for c in self.clusters:
            if c.name == name:
                return c
        raise SimulationError(
            f"device {self.name}: no cluster named {name!r} "
            f"(have {[c.name for c in self.clusters]})"
        )

    @property
    def biggest_cluster(self) -> CpuCluster:
        """The cluster with the highest single-core throughput."""
        return max(
            self.clusters, key=lambda c: c.max_freq_ghz * c.flops_per_cycle
        )

    @property
    def total_cores(self) -> int:
        return sum(c.cores for c in self.clusters)

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    def supports_backend(self, backend: str) -> bool:
        """Whether this device can run the given implementation backend."""
        if backend in ("cpp", "openmp"):
            return True
        if backend == "opencl":
            return self.gpu is not None
        if backend == "cuda":
            return self.gpu is not None and self.gpu.api == "cuda"
        raise SimulationError(f"unknown backend {backend!r}")
