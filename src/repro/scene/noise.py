"""Kinect-style depth sensor noise model.

ICL-NUIM provides both noiseless and "noisy" (sensor-realistic) renders;
the noisy variant follows the Kinect error study of Khoshelham & Elberink:
axial noise grows quadratically with depth, plus lateral jitter at depth
discontinuities, quantisation from disparity resolution, and random dropout.
This module implements a parametric version of that model so datasets can be
generated at several difficulty levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError


@dataclass(frozen=True)
class KinectNoiseModel:
    """Parametric RGB-D depth noise.

    Attributes:
        axial_sigma_at_1m: standard deviation of axial noise at 1 m depth;
            the actual sigma is ``axial_sigma_at_1m * depth**2`` (Kinect's
            disparity-based error grows quadratically).
        lateral_pixels: std-dev of the lateral (pixel-shift) jitter applied
            at depth edges, in pixels.
        dropout_rate: probability that a valid pixel is dropped (returned
            as 0), modelling IR speckle failures.
        edge_dropout_boost: extra dropout probability at depth edges.
        quantization_m: depth quantisation step at 1 m (scales with depth²).
    """

    axial_sigma_at_1m: float = 0.0012
    lateral_pixels: float = 0.5
    dropout_rate: float = 0.002
    edge_dropout_boost: float = 0.15
    quantization_m: float = 0.0008

    def __post_init__(self):
        for name in ("axial_sigma_at_1m", "lateral_pixels", "dropout_rate",
                     "edge_dropout_boost", "quantization_m"):
            if getattr(self, name) < 0:
                raise DatasetError(f"noise parameter {name} must be >= 0")
        if self.dropout_rate > 1.0:
            raise DatasetError("dropout_rate must be <= 1")

    @classmethod
    def noiseless(cls) -> "KinectNoiseModel":
        """The ICL-NUIM 'clean' variant: perfect depth."""
        return cls(0.0, 0.0, 0.0, 0.0, 0.0)

    @classmethod
    def mild(cls) -> "KinectNoiseModel":
        """Half-strength noise, for easier sequences."""
        return cls(0.0006, 0.25, 0.001, 0.08, 0.0004)

    @classmethod
    def harsh(cls) -> "KinectNoiseModel":
        """Strong noise, used by robustness/failure-injection tests."""
        return cls(0.004, 1.0, 0.01, 0.3, 0.002)

    def apply(self, depth: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a corrupted copy of a depth map (0 marks invalid)."""
        depth = np.asarray(depth, dtype=float)
        if depth.ndim != 2:
            raise DatasetError(f"depth must be 2-D, got shape {depth.shape}")
        noisy = depth.copy()
        valid = noisy > 0.0
        if not valid.any():
            return noisy

        edges = self._edge_mask(depth)

        # Lateral jitter: at edges, replace depth with a randomly chosen
        # nearby pixel's depth (sub-pixel shifts approximated at 1px).
        if self.lateral_pixels > 0.0:
            jitter_p = np.clip(self.lateral_pixels, 0.0, 1.0) * 0.5
            shifted = np.roll(noisy, shift=1, axis=1)
            take = edges & (rng.random(noisy.shape) < jitter_p)
            noisy[take] = shifted[take]
            valid = noisy > 0.0

        # Axial noise, quadratic in depth.
        if self.axial_sigma_at_1m > 0.0:
            sigma = self.axial_sigma_at_1m * noisy**2
            noisy[valid] += rng.normal(0.0, 1.0, size=int(valid.sum())) * sigma[valid]

        # Quantisation: the Kinect quantises *disparity* (inverse depth),
        # which makes the depth step grow quadratically with depth.  The
        # parameter is the depth step at 1 m, i.e. the inverse-depth step.
        if self.quantization_m > 0.0:
            inv = 1.0 / np.maximum(noisy, 1e-6)
            inv_q = np.round(inv / self.quantization_m) * self.quantization_m
            noisy[valid] = 1.0 / np.maximum(inv_q[valid], 1e-9)

        # Dropout: base rate everywhere, boosted at edges.
        p = np.full(noisy.shape, self.dropout_rate)
        p[edges] += self.edge_dropout_boost
        drop = valid & (rng.random(noisy.shape) < p)
        noisy[drop] = 0.0

        noisy[noisy < 0.0] = 0.0
        return noisy

    @staticmethod
    def _edge_mask(depth: np.ndarray, threshold: float = 0.05) -> np.ndarray:
        """Pixels adjacent to a depth discontinuity or an invalid pixel."""
        d = depth
        edge = np.zeros(d.shape, dtype=bool)
        dx = np.abs(np.diff(d, axis=1))
        dy = np.abs(np.diff(d, axis=0))
        edge[:, :-1] |= dx > threshold
        edge[:, 1:] |= dx > threshold
        edge[:-1, :] |= dy > threshold
        edge[1:, :] |= dy > threshold
        invalid = d <= 0.0
        edge[:, :-1] |= invalid[:, 1:]
        edge[:, 1:] |= invalid[:, :-1]
        edge[:-1, :] |= invalid[1:, :]
        edge[1:, :] |= invalid[:-1, :]
        return edge
