"""Procedural 3D scenes, trajectories, rendering and sensor noise."""

from .corridor import corridor
from .living_room import SceneDescription, living_room
from .noise import KinectNoiseModel
from .office import office
from .primitives import Box, Cylinder, Negation, Plane, SDFNode, Sphere, Union
from .renderer import RenderSettings, render_depth, render_rgb, render_vertex_normal
from .trajectory import (FRAME_RATE_HZ, Trajectory, orbit, random_walk,
                         stationary, sweep)

__all__ = [
    "SceneDescription",
    "living_room",
    "corridor",
    "office",
    "KinectNoiseModel",
    "Box",
    "Cylinder",
    "Negation",
    "Plane",
    "SDFNode",
    "Sphere",
    "Union",
    "RenderSettings",
    "render_depth",
    "render_rgb",
    "render_vertex_normal",
    "FRAME_RATE_HZ",
    "Trajectory",
    "orbit",
    "random_walk",
    "stationary",
    "sweep",
]
