"""Sphere-tracing depth/RGB renderer for SDF scenes.

This plays the role of ICL-NUIM's POV-Ray raytracer: given a scene SDF, a
camera and a pose, it produces a noiseless ground-truth depth map (and a
simple Lambertian RGB image).  Rendering is fully vectorised: all rays are
marched together, with converged rays masked out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError
from ..geometry import PinholeCamera, se3
from .living_room import SceneDescription


@dataclass(frozen=True)
class RenderSettings:
    """Quality knobs for the sphere tracer.

    Attributes:
        max_steps: maximum sphere-tracing iterations per ray.
        hit_epsilon: distance below which a ray counts as a surface hit.
        max_range: rays are killed past this depth (metres) — mirrors the
            Kinect's maximum sensing range.
        min_range: hits closer than this are discarded (Kinect near limit).
    """

    max_steps: int = 96
    hit_epsilon: float = 2e-3
    max_range: float = 6.0
    min_range: float = 0.3


def render_depth(
    scene: SceneDescription,
    camera: PinholeCamera,
    pose: np.ndarray,
    settings: RenderSettings = RenderSettings(),
) -> np.ndarray:
    """Render a ground-truth depth map ``(H, W)`` in metres.

    ``pose`` is camera-to-world.  Pixels with no hit within range get 0,
    the "invalid depth" convention used across the library.
    """
    if not se3.is_pose(pose, tol=1e-4):
        raise GeometryError("render_depth: pose is not a valid rigid transform")
    dirs_cam = camera.pixel_rays().reshape(-1, 3)
    dirs_cam = dirs_cam / np.linalg.norm(dirs_cam, axis=-1, keepdims=True)
    R = pose[:3, :3]
    origin = pose[:3, 3]
    dirs_world = dirs_cam @ R.T

    n_rays = dirs_world.shape[0]
    t = np.full(n_rays, settings.min_range * 0.5)
    alive = np.ones(n_rays, dtype=bool)
    hit = np.zeros(n_rays, dtype=bool)

    for _ in range(settings.max_steps):
        if not alive.any():
            break
        pts = origin + t[alive, None] * dirs_world[alive]
        d = scene.distance(pts)
        idx = np.flatnonzero(alive)
        converged = d < settings.hit_epsilon
        hit[idx[converged]] = True
        alive[idx[converged]] = False
        # Advance the survivors; conservative step of |d| keeps us from
        # tunnelling through thin structures when inside negative regions.
        step = np.maximum(np.abs(d[~converged]), settings.hit_epsilon)
        rest = idx[~converged]
        t[rest] += step
        overshoot = t[rest] > settings.max_range
        alive[rest[overshoot]] = False

    # Depth is the z-component in the camera frame: t * dir_z.
    depth = np.where(hit, t * dirs_cam[:, 2], 0.0)
    depth[(depth < settings.min_range) | (depth > settings.max_range)] = 0.0
    return depth.reshape(camera.shape)


def render_rgb(
    scene: SceneDescription,
    camera: PinholeCamera,
    pose: np.ndarray,
    settings: RenderSettings = RenderSettings(),
    light_dir=(0.4, 1.0, 0.3),
) -> np.ndarray:
    """Render a Lambertian-shaded RGB image ``(H, W, 3)`` in [0, 1].

    The RGB stream is carried through the pipeline for API fidelity (the
    SLAMBench GUI displays it) but KinectFusion's tracking only uses depth.
    """
    depth = render_depth(scene, camera, pose, settings)
    rays = camera.pixel_rays()
    pts_cam = rays * depth[..., None]
    valid = depth > 0.0
    pts_world = se3.transform_points(pose, pts_cam.reshape(-1, 3))

    rgb = np.zeros((camera.height * camera.width, 3))
    vmask = valid.reshape(-1)
    if vmask.any():
        surf = pts_world[vmask]
        normals = scene.normal(surf)
        light = np.asarray(light_dir, dtype=float)
        light = light / np.linalg.norm(light)
        lambert = np.clip(normals @ light, 0.0, 1.0)
        shade = 0.25 + 0.75 * lambert
        rgb[vmask] = scene.albedo(surf) * shade[:, None]
    return np.clip(rgb.reshape(camera.height, camera.width, 3), 0.0, 1.0)


def render_vertex_normal(
    scene: SceneDescription,
    camera: PinholeCamera,
    pose: np.ndarray,
    settings: RenderSettings = RenderSettings(),
) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth world-frame vertex and normal maps for evaluation."""
    depth = render_depth(scene, camera, pose, settings)
    pts_cam = camera.pixel_rays() * depth[..., None]
    valid = depth > 0.0
    flat = pts_cam.reshape(-1, 3)
    world = se3.transform_points(pose, flat)
    normals = np.zeros_like(world)
    vmask = valid.reshape(-1)
    if vmask.any():
        normals[vmask] = scene.normal(world[vmask])
    world[~vmask] = 0.0
    shape = (camera.height, camera.width, 3)
    return world.reshape(shape), normals.reshape(shape)
