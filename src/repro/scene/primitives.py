"""Signed-distance-function primitives and CSG combinators.

The synthetic datasets are built from analytic signed distance functions
(SDFs): each primitive maps an ``(N, 3)`` array of world points to ``(N,)``
signed distances (negative inside).  The renderer sphere-traces these fields
to produce depth images, and the reconstruction metric compares the SLAM
system's TSDF against the same field — so scene geometry, rendering and
evaluation all share one ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import GeometryError


class SDFNode:
    """Base class for signed distance fields.

    Subclasses implement :meth:`distance`.  Colour support is optional: the
    default albedo is mid-grey, used by the RGB renderer for shading.
    """

    albedo: tuple[float, float, float] = (0.5, 0.5, 0.5)

    def distance(self, points: np.ndarray) -> np.ndarray:
        """Signed distance from each of ``(N, 3)`` points to the surface."""
        raise NotImplementedError

    def normal(self, points: np.ndarray, eps: float = 1e-4) -> np.ndarray:
        """Outward surface normal by central finite differences, ``(N, 3)``."""
        points = np.asarray(points, dtype=float)
        n = np.empty_like(points)
        for axis in range(3):
            offset = np.zeros(3)
            offset[axis] = eps
            n[:, axis] = self.distance(points + offset) - self.distance(points - offset)
        norms = np.linalg.norm(n, axis=-1, keepdims=True)
        norms = np.where(norms > 1e-12, norms, 1.0)
        return n / norms

    # CSG sugar -----------------------------------------------------------
    def union(self, other: "SDFNode") -> "Union":
        return Union([self, other])

    def __or__(self, other: "SDFNode") -> "Union":
        return self.union(other)


@dataclass
class Sphere(SDFNode):
    """Sphere of radius ``radius`` centred at ``center``."""

    center: Sequence[float]
    radius: float
    albedo: tuple[float, float, float] = (0.5, 0.5, 0.5)

    def __post_init__(self):
        if self.radius <= 0:
            raise GeometryError(f"sphere radius must be positive, got {self.radius}")
        self.center = np.asarray(self.center, dtype=float).reshape(3)

    def distance(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        return np.linalg.norm(points - self.center, axis=-1) - self.radius


@dataclass
class Box(SDFNode):
    """Axis-aligned box centred at ``center`` with half extents ``half``."""

    center: Sequence[float]
    half: Sequence[float]
    albedo: tuple[float, float, float] = (0.5, 0.5, 0.5)

    def __post_init__(self):
        self.center = np.asarray(self.center, dtype=float).reshape(3)
        self.half = np.asarray(self.half, dtype=float).reshape(3)
        if np.any(self.half <= 0):
            raise GeometryError(f"box half extents must be positive, got {self.half}")

    def distance(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        q = np.abs(points - self.center) - self.half
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=-1)
        inside = np.minimum(np.max(q, axis=-1), 0.0)
        return outside + inside


@dataclass
class Plane(SDFNode):
    """Half-space: the surface is the plane ``direction . x = offset``.

    Points on the side the direction vector points to have positive
    distance.  (The field is called ``direction`` rather than ``normal`` to
    avoid shadowing :meth:`SDFNode.normal`.)
    """

    direction: Sequence[float]
    offset: float
    albedo: tuple[float, float, float] = (0.5, 0.5, 0.5)

    def __post_init__(self):
        n = np.asarray(self.direction, dtype=float).reshape(3)
        norm = np.linalg.norm(n)
        if norm < 1e-12:
            raise GeometryError("plane direction must be non-zero")
        self.direction = n / norm
        self.offset = float(self.offset) / norm

    def distance(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        return points @ self.direction - self.offset


@dataclass
class Cylinder(SDFNode):
    """Vertical (y-axis) capped cylinder."""

    center: Sequence[float]
    radius: float
    half_height: float
    albedo: tuple[float, float, float] = (0.5, 0.5, 0.5)

    def __post_init__(self):
        if self.radius <= 0 or self.half_height <= 0:
            raise GeometryError("cylinder radius and half_height must be positive")
        self.center = np.asarray(self.center, dtype=float).reshape(3)

    def distance(self, points: np.ndarray) -> np.ndarray:
        p = np.asarray(points, dtype=float) - self.center
        radial = np.linalg.norm(p[..., [0, 2]], axis=-1) - self.radius
        axial = np.abs(p[..., 1]) - self.half_height
        outside = np.linalg.norm(
            np.stack([np.maximum(radial, 0.0), np.maximum(axial, 0.0)], axis=-1),
            axis=-1,
        )
        inside = np.minimum(np.maximum(radial, axial), 0.0)
        return outside + inside


@dataclass
class Union(SDFNode):
    """CSG union of child fields (pointwise minimum of distances)."""

    children: list[SDFNode] = field(default_factory=list)

    def __post_init__(self):
        if not self.children:
            raise GeometryError("union needs at least one child")

    def distance(self, points: np.ndarray) -> np.ndarray:
        d = self.children[0].distance(points)
        for child in self.children[1:]:
            d = np.minimum(d, child.distance(points))
        return d

    def nearest_child(self, points: np.ndarray) -> np.ndarray:
        """Index of the child nearest to each point (for per-object albedo)."""
        dists = np.stack([c.distance(points) for c in self.children], axis=0)
        return np.argmin(dists, axis=0)

    def albedo_at(self, points: np.ndarray) -> np.ndarray:
        """Per-point albedo ``(N, 3)`` taken from the nearest child."""
        idx = self.nearest_child(points)
        albedos = np.array([c.albedo for c in self.children])
        return albedos[idx]


@dataclass
class Negation(SDFNode):
    """Flip inside/outside — turns a box into a room interior."""

    child: SDFNode

    def distance(self, points: np.ndarray) -> np.ndarray:
        return -self.child.distance(points)

    @property
    def albedo(self):  # type: ignore[override]
        return self.child.albedo
