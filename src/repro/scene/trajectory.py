"""Synthetic camera trajectories.

ICL-NUIM ships four hand-held style trajectories through its living room
(``kt0`` .. ``kt3``); we synthesise comparable ones: smooth orbits and
sweeps with controllable speed and hand-held jitter, always looking into
the scene so the depth camera sees structure.  Each generator returns a
list of camera-to-world poses plus per-frame timestamps at 30 Hz.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError
from ..geometry import se3

FRAME_RATE_HZ = 30.0


@dataclass(frozen=True)
class Trajectory:
    """A timestamped sequence of camera-to-world poses."""

    poses: np.ndarray  # (N, 4, 4)
    timestamps: np.ndarray  # (N,) seconds

    def __post_init__(self):
        if self.poses.ndim != 3 or self.poses.shape[1:] != (4, 4):
            raise GeometryError(f"poses must be (N,4,4), got {self.poses.shape}")
        if len(self.timestamps) != len(self.poses):
            raise GeometryError("timestamps and poses length mismatch")

    def __len__(self) -> int:
        return len(self.poses)

    def __getitem__(self, i: int) -> np.ndarray:
        return self.poses[i]

    @property
    def positions(self) -> np.ndarray:
        """Camera centres, ``(N, 3)``."""
        return self.poses[:, :3, 3]

    def path_length(self) -> float:
        """Total translational path length in metres."""
        deltas = np.diff(self.positions, axis=0)
        return float(np.linalg.norm(deltas, axis=-1).sum())

    def relative(self, origin_index: int = 0) -> "Trajectory":
        """Re-express all poses relative to the pose at ``origin_index``."""
        origin_inv = se3.inverse(self.poses[origin_index])
        poses = np.stack([origin_inv @ T for T in self.poses])
        return Trajectory(poses=poses, timestamps=self.timestamps.copy())


def _timestamps(n_frames: int) -> np.ndarray:
    return np.arange(n_frames, dtype=float) / FRAME_RATE_HZ


def _jitter_pose(T: np.ndarray, rng: np.random.Generator, trans_std: float,
                 rot_std: float) -> np.ndarray:
    """Apply small random hand-held perturbation to a pose."""
    if trans_std <= 0.0 and rot_std <= 0.0:
        return T
    xi = np.concatenate(
        [
            rng.normal(0.0, trans_std, size=3),
            rng.normal(0.0, rot_std, size=3),
        ]
    )
    return T @ se3.se3_exp(xi)


def orbit(
    center,
    radius: float,
    height: float,
    n_frames: int,
    sweep_deg: float = 120.0,
    start_deg: float = 0.0,
    bob_amplitude: float = 0.05,
    jitter_trans_std: float = 0.0,
    jitter_rot_std: float = 0.0,
    seed: int = 0,
) -> Trajectory:
    """Orbit around ``center`` at ``radius``, always looking at the centre.

    ``sweep_deg`` controls how much of the circle is traversed; a gentle
    vertical bob and optional jitter make it hand-held-like.
    """
    if n_frames < 2:
        raise GeometryError(f"need at least 2 frames, got {n_frames}")
    if radius <= 0:
        raise GeometryError("orbit radius must be positive")
    center = np.asarray(center, dtype=float).reshape(3)
    rng = np.random.default_rng(seed)
    angles = np.radians(start_deg) + np.radians(sweep_deg) * _smoothstep(
        np.linspace(0.0, 1.0, n_frames)
    )
    bob_hz = 0.25  # slow hand-held vertical sway, independent of length
    poses = []
    for i, a in enumerate(angles):
        bob = bob_amplitude * np.sin(2.0 * np.pi * bob_hz * i / FRAME_RATE_HZ)
        eye = center + np.array([radius * np.cos(a), height - center[1] + bob,
                                 radius * np.sin(a)])
        T = se3.look_at(eye, center, up=(0.0, 1.0, 0.0))
        poses.append(_jitter_pose(T, rng, jitter_trans_std, jitter_rot_std))
    return Trajectory(poses=np.stack(poses), timestamps=_timestamps(n_frames))


def sweep(
    start,
    end,
    target,
    n_frames: int,
    jitter_trans_std: float = 0.0,
    jitter_rot_std: float = 0.0,
    seed: int = 0,
) -> Trajectory:
    """Translate from ``start`` to ``end`` while looking at a fixed ``target``."""
    if n_frames < 2:
        raise GeometryError(f"need at least 2 frames, got {n_frames}")
    start = np.asarray(start, dtype=float).reshape(3)
    end = np.asarray(end, dtype=float).reshape(3)
    target = np.asarray(target, dtype=float).reshape(3)
    rng = np.random.default_rng(seed)
    alphas = _smoothstep(np.linspace(0.0, 1.0, n_frames))
    poses = []
    for a in alphas:
        eye = (1.0 - a) * start + a * end
        T = se3.look_at(eye, target, up=(0.0, 1.0, 0.0))
        poses.append(_jitter_pose(T, rng, jitter_trans_std, jitter_rot_std))
    return Trajectory(poses=np.stack(poses), timestamps=_timestamps(n_frames))


def stationary(pose: np.ndarray, n_frames: int,
               jitter_trans_std: float = 0.0,
               jitter_rot_std: float = 0.0,
               seed: int = 0) -> Trajectory:
    """Hold (approximately) one pose — useful for noise-only experiments."""
    if n_frames < 1:
        raise GeometryError("need at least 1 frame")
    rng = np.random.default_rng(seed)
    poses = np.stack(
        [_jitter_pose(np.asarray(pose, float), rng, jitter_trans_std, jitter_rot_std)
         for _ in range(n_frames)]
    )
    return Trajectory(poses=poses, timestamps=_timestamps(n_frames))


def random_walk(
    start,
    target,
    n_frames: int,
    step_std: float = 0.004,
    momentum: float = 0.9,
    bounds: tuple[float, float] = (-2.2, 2.2),
    height_range: tuple[float, float] = (0.6, 2.0),
    seed: int = 0,
) -> Trajectory:
    """A wandering hand-held trajectory (smoothed random walk).

    Velocity follows an AR(1) process (``momentum`` keeps it smooth), the
    position is clamped to the room ``bounds`` horizontally and
    ``height_range`` vertically, and the camera keeps looking at
    ``target``.  Used by robustness tests: unlike the scripted presets it
    revisits viewpoints and changes direction unpredictably.
    """
    if n_frames < 2:
        raise GeometryError(f"need at least 2 frames, got {n_frames}")
    if not 0.0 <= momentum < 1.0:
        raise GeometryError("momentum must be in [0, 1)")
    rng = np.random.default_rng(seed)
    target = np.asarray(target, dtype=float).reshape(3)
    position = np.asarray(start, dtype=float).reshape(3).copy()
    velocity = np.zeros(3)
    poses = []
    for _ in range(n_frames):
        velocity = momentum * velocity + rng.normal(0.0, step_std, 3)
        position = position + velocity
        position[0] = np.clip(position[0], bounds[0], bounds[1])
        position[2] = np.clip(position[2], bounds[0], bounds[1])
        position[1] = np.clip(position[1], height_range[0], height_range[1])
        if np.linalg.norm(position - target) < 0.3:
            # Do not walk into the look-at point: push back outward.
            velocity = -velocity
            position = position + 2.0 * velocity
        poses.append(se3.look_at(position, target, up=(0.0, 1.0, 0.0)))
    return Trajectory(poses=np.stack(poses), timestamps=_timestamps(n_frames))


def _smoothstep(t: np.ndarray) -> np.ndarray:
    """Cubic ease-in/ease-out — zero velocity at both endpoints."""
    return t * t * (3.0 - 2.0 * t)
