"""A corridor scene — geometrically degenerate, hostile to ICP.

Long parallel walls constrain only one translational direction: walking
*along* a featureless corridor gives point-to-plane ICP a null space and
the tracker slides (the classic dense-SLAM failure mode).  The scene
ships in two variants: ``corridor(bare=True)`` keeps the walls empty;
the default adds sparse wall fixtures (door frames, a pipe) that restore
just enough constraint.  Robustness tests use the pair to demonstrate —
and bound — the failure mode.
"""

from __future__ import annotations

from .living_room import SceneDescription
from .primitives import Box, Cylinder, Negation, Union

#: Corridor extent: x is the long axis.
LENGTH = 6.0
WIDTH = 1.6
HEIGHT = 2.2


def corridor(bare: bool = False) -> SceneDescription:
    """Build the corridor scene.

    Args:
        bare: leave the walls featureless (maximally degenerate).
    """
    interior = Negation(
        Box(
            center=(0.0, HEIGHT / 2.0, 0.0),
            half=(LENGTH / 2.0, HEIGHT / 2.0, WIDTH / 2.0),
            albedo=(0.75, 0.75, 0.7),
        )
    )
    parts = [interior]
    if not bare:
        # Sparse fixtures along one wall: two door frames and a pipe.
        parts.extend(
            [
                Box(center=(-1.5, 1.0, -WIDTH / 2 + 0.05),
                    half=(0.06, 1.0, 0.05), albedo=(0.4, 0.25, 0.15)),
                Box(center=(-0.7, 1.0, -WIDTH / 2 + 0.05),
                    half=(0.06, 1.0, 0.05), albedo=(0.4, 0.25, 0.15)),
                Box(center=(1.2, 1.0, WIDTH / 2 - 0.05),
                    half=(0.06, 1.0, 0.05), albedo=(0.35, 0.3, 0.2)),
                Cylinder(center=(0.4, 1.1, -WIDTH / 2 + 0.08), radius=0.05,
                         half_height=1.1, albedo=(0.5, 0.5, 0.55)),
                Box(center=(2.2, 0.25, 0.3), half=(0.25, 0.25, 0.2),
                    albedo=(0.6, 0.45, 0.3)),
            ]
        )
    name = "corridor_bare" if bare else "corridor"
    return SceneDescription(
        sdf=Union(parts), name=name, extent=LENGTH / 2.0,
        center=(0.0, 1.2, 0.0),
    )
