"""A TUM-RGB-D-style synthetic office scene.

The TUM RGB-D benchmark's ``fr1`` sequences were captured in an office; we
provide a procedural equivalent (desks, monitor slab, cabinet, chair) so the
cross-dataset experiments exercise the pipeline on a second environment with
different geometry statistics (more clutter, closer surfaces).
"""

from __future__ import annotations

from .living_room import SceneDescription
from .primitives import Box, Cylinder, Negation, Sphere, Union

ROOM_HALF = 2.0
ROOM_HEIGHT = 2.2


def office() -> SceneDescription:
    """Build the office scene used by the ``of_*`` sequences."""
    room_interior = Negation(
        Box(
            center=(0.0, ROOM_HEIGHT / 2.0, 0.0),
            half=(ROOM_HALF, ROOM_HEIGHT / 2.0, ROOM_HALF),
            albedo=(0.7, 0.72, 0.75),
        )
    )
    desk_top = Box(
        center=(-1.2, 0.72, -1.0), half=(0.7, 0.03, 0.45), albedo=(0.5, 0.35, 0.2)
    )
    desk_leg_a = Box(
        center=(-1.8, 0.36, -1.0), half=(0.03, 0.36, 0.4), albedo=(0.4, 0.3, 0.2)
    )
    desk_leg_b = Box(
        center=(-0.62, 0.36, -1.0), half=(0.03, 0.36, 0.4), albedo=(0.4, 0.3, 0.2)
    )
    monitor = Box(
        center=(-1.2, 1.05, -1.25), half=(0.28, 0.18, 0.03), albedo=(0.08, 0.08, 0.1)
    )
    cabinet = Box(
        center=(1.5, 0.6, -1.5), half=(0.4, 0.6, 0.35), albedo=(0.6, 0.6, 0.62)
    )
    chair_seat = Box(
        center=(-1.1, 0.45, -0.2), half=(0.22, 0.03, 0.22), albedo=(0.15, 0.15, 0.35)
    )
    chair_pole = Cylinder(
        center=(-1.1, 0.22, -0.2), radius=0.04, half_height=0.22, albedo=(0.2, 0.2, 0.2)
    )
    globe = Sphere(center=(1.5, 1.35, -1.5), radius=0.15, albedo=(0.2, 0.45, 0.7))
    box_on_floor = Box(
        center=(0.8, 0.2, 1.2), half=(0.3, 0.2, 0.25), albedo=(0.65, 0.5, 0.3)
    )

    sdf = Union(
        [
            room_interior,
            desk_top,
            desk_leg_a,
            desk_leg_b,
            monitor,
            cabinet,
            chair_seat,
            chair_pole,
            globe,
            box_on_floor,
        ]
    )
    return SceneDescription(
        sdf=sdf, name="office", extent=ROOM_HALF, center=(0.2, 1.1, 0.2)
    )
