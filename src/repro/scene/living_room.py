"""An ICL-NUIM-style synthetic living room.

The ICL-NUIM benchmark renders trajectories through a single furnished living
room model; SLAMBench's four standard sequences (``lr_kt0`` .. ``lr_kt3``)
all use it.  We rebuild the room procedurally: a box interior with a sofa,
table, lamp and shelf, each an SDF primitive with its own albedo.  The exact
furniture layout does not need to match the original model — what matters
for the benchmark is a closed indoor scene with large planar regions (easy
for ICP) plus compact objects (structure that anchors tracking).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .primitives import Box, Cylinder, Negation, SDFNode, Sphere, Union


@dataclass(frozen=True)
class SceneDescription:
    """A ground-truth scene: geometry plus metadata used by datasets.

    Attributes:
        sdf: the scene's signed distance field (world frame, metres).
        name: short identifier (used in dataset names and reports).
        extent: axis-aligned bounding box half-extent hint in metres; the
            synthetic trajectories and the TSDF volume placement use it.
        center: approximate centre of the navigable space.
    """

    sdf: SDFNode
    name: str
    extent: float
    center: tuple[float, float, float]

    def distance(self, points: np.ndarray) -> np.ndarray:
        return self.sdf.distance(points)

    def normal(self, points: np.ndarray) -> np.ndarray:
        return self.sdf.normal(points)

    def albedo(self, points: np.ndarray) -> np.ndarray:
        if isinstance(self.sdf, Union):
            return self.sdf.albedo_at(points)
        base = np.asarray(self.sdf.albedo, dtype=float)
        return np.broadcast_to(base, (len(points), 3)).copy()


# Room coordinates: world is y-up, the floor is y = 0, the room spans
# x, z in [-2.4, 2.4] and y in [0, 2.4] — matching SLAMBench's default
# 4.8 m volume size.
ROOM_HALF = 2.4
ROOM_HEIGHT = 2.4


def living_room() -> SceneDescription:
    """Build the living-room scene used by the ``lr_*`` sequences."""
    room_interior = Negation(
        Box(
            center=(0.0, ROOM_HEIGHT / 2.0, 0.0),
            half=(ROOM_HALF, ROOM_HEIGHT / 2.0, ROOM_HALF),
            albedo=(0.85, 0.82, 0.75),
        )
    )
    sofa_seat = Box(
        center=(-1.5, 0.25, 0.2), half=(0.45, 0.25, 0.9), albedo=(0.55, 0.15, 0.15)
    )
    sofa_back = Box(
        center=(-1.85, 0.65, 0.2), half=(0.12, 0.45, 0.9), albedo=(0.55, 0.15, 0.15)
    )
    table_top = Box(
        center=(0.3, 0.42, -0.2), half=(0.5, 0.04, 0.35), albedo=(0.45, 0.3, 0.12)
    )
    table_leg = Cylinder(
        center=(0.3, 0.2, -0.2), radius=0.06, half_height=0.2, albedo=(0.35, 0.22, 0.1)
    )
    lamp_pole = Cylinder(
        center=(1.7, 0.7, 1.6), radius=0.04, half_height=0.7, albedo=(0.2, 0.2, 0.2)
    )
    lamp_shade = Sphere(center=(1.7, 1.5, 1.6), radius=0.22, albedo=(0.9, 0.85, 0.6))
    shelf = Box(
        center=(1.9, 0.9, -1.8), half=(0.35, 0.9, 0.25), albedo=(0.3, 0.25, 0.2)
    )
    ball = Sphere(center=(0.9, 0.18, 0.9), radius=0.18, albedo=(0.15, 0.35, 0.6))
    rug = Box(
        center=(0.0, 0.006, 0.3), half=(1.0, 0.006, 0.8), albedo=(0.25, 0.4, 0.3)
    )

    sdf = Union(
        [
            room_interior,
            sofa_seat,
            sofa_back,
            table_top,
            table_leg,
            lamp_pole,
            lamp_shade,
            shelf,
            ball,
            rug,
        ]
    )
    return SceneDescription(
        sdf=sdf, name="living_room", extent=ROOM_HALF, center=(0.0, 1.2, 0.0)
    )
