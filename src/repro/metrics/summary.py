"""Scalar statistics helpers shared by reports and benches."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-style summary of a scalar series."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    @classmethod
    def of(cls, values) -> "SeriesSummary":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise DatasetError("cannot summarise an empty series")
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std()),
            minimum=float(arr.min()),
            median=float(np.median(arr)),
            p95=float(np.percentile(arr, 95.0)),
            maximum=float(arr.max()),
        )


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` with guarding against divide-by-zero."""
    if improved <= 0:
        raise DatasetError(f"improved value must be positive, got {improved}")
    return baseline / improved


def geometric_mean(values) -> float:
    """Geometric mean of positive values (standard for speed-up suites)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise DatasetError("cannot take the geometric mean of nothing")
    if np.any(arr <= 0):
        raise DatasetError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
