"""Relative Pose Error (RPE).

The drift metric of the TUM RGB-D tools: for a fixed frame interval
``delta``, compare the estimated relative motion over the interval with
the ground-truth relative motion.  Reported as translational (m) and
rotational (rad) error statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.groundtruth import associate
from ..errors import DatasetError
from ..geometry import se3
from ..scene.trajectory import Trajectory


@dataclass(frozen=True)
class RPEResult:
    """Relative pose error over a fixed frame interval."""

    delta: int
    trans_rmse: float
    trans_mean: float
    trans_max: float
    rot_rmse: float
    rot_mean: float
    rot_max: float
    pairs: int


def relative_pose_error(
    estimated: Trajectory,
    reference: Trajectory,
    delta: int = 1,
    max_dt: float = 0.02,
) -> RPEResult:
    """Compute the RPE at frame interval ``delta``."""
    if delta < 1:
        raise DatasetError(f"RPE delta must be >= 1, got {delta}")
    est_idx, ref_idx = associate(estimated, reference, max_dt=max_dt)
    if len(est_idx) < delta + 1:
        raise DatasetError(
            f"only {len(est_idx)} associated poses; need > delta={delta}"
        )

    trans_errors, rot_errors = [], []
    for k in range(len(est_idx) - delta):
        i0, i1 = est_idx[k], est_idx[k + delta]
        j0, j1 = ref_idx[k], ref_idx[k + delta]
        rel_est = se3.inverse(estimated.poses[i0]) @ estimated.poses[i1]
        rel_ref = se3.inverse(reference.poses[j0]) @ reference.poses[j1]
        err = se3.inverse(rel_ref) @ rel_est
        trans_errors.append(np.linalg.norm(err[:3, 3]))
        rot_errors.append(se3.rotation_angle(err[:3, :3]))

    t = np.asarray(trans_errors)
    r = np.asarray(rot_errors)
    return RPEResult(
        delta=delta,
        trans_rmse=float(np.sqrt(np.mean(t**2))),
        trans_mean=float(t.mean()),
        trans_max=float(t.max()),
        rot_rmse=float(np.sqrt(np.mean(r**2))),
        rot_mean=float(r.mean()),
        rot_max=float(r.max()),
        pairs=int(len(t)),
    )
