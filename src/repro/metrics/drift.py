"""Drift metrics: error normalised by distance travelled.

ATE depends on sequence length; odometry papers therefore also report
*drift* — translational error per metre travelled — which lets sequences
of different lengths be compared.  SLAMBench's successor versions report
it too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.groundtruth import associate
from ..errors import DatasetError
from ..geometry import se3
from ..scene.trajectory import Trajectory


@dataclass(frozen=True)
class DriftResult:
    """End-point and mean drift, as fractions of distance travelled."""

    path_length_m: float
    endpoint_error_m: float
    endpoint_drift: float  # endpoint error / path length
    mean_drift: float  # mean per-frame error / distance travelled so far

    @property
    def endpoint_drift_percent(self) -> float:
        return 100.0 * self.endpoint_drift


def trajectory_drift(
    estimated: Trajectory,
    reference: Trajectory,
    max_dt: float = 0.02,
    min_path_m: float = 0.01,
) -> DriftResult:
    """Drift of an estimated trajectory against the reference.

    Both trajectories are rebased to their first matched pose (removing
    the arbitrary start offset, without the Horn alignment that would hide
    accumulated rotation drift).
    """
    est_idx, ref_idx = associate(estimated, reference, max_dt=max_dt)
    if len(est_idx) < 2:
        raise DatasetError("need >= 2 associated poses for drift")

    est0 = se3.inverse(estimated.poses[est_idx[0]])
    ref0 = se3.inverse(reference.poses[ref_idx[0]])
    p_est = np.stack(
        [(est0 @ estimated.poses[i])[:3, 3] for i in est_idx]
    )
    p_ref = np.stack(
        [(ref0 @ reference.poses[j])[:3, 3] for j in ref_idx]
    )

    seg = np.linalg.norm(np.diff(p_ref, axis=0), axis=-1)
    cumulative = np.concatenate([[0.0], np.cumsum(seg)])
    path_length = float(cumulative[-1])
    if path_length < min_path_m:
        raise DatasetError(
            f"reference path too short ({path_length:.4f} m) for drift"
        )

    errors = np.linalg.norm(p_est - p_ref, axis=-1)
    endpoint_error = float(errors[-1])

    # Mean drift: per-frame error over distance travelled so far (skip the
    # start where the denominator is ~0).
    mask = cumulative > min_path_m
    mean_drift = (
        float(np.mean(errors[mask] / cumulative[mask])) if mask.any() else 0.0
    )
    return DriftResult(
        path_length_m=path_length,
        endpoint_error_m=endpoint_error,
        endpoint_drift=endpoint_error / path_length,
        mean_drift=mean_drift,
    )
