"""Trajectory alignment (Horn/Umeyama) for ATE computation.

The TUM RGB-D evaluation aligns the estimated trajectory to the ground
truth with the closed-form least-squares rigid transform before measuring
residuals; SLAMBench inherits that convention.  :func:`umeyama` implements
the SVD-based solution (rotation + translation, optional scale).
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError


def umeyama(
    source: np.ndarray, target: np.ndarray, with_scale: bool = False
) -> tuple[np.ndarray, float]:
    """Least-squares rigid alignment mapping ``source`` onto ``target``.

    Args:
        source, target: ``(N, 3)`` corresponding points, N >= 3.
        with_scale: also estimate a similarity scale.

    Returns:
        ``(T, scale)`` where ``T`` is a 4x4 rigid transform and ``scale``
        the similarity factor (1.0 when ``with_scale`` is False), such that
        ``scale * R @ source + t ~= target``.
    """
    src = np.asarray(source, dtype=float)
    dst = np.asarray(target, dtype=float)
    if src.shape != dst.shape or src.ndim != 2 or src.shape[1] != 3:
        raise GeometryError(
            f"umeyama needs matching (N,3) arrays, got {src.shape}, {dst.shape}"
        )
    n = src.shape[0]
    if n < 3:
        raise GeometryError(f"umeyama needs >= 3 points, got {n}")

    mu_src = src.mean(axis=0)
    mu_dst = dst.mean(axis=0)
    src_c = src - mu_src
    dst_c = dst - mu_dst

    cov = dst_c.T @ src_c / n
    U, D, Vt = np.linalg.svd(cov)
    S = np.eye(3)
    if np.linalg.det(U) * np.linalg.det(Vt) < 0:
        S[2, 2] = -1.0
    R = U @ S @ Vt

    if with_scale:
        var_src = (src_c**2).sum() / n
        if var_src < 1e-12:
            raise GeometryError("umeyama: degenerate source point set")
        scale = float(np.trace(np.diag(D) @ S) / var_src)
    else:
        scale = 1.0

    t = mu_dst - scale * R @ mu_src
    T = np.eye(4)
    T[:3, :3] = R
    T[:3, 3] = t
    return T, scale


def align_trajectories(
    estimated_positions: np.ndarray, reference_positions: np.ndarray
) -> np.ndarray:
    """Aligned copy of ``estimated_positions`` (rigid, no scale)."""
    T, _ = umeyama(estimated_positions, reference_positions)
    return estimated_positions @ T[:3, :3].T + T[:3, 3]
