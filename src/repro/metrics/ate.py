"""Absolute Trajectory Error (ATE).

The paper's accuracy metric: after aligning the estimated trajectory to
the ground truth, the ATE is the per-frame Euclidean distance between
corresponding camera centres.  SLAMBench reports the maximum (the "Max
ATE" axis of Figure 2, with the 5 cm accuracy limit) as well as the mean
and RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.groundtruth import associate
from ..errors import DatasetError
from ..scene.trajectory import Trajectory
from .alignment import align_trajectories


@dataclass(frozen=True)
class ATEResult:
    """Summary of the absolute trajectory error, all in metres."""

    max: float
    mean: float
    median: float
    rmse: float
    per_frame: np.ndarray
    matched_frames: int

    def passes(self, limit_m: float = 0.05) -> bool:
        """Whether the run meets an accuracy limit on Max ATE."""
        return self.max < limit_m


def absolute_trajectory_error(
    estimated: Trajectory,
    reference: Trajectory,
    align: bool = True,
    max_dt: float = 0.02,
) -> ATEResult:
    """Compute the ATE between an estimated and a reference trajectory.

    Trajectories are associated by timestamp; with ``align`` (the TUM/
    SLAMBench convention) a rigid Horn alignment removes the arbitrary
    start-frame offset before residuals are measured.
    """
    est_idx, ref_idx = associate(estimated, reference, max_dt=max_dt)
    if len(est_idx) < 3:
        raise DatasetError(
            f"only {len(est_idx)} associated poses; cannot compute ATE"
        )
    p_est = estimated.positions[est_idx]
    p_ref = reference.positions[ref_idx]
    if align:
        p_est = align_trajectories(p_est, p_ref)
    errors = np.linalg.norm(p_est - p_ref, axis=-1)
    return ATEResult(
        max=float(errors.max()),
        mean=float(errors.mean()),
        median=float(np.median(errors)),
        rmse=float(np.sqrt(np.mean(errors**2))),
        per_frame=errors,
        matched_frames=int(len(errors)),
    )
