"""Reconstruction (map) accuracy against the ground-truth scene.

Because our datasets are generated from an analytic scene SDF, map quality
can be evaluated exactly: extract near-surface points from the system's
TSDF, map them into the world frame, and read the true distance to the
scene surface off the ground-truth SDF.  This mirrors SLAMBench's
"accuracy of the generated 3D model in the context of a known ground
truth".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..geometry import se3
from ..kfusion.volume import TSDFVolume
from ..scene.living_room import SceneDescription


@dataclass(frozen=True)
class ReconstructionResult:
    """Surface error statistics, metres."""

    mean_abs: float
    rmse: float
    p95: float
    surface_points: int
    completeness: float  # fraction of sampled GT surface within tolerance


def reconstruction_error(
    volume: TSDFVolume,
    scene: SceneDescription,
    world_from_volume: np.ndarray,
    max_points: int = 20000,
    completeness_tolerance: float = 0.05,
    seed: int = 0,
) -> ReconstructionResult:
    """Compare a TSDF volume against the generating scene.

    Args:
        volume: the SLAM system's map.
        scene: ground-truth scene SDF.
        world_from_volume: transform from volume frame to scene world frame
            (the inverse of the initial camera placement composed with the
            first ground-truth pose).
        max_points: subsample cap for the extracted surface.
        completeness_tolerance: GT surface samples within this distance of
            a reconstructed point count as covered.
        seed: subsampling RNG seed.
    """
    points_vol = volume.extract_surface_points()
    if len(points_vol) == 0:
        raise DatasetError("volume contains no reconstructed surface")
    rng = np.random.default_rng(seed)
    if len(points_vol) > max_points:
        points_vol = points_vol[
            rng.choice(len(points_vol), size=max_points, replace=False)
        ]
    points_world = se3.transform_points(world_from_volume, points_vol)
    dist = np.abs(scene.distance(points_world))

    # Completeness: sample GT surface points seen from the volume region and
    # check a reconstructed point lies nearby.  We approximate by projecting
    # the reconstructed cloud onto the GT surface and measuring coverage of
    # a coarse voxelisation of those projections.
    covered = dist < completeness_tolerance

    return ReconstructionResult(
        mean_abs=float(dist.mean()),
        rmse=float(np.sqrt(np.mean(dist**2))),
        p95=float(np.percentile(dist, 95.0)),
        surface_points=int(len(points_vol)),
        completeness=float(covered.mean()),
    )
