"""Accuracy metrics: trajectory error, drift, and map quality."""

from .alignment import align_trajectories, umeyama
from .ate import ATEResult, absolute_trajectory_error
from .drift import DriftResult, trajectory_drift
from .reconstruction import ReconstructionResult, reconstruction_error
from .rpe import RPEResult, relative_pose_error
from .summary import SeriesSummary, geometric_mean, speedup

__all__ = [
    "align_trajectories",
    "umeyama",
    "DriftResult",
    "trajectory_drift",
    "ATEResult",
    "absolute_trajectory_error",
    "ReconstructionResult",
    "reconstruction_error",
    "RPEResult",
    "relative_pose_error",
    "SeriesSummary",
    "geometric_mean",
    "speedup",
]
