"""Vertex/normal map helpers shared by the renderer and the SLAM kernels.

A *vertex map* is an ``(H, W, 3)`` array of camera- or world-frame points,
with all-zero rows marking invalid pixels; a *normal map* has the same layout
with unit normals.  These are exactly the intermediate buffers KinectFusion's
``depth2vertex`` / ``vertex2normal`` kernels produce.
"""

from __future__ import annotations

import numpy as np


def valid_mask(vertex_map: np.ndarray) -> np.ndarray:
    """Boolean ``(H, W)`` mask of pixels with a valid (non-zero) vertex."""
    v = np.asarray(vertex_map, dtype=float)
    return np.any(v != 0.0, axis=-1) & np.all(np.isfinite(v), axis=-1)


def normals_from_vertices(vertex_map: np.ndarray) -> np.ndarray:
    """Estimate per-pixel normals by central differences on the vertex map.

    This mirrors KinectFusion's ``vertex2normal`` kernel: the normal at a
    pixel is the normalised cross product of the horizontal and vertical
    neighbour differences.  Pixels whose neighbourhood contains invalid
    vertices get a zero normal.
    """
    v = np.asarray(vertex_map, dtype=float)
    h, w = v.shape[:2]
    normals = np.zeros_like(v)
    if h < 3 or w < 3:
        return normals

    mask = valid_mask(v)
    right = v[1:-1, 2:]
    left = v[1:-1, :-2]
    down = v[2:, 1:-1]
    up = v[:-2, 1:-1]
    dx = right - left
    dy = down - up
    n = np.cross(dy, dx)
    norm = np.linalg.norm(n, axis=-1)

    ok = (
        mask[1:-1, 2:]
        & mask[1:-1, :-2]
        & mask[2:, 1:-1]
        & mask[:-2, 1:-1]
        & mask[1:-1, 1:-1]
        & (norm > 1e-12)
    )
    safe = np.where(norm > 1e-12, norm, 1.0)
    n = n / safe[..., None]

    # Orient normals towards the camera (camera looks along +z, so normals of
    # visible surfaces should have negative z in the camera frame).
    flip = n[..., 2] > 0.0
    n[flip] = -n[flip]

    inner = np.zeros((h - 2, w - 2, 3))
    inner[ok] = n[ok]
    normals[1:-1, 1:-1] = inner
    return normals


def downsample_vertex_map(vertex_map: np.ndarray, factor: int = 2) -> np.ndarray:
    """Subsample a vertex map by taking every ``factor``-th pixel."""
    v = np.asarray(vertex_map, dtype=float)
    return v[::factor, ::factor].copy()


def flatten_valid(vertex_map: np.ndarray) -> np.ndarray:
    """Return the valid vertices as an ``(N, 3)`` array."""
    v = np.asarray(vertex_map, dtype=float)
    return v[valid_mask(v)]


def centroid(points: np.ndarray) -> np.ndarray:
    """Mean of an ``(N, 3)`` point set (zeros if empty)."""
    points = np.asarray(points, dtype=float)
    if points.size == 0:
        return np.zeros(3)
    return points.mean(axis=0)
