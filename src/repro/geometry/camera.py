"""Pinhole camera model and intrinsics pyramids.

The :class:`PinholeCamera` mirrors the camera description SLAMBench carries
around (fx, fy, cx, cy plus image size).  KinectFusion processes frames at a
sequence of resolutions (the *compute-size ratio* downsample followed by the
ICP pyramid); :meth:`PinholeCamera.scaled` produces the intrinsics for each.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.contracts import contract
from ..errors import GeometryError


@dataclass(frozen=True)
class PinholeCamera:
    """An ideal pinhole camera.

    Attributes:
        width: image width in pixels.
        height: image height in pixels.
        fx, fy: focal lengths in pixels.
        cx, cy: principal point in pixels.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float

    def __post_init__(self):
        if self.width <= 0 or self.height <= 0:
            raise GeometryError(
                f"camera size must be positive, got {self.width}x{self.height}"
            )
        if self.fx <= 0 or self.fy <= 0:
            raise GeometryError("focal lengths must be positive")

    @classmethod
    def from_fov(cls, width: int, height: int, fov_x_deg: float) -> "PinholeCamera":
        """Build a camera from a horizontal field of view in degrees."""
        if not 0.0 < fov_x_deg < 180.0:
            raise GeometryError(f"fov must be in (0, 180), got {fov_x_deg}")
        fx = (width / 2.0) / np.tan(np.radians(fov_x_deg) / 2.0)
        return cls(
            width=width,
            height=height,
            fx=float(fx),
            fy=float(fx),
            cx=(width - 1) / 2.0,
            cy=(height - 1) / 2.0,
        )

    @classmethod
    def kinect_like(cls, width: int = 320, height: int = 240) -> "PinholeCamera":
        """Kinect-v1 intrinsics scaled to the requested resolution.

        The reference values are SLAMBench's 640x480 Kinect calibration
        (fx=fy=481.2 scaled by aspect, cx=319.5, cy=239.5).
        """
        sx = width / 640.0
        sy = height / 480.0
        return cls(
            width=width,
            height=height,
            fx=531.15 * sx,
            fy=531.15 * sy,
            cx=(width - 1) / 2.0,
            cy=(height - 1) / 2.0,
        )

    @property
    def matrix(self) -> np.ndarray:
        """3x3 intrinsic matrix K."""
        return np.array(
            [
                [self.fx, 0.0, self.cx],
                [0.0, self.fy, self.cy],
                [0.0, 0.0, 1.0],
            ]
        )

    @property
    def shape(self) -> tuple[int, int]:
        """Image shape as ``(height, width)``, NumPy order."""
        return (self.height, self.width)

    @property
    def pixel_count(self) -> int:
        return self.width * self.height

    def scaled(self, factor: int) -> "PinholeCamera":
        """Intrinsics for an image downsampled by an integer ``factor``."""
        if factor < 1:
            raise GeometryError(f"scale factor must be >= 1, got {factor}")
        if self.width % factor or self.height % factor:
            raise GeometryError(
                f"{self.width}x{self.height} not divisible by factor {factor}"
            )
        return PinholeCamera(
            width=self.width // factor,
            height=self.height // factor,
            fx=self.fx / factor,
            fy=self.fy / factor,
            cx=self.cx / factor,
            cy=self.cy / factor,
        )

    def pixel_rays(self) -> np.ndarray:
        """Unit-z ray directions for every pixel, shape ``(H, W, 3)``.

        Rays are in the camera frame with z=1; multiply by depth to get the
        camera-frame vertex for each pixel.

        The ray grid depends only on the (frozen) intrinsics, so it is
        computed once per camera instance and cached; the returned array
        is marked read-only — copy before mutating.
        """
        cached = self.__dict__.get("_pixel_rays")
        if cached is not None:
            return cached
        u = np.arange(self.width, dtype=float)
        v = np.arange(self.height, dtype=float)
        uu, vv = np.meshgrid(u, v)
        x = (uu - self.cx) / self.fx
        y = (vv - self.cy) / self.fy
        rays = np.stack([x, y, np.ones_like(x)], axis=-1)
        rays.flags.writeable = False
        object.__setattr__(self, "_pixel_rays", rays)
        return rays

    @contract(depth="H,W:f64")
    def backproject(self, depth: np.ndarray) -> np.ndarray:
        """Depth map ``(H, W)`` to camera-frame vertex map ``(H, W, 3)``.

        Invalid depths (``<= 0`` or non-finite) produce zero vertices, the
        convention the KinectFusion kernels use downstream.
        """
        depth = np.asarray(depth, dtype=float)
        if depth.shape != self.shape:
            raise GeometryError(
                f"depth shape {depth.shape} does not match camera {self.shape}"
            )
        rays = self.pixel_rays()
        valid = np.isfinite(depth) & (depth > 0.0)
        d = np.where(valid, depth, 0.0)
        return rays * d[..., None]

    @contract(points="...,3:f64")
    def project(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project camera-frame points ``(..., 3)`` to pixels.

        Returns:
            ``(pixels, valid)`` where ``pixels`` is ``(..., 2)`` (u, v) and
            ``valid`` marks points in front of the camera that land inside
            the image.
        """
        points = np.asarray(points, dtype=float)
        z = points[..., 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            u = self.fx * points[..., 0] / z + self.cx
            v = self.fy * points[..., 1] / z + self.cy
        eps = 1e-6  # tolerate round-off at the image border
        valid = (
            (z > 1e-9)
            & np.isfinite(u)
            & np.isfinite(v)
            & (u >= -eps)
            & (u <= self.width - 1 + eps)
            & (v >= -eps)
            & (v <= self.height - 1 + eps)
        )
        pixels = np.stack([u, v], axis=-1)
        return pixels, valid
