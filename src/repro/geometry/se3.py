"""Rigid-body transforms: SO(3) and SE(3) utilities.

Poses throughout the library are 4x4 homogeneous matrices (float64) mapping
points from a *local* frame into a *reference* frame, i.e. ``T_world_camera``
maps camera-frame points to world-frame points.  This matches the convention
of KinectFusion and of the TUM RGB-D evaluation tools.

The module provides:

* construction from / conversion to quaternions and axis-angle,
* the exponential and logarithm maps on SO(3) and SE(3),
* pose interpolation (used by the synthetic trajectory generator),
* numerically careful helpers (orthonormalisation, validity checks).

All functions are pure and operate on NumPy arrays.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..errors import GeometryError

_EPS = 1e-12
# Threshold below which the closed-form V / V^-1 coefficients of the SE(3)
# exp/log maps are evaluated by Taylor series instead.  The closed forms
# divide quantities like (1 - cos(theta)) by theta^2, which loses roughly
# eps/theta^2 of precision and underflows to a hard 0/0 once theta drops
# below ~1.5e-8; the series are accurate to O(theta^4) at this cutoff.
_SMALL_ANGLE = 1e-3


def identity() -> np.ndarray:
    """Return the 4x4 identity pose."""
    return np.eye(4)


def is_rotation(R: np.ndarray, tol: float = 1e-6) -> bool:
    """Check that ``R`` is a proper rotation: orthogonal with determinant +1."""
    R = np.asarray(R, dtype=float)
    if R.shape != (3, 3):
        return False
    if not np.allclose(R.T @ R, np.eye(3), atol=tol):
        return False
    return bool(abs(np.linalg.det(R) - 1.0) < tol)


def is_pose(T: np.ndarray, tol: float = 1e-6) -> bool:
    """Check that ``T`` is a valid 4x4 rigid transform."""
    T = np.asarray(T, dtype=float)
    if T.shape != (4, 4):
        return False
    if not np.allclose(T[3], [0.0, 0.0, 0.0, 1.0], atol=tol):
        return False
    return is_rotation(T[:3, :3], tol=tol)


def make_pose(R: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Assemble a 4x4 pose from a 3x3 rotation and a translation 3-vector."""
    R = np.asarray(R, dtype=float)
    t = np.asarray(t, dtype=float).reshape(3)
    if R.shape != (3, 3):
        raise GeometryError(f"rotation must be 3x3, got {R.shape}")
    T = np.eye(4)
    T[:3, :3] = R
    T[:3, 3] = t
    return T


def rotation(T: np.ndarray) -> np.ndarray:
    """Extract the 3x3 rotation block of a pose."""
    return np.asarray(T, dtype=float)[:3, :3]


def translation(T: np.ndarray) -> np.ndarray:
    """Extract the translation 3-vector of a pose."""
    return np.asarray(T, dtype=float)[:3, 3]


@contract(T="4,4:f64")
def inverse(T: np.ndarray) -> np.ndarray:
    """Invert a rigid transform without a general matrix inverse."""
    T = np.asarray(T, dtype=float)
    R = T[:3, :3]
    t = T[:3, 3]
    Ti = np.eye(4)
    Ti[:3, :3] = R.T
    Ti[:3, 3] = -R.T @ t
    return Ti


@contract(T="4,4:f64", points="...,3:f64")
def transform_points(T: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a rigid transform to an ``(..., 3)`` array of points."""
    T = np.asarray(T, dtype=float)
    points = np.asarray(points, dtype=float)
    return points @ T[:3, :3].T + T[:3, 3]


@contract(T="4,4:f64", vectors="...,3:f64")
def rotate_vectors(T: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Apply only the rotation of ``T`` to an ``(..., 3)`` array of vectors."""
    T = np.asarray(T, dtype=float)
    vectors = np.asarray(vectors, dtype=float)
    return vectors @ T[:3, :3].T


def hat(w: np.ndarray) -> np.ndarray:
    """Skew-symmetric (cross-product) matrix of a 3-vector."""
    w = np.asarray(w, dtype=float).reshape(3)
    return np.array(
        [
            [0.0, -w[2], w[1]],
            [w[2], 0.0, -w[0]],
            [-w[1], w[0], 0.0],
        ]
    )


def vee(W: np.ndarray) -> np.ndarray:
    """Inverse of :func:`hat`."""
    W = np.asarray(W, dtype=float)
    return np.array([W[2, 1], W[0, 2], W[1, 0]])


def so3_exp(w: np.ndarray) -> np.ndarray:
    """Rodrigues' formula: axis-angle 3-vector to rotation matrix."""
    w = np.asarray(w, dtype=float).reshape(3)
    theta = float(np.linalg.norm(w))
    W = hat(w)
    if theta < _EPS:
        # Second-order Taylor expansion keeps exp/log consistent near zero.
        return np.eye(3) + W + 0.5 * (W @ W)
    A = np.sin(theta) / theta
    B = (1.0 - np.cos(theta)) / (theta * theta)
    return np.eye(3) + A * W + B * (W @ W)


def so3_log(R: np.ndarray) -> np.ndarray:
    """Rotation matrix to axis-angle 3-vector (inverse of :func:`so3_exp`)."""
    R = np.asarray(R, dtype=float)
    cos_theta = np.clip((np.trace(R) - 1.0) / 2.0, -1.0, 1.0)
    theta = float(np.arccos(cos_theta))
    if theta < 1e-10:
        # First-order: R ~ I + hat(w), so w ~ vee(R - R^T) / 2.
        return vee(R - R.T) / 2.0
    if abs(np.pi - theta) < 1e-6:
        # Near pi the standard formula is singular; recover the axis from the
        # diagonal of R + I.
        M = (R + np.eye(3)) / 2.0
        axis = np.sqrt(np.clip(np.diag(M), 0.0, None))
        # Fix signs using the off-diagonal entries.
        if axis[0] >= axis[1] and axis[0] >= axis[2]:
            axis[1] = M[0, 1] / max(axis[0], _EPS)
            axis[2] = M[0, 2] / max(axis[0], _EPS)
        elif axis[1] >= axis[2]:
            axis[0] = M[0, 1] / max(axis[1], _EPS)
            axis[2] = M[1, 2] / max(axis[1], _EPS)
        else:
            axis[0] = M[0, 2] / max(axis[2], _EPS)
            axis[1] = M[1, 2] / max(axis[2], _EPS)
        n = np.linalg.norm(axis)
        if n < _EPS:
            raise GeometryError("cannot recover rotation axis near pi")
        return theta * axis / n
    return theta / (2.0 * np.sin(theta)) * vee(R - R.T)


def se3_exp(xi: np.ndarray) -> np.ndarray:
    """SE(3) exponential: twist ``[v, w]`` (6-vector) to a 4x4 pose.

    The first three components are the translational part ``v``, the last
    three the rotational part ``w``, matching the ordering used by the ICP
    tracker's normal equations.
    """
    xi = np.asarray(xi, dtype=float).reshape(6)
    v, w = xi[:3], xi[3:]
    theta = float(np.linalg.norm(w))
    R = so3_exp(w)
    W = hat(w)
    t2 = theta * theta
    if theta < _SMALL_ANGLE:
        B = 0.5 - t2 / 24.0
        C = 1.0 / 6.0 - t2 / 120.0
    else:
        A = np.sin(theta) / theta
        B = (1.0 - np.cos(theta)) / t2
        C = (1.0 - A) / t2
    V = np.eye(3) + B * W + C * (W @ W)
    return make_pose(R, V @ v)


def se3_log(T: np.ndarray) -> np.ndarray:
    """SE(3) logarithm: 4x4 pose to twist ``[v, w]`` (inverse of se3_exp)."""
    T = np.asarray(T, dtype=float)
    w = so3_log(T[:3, :3])
    theta = float(np.linalg.norm(w))
    W = hat(w)
    t2 = theta * theta
    if theta < _SMALL_ANGLE:
        D = 1.0 / 12.0 + t2 / 720.0
    else:
        A = np.sin(theta) / theta
        B = (1.0 - np.cos(theta)) / t2
        D = (1.0 / t2) * (1.0 - A / (2.0 * B))
    V_inv = np.eye(3) - 0.5 * W + D * (W @ W)
    v = V_inv @ T[:3, 3]
    return np.concatenate([v, w])


def quat_to_rotation(q: np.ndarray) -> np.ndarray:
    """Unit quaternion ``[w, x, y, z]`` to rotation matrix."""
    q = np.asarray(q, dtype=float).reshape(4)
    n = float(np.linalg.norm(q))
    if n < _EPS:
        raise GeometryError("zero-norm quaternion")
    w, x, y, z = q / n
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def rotation_to_quat(R: np.ndarray) -> np.ndarray:
    """Rotation matrix to unit quaternion ``[w, x, y, z]`` with ``w >= 0``."""
    R = np.asarray(R, dtype=float)
    trace = np.trace(R)
    if trace > 0.0:
        s = np.sqrt(trace + 1.0) * 2.0
        q = np.array(
            [
                0.25 * s,
                (R[2, 1] - R[1, 2]) / s,
                (R[0, 2] - R[2, 0]) / s,
                (R[1, 0] - R[0, 1]) / s,
            ]
        )
    else:
        i = int(np.argmax(np.diag(R)))
        j, k = (i + 1) % 3, (i + 2) % 3
        s = np.sqrt(max(1.0 + R[i, i] - R[j, j] - R[k, k], 0.0)) * 2.0
        q = np.empty(4)
        q[0] = (R[k, j] - R[j, k]) / s
        q[1 + i] = 0.25 * s
        q[1 + j] = (R[j, i] + R[i, j]) / s
        q[1 + k] = (R[k, i] + R[i, k]) / s
    if q[0] < 0:
        q = -q
    return q / np.linalg.norm(q)


def quat_slerp(q0: np.ndarray, q1: np.ndarray, alpha: float) -> np.ndarray:
    """Spherical linear interpolation between two unit quaternions."""
    q0 = np.asarray(q0, dtype=float) / np.linalg.norm(q0)
    q1 = np.asarray(q1, dtype=float) / np.linalg.norm(q1)
    dot = float(np.dot(q0, q1))
    if dot < 0.0:
        q1, dot = -q1, -dot
    if dot > 1.0 - 1e-9:
        q = q0 + alpha * (q1 - q0)
        return q / np.linalg.norm(q)
    theta = np.arccos(np.clip(dot, -1.0, 1.0))
    s = np.sin(theta)
    return (np.sin((1.0 - alpha) * theta) * q0 + np.sin(alpha * theta) * q1) / s


def interpolate_pose(T0: np.ndarray, T1: np.ndarray, alpha: float) -> np.ndarray:
    """Interpolate between two poses (slerp rotation, lerp translation)."""
    q = quat_slerp(rotation_to_quat(rotation(T0)), rotation_to_quat(rotation(T1)), alpha)
    t = (1.0 - alpha) * translation(T0) + alpha * translation(T1)
    return make_pose(quat_to_rotation(q), t)


def orthonormalize(R: np.ndarray) -> np.ndarray:
    """Project a near-rotation matrix onto SO(3) via SVD."""
    U, _, Vt = np.linalg.svd(np.asarray(R, dtype=float))
    D = np.eye(3)
    D[2, 2] = np.sign(np.linalg.det(U @ Vt))
    return U @ D @ Vt


def rotation_angle(R: np.ndarray) -> float:
    """Rotation angle in radians of a rotation matrix."""
    cos_theta = np.clip((np.trace(np.asarray(R, dtype=float)) - 1.0) / 2.0, -1.0, 1.0)
    return float(np.arccos(cos_theta))


def pose_distance(T0: np.ndarray, T1: np.ndarray) -> tuple[float, float]:
    """Return ``(translation_error_m, rotation_error_rad)`` between two poses."""
    delta = inverse(np.asarray(T0, dtype=float)) @ np.asarray(T1, dtype=float)
    return float(np.linalg.norm(delta[:3, 3])), rotation_angle(delta[:3, :3])


def look_at(eye: np.ndarray, target: np.ndarray, up=(0.0, -1.0, 0.0)) -> np.ndarray:
    """Build a camera-to-world pose looking from ``eye`` towards ``target``.

    Uses the computer-vision convention: camera +z forward, +x right,
    +y down (hence the default ``up`` of ``-y`` in world coordinates when the
    world is y-up... the default here assumes a y-up world and produces a
    y-down camera frame).
    """
    eye = np.asarray(eye, dtype=float).reshape(3)
    target = np.asarray(target, dtype=float).reshape(3)
    up = np.asarray(up, dtype=float).reshape(3)
    forward = target - eye
    n = np.linalg.norm(forward)
    if n < _EPS:
        raise GeometryError("look_at: eye and target coincide")
    forward = forward / n
    right = np.cross(up, forward)
    rn = np.linalg.norm(right)
    if rn < _EPS:
        # Forward is parallel to up; pick an arbitrary perpendicular.
        alt = np.array([1.0, 0.0, 0.0])
        if abs(forward[0]) > 0.9:
            alt = np.array([0.0, 0.0, 1.0])
        right = np.cross(alt, forward)
        rn = np.linalg.norm(right)
    right = right / rn
    down = np.cross(forward, right)
    R = np.column_stack([right, down, forward])
    return make_pose(R, eye)
