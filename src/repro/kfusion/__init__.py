"""KinectFusion: dense RGB-D SLAM (the benchmark's reference algorithm)."""

from .mesh import TriangleMesh, extract_mesh, load_obj
from .params import DEFAULTS, KFusionParams, parameter_specs
from .pipeline import KinectFusion
from .render import ascii_render, depth_to_grayscale, render_volume
from .tracking import ReferenceModel, TrackResult, track
from .volume import TSDFVolume

__all__ = [
    "TriangleMesh",
    "extract_mesh",
    "load_obj",
    "DEFAULTS",
    "KFusionParams",
    "parameter_specs",
    "KinectFusion",
    "ascii_render",
    "depth_to_grayscale",
    "render_volume",
    "ReferenceModel",
    "TrackResult",
    "track",
    "TSDFVolume",
]
