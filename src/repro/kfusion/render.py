"""Volume visualisation (KinectFusion's ``renderVolumeKernel``).

The right panel of the SLAMBench GUI (paper Figure 1) shows the current
TSDF model raycast from the tracked camera with simple diffuse shading.
:func:`render_volume` produces that image; the pipeline publishes it as
the ``model_render`` output when ``render_volume=True`` is configured,
and charges the corresponding kernel cost (the GUI render is part of
SLAMBench's measured per-frame work when enabled).
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..errors import GeometryError
from ..geometry import PinholeCamera
from .raycast import raycast
from .volume import TSDFVolume


@contract(pose_volume_from_camera="4,4:f64")
def render_volume(
    volume: TSDFVolume,
    camera: PinholeCamera,
    pose_volume_from_camera: np.ndarray,
    mu: float,
    light_dir=(0.3, -0.4, -0.85),
    ambient: float = 0.2,
) -> np.ndarray:
    """Shade the TSDF surface seen from ``pose_volume_from_camera``.

    Returns an ``(H, W)`` float image in [0, 1]; background pixels are 0.
    Shading is Lambertian against a headlight-style directional light
    expressed in the camera frame (so the model reads well regardless of
    the camera's world orientation, as in the reference implementation).
    """
    _, normals = raycast(volume, camera, pose_volume_from_camera, mu)
    flat_n = normals.reshape(-1, 3)
    hit = np.any(flat_n != 0.0, axis=-1)

    light = np.asarray(light_dir, dtype=float)
    norm = np.linalg.norm(light)
    if norm < 1e-12:
        raise GeometryError("light direction must be non-zero")
    light = light / norm

    image = np.zeros(flat_n.shape[0])
    lambert = np.clip(flat_n[hit] @ light, 0.0, 1.0)
    image[hit] = ambient + (1.0 - ambient) * lambert
    return np.clip(image.reshape(camera.shape), 0.0, 1.0)


def depth_to_grayscale(depth: np.ndarray, max_range: float = 6.0) -> np.ndarray:
    """Normalise a depth map to [0, 1] for display (GUI depth panel)."""
    d = np.asarray(depth, dtype=float)
    img = np.clip(d / max_range, 0.0, 1.0)
    img[d <= 0.0] = 0.0
    return img


def ascii_render(image: np.ndarray, width: int = 64) -> str:
    """Tiny ASCII-art rendering of a [0, 1] image (headless GUI).

    Downsamples to ``width`` columns and maps intensity to a character
    ramp — enough to eyeball the reconstructed model in a terminal.
    """
    img = np.asarray(image, dtype=float)
    h, w = img.shape
    step = max(1, w // width)
    small = img[:: 2 * step, ::step]  # terminal cells are ~2x taller
    ramp = " .:-=+*#%@"
    idx = np.clip((small * (len(ramp) - 1)).astype(int), 0, len(ramp) - 1)
    return "\n".join("".join(ramp[i] for i in row) for row in idx)
