"""Analytic per-frame workload model for KinectFusion.

The measured pipeline records its real kernel launches; design-space
exploration and the 83-device crowd study, however, need the workload of a
*hypothetical* configuration without running dense SLAM thousands of times.
This model predicts the kernel launches of one frame directly from the
configuration — using the same cost formulas (``repro.kfusion.kernels``)
the pipeline itself reports, so the simulator sees consistent numbers
either way.  Tests assert the model tracks the measured pipeline's
workloads closely.
"""

from __future__ import annotations

import numpy as np

from ..core.workload import FrameWorkload
from ..errors import ConfigurationError
from . import kernels
from .params import KFusionParams
from .pipeline import PYRAMID_LEVELS


def expected_icp_iterations(params: KFusionParams) -> tuple[int, ...]:
    """Expected ICP iterations per level under early termination.

    The tracker exits a level once the SE(3) update norm drops below
    ``icp_threshold``; a looser threshold exits sooner.  We model the
    executed fraction of the budget as an affine function of the threshold's
    order of magnitude, calibrated against the measured tracker (which at
    the default 1e-5 usually runs its full budget at the coarse levels and
    most of it at the fine level).
    """
    log_t = np.log10(params.icp_threshold)
    # 1e-2 -> ~0.3 of the budget; <=1e-6 -> full budget.
    fraction = float(np.clip((-log_t - 1.0) / 5.0, 0.3, 1.0))
    budgets = params.pyramid_iterations
    return tuple(max(1, int(round(b * fraction))) if b > 0 else 0 for b in budgets)


def pyramid_pixels(width: int, height: int, params: KFusionParams,
                   levels: int = PYRAMID_LEVELS) -> list[int]:
    """Pixels at each pyramid level for a given input resolution."""
    csr = params.compute_size_ratio
    if width % csr or height % csr:
        raise ConfigurationError(
            f"input {width}x{height} not divisible by compute_size_ratio {csr}"
        )
    w, h = width // csr, height // csr
    out = []
    for _ in range(levels):
        out.append(w * h)
        if w % 2 or h % 2 or w < 8 or h < 8:
            break
        w, h = w // 2, h // 2
    return out


def frame_workload(
    params: KFusionParams,
    width: int,
    height: int,
    frame_index: int,
) -> FrameWorkload:
    """Predicted workload of one frame of the pipeline."""
    wl = FrameWorkload(frame_index=frame_index)
    input_pixels = width * height
    levels = pyramid_pixels(width, height, params)
    px = levels[0]

    wl.add(kernels.acquire(input_pixels))
    wl.add(kernels.downsample(input_pixels, px))
    wl.add(kernels.bilateral_filter(px))
    for level, lpx in enumerate(levels):
        if level > 0:
            wl.add(kernels.half_sample(lpx))
        wl.add(kernels.depth_to_vertex(lpx))
        wl.add(kernels.vertex_to_normal(lpx))

    is_first = frame_index == 0
    if not is_first and frame_index % params.tracking_rate == 0:
        iters = expected_icp_iterations(params)
        for level, lpx in enumerate(levels):
            for _ in range(iters[level] if level < len(iters) else 0):
                wl.add(kernels.track_iteration(lpx))
                wl.add(kernels.reduce_iteration(lpx))
                wl.add(kernels.solve())

    if is_first or frame_index % params.integration_rate == 0:
        wl.add(kernels.integrate(params.volume_resolution))

    wl.add(
        kernels.raycast(px, params.volume_size, params.mu_distance,
                        params.voxel_size)
    )
    return wl


def sequence_workloads(
    params: KFusionParams,
    width: int,
    height: int,
    n_frames: int,
) -> list[FrameWorkload]:
    """Predicted workloads for an ``n_frames`` sequence."""
    if n_frames < 1:
        raise ConfigurationError("need at least one frame")
    return [frame_workload(params, width, height, i) for i in range(n_frames)]
