"""KinectFusion as a declarative stage graph.

This module is the graph-pipeline face of :mod:`repro.kfusion.pipeline`:
each of the five phases (preprocess, track, integrate, raycast, render)
is a registered :class:`~repro.graph.StageSpec` whose body runs the
*same* kernel-backend calls, in the same order, with the same workload
accounting as the legacy call sequence — the differential harness
(:mod:`repro.graph.diffrun`) proves the two bit-for-bit equivalent.

Stage bodies read the pipeline's cross-frame state (pose, TSDF volume,
raycast reference, tracking status) through ``ctx.state`` — the
:class:`~repro.kfusion.pipeline.KinectFusion` instance — and frame data
through the graph's typed edges:

.. code-block:: text

   preprocess ──depth──────────────────▶ integrate ──volume─▶ raycast
        │ ├──vertices──▶ track ─tracked─▶    │                   │
        │ └──normals───▶   │                 └──volume─▶ render ◀┘ model
        ▼
   (workload kernels)

Workspace needs per stage come from
:func:`repro.kfusion.memory.stage_workspace_bytes` — the per-stage split
of the exact arena budget — so the graph compiler's plan equals the
run's :class:`~repro.perf.FrameWorkspace` budget by construction.
"""

from __future__ import annotations

from ..core.outputs import TrackingStatus
from ..graph import ArenaRegion, Edge, GraphSpec, Port, StageSpec, \
    register_graph, register_stage
from . import kernels
from .memory import stage_workspace_bytes
from .params import BOOTSTRAP_FRAMES, PYRAMID_LEVELS
from .preprocessing import downsample_depth
from .render import render_volume

#: Contract vocabulary of the KinectFusion graph.  Array-valued wires
#: carry their shape/dtype (the :mod:`repro.analysis.dataflow` port
#: grammar); ``H``/``W`` are the compute-camera resolution, unified per
#: node by ``repro dataflow check`` (RPR011).  Pyramid contracts
#: (``[...]``) describe the finest level.  The dtype names the wire's
#: *declared* element type — the fast backend computes in float32, the
#: reference in float64; RPR012 compares dtype kind only, exactly like
#: the runtime ``@contract`` checks.
DEPTH_MAP = "depth.map(H,W:f32)"
VERTEX_PYRAMID = "pyramid.vertices([H,W,3:f32])"
NORMAL_PYRAMID = "pyramid.normals([H,W,3:f32])"
TRACKED_FLAG = "track.converged"
TSDF_VOLUME = "tsdf.volume"
REFERENCE_MODEL = "model.reference"


def _stage_need(stage: str):
    """Workspace-need estimator bound to one canonical stage name."""
    def need(request) -> int:
        return stage_workspace_bytes(
            request.params, request.camera.width, request.camera.height,
            request.levels,
            backend=request.backend or "fast",
        ).get(stage, 0)
    return need


def _run_preprocess(ctx, inputs):
    sys = ctx.state
    params, cam = ctx.params, sys.compute_camera
    backend, ws, workload = ctx.backend, ctx.workspace, ctx.workload

    workload.add(kernels.acquire(sys.input_camera.pixel_count))
    depth = downsample_depth(ctx.frame.depth, params.compute_size_ratio)
    workload.add(
        kernels.downsample(sys.input_camera.pixel_count, cam.pixel_count)
    )
    depth = backend.bilateral_filter(depth, ws)
    workload.add(kernels.bilateral_filter(cam.pixel_count))

    pyramid = backend.build_pyramid(depth, PYRAMID_LEVELS, ws)
    for level in range(1, len(pyramid)):
        workload.add(kernels.half_sample(pyramid[level].size))
    vertices, normals, _cams = backend.vertex_normal_pyramid(
        pyramid, cam, ws
    )
    for level_depth in pyramid:
        workload.add(kernels.depth_to_vertex(level_depth.size))
        workload.add(kernels.vertex_to_normal(level_depth.size))
    return {"depth": depth, "vertices": vertices, "normals": normals}


def _run_track(ctx, inputs):
    sys, params, workload = ctx.state, ctx.params, ctx.workload
    vertices, normals = inputs["vertices"], inputs["normals"]

    first_frame = sys.frames_processed == 0
    should_track = (
        not first_frame
        and ctx.frame.index % params.tracking_rate == 0
        and sys.reference is not None
    )
    tracked = first_frame  # frame 0 counts as tracked at the start pose
    if should_track:
        iters = params.pyramid_iterations[: len(vertices)]
        result = ctx.backend.track(
            vertices,
            normals,
            sys.reference,
            sys.pose_estimate,
            iters,
            params.icp_threshold,
            ctx.workspace,
            huber_delta=sys.huber_delta,
        )
        for level, used in enumerate(result.iterations_per_level):
            level_pixels = (vertices[level].shape[0]
                            * vertices[level].shape[1])
            for _ in range(used):
                workload.add(kernels.track_iteration(level_pixels))
                workload.add(kernels.reduce_iteration(level_pixels))
                workload.add(kernels.solve())
        sys.record_track(result)
        if result.tracked:
            tracked = True
            sys.set_status(TrackingStatus.OK)
        else:
            sys.set_status(TrackingStatus.LOST)
    elif not first_frame:
        sys.set_status(TrackingStatus.SKIPPED)
    else:
        sys.set_status(TrackingStatus.BOOTSTRAP)
    return {"tracked": tracked}


def _run_integrate(ctx, inputs):
    sys, params = ctx.state, ctx.params
    depth, tracked = inputs["depth"], inputs["tracked"]

    first_frame = sys.frames_processed == 0
    should_integrate = (
        tracked or sys.frames_processed < BOOTSTRAP_FRAMES
    ) and (ctx.frame.index % params.integration_rate == 0 or first_frame)
    if should_integrate:
        ctx.backend.integrate(
            sys.volume,
            depth,
            sys.compute_camera,
            sys.pose_estimate,
            params.mu_distance,
            ctx.workspace,
        )
        ctx.workload.add(kernels.integrate(params.volume_resolution))
    return {"volume": sys.volume}


def _run_raycast(ctx, inputs):
    sys, params = ctx.state, ctx.params
    model = ctx.backend.raycast_model(
        inputs["volume"],
        sys.compute_camera,
        sys.pose_estimate,
        params.mu_distance,
        ctx.workspace,
    )
    sys.set_reference(model)
    ctx.workload.add(
        kernels.raycast(
            sys.compute_camera.pixel_count,
            params.volume_size,
            params.mu_distance,
            params.voxel_size,
        )
    )
    return {"model": model}


def _run_render(ctx, inputs):
    sys, params = ctx.state, ctx.params
    render = render_volume(
        inputs["volume"], sys.compute_camera, sys.pose_estimate,
        params.mu_distance,
    )
    sys.set_render(render)
    ctx.workload.add(kernels.render(sys.compute_camera.pixel_count))
    return {}


PREPROCESS = register_stage(StageSpec(
    name="kfusion.preprocess",
    run=_run_preprocess,
    outputs=(
        Port("depth", DEPTH_MAP),
        Port("vertices", VERTEX_PYRAMID),
        Port("normals", NORMAL_PYRAMID),
    ),
    workspace_need=_stage_need("preprocess"),
    description="downsample, bilateral-filter, build depth/vertex/normal "
                "pyramids",
))

TRACK = register_stage(StageSpec(
    name="kfusion.track",
    run=_run_track,
    inputs=(
        Port("vertices", VERTEX_PYRAMID),
        Port("normals", NORMAL_PYRAMID),
    ),
    outputs=(Port("tracked", TRACKED_FLAG),),
    workspace_need=_stage_need("track"),
    description="multi-scale point-to-plane ICP against the raycast "
                "prediction",
))

INTEGRATE = register_stage(StageSpec(
    name="kfusion.integrate",
    run=_run_integrate,
    inputs=(
        Port("depth", DEPTH_MAP),
        Port("tracked", TRACKED_FLAG),
    ),
    outputs=(Port("volume", TSDF_VOLUME),),
    workspace_need=_stage_need("integrate"),
    description="fuse the frame into the TSDF while tracking is good",
))

RAYCAST = register_stage(StageSpec(
    name="kfusion.raycast",
    run=_run_raycast,
    inputs=(Port("volume", TSDF_VOLUME),),
    outputs=(Port("model", REFERENCE_MODEL),),
    workspace_need=_stage_need("raycast"),
    description="render the surface prediction the next track step "
                "aligns against",
))

RENDER = register_stage(StageSpec(
    name="kfusion.render",
    run=_run_render,
    inputs=(
        Port("volume", TSDF_VOLUME),
        # The model input carries no pixels the shader needs; it pins
        # the render after the raycast, matching the legacy sequence.
        Port("model", REFERENCE_MODEL),
    ),
    workload_timed=False,  # tracer-only span, like the legacy GUI render
    description="optional shaded model render (the GUI's right panel)",
))


#: Declared lifetimes of the fast backend's arena buffer families
#: (``FrameWorkspace`` names, grouped by prefix; longest prefix wins, so
#: e.g. ``rc_vertices`` carves a cross-frame family out of ``rc_``).
#: The static liveness verifier (RPR013) checks these against the
#: deterministic schedule and the ``ws.buffer``/``ws.zeros`` names
#: reachable from each stage body.
ARENA_REGIONS = (
    # bilateral-filter scratch dies inside preprocess; the filtered
    # depth itself ("bf_out") is the depth.map edge value and must stay
    # live until integrate consumes it.
    ArenaRegion("bf_", writer="preprocess"),
    ArenaRegion("bf_out", writer="preprocess", readers=("integrate",)),
    # pyramid scratch ("pyr_d*", "pyr_dv*") is preprocess-private; the
    # vertex/normal pyramids feed the tracker.
    ArenaRegion("pyr_", writer="preprocess"),
    ArenaRegion("pyr_v", writer="preprocess", readers=("track",)),
    ArenaRegion("pyr_n", writer="preprocess", readers=("track",)),
    ArenaRegion("int_", writer="integrate"),
    # raycast scratch dies inside raycast; the predicted model surface
    # is what the *next* frame's tracker aligns against, so it crosses
    # the frame boundary.
    ArenaRegion("rc_", writer="raycast"),
    ArenaRegion("rc_vertices", writer="raycast", readers=("track",),
                cross_frame=True),
    ArenaRegion("rc_normals", writer="raycast", readers=("track",),
                cross_frame=True),
    ArenaRegion("icp_", writer="track"),
)


def kfusion_graph(publish_render: bool = False) -> GraphSpec:
    """The KinectFusion pipeline as a declarative graph."""
    nodes = [
        ("preprocess", "kfusion.preprocess"),
        ("track", "kfusion.track"),
        ("integrate", "kfusion.integrate"),
        ("raycast", "kfusion.raycast"),
    ]
    edges = [
        Edge("preprocess", "vertices", "track", "vertices"),
        Edge("preprocess", "normals", "track", "normals"),
        Edge("preprocess", "depth", "integrate", "depth"),
        Edge("track", "tracked", "integrate", "tracked"),
        Edge("integrate", "volume", "raycast", "volume"),
    ]
    if publish_render:
        nodes.append(("render", "kfusion.render"))
        edges.append(Edge("integrate", "volume", "render", "volume"))
        edges.append(Edge("raycast", "model", "render", "model"))
    return GraphSpec(name="kfusion", nodes=tuple(nodes),
                     edges=tuple(edges), regions=ARENA_REGIONS)


register_graph("kfusion", kfusion_graph)
