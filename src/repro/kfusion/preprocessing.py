"""KinectFusion preprocessing kernels.

The preprocessing stage mirrors the first kernels of the reference
implementation:

* ``mm2meters`` + downsample — here, downsampling by the compute-size
  ratio (our depth is already in metres),
* ``bilateral_filter`` — edge-preserving smoothing of the depth map,
* ``half_sample`` — build the 3-level depth pyramid,
* ``depth2vertex`` / ``vertex2normal`` — per-level vertex and normal maps.

Each function is pure; the pipeline composes them and accounts their costs
via :mod:`repro.kfusion.kernels`.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..errors import ConfigurationError
from ..geometry import PinholeCamera, normals_from_vertices


@contract(depth="H,W:f64")
def downsample_depth(depth: np.ndarray, ratio: int) -> np.ndarray:
    """Block-subsample a depth map by the compute-size ratio.

    The reference implementation averages valid pixels in each ``ratio x
    ratio`` block; invalid (zero) pixels are excluded from the average and
    a block with no valid pixel stays invalid.
    """
    if ratio < 1:
        raise ConfigurationError(f"compute_size_ratio must be >= 1, got {ratio}")
    depth = np.asarray(depth, dtype=float)
    if ratio == 1:
        return depth.copy()
    h, w = depth.shape
    if h % ratio or w % ratio:
        raise ConfigurationError(
            f"depth {h}x{w} not divisible by compute_size_ratio {ratio}"
        )
    blocks = depth.reshape(h // ratio, ratio, w // ratio, ratio)
    valid = blocks > 0.0
    counts = valid.sum(axis=(1, 3))
    sums = np.where(valid, blocks, 0.0).sum(axis=(1, 3))
    with np.errstate(invalid="ignore"):
        out = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return out


@contract(depth="H,W:f64")
def bilateral_filter(
    depth: np.ndarray,
    radius: int = 2,
    sigma_space: float = 1.5,
    sigma_depth: float = 0.05,
) -> np.ndarray:
    """Edge-preserving depth smoothing (vectorised shifted-window form).

    For each pixel, neighbours within ``radius`` contribute with a spatial
    Gaussian weight times a range Gaussian on the depth difference; invalid
    neighbours contribute nothing.  Matches KinectFusion's
    ``bilateralFilterKernel`` semantics.
    """
    depth = np.asarray(depth, dtype=float)
    valid = depth > 0.0
    acc = np.zeros_like(depth)
    weight = np.zeros_like(depth)
    inv_2ss = 1.0 / (2.0 * sigma_space * sigma_space)
    inv_2sd = 1.0 / (2.0 * sigma_depth * sigma_depth)

    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            w_spatial = np.exp(-(dx * dx + dy * dy) * inv_2ss)
            shifted = _shift2d(depth, dy, dx)
            # Shift the boolean mask directly; zero-padding is False, so
            # out-of-frame neighbours stay invalid (no float round trip).
            shifted_valid = _shift2d(valid, dy, dx)
            diff = shifted - depth
            w = w_spatial * np.exp(-(diff * diff) * inv_2sd)
            w = np.where(shifted_valid & valid, w, 0.0)
            acc += w * shifted
            weight += w

    out = np.where(weight > 1e-12, acc / np.maximum(weight, 1e-12), 0.0)
    return out


def _shift2d(a: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift a 2-D array, padding with zeros (no wrap-around)."""
    out = np.zeros_like(a)
    h, w = a.shape
    ys = slice(max(dy, 0), min(h + dy, h))
    xs = slice(max(dx, 0), min(w + dx, w))
    yt = slice(max(-dy, 0), min(h - dy, h))
    xt = slice(max(-dx, 0), min(w - dx, w))
    out[ys, xs] = a[yt, xt]
    return out


def half_sample(depth: np.ndarray) -> np.ndarray:
    """Halve the resolution of a depth map (valid-aware 2x2 block average)."""
    h, w = depth.shape
    if h % 2 or w % 2:
        raise ConfigurationError(f"cannot half-sample odd shape {depth.shape}")
    return downsample_depth(depth, 2)


def build_pyramid(depth: np.ndarray, levels: int = 3) -> list[np.ndarray]:
    """Depth pyramid, finest first. Level k has resolution / 2**k.

    Stops early (returning fewer levels) once a level's resolution becomes
    odd or degenerately small, so aggressive compute-size ratios still work
    on small inputs.
    """
    if levels < 1:
        raise ConfigurationError(f"pyramid needs >= 1 level, got {levels}")
    pyramid = [np.asarray(depth, dtype=float)]
    for _ in range(levels - 1):
        h, w = pyramid[-1].shape
        if h % 2 or w % 2 or h // 2 < 8 or w // 2 < 8:
            break
        pyramid.append(half_sample(pyramid[-1]))
    return pyramid


def vertex_normal_pyramid(
    depth_pyramid: list[np.ndarray], camera: PinholeCamera
) -> tuple[list[np.ndarray], list[np.ndarray], list[PinholeCamera]]:
    """Per-level camera-frame vertex and normal maps plus scaled intrinsics.

    ``camera`` describes level 0 (the compute resolution).
    """
    vertices, normals, cameras = [], [], []
    for level, depth in enumerate(depth_pyramid):
        cam = camera.scaled(2**level)
        if depth.shape != cam.shape:
            raise ConfigurationError(
                f"pyramid level {level} shape {depth.shape} != camera {cam.shape}"
            )
        v = cam.backproject(depth)
        vertices.append(v)
        normals.append(normals_from_vertices(v))
        cameras.append(cam)
    return vertices, normals, cameras
