"""Sparse voxel-block TSDF volume.

The dense :class:`~repro.kfusion.volume.TSDFVolume` pays for every voxel
on every frame; at ``volume_resolution=128`` that is 2M voxels of which
only a few percent ever sit near observed surface.  Following the
InfiniTAM voxel-block-hashing lineage SLAMBench2 benchmarks (PAPERS.md),
this module stores the TSDF in fixed-size 8³ *voxel blocks*, lazily
allocated around the observed depth band, behind a flat open-addressed
hash of packed block coordinates:

* :class:`BlockHash` — linear-probe hash table mapping a packed int64
  block coordinate to a block slot, with batch (vectorised) insert and
  lookup and load-factor-triggered doubling rehash.
* :class:`SparseTSDFVolume` — the dense volume's API (sampling,
  gradients, surface extraction, occupancy) over ``(capacity, 512)``
  float32 tsdf/weight block arrays, plus the allocation API the sparse
  kernels (:mod:`repro.perf.sparse_integrate`,
  :mod:`repro.perf.sparse_raycast`) drive: ``ensure_blocks`` /
  ``lookup_blocks`` and the block-occupancy masks raycast space-skipping
  classifies against.  A dense coord->slot mirror of the hash
  (``block_slot_table``) serves the per-sample lookups on the raycast
  hot path as a single flat gather.

Unallocated space reads as the dense volume's initial state (tsdf 1.0,
weight 0.0), so within allocated blocks the sparse integrate kernel can
apply the dense fast kernel's exact float32 update sequence and stay
bit-identical to it (tests/test_sparse_volume.py pins this).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

#: Voxels per block edge (InfiniTAM's choice; 8^3 = 512 voxels/block).
BLOCK = 8
#: Voxels per block.
BLOCK_VOXELS = BLOCK**3

#: Bits reserved per packed block coordinate axis.
_PACK_BITS = 20
_PACK_MASK = (1 << _PACK_BITS) - 1

#: splitmix64 finalizer constants (vectorised integer hash).
_MIX_1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX_2 = np.uint64(0xC4CEB9FE1A85EC53)
_SHIFT = np.uint64(33)


def pack_block_coords(coords: np.ndarray) -> np.ndarray:
    """Pack non-negative ``(N, 3)`` block coordinates into int64 keys."""
    c = np.asarray(coords, dtype=np.int64)
    return (c[..., 0] << (2 * _PACK_BITS)) | (c[..., 1] << _PACK_BITS) \
        | c[..., 2]


def unpack_block_coords(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_block_coords`, ``(N, 3)`` int32."""
    k = np.asarray(keys, dtype=np.int64)
    out = np.empty(k.shape + (3,), dtype=np.int32)  # effect-ok: key-count sized
    out[..., 0] = (k >> (2 * _PACK_BITS)) & _PACK_MASK
    out[..., 1] = (k >> _PACK_BITS) & _PACK_MASK
    out[..., 2] = k & _PACK_MASK
    return out


def _mix(keys: np.ndarray) -> np.ndarray:
    """splitmix64-style avalanche of int64 keys (vectorised, uint64)."""
    x = keys.astype(np.uint64)
    x ^= x >> _SHIFT
    x *= _MIX_1
    x ^= x >> _SHIFT
    x *= _MIX_2
    x ^= x >> _SHIFT
    return x


class BlockHash:
    """Flat open-addressed (linear probe) hash: packed coord -> slot.

    Keys are packed block coordinates (:func:`pack_block_coords`, always
    ``>= 0``); the empty sentinel is ``-1``.  Capacity is a power of two
    so probing wraps with a mask; exceeding ``max_load`` doubles the
    table and re-inserts every key (amortised O(1) per insert).  All
    operations are batch-vectorised — the kernels call with thousands of
    keys at once.
    """

    EMPTY = -1

    def __init__(self, capacity: int = 1024, max_load: float = 0.7):
        if capacity < 8 or capacity & (capacity - 1):
            raise ConfigurationError(
                f"hash capacity must be a power of two >= 8: {capacity}"
            )
        if not 0.1 <= max_load <= 0.95:
            raise ConfigurationError(f"unusable max load factor: {max_load}")
        self.max_load = float(max_load)
        self._keys = np.full(capacity, self.EMPTY, dtype=np.int64)
        self._slots = np.zeros(capacity, dtype=np.int32)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return len(self._keys)

    @property
    def load_factor(self) -> float:
        return self._count / len(self._keys)

    @property
    def nbytes(self) -> int:
        return self._keys.nbytes + self._slots.nbytes

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Slots of ``keys`` (int32), ``-1`` where a key is absent."""
        keys = np.asarray(keys, dtype=np.int64)
        n = keys.shape[0]
        result = np.full(n, -1, dtype=np.int32)
        if n == 0 or self._count == 0:
            return result
        mask = np.int64(len(self._keys) - 1)
        cur = (_mix(keys) & np.uint64(mask)).astype(np.int64)
        pending = np.arange(n, dtype=np.int64)
        # Linear probing, all pending queries advanced together; a query
        # retires when it finds its key (hit) or an empty slot (miss).
        for _ in range(len(self._keys)):
            probe = cur[pending]
            stored = self._keys[probe]
            hits = stored == keys[pending]
            result[pending[hits]] = self._slots[probe[hits]]
            alive = ~hits & (stored != self.EMPTY)
            pending = pending[alive]
            if pending.size == 0:
                break
            cur[pending] = (cur[pending] + 1) & mask
        return result

    def insert(self, keys: np.ndarray, slots: np.ndarray) -> None:
        """Map each ``keys[i]`` (unique, absent) to ``slots[i]``."""
        keys = np.asarray(keys, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int32)
        if keys.shape != slots.shape:
            raise ConfigurationError("keys/slots length mismatch")
        if keys.size == 0:
            return
        while (self._count + keys.size) > self.max_load * len(self._keys):
            self._grow()
        self._insert_batch(keys, slots)
        self._count += int(keys.size)

    def _insert_batch(self, keys: np.ndarray, slots: np.ndarray) -> None:
        mask = np.int64(len(self._keys) - 1)
        cur = (_mix(keys) & np.uint64(mask)).astype(np.int64)
        pending = np.arange(keys.shape[0], dtype=np.int64)
        for _ in range(len(self._keys)):
            probe = cur[pending]
            free = self._keys[probe] == self.EMPTY
            claim = pending[free]
            if claim.size:
                # Claim empty slots; when several new keys land on the
                # same empty slot the last fancy-index write wins, so
                # re-read to find the winners and keep probing the rest.
                self._keys[cur[claim]] = keys[claim]
                self._slots[cur[claim]] = slots[claim]
                won = self._keys[cur[claim]] == keys[claim]
                lost = claim[~won]
                pending = np.concatenate([pending[~free], lost])
            else:
                pending = pending[~free]
            if pending.size == 0:
                return
            cur[pending] = (cur[pending] + 1) & mask
        raise ConfigurationError("hash table full despite load-factor guard")

    def _grow(self) -> None:
        live = self._keys != self.EMPTY
        keys, slots = self._keys[live], self._slots[live]
        self._keys = np.full(2 * len(self._keys), self.EMPTY, dtype=np.int64)
        self._slots = np.zeros(len(self._keys), dtype=np.int32)
        self._insert_batch(keys, slots)

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All (key, slot) pairs, in table order."""
        live = self._keys != self.EMPTY
        return self._keys[live].copy(), self._slots[live].copy()


class SparseTSDFVolume:
    """Voxel-block-hashed TSDF volume with the dense volume's API.

    Attributes:
        resolution: voxels per side (same meaning as the dense volume).
        size: physical edge length in metres.
        blocks_per_side: 8³-block grid extent (``ceil(resolution / 8)``).
        tsdf_blocks / weight_blocks: ``(capacity, 512)`` float32 block
            data; rows past :attr:`allocated_blocks` are unused.  Block
            row layout is x-major: local voxel ``(lx, ly, lz)`` is flat
            index ``(lx * 8 + ly) * 8 + lz``.
    """

    def __init__(self, resolution: int, size: float,
                 initial_blocks: int = 512):
        if resolution < 4:
            raise ConfigurationError(
                f"volume resolution too small: {resolution}"
            )
        if size <= 0:
            raise ConfigurationError(f"volume size must be positive: {size}")
        self.resolution = int(resolution)
        self.size = float(size)
        self.blocks_per_side = -(-self.resolution // BLOCK)
        if self.blocks_per_side >= (1 << _PACK_BITS):
            raise ConfigurationError(
                f"volume resolution {resolution} overflows the packed "
                f"block-coordinate width"
            )
        self._initial_blocks = max(64, int(initial_blocks))
        self._alloc_arrays(self._initial_blocks)
        self.hash = BlockHash()
        nb = self.blocks_per_side
        # Allocated-block occupancy, plus its 3^3 dilation: a sample whose
        # block is False in the dilated mask cannot touch allocated data
        # with any trilinear corner — the raycaster's space-skip test.
        self.block_occupancy = np.zeros((nb, nb, nb), dtype=bool)
        self.block_occupancy_dilated = np.zeros((nb, nb, nb), dtype=bool)
        # Dense coord -> slot acceleration table (-1 = unallocated).  The
        # hash stays the canonical mapping; this mirror turns the per-
        # sample block lookups on the raycast hot path into one flat
        # gather.  At 8^3 blocks it costs resolution^3 / 128 bytes —
        # two orders of magnitude below the dense volume it replaces.
        self.block_slot_table = np.full(nb * nb * nb, -1, dtype=np.int32)
        self._n_alloc = 0

    def _alloc_arrays(self, capacity: int) -> None:
        self.tsdf_blocks = np.ones((capacity, BLOCK_VOXELS), dtype=np.float32)
        self.weight_blocks = np.zeros((capacity, BLOCK_VOXELS),
                                      dtype=np.float32)
        self.block_coords = np.zeros((capacity, 3), dtype=np.int32)

    @property
    def voxel_size(self) -> float:
        return self.size / self.resolution

    @property
    def allocated_blocks(self) -> int:
        """Number of voxel blocks currently backed by storage."""
        return self._n_alloc

    @property
    def allocated_bytes(self) -> int:
        """Actual bytes held: block data in use + hash table + masks."""
        per_block = (self.tsdf_blocks.itemsize + self.weight_blocks.itemsize) \
            * BLOCK_VOXELS + self.block_coords.itemsize * 3
        return (self._n_alloc * per_block + self.hash.nbytes
                + self.block_occupancy.nbytes
                + self.block_occupancy_dilated.nbytes
                + self.block_slot_table.nbytes)

    def reset(self) -> None:
        """Clear to the empty state (drops all allocated blocks)."""
        self._alloc_arrays(self._initial_blocks)
        self.hash = BlockHash()
        self.block_occupancy[:] = False
        self.block_occupancy_dilated[:] = False
        self.block_slot_table[:] = -1
        self._n_alloc = 0

    # -- allocation ---------------------------------------------------------
    def ensure_blocks(self, coords: np.ndarray) -> np.ndarray:
        """Slots for ``(N, 3)`` block coords, allocating the missing ones.

        Coordinates must lie in ``[0, blocks_per_side)``; duplicates are
        fine.  Newly allocated blocks start at the empty state and are
        folded into the occupancy masks.
        """
        coords = np.asarray(coords, dtype=np.int64)
        if coords.size == 0:
            return np.empty(0, dtype=np.int32)
        nb = self.blocks_per_side
        flat = (coords[..., 0] * nb + coords[..., 1]) * nb + coords[..., 2]
        slots = self.block_slot_table[flat]
        missing = slots < 0
        if missing.any():
            # Flat indices sort in the same (x, y, z)-lexicographic order
            # as packed keys, so slot assignment order is unchanged.
            new_flat = np.unique(flat[missing])
            start = self._n_alloc
            if start + new_flat.size > self.tsdf_blocks.shape[0]:
                self._grow_blocks(start + new_flat.size)
            new_slots = np.arange(
                start, start + new_flat.size, dtype=np.int32
            )
            new_coords = np.stack(
                [new_flat // (nb * nb), (new_flat // nb) % nb,
                 new_flat % nb], axis=-1
            ).astype(np.int32)
            self.block_coords[start:start + new_flat.size] = new_coords
            self.hash.insert(pack_block_coords(new_coords), new_slots)
            self.block_slot_table[new_flat] = new_slots
            self._n_alloc = start + int(new_flat.size)
            self._mark_occupancy(new_coords)
            slots = self.block_slot_table[flat]
        return slots

    def _grow_blocks(self, need: int) -> None:
        capacity = self.tsdf_blocks.shape[0]
        while capacity < need:
            capacity *= 2
        tsdf = np.ones((capacity, BLOCK_VOXELS), dtype=np.float32)
        weight = np.zeros((capacity, BLOCK_VOXELS), dtype=np.float32)
        coords = np.zeros((capacity, 3), dtype=np.int32)
        tsdf[:self._n_alloc] = self.tsdf_blocks[:self._n_alloc]
        weight[:self._n_alloc] = self.weight_blocks[:self._n_alloc]
        coords[:self._n_alloc] = self.block_coords[:self._n_alloc]
        self.tsdf_blocks, self.weight_blocks = tsdf, weight
        self.block_coords = coords

    def _mark_occupancy(self, new_coords: np.ndarray) -> None:
        nb = self.blocks_per_side
        bx, by, bz = new_coords[:, 0], new_coords[:, 1], new_coords[:, 2]
        self.block_occupancy[bx, by, bz] = True
        # Incremental 3^3 dilation around each new block, clipped at the
        # grid edge (few new blocks per frame, so 27 fancy writes beat a
        # full-grid convolution).
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    self.block_occupancy_dilated[
                        np.clip(bx + dx, 0, nb - 1),
                        np.clip(by + dy, 0, nb - 1),
                        np.clip(bz + dz, 0, nb - 1),
                    ] = True

    def lookup_blocks(self, coords: np.ndarray) -> np.ndarray:
        """Slots for ``(N, 3)`` block coords (``-1`` where unallocated)."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.size == 0:
            return np.empty(0, dtype=np.int32)
        nb = self.blocks_per_side
        flat = (coords[..., 0] * nb + coords[..., 1]) * nb + coords[..., 2]
        return self.block_slot_table[flat]

    # -- dense-volume API ----------------------------------------------------
    def world_to_voxel(self, points: np.ndarray) -> np.ndarray:
        """Continuous voxel coordinates of volume-frame points."""
        return np.asarray(points, dtype=float) / self.voxel_size - 0.5

    def contains(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Mask of points inside the volume (with an optional margin)."""
        p = np.asarray(points, dtype=float)
        return np.all((p >= margin) & (p <= self.size - margin), axis=-1)

    def _gather(self, ix: np.ndarray, iy: np.ndarray,
                iz: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(tsdf, weight) at integer voxel coords; unallocated reads empty."""
        coords = np.stack(
            [ix // BLOCK, iy // BLOCK, iz // BLOCK], axis=-1
        )
        slots = self.lookup_blocks(coords)
        local = ((ix % BLOCK) * BLOCK + iy % BLOCK) * BLOCK + iz % BLOCK
        found = slots >= 0
        tsdf = np.ones(ix.shape, dtype=np.float32)
        weight = np.zeros(ix.shape, dtype=np.float32)
        safe = np.where(found, slots, 0)
        tsdf[found] = self.tsdf_blocks[safe, local][found]
        weight[found] = self.weight_blocks[safe, local][found]
        return tsdf, weight

    def sample_trilinear(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Trilinear TSDF at volume-frame points (dense-volume semantics).

        Points outside the grid or with any zero-weight corner are
        invalid and read 1.0, exactly as the dense volume defines it.
        """
        p = self.world_to_voxel(points)
        r = self.resolution
        base = np.floor(p).astype(int)
        frac = p - base

        inside = np.all((base >= 0) & (base <= r - 2), axis=-1)
        base_c = np.clip(base, 0, r - 2)

        values = np.zeros(len(p))
        observed = np.ones(len(p), dtype=bool)
        for corner in range(8):
            ox, oy, oz = corner & 1, (corner >> 1) & 1, (corner >> 2) & 1
            ix = base_c[:, 0] + ox
            iy = base_c[:, 1] + oy
            iz = base_c[:, 2] + oz
            w = (
                (frac[:, 0] if ox else 1.0 - frac[:, 0])
                * (frac[:, 1] if oy else 1.0 - frac[:, 1])
                * (frac[:, 2] if oz else 1.0 - frac[:, 2])
            )
            tsdf, weight = self._gather(ix, iy, iz)
            values += w * tsdf
            observed &= weight > 0.0

        valid = inside & observed
        values = np.where(valid, values, 1.0)
        return values, valid

    def gradient(self, points: np.ndarray,
                 eps: float | None = None) -> np.ndarray:
        """Central-difference TSDF gradient (dense-volume semantics)."""
        if eps is None:
            eps = self.voxel_size
        p = np.asarray(points, dtype=float)
        g = np.zeros_like(p)
        for axis in range(3):
            offset = np.zeros(3)
            offset[axis] = eps
            hi, _ = self.sample_trilinear(p + offset)
            lo, _ = self.sample_trilinear(p - offset)
            g[:, axis] = (hi - lo) / (2.0 * eps)
        return g

    def _occupancy_rows(self) -> np.ndarray:
        """Per-voxel observed mask over allocated block rows (one pass)."""
        return self.weight_blocks[:self._n_alloc] > 0.0

    def occupied_fraction(self) -> float:
        """Fraction of the *logical* grid observed at least once."""
        if self._n_alloc == 0:
            return 0.0
        observed = int(np.count_nonzero(self._occupancy_rows()))
        return observed / float(self.resolution**3)

    def extract_surface_points(self, threshold: float = 0.25) -> np.ndarray:
        """Volume-frame points near the zero crossing, ``(N, 3)``.

        Same extraction rule as the dense volume, restricted to the
        allocated blocks (unallocated space has |tsdf| = 1 by
        definition and can never pass the threshold).
        """
        if self._n_alloc == 0:
            return np.empty((0, 3))
        rows = self._occupancy_rows()
        rows &= np.abs(self.tsdf_blocks[:self._n_alloc]) < threshold
        slot, local = np.nonzero(rows)
        lz = local % BLOCK
        ly = (local // BLOCK) % BLOCK
        lx = local // (BLOCK * BLOCK)
        base = self.block_coords[slot].astype(np.int64) * BLOCK
        idx = np.stack([base[:, 0] + lx, base[:, 1] + ly, base[:, 2] + lz],
                       axis=-1)
        # Blocks straddling a non-multiple-of-8 grid edge hold padding
        # voxels past the logical resolution; integrate never writes
        # them, but clip defensively.
        keep = np.all(idx < self.resolution, axis=-1)
        return (idx[keep].astype(float) + 0.5) * self.voxel_size

    def densify(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialise dense ``(r, r, r)`` tsdf/weight arrays (tests only).

        Memory-expensive by design — the equivalence tests use it to
        bit-compare against the dense volume; production paths never
        should.
        """
        r = self.resolution
        nbv = self.blocks_per_side * BLOCK
        tsdf = np.ones((nbv, nbv, nbv), dtype=np.float32)
        weight = np.zeros((nbv, nbv, nbv), dtype=np.float32)
        n = self._n_alloc
        if n:
            shaped_t = self.tsdf_blocks[:n].reshape(n, BLOCK, BLOCK, BLOCK)
            shaped_w = self.weight_blocks[:n].reshape(n, BLOCK, BLOCK, BLOCK)
            for i in range(n):
                bx, by, bz = (int(c) * BLOCK for c in self.block_coords[i])
                tsdf[bx:bx + BLOCK, by:by + BLOCK, bz:bz + BLOCK] = shaped_t[i]
                weight[bx:bx + BLOCK, by:by + BLOCK, bz:bz + BLOCK] = \
                    shaped_w[i]
        return tsdf[:r, :r, :r], weight[:r, :r, :r]
