"""Analytic operation counts for the KinectFusion kernels.

SLAMBench times each kernel of the C++/OpenMP/OpenCL/CUDA implementations;
our reproduction executes functionally-equivalent NumPy kernels but derives
*performance* numbers from a platform simulator (DESIGN.md, substitutions).
This module is the contract between the two: for each kernel it returns a
:class:`~repro.core.workload.KernelInvocation` with FLOP and byte counts
that follow the true asymptotic costs of the reference implementation —
e.g. integration is O(volume_resolution^3) per integrated frame, raycast is
O(pixels x ray steps), tracking is O(pixels x iterations).

Counts are per *launch*; the pipeline emits one invocation per actual
launch with the actual sizes/iterations used, so early ICP termination and
rate decimation show up in the workload exactly as they do in real timings.
"""

from __future__ import annotations

import numpy as np

from ..core.workload import KernelInvocation

BYTES_PER_PIXEL_DEPTH = 4  # float32 depth
BYTES_PER_PIXEL_VEC3 = 12  # float32 x 3


def acquire(input_pixels: int) -> KernelInvocation:
    """Frame acquisition / mm-to-metres conversion at input resolution."""
    return KernelInvocation(
        name="acquire",
        flops=2.0 * input_pixels,
        bytes_accessed=2.0 * BYTES_PER_PIXEL_DEPTH * input_pixels,
        parallel_fraction=0.999,
    )


def downsample(input_pixels: int, output_pixels: int) -> KernelInvocation:
    """Compute-size-ratio block average."""
    return KernelInvocation(
        name="downsample",
        flops=3.0 * input_pixels,
        bytes_accessed=BYTES_PER_PIXEL_DEPTH * (input_pixels + output_pixels),
        parallel_fraction=0.999,
    )


def bilateral_filter(pixels: int, radius: int = 2) -> KernelInvocation:
    """Edge-preserving smoothing; cost scales with the window area."""
    window = (2 * radius + 1) ** 2
    return KernelInvocation(
        name="bilateral_filter",
        flops=12.0 * window * pixels,
        bytes_accessed=BYTES_PER_PIXEL_DEPTH * (window + 1.0) * pixels,
        parallel_fraction=0.999,
    )


def half_sample(output_pixels: int) -> KernelInvocation:
    """One pyramid reduction level."""
    return KernelInvocation(
        name="half_sample",
        flops=8.0 * output_pixels,
        bytes_accessed=BYTES_PER_PIXEL_DEPTH * 5.0 * output_pixels,
        parallel_fraction=0.999,
    )


def depth_to_vertex(pixels: int) -> KernelInvocation:
    return KernelInvocation(
        name="depth2vertex",
        flops=9.0 * pixels,
        bytes_accessed=(BYTES_PER_PIXEL_DEPTH + BYTES_PER_PIXEL_VEC3) * pixels,
        parallel_fraction=0.999,
    )


def vertex_to_normal(pixels: int) -> KernelInvocation:
    return KernelInvocation(
        name="vertex2normal",
        flops=30.0 * pixels,
        bytes_accessed=5.0 * BYTES_PER_PIXEL_VEC3 * pixels,
        parallel_fraction=0.999,
    )


def track_iteration(pixels: int) -> KernelInvocation:
    """One ICP iteration at one level: association + per-pixel residual."""
    return KernelInvocation(
        name="track",
        flops=60.0 * pixels,
        bytes_accessed=4.0 * BYTES_PER_PIXEL_VEC3 * pixels,
        parallel_fraction=0.995,
    )


def reduce_iteration(pixels: int) -> KernelInvocation:
    """Tree reduction of the 6x6 normal-equation terms (27 floats/pixel)."""
    return KernelInvocation(
        name="reduce",
        flops=54.0 * pixels,
        bytes_accessed=27.0 * 4.0 * pixels,
        parallel_fraction=0.97,
    )


def solve() -> KernelInvocation:
    """Host-side 6x6 Cholesky solve — tiny and sequential."""
    return KernelInvocation(
        name="solve",
        flops=500.0,
        bytes_accessed=2000.0,
        parallel_fraction=0.0,
        gpu_eligible=False,
    )


def integrate(volume_resolution: int) -> KernelInvocation:
    """TSDF fusion: one projection + blend per voxel."""
    voxels = float(volume_resolution) ** 3
    return KernelInvocation(
        name="integrate",
        flops=32.0 * voxels,
        bytes_accessed=12.0 * voxels,  # read tsdf+weight, write back
        parallel_fraction=0.999,
    )


def raycast(pixels: int, volume_size: float, mu: float,
            voxel_size: float) -> KernelInvocation:
    """Per-pixel ray march; steps follow the reference step-size rule."""
    step = max(0.75 * mu, voxel_size)
    avg_steps = max(float(np.sqrt(3.0)) * volume_size / step * 0.5, 1.0)
    return KernelInvocation(
        name="raycast",
        flops=25.0 * avg_steps * pixels,
        bytes_accessed=16.0 * avg_steps * pixels,
        parallel_fraction=0.999,
    )


def render(pixels: int) -> KernelInvocation:
    """GUI visualisation render (volume shading) — optional output path."""
    return KernelInvocation(
        name="render",
        flops=40.0 * pixels,
        bytes_accessed=8.0 * pixels,
        parallel_fraction=0.999,
    )
