"""Triangle-mesh extraction from the TSDF (marching tetrahedra).

SLAMBench's "accuracy of the generated 3D model" ultimately refers to the
reconstructed surface; this module extracts it as a triangle mesh.  We use
marching *tetrahedra* rather than marching cubes: each voxel cell is split
into six tetrahedra, and each tetrahedron's sign pattern yields zero, one
or two triangles with vertices linearly interpolated onto the zero
crossing.  Tetrahedra need no 256-entry case tables and have no ambiguous
configurations, at the cost of slightly more triangles.

The implementation is vectorised over all cells (one pass per
tetrahedron case), so extracting a 64^3 volume takes well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from .volume import TSDFVolume

#: The six tetrahedra of a cube, as corner indices into the cube's
#: (z, y, x)-bit corner numbering: corner k has offset
#: ((k >> 2) & 1, (k >> 1) & 1, k & 1) in (x, y, z)... we use the
#: convention offset = (k & 1, (k >> 1) & 1, (k >> 2) & 1) for (i, j, k).
#: This is the standard diagonal (0,7) decomposition.
_TETRAHEDRA = (
    (0, 5, 1, 7),
    (0, 1, 3, 7),
    (0, 3, 2, 7),
    (0, 2, 6, 7),
    (0, 6, 4, 7),
    (0, 4, 5, 7),
)

_CORNER_OFFSETS = np.array(
    [[(k >> 0) & 1, (k >> 1) & 1, (k >> 2) & 1] for k in range(8)],
    dtype=float,
)


@dataclass(frozen=True)
class TriangleMesh:
    """An indexed triangle mesh in the volume frame (metres)."""

    vertices: np.ndarray  # (V, 3)
    triangles: np.ndarray  # (T, 3) int indices

    def __post_init__(self):
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise DatasetError("vertices must be (V, 3)")
        if self.triangles.ndim != 2 or self.triangles.shape[1] != 3:
            raise DatasetError("triangles must be (T, 3)")
        if len(self.triangles) and self.triangles.max() >= len(self.vertices):
            raise DatasetError("triangle index out of range")

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_triangles(self) -> int:
        return len(self.triangles)

    def surface_area(self) -> float:
        """Total area of all triangles (m^2)."""
        if not len(self.triangles):
            return 0.0
        a = self.vertices[self.triangles[:, 0]]
        b = self.vertices[self.triangles[:, 1]]
        c = self.vertices[self.triangles[:, 2]]
        cross = np.cross(b - a, c - a)
        return float(0.5 * np.linalg.norm(cross, axis=-1).sum())

    def triangle_centroids(self) -> np.ndarray:
        """Centroid of every triangle, ``(T, 3)``."""
        if not len(self.triangles):
            return np.empty((0, 3))
        return self.vertices[self.triangles].mean(axis=1)

    def save_obj(self, path: str, comment: str = "") -> None:
        """Write the mesh as a Wavefront OBJ file (1-based indices)."""
        # effect-ok: offline mesh export utility, never on the frame path
        with open(path, "w") as f:
            if comment:
                f.write(f"# {comment}\n")
            for v in self.vertices:
                f.write(f"v {v[0]:.6f} {v[1]:.6f} {v[2]:.6f}\n")
            for t in self.triangles:
                f.write(f"f {t[0] + 1} {t[1] + 1} {t[2] + 1}\n")


def load_obj(path: str) -> TriangleMesh:
    """Read a (vertices + triangular faces only) OBJ file."""
    vertices, triangles = [], []
    try:
        # effect-ok: offline mesh import utility, never on the frame path
        with open(path) as f:
            for line_no, line in enumerate(f, 1):
                parts = line.split()
                if not parts or parts[0].startswith("#"):
                    continue
                if parts[0] == "v":
                    if len(parts) < 4:
                        raise DatasetError(f"{path}:{line_no}: short vertex")
                    vertices.append([float(x) for x in parts[1:4]])
                elif parts[0] == "f":
                    if len(parts) != 4:
                        raise DatasetError(
                            f"{path}:{line_no}: only triangles supported"
                        )
                    triangles.append(
                        [int(p.split("/")[0]) - 1 for p in parts[1:4]]
                    )
    except OSError as exc:
        raise DatasetError(f"cannot read OBJ {path}: {exc}") from exc
    if not vertices:
        raise DatasetError(f"{path}: no vertices")
    return TriangleMesh(
        vertices=np.asarray(vertices, dtype=float),
        triangles=np.asarray(triangles, dtype=int).reshape(-1, 3),
    )


def extract_mesh(volume: TSDFVolume, max_triangles: int | None = None
                 ) -> TriangleMesh:
    """Extract the zero level set of an observed TSDF as a mesh.

    Cells are only meshed where *all eight* corners were observed
    (non-zero weight) — unobserved space carries no surface evidence.

    Args:
        volume: the TSDF volume.
        max_triangles: optional cap (uniform subsample) for huge meshes.
    """
    r = volume.resolution
    tsdf = volume.tsdf.astype(float)
    observed = volume.weight > 0.0

    # Corner values for every cell, shape (r-1, r-1, r-1, 8).
    def corner(field, k):
        dx, dy, dz = int(_CORNER_OFFSETS[k, 0]), int(_CORNER_OFFSETS[k, 1]), \
            int(_CORNER_OFFSETS[k, 2])
        return field[dx : r - 1 + dx, dy : r - 1 + dy, dz : r - 1 + dz]

    values = np.stack([corner(tsdf, k) for k in range(8)], axis=-1)
    valid = np.stack([corner(observed, k) for k in range(8)], axis=-1).all(
        axis=-1
    )

    # Candidate cells: observed and straddling the zero level.
    signs = values < 0.0
    straddle = valid & signs.any(axis=-1) & (~signs).any(axis=-1)
    cells = np.argwhere(straddle)
    if len(cells) == 0:
        return TriangleMesh(vertices=np.empty((0, 3)),
                            triangles=np.empty((0, 3), dtype=int))

    cell_values = values[straddle]  # (N, 8)
    base = cells.astype(float)  # cell origin in voxel units

    triangles = []
    for tet in _TETRAHEDRA:
        v = cell_values[:, tet]  # (N, 4)
        neg = v < 0.0
        n_neg = neg.sum(axis=1)

        # Case A: one corner on one side (1 or 3 negatives) -> 1 triangle.
        for flip in (False, True):
            inside = ~neg if flip else neg
            lone = inside.sum(axis=1) == 1
            if not lone.any():
                continue
            idx = np.flatnonzero(lone)
            apex = np.argmax(inside[idx], axis=1)
            others = np.array(
                [[a for a in range(4) if a != ap] for ap in apex]
            )
            tri = _interp_triangle(v[idx], apex, others, base[idx], tet)
            triangles.append(tri)

        # Case B: two corners on each side -> a quad -> 2 triangles.
        two = n_neg == 2
        if two.any():
            idx = np.flatnonzero(two)
            vv = v[idx]
            nn = neg[idx]
            # The two negative corners (a0, a1) and positive (b0, b1).
            order = np.argsort(~nn, axis=1, kind="stable")
            a0, a1 = order[:, 0], order[:, 1]
            b0, b1 = order[:, 2], order[:, 3]
            p00 = _edge_point(vv, a0, b0, base[idx], tet)
            p01 = _edge_point(vv, a0, b1, base[idx], tet)
            p10 = _edge_point(vv, a1, b0, base[idx], tet)
            p11 = _edge_point(vv, a1, b1, base[idx], tet)
            triangles.append(np.stack([p00, p01, p11], axis=1))
            triangles.append(np.stack([p00, p11, p10], axis=1))

    if not triangles:
        return TriangleMesh(vertices=np.empty((0, 3)),
                            triangles=np.empty((0, 3), dtype=int))
    tri_pts = np.concatenate(triangles, axis=0)  # (T, 3, 3) voxel units

    if max_triangles is not None and len(tri_pts) > max_triangles:
        step = int(np.ceil(len(tri_pts) / max_triangles))
        tri_pts = tri_pts[::step]

    # Deduplicate vertices on a fine grid to build the index buffer.
    flat = tri_pts.reshape(-1, 3)
    keys = np.round(flat * 256.0).astype(np.int64)
    _, unique_idx, inverse = np.unique(
        keys, axis=0, return_index=True, return_inverse=True
    )
    vertices = flat[unique_idx] * volume.voxel_size
    # Voxel coordinates measure voxel centres: shift by half a voxel.
    vertices += 0.5 * volume.voxel_size
    faces = inverse.reshape(-1, 3)

    # Drop degenerate triangles (two corners collapsed by deduplication).
    ok = (
        (faces[:, 0] != faces[:, 1])
        & (faces[:, 1] != faces[:, 2])
        & (faces[:, 0] != faces[:, 2])
    )
    return TriangleMesh(vertices=vertices, triangles=faces[ok])


def _edge_point(values, a, b, base, tet):
    """Zero crossing on edge (a, b) of each tetrahedron, voxel units."""
    rows = np.arange(len(values))
    va = values[rows, a]
    vb = values[rows, b]
    denom = va - vb
    denom = np.where(np.abs(denom) > 1e-12, denom, 1e-12)
    t = np.clip(va / denom, 0.0, 1.0)[:, None]
    ca = _CORNER_OFFSETS[np.asarray(tet)[a]]
    cb = _CORNER_OFFSETS[np.asarray(tet)[b]]
    return base + ca + t * (cb - ca)


def _interp_triangle(values, apex, others, base, tet):
    """One triangle from an apex corner against three opposite corners."""
    pts = [
        _edge_point(values, apex, others[:, j], base, tet) for j in range(3)
    ]
    return np.stack(pts, axis=1)  # (N, 3, 3)
