"""Memory-footprint model for KinectFusion configurations.

SLAMBench reports memory alongside speed/accuracy/power; for KinectFusion
the footprint is dominated by the TSDF volume (two float32 fields) plus
the per-frame image pyramids.  The model below mirrors the reference
implementation's buffer inventory and is exposed through the evaluators'
``extras`` so explorations can trade memory too (embedded devices care).
"""

from __future__ import annotations

from .params import KFusionParams

BYTES_F32 = 4


def volume_bytes(params: KFusionParams) -> int:
    """TSDF + weight fields."""
    voxels = params.volume_resolution**3
    return 2 * BYTES_F32 * voxels


def frame_buffers_bytes(params: KFusionParams, width: int,
                        height: int, levels: int = 3) -> int:
    """Input depth, filtered depth, and the vertex/normal pyramids."""
    input_px = width * height
    compute_px = input_px // (params.compute_size_ratio**2)
    total = BYTES_F32 * input_px  # raw depth
    px = compute_px
    pyramid_px = 0
    for _ in range(levels):
        pyramid_px += px
        px //= 4
    # filtered depth pyramid + vertex map + normal map (+ raycast maps).
    total += BYTES_F32 * pyramid_px  # depth pyramid
    total += 2 * 3 * BYTES_F32 * pyramid_px  # vertex + normal pyramids
    total += 2 * 3 * BYTES_F32 * compute_px  # raycast vertex + normal
    return total


def total_bytes(params: KFusionParams, width: int = 320,
                height: int = 240) -> int:
    """Whole-pipeline footprint for one configuration."""
    return volume_bytes(params) + frame_buffers_bytes(params, width, height)


#: Neighbourhood radius of the bilateral filter (needed to size the
#: fast path's zero-padded scratch image).
BILATERAL_RADIUS = 2


def stage_workspace_bytes(params: KFusionParams, width: int, height: int,
                          levels: int = 3) -> dict:
    """Per-stage split of the fast path's arena budget.

    The stage-graph compiler (:mod:`repro.graph.compiler`) plans the
    whole pipeline's arena footprint at compile time from the needs each
    stage declares; those needs are *this* split, so stage declarations
    and the run's budget (:func:`workspace_bytes`) are terms of one
    formula and the plan can never silently exceed the budget.  Keys are
    the canonical stage names; values sum exactly to
    :func:`workspace_bytes` (pinned by a unit test).
    """
    ratio = params.compute_size_ratio
    input_px = width * height
    # Two compute-pixel conventions coexist, faithfully to the historic
    # budget: the frame-buffer inventory divides the input pixel count
    # (``input_px // ratio**2``), the kernel scratch terms multiply the
    # floored per-axis sizes (``(w//r) * (h//r)``).
    fb_px = input_px // ratio**2
    cw, ch = width // ratio, height // ratio
    scratch_px = cw * ch
    px = fb_px
    pyramid_px = 0
    for _ in range(levels):
        pyramid_px += px
        px //= 4
    padded_px = (cw + 2 * BILATERAL_RADIUS) * (ch + 2 * BILATERAL_RADIUS)
    return {
        # raw depth + depth pyramid + vertex/normal pyramids + the
        # bilateral filter's padded image, accumulator, weight sum and
        # two temporaries
        "preprocess": BYTES_F32 * (input_px + 7 * pyramid_px
                                   + padded_px + 4 * scratch_px),
        # ICP per-pixel transform/projection scratch at the finest level
        "track": BYTES_F32 * 8 * scratch_px,
        # per-voxel camera coordinates, pixel indices and masks
        "integrate": BYTES_F32 * 8 * params.volume_resolution**3,
        # raycast output vertex/normal maps + ray directions (3),
        # per-ray march state (~4), hit map (~1.5)
        "raycast": BYTES_F32 * (2 * 3 * fb_px + 9 * scratch_px),
    }


def workspace_bytes(params: KFusionParams, width: int, height: int,
                    levels: int = 3) -> int:
    """Byte budget for the fast path's preallocated float32 arena.

    The :class:`repro.perf.FrameWorkspace` must fit inside this bound —
    it is the per-frame buffer inventory of :func:`frame_buffers_bytes`
    plus the scratch the optimized kernels reuse across frames instead of
    reallocating: the bilateral filter's padded image and accumulators,
    the raycaster's per-ray state and hit maps, the integrate kernel's
    per-voxel projection buffers, and the ICP solver's per-level gather
    and Jacobian buffers.  ``width``/``height`` are the *input* (sensor)
    resolution, as for :func:`frame_buffers_bytes`.  The per-stage split
    of the same budget is :func:`stage_workspace_bytes`.
    """
    return sum(stage_workspace_bytes(params, width, height, levels)
               .values())
