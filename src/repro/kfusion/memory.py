"""Memory-footprint model for KinectFusion configurations.

SLAMBench reports memory alongside speed/accuracy/power; for KinectFusion
the footprint is dominated by the TSDF volume (two float32 fields) plus
the per-frame image pyramids.  The model below mirrors the reference
implementation's buffer inventory and is exposed through the evaluators'
``extras`` so explorations can trade memory too (embedded devices care).
"""

from __future__ import annotations

from .params import KFusionParams

BYTES_F32 = 4


def volume_bytes(params: KFusionParams) -> int:
    """TSDF + weight fields."""
    voxels = params.volume_resolution**3
    return 2 * BYTES_F32 * voxels


def frame_buffers_bytes(params: KFusionParams, width: int,
                        height: int, levels: int = 3) -> int:
    """Input depth, filtered depth, and the vertex/normal pyramids."""
    input_px = width * height
    compute_px = input_px // (params.compute_size_ratio**2)
    total = BYTES_F32 * input_px  # raw depth
    px = compute_px
    pyramid_px = 0
    for _ in range(levels):
        pyramid_px += px
        px //= 4
    # filtered depth pyramid + vertex map + normal map (+ raycast maps).
    total += BYTES_F32 * pyramid_px  # depth pyramid
    total += 2 * 3 * BYTES_F32 * pyramid_px  # vertex + normal pyramids
    total += 2 * 3 * BYTES_F32 * compute_px  # raycast vertex + normal
    return total


def total_bytes(params: KFusionParams, width: int = 320,
                height: int = 240) -> int:
    """Whole-pipeline footprint for one configuration."""
    return volume_bytes(params) + frame_buffers_bytes(params, width, height)


#: Neighbourhood radius of the bilateral filter (needed to size the
#: fast path's zero-padded scratch image).
BILATERAL_RADIUS = 2

#: Voxel-block edge length of the sparse volume (kfusion.sparse.BLOCK;
#: duplicated here so the memory model stays import-light).
SPARSE_BLOCK = 8


def sparse_band_samples(mu: float, voxel: float) -> int:
    """Samples per ray of the sparse integrate's allocation ladder.

    The ladder spans ``[-(step + 3 voxels), +(mu + 3 voxels)]`` around
    each measured depth (``step`` being the raycast march step) and is
    spaced at most two voxels apart — with the allocator's ±1-voxel
    block dilation that leaves no coverage gaps along the ray.
    """
    step = max(0.75 * mu, voxel)
    span = (step + 3.0 * voxel) + (mu + 3.0 * voxel)
    return max(2, int(span / (2.0 * voxel)) + 2)


def sparse_chunk_blocks(blocks_per_side: int) -> int:
    """Blocks the sparse integrate updates per batch.

    Bounds the kernel's scratch to a fixed number of voxels regardless
    of how many blocks a frame allocates.
    """
    return min(1024, blocks_per_side**3)


def compute_pyramid_px(compute_width: int, compute_height: int,
                       levels: int = 3) -> int:
    """Total pixels over the compute-resolution pyramid.

    Mirrors ``build_pyramid``'s halving and early-out rules (stop on an
    odd level size or one about to drop below 8 per axis), so per-level
    buffer inventories summed over this count are exact.
    """
    total = 0
    h, w = compute_height, compute_width
    for level in range(levels):
        total += h * w
        if h % 2 or w % 2 or h // 2 < 8 or w // 2 < 8:
            break
        h, w = h // 2, w // 2
    return total


def stage_workspace_bytes(params: KFusionParams, width: int, height: int,
                          levels: int = 3, backend: str = "fast") -> dict:
    """Per-stage split of the fast path's arena budget.

    The stage-graph compiler (:mod:`repro.graph.compiler`) plans the
    whole pipeline's arena footprint at compile time from the needs each
    stage declares; those needs are *this* split, so stage declarations
    and the run's budget (:func:`workspace_bytes`) are terms of one
    formula and the plan can never silently exceed the budget.  Keys are
    the canonical stage names; values sum exactly to
    :func:`workspace_bytes` (pinned by a unit test).

    Preprocess and track charge the exact arena inventory of the shared
    fast kernels (buffer-by-buffer); the dense integrate/raycast terms
    keep their historic conservative estimates (the integrate slack is
    what absorbed modelling error before the split was exact).

    ``backend`` selects the kernel family the arena serves: the sparse
    backend swaps the dense integrate's per-voxel scratch for the
    allocation ladder + chunked block-update buffers and adds the
    raycaster's per-ray entry/exit clip state; its terms are exact, so
    the sparse arena is sized to the byte.
    """
    ratio = params.compute_size_ratio
    input_px = width * height
    # Two compute-pixel conventions coexist, faithfully to the historic
    # budget: the frame-buffer inventory divides the input pixel count
    # (``input_px // ratio**2``), the kernel scratch terms multiply the
    # floored per-axis sizes (``(w//r) * (h//r)``).
    fb_px = input_px // ratio**2
    cw, ch = width // ratio, height // ratio
    scratch_px = cw * ch
    pyramid_px = compute_pyramid_px(cw, ch, levels)
    padded_px = (cw + 2 * BILATERAL_RADIUS) * (ch + 2 * BILATERAL_RADIUS)
    if backend == "sparse":
        r = params.volume_resolution
        voxel = params.volume_size / r
        nb = -(-r // SPARSE_BLOCK)
        nbv = nb * SPARSE_BLOCK
        samples = sparse_band_samples(params.mu_distance, voxel)
        chunk_vox = sparse_chunk_blocks(nb) * SPARSE_BLOCK**3
        # Allocation ladder: per sample-point depth (f32) + camera/volume
        # points (2x f32x3) + voxel coords (i32x3) + validity (bool) +
        # dilation radius (i32) + 8 block keys (i64) = 109 bytes per
        # pixel-sample.
        integrate = 109 * scratch_px * samples
        # Chunked block update: 5 f32 + 4 i32 + 1 i64 + 2 bool fields
        # per voxel = 46 bytes, over one chunk of blocks.
        integrate += 46 * chunk_vox
        # Rotated per-axis coordinate vectors over the padded block grid.
        integrate += BYTES_F32 * 10 * nbv
        # Output vertex/normal maps (2x f32x3) + ray directions (f32x3)
        # + per-ray hit_t/enter/exit (3x f32) + hit mask (bool).
        raycast = (BYTES_F32 * (2 * 3 + 3 + 3) + 1) * scratch_px
    else:
        # per-voxel camera coordinates, pixel indices and masks
        integrate = BYTES_F32 * 8 * params.volume_resolution**3
        # raycast output vertex/normal maps + ray directions (3),
        # per-ray march state (~4), hit map (~1.5)
        raycast = BYTES_F32 * (2 * 3 * fb_px + 9 * scratch_px)
    return {
        # bilateral filter: padded image + depth/tap/accumulator/weight
        # scratch and the filtered output; pyramids: depth levels below
        # the finest (the filtered output IS level 0) + the vertex-stage
        # depth copies + vertex and normal maps, all per level.
        "preprocess": BYTES_F32 * (4 * scratch_px + 8 * pyramid_px
                                   + padded_px),
        # ICP gather scratch: reference points, current points and
        # reference normals (3x f32x3) per pyramid level.
        "track": BYTES_F32 * 9 * pyramid_px,
        "integrate": integrate,
        "raycast": raycast,
    }


def workspace_bytes(params: KFusionParams, width: int, height: int,
                    levels: int = 3, backend: str = "fast") -> int:
    """Byte budget for the fast path's preallocated float32 arena.

    The :class:`repro.perf.FrameWorkspace` must fit inside this bound —
    it is the per-frame buffer inventory of :func:`frame_buffers_bytes`
    plus the scratch the optimized kernels reuse across frames instead of
    reallocating: the bilateral filter's padded image and accumulators,
    the raycaster's per-ray state and hit maps, the integrate kernel's
    per-voxel projection buffers, and the ICP solver's per-level gather
    and Jacobian buffers.  ``width``/``height`` are the *input* (sensor)
    resolution, as for :func:`frame_buffers_bytes`.  The per-stage split
    of the same budget is :func:`stage_workspace_bytes`.
    """
    return sum(stage_workspace_bytes(params, width, height, levels,
                                     backend).values())
