"""Memory-footprint model for KinectFusion configurations.

SLAMBench reports memory alongside speed/accuracy/power; for KinectFusion
the footprint is dominated by the TSDF volume (two float32 fields) plus
the per-frame image pyramids.  The model below mirrors the reference
implementation's buffer inventory and is exposed through the evaluators'
``extras`` so explorations can trade memory too (embedded devices care).
"""

from __future__ import annotations

from .params import KFusionParams

BYTES_F32 = 4


def volume_bytes(params: KFusionParams) -> int:
    """TSDF + weight fields."""
    voxels = params.volume_resolution**3
    return 2 * BYTES_F32 * voxels


def frame_buffers_bytes(params: KFusionParams, width: int,
                        height: int, levels: int = 3) -> int:
    """Input depth, filtered depth, and the vertex/normal pyramids."""
    input_px = width * height
    compute_px = input_px // (params.compute_size_ratio**2)
    total = BYTES_F32 * input_px  # raw depth
    px = compute_px
    pyramid_px = 0
    for _ in range(levels):
        pyramid_px += px
        px //= 4
    # filtered depth pyramid + vertex map + normal map (+ raycast maps).
    total += BYTES_F32 * pyramid_px  # depth pyramid
    total += 2 * 3 * BYTES_F32 * pyramid_px  # vertex + normal pyramids
    total += 2 * 3 * BYTES_F32 * compute_px  # raycast vertex + normal
    return total


def total_bytes(params: KFusionParams, width: int = 320,
                height: int = 240) -> int:
    """Whole-pipeline footprint for one configuration."""
    return volume_bytes(params) + frame_buffers_bytes(params, width, height)
