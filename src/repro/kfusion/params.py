"""KinectFusion's algorithmic parameters.

These are exactly the tunables SLAMBench exposes and the PACT'16 /
HyperMapper studies explore (see DESIGN.md, "Design-space parameters").
:func:`parameter_specs` declares them through the framework's parameter
mechanism; :class:`KFusionParams` is the typed view the kernels consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import AlgorithmConfiguration, ParameterSpec
from ..errors import ConfigurationError

#: Depth-pyramid levels the pipeline builds (SLAMBench's fixed 3).
PYRAMID_LEVELS = 3

#: The reference implementation integrates unconditionally for the first
#: frames to bootstrap the model even if tracking is shaky.
BOOTSTRAP_FRAMES = 4

#: SLAMBench's default configuration (the paper's "default" reference
#: point: 256^3 volume, full-resolution compute, standard ICP schedule).
DEFAULTS = {
    "volume_resolution": 256,
    "volume_size": 4.8,
    "compute_size_ratio": 1,
    "mu_distance": 0.1,
    "icp_threshold": 1e-5,
    "pyramid_iterations_l0": 10,
    "pyramid_iterations_l1": 5,
    "pyramid_iterations_l2": 4,
    "integration_rate": 2,
    "tracking_rate": 1,
}


def parameter_specs() -> list[ParameterSpec]:
    """The KinectFusion design space, as framework parameter specs."""
    return [
        ParameterSpec(
            "volume_resolution", "ordinal", DEFAULTS["volume_resolution"],
            choices=(32, 48, 64, 96, 128, 192, 256),
            description="TSDF voxels per side",
        ),
        ParameterSpec(
            "volume_size", "real", DEFAULTS["volume_size"], low=2.0, high=8.0,
            description="physical volume extent in metres",
        ),
        ParameterSpec(
            "compute_size_ratio", "ordinal", DEFAULTS["compute_size_ratio"],
            choices=(1, 2, 4, 8),
            description="input downsampling factor before processing",
        ),
        ParameterSpec(
            "mu_distance", "real", DEFAULTS["mu_distance"], low=0.01, high=0.3,
            description="TSDF truncation band in metres",
        ),
        ParameterSpec(
            "icp_threshold", "real", DEFAULTS["icp_threshold"],
            low=1e-20, high=1e-2, log_scale=True,
            description="ICP early-termination threshold on the update norm",
        ),
        ParameterSpec(
            "pyramid_iterations_l0", "integer",
            DEFAULTS["pyramid_iterations_l0"], low=0, high=10,
            description="ICP iterations at the finest pyramid level",
        ),
        ParameterSpec(
            "pyramid_iterations_l1", "integer",
            DEFAULTS["pyramid_iterations_l1"], low=0, high=10,
            description="ICP iterations at the middle pyramid level",
        ),
        ParameterSpec(
            "pyramid_iterations_l2", "integer",
            DEFAULTS["pyramid_iterations_l2"], low=0, high=10,
            description="ICP iterations at the coarsest pyramid level",
        ),
        ParameterSpec(
            "integration_rate", "integer", DEFAULTS["integration_rate"],
            low=1, high=15,
            description="integrate depth into the TSDF every Nth frame",
        ),
        ParameterSpec(
            "tracking_rate", "integer", DEFAULTS["tracking_rate"],
            low=1, high=5,
            description="run the tracker every Nth frame",
        ),
    ]


@dataclass(frozen=True)
class KFusionParams:
    """Typed snapshot of a KinectFusion configuration."""

    volume_resolution: int = DEFAULTS["volume_resolution"]
    volume_size: float = DEFAULTS["volume_size"]
    compute_size_ratio: int = DEFAULTS["compute_size_ratio"]
    mu_distance: float = DEFAULTS["mu_distance"]
    icp_threshold: float = DEFAULTS["icp_threshold"]
    pyramid_iterations_l0: int = DEFAULTS["pyramid_iterations_l0"]
    pyramid_iterations_l1: int = DEFAULTS["pyramid_iterations_l1"]
    pyramid_iterations_l2: int = DEFAULTS["pyramid_iterations_l2"]
    integration_rate: int = DEFAULTS["integration_rate"]
    tracking_rate: int = DEFAULTS["tracking_rate"]

    def __post_init__(self):
        if self.volume_resolution < 8:
            raise ConfigurationError("volume_resolution must be >= 8")
        if self.volume_size <= 0:
            raise ConfigurationError("volume_size must be positive")
        if self.compute_size_ratio < 1:
            raise ConfigurationError("compute_size_ratio must be >= 1")
        if self.mu_distance <= 0:
            raise ConfigurationError("mu_distance must be positive")
        if self.icp_threshold <= 0:
            raise ConfigurationError("icp_threshold must be positive")
        if self.integration_rate < 1 or self.tracking_rate < 1:
            raise ConfigurationError("rates must be >= 1")

    @classmethod
    def from_configuration(cls, config: AlgorithmConfiguration) -> "KFusionParams":
        """Build from a validated framework configuration."""
        return cls(**{name: config[name] for name in DEFAULTS})

    @property
    def pyramid_iterations(self) -> tuple[int, int, int]:
        """ICP iterations from finest (level 0) to coarsest (level 2)."""
        return (
            self.pyramid_iterations_l0,
            self.pyramid_iterations_l1,
            self.pyramid_iterations_l2,
        )

    @property
    def voxel_size(self) -> float:
        """Edge length of one voxel in metres."""
        return self.volume_size / self.volume_resolution
