"""The KinectFusion SLAM system.

Glues the kernels together behind the framework's
:class:`~repro.core.api.SLAMSystem` lifecycle, exactly as SLAMBench's
KFusion port does:

1. *Preprocess*: downsample by the compute-size ratio, bilateral-filter,
   build the depth pyramid, lift to vertex/normal pyramids.
2. *Track*: multi-scale point-to-plane ICP against the raycast prediction
   (skipped on decimated frames; frame 0 bootstraps at the initial pose).
3. *Integrate*: fuse the frame into the TSDF (every ``integration_rate``-th
   frame while tracking is good, plus the first frames).
4. *Raycast*: render the surface prediction used by the next track step.

Every kernel launch is recorded in the frame's workload with its analytic
cost (``repro.kfusion.kernels``), which the platform simulator converts to
time and energy.
"""

from __future__ import annotations

import numpy as np

from ..core.api import SLAMSystem
from ..core.config import ParameterSpec
from ..core.frame import Frame
from ..core.outputs import OutputKind, TrackingStatus
from ..core.sensors import SensorSuite
from ..core.workload import FrameWorkload
from ..errors import ConfigurationError, DatasetError
from ..geometry import PinholeCamera, se3
from ..telemetry import current_tracer, stage
from . import kernels
from .params import KFusionParams, parameter_specs
from .preprocessing import downsample_depth
from .render import render_volume
from .tracking import ReferenceModel
from .volume import TSDFVolume

#: SLAMBench's default camera start: centred in x/y, at the volume's front
#: face, looking along +z into the volume.
INITIAL_POSE_FACTOR = (0.5, 0.5, 0.0)

#: The reference implementation integrates unconditionally for the first
#: frames to bootstrap the model even if tracking is shaky.
BOOTSTRAP_FRAMES = 4

PYRAMID_LEVELS = 3


class KinectFusion(SLAMSystem):
    """Dense RGB-D SLAM with a TSDF map and ICP tracking.

    Args:
        publish_render: also produce the GUI's shaded model render each
            frame (the ``model_render`` output, Figure 1's right panel).
            Off by default — it adds a second raycast per frame, and
            SLAMBench likewise only pays for it when the GUI is attached.
        robust_tracking: use Huber-weighted (IRLS) ICP instead of the
            reference implementation's plain least squares — an extension
            that defends against depth-edge artefacts and dropout.
        kernel_backend: which registered kernel implementation set runs
            the five hot per-frame kernels — ``"fast"`` (float32
            workspace kernels, the default) or ``"reference"`` (the
            float64 textbook kernels).  See :mod:`repro.perf`.
    """

    name = "kfusion"

    #: Huber inlier band used when robust tracking is enabled (metres).
    HUBER_DELTA_M = 0.02

    def __init__(self, publish_render: bool = False,
                 robust_tracking: bool = False,
                 kernel_backend: str | None = None):
        super().__init__()
        from ..perf import DEFAULT_KERNEL_BACKEND, get_kernel_backend

        self._publish_render = publish_render
        self._robust_tracking = robust_tracking
        # Resolve eagerly so an unknown name fails at construction.
        self._backend = get_kernel_backend(
            kernel_backend if kernel_backend is not None
            else DEFAULT_KERNEL_BACKEND
        )
        self._workspace = None
        self.params: KFusionParams | None = None
        self.volume: TSDFVolume | None = None
        self._camera: PinholeCamera | None = None
        self._input_camera: PinholeCamera | None = None
        self._pose = np.eye(4)  # camera-to-volume
        self._reference: ReferenceModel | None = None
        self._status = TrackingStatus.BOOTSTRAP
        self._last_track_rmse = 0.0

    @property
    def kernel_backend(self) -> str:
        """Name of the kernel backend this system runs."""
        return self._backend.name

    # -- SLAMSystem hooks ---------------------------------------------------
    def parameter_specs(self) -> list[ParameterSpec]:
        return parameter_specs()

    def do_init(self, sensors: SensorSuite) -> None:
        depth_sensor = sensors.require_depth()
        assert self.configuration is not None
        self.params = KFusionParams.from_configuration(self.configuration)

        self._input_camera = depth_sensor.camera
        try:
            self._camera = depth_sensor.camera.scaled(
                self.params.compute_size_ratio
            )
        except Exception as exc:
            raise ConfigurationError(
                f"compute_size_ratio {self.params.compute_size_ratio} "
                f"incompatible with input {depth_sensor.camera.shape}: {exc}"
            ) from exc
        if self._camera.width < 8 or self._camera.height < 8:
            raise ConfigurationError(
                f"compute resolution {self._camera.shape} too small"
            )

        self.volume = TSDFVolume(
            resolution=self.params.volume_resolution,
            size=self.params.volume_size,
        )
        # Per-run float32 buffer arena (None for workspace-less backends).
        self._workspace = self._backend.make_workspace(
            self._input_camera, self.params, PYRAMID_LEVELS
        )
        self._pose = se3.make_pose(
            np.eye(3),
            np.array(INITIAL_POSE_FACTOR) * self.params.volume_size,
        )
        self._reference = None
        self._status = TrackingStatus.BOOTSTRAP

        self.outputs.declare("pose", OutputKind.POSE)
        self.outputs.declare("pointcloud", OutputKind.POINTCLOUD)
        self.outputs.declare("tracking_status", OutputKind.TRACKING_STATUS)
        self.outputs.declare("track_rmse", OutputKind.SCALAR)
        if self._publish_render:
            self.outputs.declare("model_render", OutputKind.FRAME)
        self._last_render = None

    def do_process(self, frame: Frame, workload: FrameWorkload) -> TrackingStatus:
        assert self.params is not None and self.volume is not None
        assert self._camera is not None and self._input_camera is not None
        params = self.params
        cam = self._camera

        if frame.depth.shape != self._input_camera.shape:
            raise DatasetError(
                f"frame shape {frame.depth.shape} != sensor "
                f"{self._input_camera.shape}"
            )

        backend = self._backend
        ws = self._workspace

        # 1. Preprocessing -------------------------------------------------
        with stage(workload, "preprocess", frame=frame.index,
                   backend=backend.name):
            workload.add(kernels.acquire(self._input_camera.pixel_count))
            depth = downsample_depth(frame.depth, params.compute_size_ratio)
            workload.add(
                kernels.downsample(self._input_camera.pixel_count,
                                   cam.pixel_count)
            )
            depth = backend.bilateral_filter(depth, ws)
            workload.add(kernels.bilateral_filter(cam.pixel_count))

            pyramid = backend.build_pyramid(depth, PYRAMID_LEVELS, ws)
            for level in range(1, len(pyramid)):
                workload.add(kernels.half_sample(pyramid[level].size))
            vertices, normals, _cams = backend.vertex_normal_pyramid(
                pyramid, cam, ws
            )
            for level_depth in pyramid:
                workload.add(kernels.depth_to_vertex(level_depth.size))
                workload.add(kernels.vertex_to_normal(level_depth.size))

        # 2. Tracking --------------------------------------------------------
        with stage(workload, "track", frame=frame.index,
                   backend=backend.name):
            first_frame = self.frames_processed == 0
            should_track = (
                not first_frame
                and frame.index % params.tracking_rate == 0
                and self._reference is not None
            )
            tracked = first_frame  # frame 0 counts as tracked at the start pose
            if should_track:
                iters = params.pyramid_iterations[: len(vertices)]
                result = backend.track(
                    vertices,
                    normals,
                    self._reference,
                    self._pose,
                    iters,
                    params.icp_threshold,
                    ws,
                    huber_delta=(self.HUBER_DELTA_M
                                 if self._robust_tracking else None),
                )
                for level, used in enumerate(result.iterations_per_level):
                    level_pixels = (vertices[level].shape[0]
                                    * vertices[level].shape[1])
                    for _ in range(used):
                        workload.add(kernels.track_iteration(level_pixels))
                        workload.add(kernels.reduce_iteration(level_pixels))
                        workload.add(kernels.solve())
                self._last_track_rmse = result.rmse
                if result.tracked:
                    self._pose = result.pose
                    tracked = True
                    self._status = TrackingStatus.OK
                else:
                    self._status = TrackingStatus.LOST
            elif not first_frame:
                self._status = TrackingStatus.SKIPPED
            else:
                self._status = TrackingStatus.BOOTSTRAP

        # 3. Integration -----------------------------------------------------
        with stage(workload, "integrate", frame=frame.index,
                   backend=backend.name):
            should_integrate = (
                tracked or self.frames_processed < BOOTSTRAP_FRAMES
            ) and (frame.index % params.integration_rate == 0 or first_frame)
            if should_integrate:
                backend.integrate(
                    self.volume,
                    depth,
                    cam,
                    self._pose,
                    params.mu_distance,
                    ws,
                )
                workload.add(kernels.integrate(params.volume_resolution))

        # 4. Raycast the next reference ---------------------------------------
        with stage(workload, "raycast", frame=frame.index,
                   backend=backend.name):
            # The backend raycasts and stores the prediction in the volume
            # frame for projective association.
            self._reference = backend.raycast_model(
                self.volume,
                cam,
                self._pose,
                params.mu_distance,
                ws,
            )
            workload.add(
                kernels.raycast(
                    cam.pixel_count,
                    params.volume_size,
                    params.mu_distance,
                    params.voxel_size,
                )
            )

        # 5. Optional GUI render ----------------------------------------------
        if self._publish_render:
            # Tracer-only span: the render is not one of the four canonical
            # wall-time stages the simulator-side analyses consume.
            with current_tracer().span("render", frame=frame.index,
                                       backend=backend.name):
                self._last_render = render_volume(
                    self.volume, cam, self._pose, params.mu_distance
                )
                workload.add(kernels.render(cam.pixel_count))

        return self._status

    def do_update_outputs(self) -> None:
        assert self.volume is not None
        idx = self.frames_processed - 1
        self.outputs.get("pose").set(self._pose.copy(), idx)
        self.outputs.get("tracking_status").set(self._status, idx)
        self.outputs.get("track_rmse").set(self._last_track_rmse, idx)
        self.outputs.get("pointcloud").set(
            self.volume.extract_surface_points(), idx
        )
        if self._publish_render and self._last_render is not None:
            self.outputs.get("model_render").set(self._last_render, idx)

    def do_clean(self) -> None:
        self.volume = None
        self._reference = None

    # -- extras used by metrics/tests -----------------------------------------
    @property
    def pose(self) -> np.ndarray:
        """Current camera-to-volume pose estimate."""
        return self._pose.copy()

    @property
    def compute_camera(self) -> PinholeCamera:
        """Intrinsics at the compute resolution."""
        if self._camera is None:
            raise ConfigurationError("kfusion not initialised")
        return self._camera
