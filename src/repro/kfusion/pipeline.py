"""The KinectFusion SLAM system.

Glues the kernels together behind the framework's
:class:`~repro.core.api.SLAMSystem` lifecycle, exactly as SLAMBench's
KFusion port does:

1. *Preprocess*: downsample by the compute-size ratio, bilateral-filter,
   build the depth pyramid, lift to vertex/normal pyramids.
2. *Track*: multi-scale point-to-plane ICP against the raycast prediction
   (skipped on decimated frames; frame 0 bootstraps at the initial pose).
3. *Integrate*: fuse the frame into the TSDF (every ``integration_rate``-th
   frame while tracking is good, plus the first frames).
4. *Raycast*: render the surface prediction used by the next track step.

Since the stage-graph refactor the phases are *registered stages*
(:mod:`repro.kfusion.graphdef`) and the default execution path is a
compiled :class:`~repro.graph.PipelineInstance` — the declarative graph
the runtime compiler validated and arena-planned at init.  The historic
inline call sequence is kept verbatim as ``pipeline="legacy"``; the
differential harness (:mod:`repro.graph.diffrun`) proves both paths
bit-for-bit equivalent on every stream, for both kernel backends.

Every kernel launch is recorded in the frame's workload with its analytic
cost (``repro.kfusion.kernels``), which the platform simulator converts to
time and energy.
"""

from __future__ import annotations

import numpy as np

from ..core.api import SLAMSystem
from ..core.config import ParameterSpec
from ..core.frame import Frame
from ..core.outputs import OutputKind, TrackingStatus
from ..core.sensors import SensorSuite
from ..core.workload import FrameWorkload
from ..errors import ConfigurationError, DatasetError
from ..geometry import PinholeCamera, se3
from ..graph import StageContext, WorkspaceRequest, compile_graph
from ..telemetry import current_tracer, stage
from . import kernels
from .graphdef import kfusion_graph
from .params import (
    BOOTSTRAP_FRAMES,
    PYRAMID_LEVELS,
    KFusionParams,
    parameter_specs,
)
from .preprocessing import downsample_depth
from .render import render_volume
from .tracking import ReferenceModel, TrackResult
from .volume import TSDFVolume

#: SLAMBench's default camera start: centred in x/y, at the volume's front
#: face, looking along +z into the volume.
INITIAL_POSE_FACTOR = (0.5, 0.5, 0.0)

#: Execution paths: the compiled stage graph (default) vs the historic
#: inline call sequence the differential harness compares against.
PIPELINES = ("graph", "legacy")


class KinectFusion(SLAMSystem):
    """Dense RGB-D SLAM with a TSDF map and ICP tracking.

    Args:
        publish_render: also produce the GUI's shaded model render each
            frame (the ``model_render`` output, Figure 1's right panel).
            Off by default — it adds a second raycast per frame, and
            SLAMBench likewise only pays for it when the GUI is attached.
        robust_tracking: use Huber-weighted (IRLS) ICP instead of the
            reference implementation's plain least squares — an extension
            that defends against depth-edge artefacts and dropout.
        kernel_backend: which registered kernel implementation set runs
            the five hot per-frame kernels — ``"fast"`` (float32
            workspace kernels, the default), ``"reference"`` (the
            float64 textbook kernels), ``"sparse"`` (voxel-block volume
            with band-restricted integrate and space-skipping raycast)
            or ``"jit"`` (numba-compiled inner loops, registered only
            when numba is installed).  See :mod:`repro.perf`.
        pipeline: execution path — ``"graph"`` (the compiled stage
            graph, default) or ``"legacy"`` (the historic inline call
            sequence).  Proven equivalent by ``repro graph diff`` and
            ``tests/test_graph_equivalence.py``.
        taps: :class:`~repro.graph.TapSpec` stream taps (or
            ``(node, port)`` tuples) attached to the compiled graph —
            sampled intermediate frames become telemetry spans.  Graph
            pipeline only.
    """

    name = "kfusion"

    #: Huber inlier band used when robust tracking is enabled (metres).
    HUBER_DELTA_M = 0.02

    def __init__(self, publish_render: bool = False,
                 robust_tracking: bool = False,
                 kernel_backend: str | None = None,
                 pipeline: str = "graph",
                 taps: tuple = ()):
        super().__init__()
        from ..perf import DEFAULT_KERNEL_BACKEND, get_kernel_backend

        if pipeline not in PIPELINES:
            raise ConfigurationError(
                f"unknown pipeline {pipeline!r}; choices: {PIPELINES}"
            )
        if taps and pipeline != "graph":
            raise ConfigurationError(
                "stream taps require the graph pipeline"
            )
        self._publish_render = publish_render
        self._robust_tracking = robust_tracking
        self._pipeline = pipeline
        self._taps = tuple(taps)
        # Resolve eagerly so an unknown name fails at construction.
        self._backend = get_kernel_backend(
            kernel_backend if kernel_backend is not None
            else DEFAULT_KERNEL_BACKEND
        )
        self._workspace = None
        self._instance = None
        self.params: KFusionParams | None = None
        self.volume: TSDFVolume | None = None
        self._camera: PinholeCamera | None = None
        self._input_camera: PinholeCamera | None = None
        self._pose = np.eye(4)  # camera-to-volume
        self._reference: ReferenceModel | None = None
        self._status = TrackingStatus.BOOTSTRAP
        self._last_track_rmse = 0.0

    @property
    def kernel_backend(self) -> str:
        """Name of the kernel backend this system runs."""
        return self._backend.name

    @property
    def pipeline(self) -> str:
        """Execution path: ``"graph"`` or ``"legacy"``."""
        return self._pipeline

    @property
    def instance(self):
        """The compiled :class:`~repro.graph.PipelineInstance` (or None)."""
        return self._instance

    # -- SLAMSystem hooks ---------------------------------------------------
    def parameter_specs(self) -> list[ParameterSpec]:
        return parameter_specs()

    def do_init(self, sensors: SensorSuite) -> None:
        depth_sensor = sensors.require_depth()
        assert self.configuration is not None
        self.params = KFusionParams.from_configuration(self.configuration)

        self._input_camera = depth_sensor.camera
        try:
            self._camera = depth_sensor.camera.scaled(
                self.params.compute_size_ratio
            )
        except Exception as exc:
            raise ConfigurationError(
                f"compute_size_ratio {self.params.compute_size_ratio} "
                f"incompatible with input {depth_sensor.camera.shape}: {exc}"
            ) from exc
        if self._camera.width < 8 or self._camera.height < 8:
            raise ConfigurationError(
                f"compute resolution {self._camera.shape} too small"
            )

        # The backend picks the map representation: dense grid for
        # reference/fast/jit, lazily allocated voxel blocks for sparse.
        self.volume = self._backend.make_volume(
            resolution=self.params.volume_resolution,
            size=self.params.volume_size,
        )
        # Per-run float32 buffer arena (None for workspace-less backends).
        self._workspace = self._backend.make_workspace(
            self._input_camera, self.params, PYRAMID_LEVELS
        )
        if self._pipeline == "graph":
            spec = kfusion_graph(publish_render=self._publish_render)
            if self._taps:
                spec = spec.with_taps(self._coerce_taps())
            # Compile-time arena plan: the graph's summed stage needs
            # must fit the workspace budget before the first frame runs.
            request = budget = None
            if self._workspace is not None:
                request = WorkspaceRequest(
                    params=self.params,
                    camera=self._input_camera,
                    levels=PYRAMID_LEVELS,
                    backend=self._backend.name,
                )
                budget = self._workspace.budget_bytes
            self._instance = compile_graph(
                spec, workspace_request=request, arena_budget=budget
            )
        self._pose = se3.make_pose(
            np.eye(3),
            np.array(INITIAL_POSE_FACTOR) * self.params.volume_size,
        )
        self._reference = None
        self._status = TrackingStatus.BOOTSTRAP

        self.outputs.declare("pose", OutputKind.POSE)
        self.outputs.declare("pointcloud", OutputKind.POINTCLOUD)
        self.outputs.declare("tracking_status", OutputKind.TRACKING_STATUS)
        self.outputs.declare("track_rmse", OutputKind.SCALAR)
        if self._publish_render:
            self.outputs.declare("model_render", OutputKind.FRAME)
        self._last_render = None

    def _coerce_taps(self):
        from ..graph import TapSpec

        taps = []
        for tap in self._taps:
            if isinstance(tap, TapSpec):
                taps.append(tap)
            else:
                node, port = tap
                taps.append(TapSpec(node=node, port=port))
        return taps

    def do_process(self, frame: Frame, workload: FrameWorkload) -> TrackingStatus:
        assert self.params is not None and self.volume is not None
        assert self._camera is not None and self._input_camera is not None

        if frame.depth.shape != self._input_camera.shape:
            raise DatasetError(
                f"frame shape {frame.depth.shape} != sensor "
                f"{self._input_camera.shape}"
            )
        if self._pipeline == "graph":
            ctx = StageContext(
                frame=frame,
                workload=workload,
                state=self,
                backend=self._backend,
                workspace=self._workspace,
                params=self.params,
            )
            self._instance.run_frame(ctx)
            return self._status
        return self._process_legacy(frame, workload)

    def _process_legacy(self, frame: Frame,
                        workload: FrameWorkload) -> TrackingStatus:
        """The historic inline call sequence, kept verbatim.

        The differential harness (``repro graph diff``) runs this path
        against the compiled graph frame-by-frame; it must stay the
        independent reference implementation, so changes here or in
        :mod:`repro.kfusion.graphdef` must land in both.
        """
        params = self.params
        cam = self._camera

        backend = self._backend
        ws = self._workspace

        # 1. Preprocessing -------------------------------------------------
        with stage(workload, "preprocess", frame=frame.index,
                   backend=backend.name):
            workload.add(kernels.acquire(self._input_camera.pixel_count))
            depth = downsample_depth(frame.depth, params.compute_size_ratio)
            workload.add(
                kernels.downsample(self._input_camera.pixel_count,
                                   cam.pixel_count)
            )
            depth = backend.bilateral_filter(depth, ws)
            workload.add(kernels.bilateral_filter(cam.pixel_count))

            pyramid = backend.build_pyramid(depth, PYRAMID_LEVELS, ws)
            for level in range(1, len(pyramid)):
                workload.add(kernels.half_sample(pyramid[level].size))
            vertices, normals, _cams = backend.vertex_normal_pyramid(
                pyramid, cam, ws
            )
            for level_depth in pyramid:
                workload.add(kernels.depth_to_vertex(level_depth.size))
                workload.add(kernels.vertex_to_normal(level_depth.size))

        # 2. Tracking --------------------------------------------------------
        with stage(workload, "track", frame=frame.index,
                   backend=backend.name):
            first_frame = self.frames_processed == 0
            should_track = (
                not first_frame
                and frame.index % params.tracking_rate == 0
                and self._reference is not None
            )
            tracked = first_frame  # frame 0 counts as tracked at the start pose
            if should_track:
                iters = params.pyramid_iterations[: len(vertices)]
                result = backend.track(
                    vertices,
                    normals,
                    self._reference,
                    self._pose,
                    iters,
                    params.icp_threshold,
                    ws,
                    huber_delta=(self.HUBER_DELTA_M
                                 if self._robust_tracking else None),
                )
                for level, used in enumerate(result.iterations_per_level):
                    level_pixels = (vertices[level].shape[0]
                                    * vertices[level].shape[1])
                    for _ in range(used):
                        workload.add(kernels.track_iteration(level_pixels))
                        workload.add(kernels.reduce_iteration(level_pixels))
                        workload.add(kernels.solve())
                self._last_track_rmse = result.rmse
                if result.tracked:
                    self._pose = result.pose
                    tracked = True
                    self._status = TrackingStatus.OK
                else:
                    self._status = TrackingStatus.LOST
            elif not first_frame:
                self._status = TrackingStatus.SKIPPED
            else:
                self._status = TrackingStatus.BOOTSTRAP

        # 3. Integration -----------------------------------------------------
        with stage(workload, "integrate", frame=frame.index,
                   backend=backend.name):
            should_integrate = (
                tracked or self.frames_processed < BOOTSTRAP_FRAMES
            ) and (frame.index % params.integration_rate == 0 or first_frame)
            if should_integrate:
                backend.integrate(
                    self.volume,
                    depth,
                    cam,
                    self._pose,
                    params.mu_distance,
                    ws,
                )
                workload.add(kernels.integrate(params.volume_resolution))

        # 4. Raycast the next reference ---------------------------------------
        with stage(workload, "raycast", frame=frame.index,
                   backend=backend.name):
            # The backend raycasts and stores the prediction in the volume
            # frame for projective association.
            self._reference = backend.raycast_model(
                self.volume,
                cam,
                self._pose,
                params.mu_distance,
                ws,
            )
            workload.add(
                kernels.raycast(
                    cam.pixel_count,
                    params.volume_size,
                    params.mu_distance,
                    params.voxel_size,
                )
            )

        # 5. Optional GUI render ----------------------------------------------
        if self._publish_render:
            # Tracer-only span: the render is not one of the four canonical
            # wall-time stages the simulator-side analyses consume.
            with current_tracer().span("render", frame=frame.index,
                                       backend=backend.name):
                self._last_render = render_volume(
                    self.volume, cam, self._pose, params.mu_distance
                )
                workload.add(kernels.render(cam.pixel_count))

        return self._status

    def do_update_outputs(self) -> None:
        assert self.volume is not None
        idx = self.frames_processed - 1
        self.outputs.get("pose").set(self._pose.copy(), idx)
        self.outputs.get("tracking_status").set(self._status, idx)
        self.outputs.get("track_rmse").set(self._last_track_rmse, idx)
        self.outputs.get("pointcloud").set(
            self.volume.extract_surface_points(), idx
        )
        tracer = current_tracer()
        tracer.gauge("kfusion.volume.allocated_blocks",
                     self.volume.allocated_blocks)
        tracer.gauge("kfusion.volume.allocated_bytes",
                     self.volume.allocated_bytes)
        if self._publish_render and self._last_render is not None:
            self.outputs.get("model_render").set(self._last_render, idx)

    def do_clean(self) -> None:
        self.volume = None
        self._reference = None
        self._instance = None

    # -- graph-stage state access (repro.kfusion.graphdef) --------------------
    @property
    def input_camera(self) -> PinholeCamera:
        """Sensor-resolution intrinsics."""
        if self._input_camera is None:
            raise ConfigurationError("kfusion not initialised")
        return self._input_camera

    @property
    def pose_estimate(self) -> np.ndarray:
        """The live camera-to-volume pose the stages read and refine."""
        return self._pose

    @property
    def reference(self) -> ReferenceModel | None:
        """Last raycast surface prediction (track's alignment target)."""
        return self._reference

    @property
    def huber_delta(self) -> float | None:
        """Huber band for robust tracking (None = plain least squares)."""
        return self.HUBER_DELTA_M if self._robust_tracking else None

    def record_track(self, result: TrackResult) -> None:
        """Fold one ICP result into the pipeline state (pose + rmse)."""
        self._last_track_rmse = result.rmse
        if result.tracked:
            self._pose = result.pose

    def set_status(self, status: TrackingStatus) -> None:
        self._status = status

    def set_reference(self, reference: ReferenceModel) -> None:
        self._reference = reference

    def set_render(self, render) -> None:
        self._last_render = render

    # -- extras used by metrics/tests -----------------------------------------
    @property
    def pose(self) -> np.ndarray:
        """Current camera-to-volume pose estimate."""
        return self._pose.copy()

    @property
    def compute_camera(self) -> PinholeCamera:
        """Intrinsics at the compute resolution."""
        if self._camera is None:
            raise ConfigurationError("kfusion not initialised")
        return self._camera
