"""TSDF raycasting (KinectFusion's ``raycastKernel``).

Marches a ray per pixel through the volume, finds the zero crossing of the
interpolated TSDF, and returns the predicted vertex and normal maps the
tracker aligns against.  Step size and refinement follow the reference
implementation: coarse steps of ~0.75*mu outside the surface band, with a
linear interpolation of the crossing once a sign change is seen.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..geometry import PinholeCamera, se3
from .volume import TSDFVolume


@contract(pose_volume_from_camera="4,4:f64")
def raycast(
    volume: TSDFVolume,
    camera: PinholeCamera,
    pose_volume_from_camera: np.ndarray,
    mu: float,
    near: float = 0.1,
    far: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Render predicted vertex/normal maps from the TSDF.

    Returns ``(vertex_map, normal_map)``, both ``(H, W, 3)`` in the
    *camera* frame of ``pose_volume_from_camera`` — ready for the tracker,
    zeros at pixels where no surface was found.
    """
    if far is None:
        far = float(np.sqrt(3.0)) * volume.size + near

    dirs_cam = camera.pixel_rays().reshape(-1, 3)
    dirs_cam = dirs_cam / np.linalg.norm(dirs_cam, axis=-1, keepdims=True)
    R = pose_volume_from_camera[:3, :3]
    origin = pose_volume_from_camera[:3, 3]
    dirs_vol = dirs_cam @ R.T

    n_rays = dirs_vol.shape[0]
    step = max(0.75 * mu, volume.voxel_size)

    t = np.full(n_rays, near)
    prev_val = np.full(n_rays, 1.0)
    prev_valid = np.zeros(n_rays, dtype=bool)
    hit_t = np.zeros(n_rays)
    hit = np.zeros(n_rays, dtype=bool)
    alive = np.ones(n_rays, dtype=bool)

    max_steps = int(np.ceil((far - near) / step)) + 1
    for _ in range(max_steps):
        if not alive.any():
            break
        idx = np.flatnonzero(alive)
        pts = origin + t[idx, None] * dirs_vol[idx]
        val, valid = volume.sample_trilinear(pts)

        # Zero crossing: previous sample positive, current negative.
        crossing = prev_valid[idx] & valid & (prev_val[idx] > 0.0) & (val <= 0.0)
        if crossing.any():
            c = idx[crossing]
            f0 = prev_val[c]
            f1 = val[crossing]
            denom = np.where(np.abs(f0 - f1) > 1e-12, f0 - f1, 1e-12)
            frac = f0 / denom
            hit_t[c] = (t[c] - step) + frac * step
            hit[c] = True
            alive[c] = False

        rest = idx[~crossing]
        prev_val[rest] = val[~crossing]
        prev_valid[rest] = valid[~crossing]
        t[rest] += step
        dead = t[rest] > far
        alive[rest[dead]] = False

    vertices = np.zeros((n_rays, 3))
    normals = np.zeros((n_rays, 3))
    if hit.any():
        pts_vol = origin + hit_t[hit, None] * dirs_vol[hit]
        grad = volume.gradient(pts_vol)
        norm = np.linalg.norm(grad, axis=-1)
        good = norm > 1e-12
        n_vol = np.zeros_like(grad)
        n_vol[good] = grad[good] / norm[good, None]

        cam_from_vol = se3.inverse(pose_volume_from_camera)
        vertices_hit = se3.transform_points(cam_from_vol, pts_vol)
        normals_hit = n_vol @ cam_from_vol[:3, :3].T

        hit_idx = np.flatnonzero(hit)
        keep = good
        vertices[hit_idx[keep]] = vertices_hit[keep]
        normals[hit_idx[keep]] = normals_hit[keep]

    shape = (camera.height, camera.width, 3)
    return vertices.reshape(shape), normals.reshape(shape)
