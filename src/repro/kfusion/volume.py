"""The truncated signed distance function (TSDF) volume.

KinectFusion's map is a dense voxel grid storing, per voxel, a truncated
signed distance to the nearest surface and an accumulation weight.  The
volume is axis-aligned in the *volume frame*; the pipeline places the
camera at a fixed initial pose inside it (SLAMBench's ``initial_pos_factor``
puts the camera at the volume centre's xy and at z=0 looking in).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class TSDFVolume:
    """Dense TSDF voxel grid.

    Attributes:
        resolution: voxels per side.
        size: physical edge length in metres.
        tsdf: ``(r, r, r)`` float32 array of truncated signed distances,
            normalised to [-1, 1] (distance / mu).
        weight: ``(r, r, r)`` float32 accumulation weights.
    """

    def __init__(self, resolution: int, size: float):
        if resolution < 4:
            raise ConfigurationError(f"volume resolution too small: {resolution}")
        if size <= 0:
            raise ConfigurationError(f"volume size must be positive: {size}")
        self.resolution = int(resolution)
        self.size = float(size)
        self.tsdf = np.ones(
            (self.resolution,) * 3, dtype=np.float32
        )  # 1.0 == "far outside"
        self.weight = np.zeros((self.resolution,) * 3, dtype=np.float32)

    @property
    def voxel_size(self) -> float:
        return self.size / self.resolution

    def reset(self) -> None:
        """Clear the volume to the empty state."""
        self.tsdf.fill(1.0)
        self.weight.fill(0.0)

    def voxel_centers_world(self) -> np.ndarray:
        """World (volume-frame) coordinates of all voxel centres, ``(r^3, 3)``.

        Voxel (i, j, k) covers ``[i, i+1) * voxel_size`` along x, so its
        centre is at ``(i + 0.5) * voxel_size``.
        """
        r = self.resolution
        idx = (np.arange(r, dtype=float) + 0.5) * self.voxel_size
        gx, gy, gz = np.meshgrid(idx, idx, idx, indexing="ij")
        return np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)

    def world_to_voxel(self, points: np.ndarray) -> np.ndarray:
        """Continuous voxel coordinates of volume-frame points."""
        return np.asarray(points, dtype=float) / self.voxel_size - 0.5

    def contains(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Mask of points inside the volume (with an optional metre margin)."""
        p = np.asarray(points, dtype=float)
        return np.all((p >= margin) & (p <= self.size - margin), axis=-1)

    def sample_trilinear(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Trilinearly interpolated TSDF at volume-frame ``points``.

        Returns ``(values, valid)``; points outside the grid or in
        unobserved space (any corner with zero weight) are invalid and get
        value 1.0.
        """
        p = self.world_to_voxel(points)
        r = self.resolution
        base = np.floor(p).astype(int)
        frac = p - base

        inside = np.all((base >= 0) & (base <= r - 2), axis=-1)
        base_c = np.clip(base, 0, r - 2)

        values = np.zeros(len(p))
        observed = np.ones(len(p), dtype=bool)
        for corner in range(8):
            ox, oy, oz = corner & 1, (corner >> 1) & 1, (corner >> 2) & 1
            ix = base_c[:, 0] + ox
            iy = base_c[:, 1] + oy
            iz = base_c[:, 2] + oz
            w = (
                (frac[:, 0] if ox else 1.0 - frac[:, 0])
                * (frac[:, 1] if oy else 1.0 - frac[:, 1])
                * (frac[:, 2] if oz else 1.0 - frac[:, 2])
            )
            values += w * self.tsdf[ix, iy, iz]
            observed &= self.weight[ix, iy, iz] > 0.0

        valid = inside & observed
        values = np.where(valid, values, 1.0)
        return values, valid

    def gradient(self, points: np.ndarray, eps: float | None = None) -> np.ndarray:
        """Central-difference TSDF gradient at volume-frame points, ``(N, 3)``.

        Used to shade raycast normals.  ``eps`` defaults to one voxel.
        """
        if eps is None:
            eps = self.voxel_size
        p = np.asarray(points, dtype=float)
        g = np.zeros_like(p)
        for axis in range(3):
            offset = np.zeros(3)
            offset[axis] = eps
            hi, _ = self.sample_trilinear(p + offset)
            lo, _ = self.sample_trilinear(p - offset)
            g[:, axis] = (hi - lo) / (2.0 * eps)
        return g

    def occupancy_mask(self) -> np.ndarray:
        """Boolean observed-voxel mask, ``(r, r, r)`` (one weight scan).

        The single occupancy pass :meth:`occupied_fraction` and
        :meth:`extract_surface_points` both build on; callers running
        several occupancy-derived queries per frame can compute it once
        and pass it down.
        """
        return self.weight > 0.0

    def occupied_fraction(self, occupancy: np.ndarray | None = None) -> float:
        """Fraction of voxels that have been observed at least once."""
        mask = occupancy if occupancy is not None else self.occupancy_mask()
        return float(np.count_nonzero(mask)) / self.weight.size

    def extract_surface_points(self, threshold: float = 0.25,
                               occupancy: np.ndarray | None = None
                               ) -> np.ndarray:
        """Volume-frame points near the zero crossing, ``(N, 3)``.

        A cheap surface extraction (voxels with small |tsdf| and non-zero
        weight) used by the point-cloud output and reconstruction metric.
        Shares :meth:`occupancy_mask`'s weight pass; the threshold test
        narrows that mask in place on a private copy.
        """
        mask = (occupancy.copy() if occupancy is not None
                else self.occupancy_mask())
        mask &= np.abs(self.tsdf) < threshold
        idx = np.argwhere(mask)
        return (idx.astype(float) + 0.5) * self.voxel_size

    @property
    def allocated_blocks(self) -> int:
        """8³-block count backing the grid (dense: the whole grid).

        The sparse volume reports only the blocks it lazily allocated;
        the dense grid is fully materialised at construction, so the
        telemetry gauge reads the full block grid here.
        """
        per_side = -(-self.resolution // 8)
        return per_side**3

    @property
    def allocated_bytes(self) -> int:
        """Actual bytes held by the voxel fields."""
        return self.tsdf.nbytes + self.weight.nbytes
