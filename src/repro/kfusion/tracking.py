"""Multi-scale point-to-plane ICP tracking (KinectFusion's ``trackKernel``
and ``reduceKernel`` followed by the host-side ``solve``).

The tracker aligns the current frame's vertex pyramid against the surface
prediction raycast from the model at the previous pose, using projective
data association and a point-to-plane error metric, coarse-to-fine over the
pyramid, with Gauss-Newton updates on SE(3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TrackingError
from ..geometry import PinholeCamera, se3

#: Association gates from the reference implementation.
DIST_THRESHOLD = 0.1  # metres
NORMAL_THRESHOLD = 0.8  # max angle between normals, radians

#: Track-quality gates (SLAMBench's checkPoseKernel).
MIN_INLIER_FRACTION = 0.10
MAX_RMSE = 0.02  # metres


@dataclass(frozen=True)
class TrackResult:
    """Outcome of tracking one frame.

    Attributes:
        pose: estimated camera-to-volume 4x4 pose.
        tracked: whether the estimate passed the quality gates.
        rmse: point-to-plane RMS error of the final iteration (metres).
        inlier_fraction: matched pixels / valid pixels at the finest level.
        iterations: total Gauss-Newton iterations executed (all levels).
        iterations_per_level: iterations actually executed at each level,
            finest first (drives the simulator's tracking cost).
    """

    pose: np.ndarray
    tracked: bool
    rmse: float
    inlier_fraction: float
    iterations: int
    iterations_per_level: tuple[int, ...] = ()


@dataclass(frozen=True)
class ReferenceModel:
    """Surface prediction the tracker aligns against.

    Vertex/normal maps are stored in the *volume* frame, at the compute
    resolution, together with the camera pose they were rendered from.
    """

    vertices: np.ndarray  # (H, W, 3) volume frame
    normals: np.ndarray  # (H, W, 3) volume frame
    camera: PinholeCamera
    pose_volume_from_camera: np.ndarray  # pose used for the raycast


def _huber_weights(residuals: np.ndarray, delta: float) -> np.ndarray:
    """Huber IRLS weights: 1 inside the inlier band, delta/|e| outside.

    Down-weights the heavy-tailed residuals that depth-edge artefacts and
    dropout produce, without the hard cut a distance gate alone gives.
    """
    a = np.abs(residuals)
    w = np.ones_like(a)
    outside = a > delta
    w[outside] = delta / a[outside]
    return w


def _solve_level(
    cur_vertices: np.ndarray,
    cur_normals: np.ndarray,
    reference: ReferenceModel,
    pose: np.ndarray,
    iterations: int,
    icp_threshold: float,
    huber_delta: float | None = None,
) -> tuple[np.ndarray, float, float, int]:
    """Run Gauss-Newton at one pyramid level.

    Returns ``(pose, rmse, inlier_fraction, iterations_used)``.
    """
    h, w = cur_vertices.shape[:2]
    cur_v = cur_vertices.reshape(-1, 3)
    cur_n = cur_normals.reshape(-1, 3)
    valid_cur = np.any(cur_n != 0.0, axis=-1)
    n_valid = max(int(valid_cur.sum()), 1)

    ref_v = reference.vertices.reshape(-1, 3)
    ref_n = reference.normals.reshape(-1, 3)
    ref_cam = reference.camera
    cam_from_vol_ref = se3.inverse(reference.pose_volume_from_camera)

    rmse = float("inf")
    inlier_fraction = 0.0
    used = 0

    for _ in range(iterations):
        # Transform current vertices into the volume frame.
        p_vol = se3.transform_points(pose, cur_v)
        n_vol = cur_n @ pose[:3, :3].T

        # Projective association: project into the reference camera.
        p_ref_cam = se3.transform_points(cam_from_vol_ref, p_vol)
        pixels, in_view = ref_cam.project(p_ref_cam)
        finite = np.nan_to_num(pixels, nan=0.0, posinf=0.0, neginf=0.0)
        u = np.clip(np.round(finite[:, 0]).astype(int), 0, ref_cam.width - 1)
        v = np.clip(np.round(finite[:, 1]).astype(int), 0, ref_cam.height - 1)
        flat = v * ref_cam.width + u

        r_v = ref_v[flat]
        r_n = ref_n[flat]
        has_ref = np.any(r_n != 0.0, axis=-1)

        diff = r_v - p_vol
        dist = np.linalg.norm(diff, axis=-1)
        cos_angle = np.einsum("ij,ij->i", n_vol, r_n)

        matched = (
            valid_cur
            & in_view
            & has_ref
            & (dist < DIST_THRESHOLD)
            & (cos_angle > np.cos(NORMAL_THRESHOLD))
        )
        n_matched = int(matched.sum())
        inlier_fraction = n_matched / n_valid
        if n_matched < 6:
            break

        e = np.einsum("ij,ij->i", r_n[matched], diff[matched])
        rmse = float(np.sqrt(np.mean(e * e)))

        # Point-to-plane Jacobian rows: [n, p x n] for xi = [v, w].
        n_m = r_n[matched]
        p_m = p_vol[matched]
        J = np.concatenate([n_m, np.cross(p_m, n_m)], axis=1)

        if huber_delta is not None:
            w = _huber_weights(e, huber_delta)
            A = (J * w[:, None]).T @ J
            b = (J * w[:, None]).T @ e
        else:
            A = J.T @ J
            b = J.T @ e
        # Levenberg damping scaled to the problem size: planar scenes make
        # A near-singular along in-plane translations, and an undamped
        # Gauss-Newton step can slide arbitrarily far along that null
        # space while keeping the point-to-plane residual at zero.
        lam = 1e-4 * np.trace(A) / 6.0 + 1e-12
        try:
            xi = np.linalg.solve(A + lam * np.eye(6), b)
        except np.linalg.LinAlgError:
            break
        # Trust region: a single ICP step larger than this is never a
        # refinement between consecutive video frames.
        norm = float(np.linalg.norm(xi))
        if norm > 0.1:
            xi = xi * (0.1 / norm)
        used += 1

        pose = se3.se3_exp(xi) @ pose
        pose[:3, :3] = se3.orthonormalize(pose[:3, :3])

        if float(np.linalg.norm(xi)) < icp_threshold:
            break

    return pose, rmse, inlier_fraction, used


def track(
    vertex_pyramid: list[np.ndarray],
    normal_pyramid: list[np.ndarray],
    reference: ReferenceModel,
    initial_pose: np.ndarray,
    pyramid_iterations: tuple[int, ...],
    icp_threshold: float,
    huber_delta: float | None = None,
) -> TrackResult:
    """Track one frame against the reference surface prediction.

    Args:
        vertex_pyramid / normal_pyramid: current-frame camera-frame maps,
            finest level first (as built by ``vertex_normal_pyramid``).
        reference: volume-frame surface prediction (finest resolution).
        initial_pose: camera-to-volume pose prior (previous frame's pose).
        pyramid_iterations: iterations per level, finest first.
        icp_threshold: early-exit threshold on the SE(3) update norm.
        huber_delta: enable robust (Huber-IRLS) weighting with this inlier
            band in metres; ``None`` keeps the reference implementation's
            plain least squares.
    """
    if len(vertex_pyramid) != len(pyramid_iterations):
        raise TrackingError(
            f"{len(vertex_pyramid)} pyramid levels but "
            f"{len(pyramid_iterations)} iteration counts"
        )
    pose = np.asarray(initial_pose, dtype=float).copy()
    rmse = float("inf")
    inlier_fraction = 0.0
    per_level = [0] * len(vertex_pyramid)

    # Coarse-to-fine: iterate levels from last (coarsest) to first.
    for level in reversed(range(len(vertex_pyramid))):
        iters = pyramid_iterations[level]
        if iters <= 0:
            continue
        pose, rmse, inlier_fraction, used = _solve_level(
            vertex_pyramid[level],
            normal_pyramid[level],
            reference,
            pose,
            iters,
            icp_threshold,
            huber_delta=huber_delta,
        )
        per_level[level] = used

    tracked = (
        np.isfinite(rmse)
        and rmse < MAX_RMSE
        and inlier_fraction > MIN_INLIER_FRACTION
    )
    return TrackResult(
        pose=pose,
        tracked=bool(tracked),
        rmse=float(rmse),
        inlier_fraction=float(inlier_fraction),
        iterations=int(sum(per_level)),
        iterations_per_level=tuple(per_level),
    )
