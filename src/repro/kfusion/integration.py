"""TSDF integration (KinectFusion's ``integrateKernel``).

Every voxel centre is projected into the current depth frame; voxels that
land on a valid measurement update their truncated signed distance by a
weighted running average.  The signed distance is the projective distance
along the camera ray (depth difference), truncated at ``mu``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.contracts import contract
from ..geometry import PinholeCamera, se3
from .volume import TSDFVolume

MAX_WEIGHT = 100.0


@contract(depth="H,W:f64", pose_volume_from_camera="4,4:f64")
def integrate(
    volume: TSDFVolume,
    depth: np.ndarray,
    camera: PinholeCamera,
    pose_volume_from_camera: np.ndarray,
    mu: float,
) -> int:
    """Fuse one depth frame into the TSDF volume.

    Args:
        volume: the TSDF volume (volume frame = world frame here).
        depth: ``(H, W)`` metres at the compute resolution, 0 = invalid.
        camera: intrinsics matching ``depth``.
        pose_volume_from_camera: camera-to-volume 4x4 pose.
        mu: truncation band in metres.

    Returns:
        The number of voxels updated (useful for tests and ablations).
    """
    centers = volume.voxel_centers_world()
    cam_from_vol = se3.inverse(pose_volume_from_camera)
    pts_cam = se3.transform_points(cam_from_vol, centers)

    pixels, in_view = camera.project(pts_cam)
    if not in_view.any():
        return 0

    u = np.round(pixels[:, 0]).astype(int)
    v = np.round(pixels[:, 1]).astype(int)
    u = np.clip(u, 0, camera.width - 1)
    v = np.clip(v, 0, camera.height - 1)
    measured = np.where(in_view, depth[v, u], 0.0)
    has_depth = in_view & (measured > 0.0)

    # Projective signed distance: measured depth minus voxel depth along z.
    sdf = measured - pts_cam[:, 2]
    # Voxels far behind the surface are occluded — do not update them.
    updatable = has_depth & (sdf > -mu)
    if not updatable.any():
        return 0

    tsdf_new = np.clip(sdf / mu, -1.0, 1.0)

    flat_t = volume.tsdf.reshape(-1)
    flat_w = volume.weight.reshape(-1)
    idx = np.flatnonzero(updatable)
    w_old = flat_w[idx]
    w_new = np.minimum(w_old + 1.0, MAX_WEIGHT)
    flat_t[idx] = (flat_t[idx] * w_old + tsdf_new[idx]) / w_new
    flat_w[idx] = w_new
    return int(idx.size)
