"""Sparse feature-based visual odometry — the third algorithm class.

KinectFusion is dense frame-to-model; ``ICPOdometry`` is dense
frame-to-frame; this system is *sparse*: it detects salient 3-D points on
the depth image (depth-curvature corners), matches them between
consecutive frames by predicted proximity, and estimates the motion with
a trimmed closed-form rigid fit (Umeyama).  It represents the
feature-based SLAM family in cross-algorithm comparisons: far less
compute than dense ICP, more fragile on smooth geometry.
"""

from __future__ import annotations

import numpy as np

from ..core.api import SLAMSystem
from ..core.config import ParameterSpec
from ..core.frame import Frame
from ..core.outputs import OutputKind, TrackingStatus
from ..core.sensors import SensorSuite
from ..core.workload import FrameWorkload, KernelInvocation
from ..errors import ConfigurationError
from ..geometry import PinholeCamera, se3
from ..kfusion import kernels
from ..kfusion.preprocessing import downsample_depth
from ..metrics.alignment import umeyama


def detect_features(
    depth: np.ndarray,
    camera: PinholeCamera,
    max_features: int = 200,
    window: int = 2,
    min_response: float = 1e-5,
) -> np.ndarray:
    """Detect depth-curvature corners; return camera-frame 3-D points.

    The response is the local variance of the depth Laplacian — high where
    the surface bends in both directions (object corners and edges), zero
    on planes.  Non-maximum suppression keeps one feature per window.
    """
    d = np.asarray(depth, dtype=float)
    valid = d > 0.0

    # Laplacian of depth (zero on planes viewed at constant slope).
    lap = np.zeros_like(d)
    lap[1:-1, 1:-1] = (
        d[:-2, 1:-1] + d[2:, 1:-1] + d[1:-1, :-2] + d[1:-1, 2:]
        - 4.0 * d[1:-1, 1:-1]
    )
    ok = (
        valid
        & np.roll(valid, 1, 0) & np.roll(valid, -1, 0)
        & np.roll(valid, 1, 1) & np.roll(valid, -1, 1)
    )
    response = np.where(ok, np.abs(lap), 0.0)

    # Non-maximum suppression on a coarse grid.
    h, w = d.shape
    points = []
    step = 2 * window + 1
    for y0 in range(window, h - window, step):
        for x0 in range(window, w - window, step):
            patch = response[y0 - window : y0 + window + 1,
                             x0 - window : x0 + window + 1]
            peak = float(patch.max())
            if peak < min_response:
                continue
            dy, dx = np.unravel_index(int(np.argmax(patch)), patch.shape)
            y, x = y0 - window + dy, x0 - window + dx
            points.append((peak, y, x))
    points.sort(reverse=True)
    points = points[:max_features]
    if not points:
        return np.empty((0, 3))

    ys = np.array([p[1] for p in points])
    xs = np.array([p[2] for p in points])
    z = d[ys, xs]
    x3 = (xs - camera.cx) / camera.fx * z
    y3 = (ys - camera.cy) / camera.fy * z
    return np.stack([x3, y3, z], axis=-1)


def match_nearest(
    current: np.ndarray, previous: np.ndarray, max_distance: float = 0.08
) -> tuple[np.ndarray, np.ndarray]:
    """Mutual-nearest-neighbour matching of two 3-D point sets."""
    if len(current) == 0 or len(previous) == 0:
        return np.empty(0, dtype=int), np.empty(0, dtype=int)
    d2 = ((current[:, None, :] - previous[None, :, :]) ** 2).sum(axis=-1)
    fwd = np.argmin(d2, axis=1)
    bwd = np.argmin(d2, axis=0)
    idx_c = np.arange(len(current))
    mutual = bwd[fwd] == idx_c
    close = d2[idx_c, fwd] < max_distance**2
    keep = mutual & close
    return idx_c[keep], fwd[keep]


def trimmed_rigid_fit(
    source: np.ndarray, target: np.ndarray,
    iterations: int = 3, keep_fraction: float = 0.8,
) -> tuple[np.ndarray, int]:
    """Umeyama fit with iterative residual trimming.

    Returns ``(T, inliers)`` mapping source to target; raises
    :class:`~repro.errors.GeometryError` via umeyama on degenerate input.
    """
    src, dst = source, target
    T = np.eye(4)
    for _ in range(iterations):
        T, _ = umeyama(src, dst)
        residual = np.linalg.norm(se3.transform_points(T, src) - dst, axis=-1)
        order = np.argsort(residual)
        keep = order[: max(3, int(len(order) * keep_fraction))]
        src, dst = src[keep], dst[keep]
    return T, len(src)


class SparseOdometry(SLAMSystem):
    """Frame-to-frame sparse 3-D feature odometry."""

    name = "sparse_odometry"

    def __init__(self):
        super().__init__()
        self._camera: PinholeCamera | None = None
        self._input_camera: PinholeCamera | None = None
        self._pose = np.eye(4)
        self._velocity = np.eye(4)
        self._prev_features: np.ndarray | None = None
        self._status = TrackingStatus.BOOTSTRAP

    def parameter_specs(self) -> list[ParameterSpec]:
        return [
            ParameterSpec(
                "compute_size_ratio", "ordinal", 1, choices=(1, 2, 4),
                description="input downsampling factor",
            ),
            ParameterSpec(
                "max_features", "integer", 200, low=20, high=1000,
                description="features kept per frame",
            ),
            ParameterSpec(
                "match_distance", "real", 0.08, low=0.01, high=0.5,
                description="mutual-NN match gate in metres",
            ),
        ]

    def do_init(self, sensors: SensorSuite) -> None:
        assert self.configuration is not None
        depth_sensor = sensors.require_depth()
        self._input_camera = depth_sensor.camera
        ratio = self.configuration["compute_size_ratio"]
        try:
            self._camera = depth_sensor.camera.scaled(ratio)
        except Exception as exc:
            raise ConfigurationError(
                f"compute_size_ratio {ratio} incompatible with "
                f"{depth_sensor.camera.shape}: {exc}"
            ) from exc
        self._pose = np.eye(4)
        self._velocity = np.eye(4)
        self._prev_features = None
        self.outputs.declare("pose", OutputKind.POSE)
        self.outputs.declare("tracking_status", OutputKind.TRACKING_STATUS)
        self.outputs.declare("feature_count", OutputKind.SCALAR)

    def do_process(self, frame: Frame, workload: FrameWorkload) -> TrackingStatus:
        assert self.configuration is not None and self._camera is not None
        assert self._input_camera is not None
        cfg = self.configuration
        cam = self._camera

        workload.add(kernels.acquire(self._input_camera.pixel_count))
        depth = downsample_depth(frame.depth, cfg["compute_size_ratio"])
        workload.add(
            kernels.downsample(self._input_camera.pixel_count, cam.pixel_count)
        )

        features = detect_features(depth, cam,
                                   max_features=cfg["max_features"])
        workload.add(KernelInvocation(
            name="feature_detect",
            flops=25.0 * cam.pixel_count,
            bytes_accessed=8.0 * cam.pixel_count,
        ))
        self._feature_count = len(features)

        if self._prev_features is None or len(self._prev_features) < 6:
            self._status = (TrackingStatus.BOOTSTRAP
                            if self.frames_processed == 0
                            else TrackingStatus.LOST)
        else:
            # Predict with constant velocity: the last relative pose T_rel
            # maps current-frame points to previous-frame points, so the
            # previous features appear near inverse(T_rel) @ p_prev in the
            # current frame.
            predicted_prev = se3.transform_points(
                se3.inverse(self._velocity), self._prev_features
            )
            idx_c, idx_p = match_nearest(
                features, predicted_prev, cfg["match_distance"]
            )
            n_match = len(idx_c)
            workload.add(KernelInvocation(
                name="feature_match",
                flops=8.0 * len(features) * max(len(self._prev_features), 1),
                bytes_accessed=24.0 * (len(features)
                                       + len(self._prev_features)),
                parallel_fraction=0.95,
            ))
            if n_match >= 6:
                # T maps current-frame points onto previous-frame points —
                # i.e. the relative pose of the current camera in the
                # previous camera's frame.
                T_rel, inliers = trimmed_rigid_fit(
                    features[idx_c], self._prev_features[idx_p]
                )
                workload.add(KernelInvocation(
                    name="rigid_fit", flops=3000.0, bytes_accessed=5000.0,
                    parallel_fraction=0.0, gpu_eligible=False,
                ))
                if inliers >= 6:
                    self._pose = self._pose @ T_rel
                    self._velocity = T_rel
                    self._status = TrackingStatus.OK
                else:
                    self._status = TrackingStatus.LOST
            else:
                self._status = TrackingStatus.LOST

        self._prev_features = features
        return self._status

    def do_update_outputs(self) -> None:
        idx = self.frames_processed - 1
        self.outputs.get("pose").set(self._pose.copy(), idx)
        self.outputs.get("tracking_status").set(self._status, idx)
        self.outputs.get("feature_count").set(self._feature_count, idx)

    def do_clean(self) -> None:
        self._prev_features = None
