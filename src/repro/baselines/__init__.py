"""Baseline SLAM systems for cross-algorithm comparison."""

from .odometry import ICPOdometry
from .sparse import SparseOdometry
from .static import StaticSLAM

__all__ = ["ICPOdometry", "SparseOdometry", "StaticSLAM"]
