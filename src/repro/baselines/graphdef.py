"""Frame-to-frame ICP odometry as a declarative stage graph.

The toy baseline's three phases — preprocess, track, and the
frame-to-frame reference update — registered as graph stages over the
same contract vocabulary as KinectFusion's graph
(:mod:`repro.kfusion.graphdef`), so the pyramid contracts are shared and
a tap attached to ``preprocess.vertices`` means the same thing in both
pipelines.  The bodies run the identical reference-kernel calls, in the
same order, with the same workload accounting as the legacy call
sequence in :mod:`repro.baselines.odometry`.
"""

from __future__ import annotations

import numpy as np

from ..geometry import se3
from ..graph import Edge, GraphSpec, Port, StageSpec, register_graph, \
    register_stage
from ..kfusion import kernels
from ..kfusion.graphdef import (
    NORMAL_PYRAMID,
    REFERENCE_MODEL,
    TRACKED_FLAG,
    VERTEX_PYRAMID,
)
from ..kfusion.preprocessing import (
    bilateral_filter,
    build_pyramid,
    downsample_depth,
    vertex_normal_pyramid,
)
from ..kfusion.tracking import ReferenceModel, track


def _run_preprocess(ctx, inputs):
    sys, cfg, cam = ctx.state, ctx.params, ctx.state.compute_camera
    workload = ctx.workload

    workload.add(kernels.acquire(sys.input_camera.pixel_count))
    depth = downsample_depth(ctx.frame.depth, cfg["compute_size_ratio"])
    workload.add(
        kernels.downsample(sys.input_camera.pixel_count, cam.pixel_count)
    )
    depth = bilateral_filter(depth)
    workload.add(kernels.bilateral_filter(cam.pixel_count))

    pyramid = build_pyramid(depth, 3)
    for level in range(1, len(pyramid)):
        workload.add(kernels.half_sample(pyramid[level].size))
    vertices, normals, _ = vertex_normal_pyramid(pyramid, cam)
    for level_depth in pyramid:
        workload.add(kernels.depth_to_vertex(level_depth.size))
        workload.add(kernels.vertex_to_normal(level_depth.size))
    return {"vertices": vertices, "normals": normals}


def _run_track(ctx, inputs):
    sys, cfg, workload = ctx.state, ctx.params, ctx.workload
    vertices, normals = inputs["vertices"], inputs["normals"]

    tracked = False
    if sys.reference is None:
        sys.set_status_bootstrap()
    else:
        iters = (
            cfg["pyramid_iterations_l0"],
            cfg["pyramid_iterations_l1"],
            cfg["pyramid_iterations_l2"],
        )[: len(vertices)]
        result = track(
            vertices,
            normals,
            sys.reference,
            sys.pose_estimate,
            iters,
            cfg["icp_threshold"],
        )
        for level, used in enumerate(result.iterations_per_level):
            lpx = vertices[level].shape[0] * vertices[level].shape[1]
            for _ in range(used):
                workload.add(kernels.track_iteration(lpx))
                workload.add(kernels.reduce_iteration(lpx))
                workload.add(kernels.solve())
        tracked = result.tracked
        sys.record_track(result)
    return {"tracked": tracked}


def _run_model(ctx, inputs):
    """Lift this frame's finest maps to the world frame as the new
    reference — the ``tracked`` input pins the update after the track."""
    sys, cam = ctx.state, ctx.state.compute_camera
    vertices, normals = inputs["vertices"], inputs["normals"]
    pose = sys.pose_estimate

    h, w = cam.shape
    flat_v = vertices[0].reshape(-1, 3)
    flat_n = normals[0].reshape(-1, 3)
    valid = np.any(flat_n != 0.0, axis=-1)
    v_w = np.zeros_like(flat_v)
    n_w = np.zeros_like(flat_n)
    v_w[valid] = se3.transform_points(pose, flat_v[valid])
    n_w[valid] = flat_n[valid] @ pose[:3, :3].T
    model = ReferenceModel(
        vertices=v_w.reshape(h, w, 3),
        normals=n_w.reshape(h, w, 3),
        camera=cam,
        pose_volume_from_camera=pose.copy(),
    )
    sys.set_reference(model)
    return {"model": model}


PREPROCESS = register_stage(StageSpec(
    name="odometry.preprocess",
    run=_run_preprocess,
    outputs=(
        Port("vertices", VERTEX_PYRAMID),
        Port("normals", NORMAL_PYRAMID),
    ),
    description="downsample, bilateral-filter, build vertex/normal "
                "pyramids (reference kernels)",
))

TRACK = register_stage(StageSpec(
    name="odometry.track",
    run=_run_track,
    inputs=(
        Port("vertices", VERTEX_PYRAMID),
        Port("normals", NORMAL_PYRAMID),
    ),
    outputs=(Port("tracked", TRACKED_FLAG),),
    description="frame-to-frame multi-scale ICP against the previous "
                "frame's maps",
))

MODEL = register_stage(StageSpec(
    name="odometry.model",
    run=_run_model,
    inputs=(
        Port("vertices", VERTEX_PYRAMID),
        Port("normals", NORMAL_PYRAMID),
        Port("tracked", TRACKED_FLAG),
    ),
    outputs=(Port("model", REFERENCE_MODEL),),
    description="promote this frame's finest maps to the next reference",
))


def odometry_graph() -> GraphSpec:
    """The ICP-odometry pipeline as a declarative graph."""
    return GraphSpec(
        name="icp_odometry",
        nodes=(
            ("preprocess", "odometry.preprocess"),
            ("track", "odometry.track"),
            ("model", "odometry.model"),
        ),
        edges=(
            Edge("preprocess", "vertices", "track", "vertices"),
            Edge("preprocess", "normals", "track", "normals"),
            Edge("preprocess", "vertices", "model", "vertices"),
            Edge("preprocess", "normals", "model", "normals"),
            Edge("track", "tracked", "model", "tracked"),
        ),
    )


register_graph("icp_odometry", odometry_graph)
