"""Frame-to-frame ICP visual odometry — a mapless baseline.

SLAMBench's premise is comparing *algorithms* under one API; this system
provides the classic cheap alternative to KinectFusion: align each frame
against the previous frame's vertex/normal maps (no TSDF, no raycast).
It is much faster and much less accurate (odometry drift accumulates
without a global model) — the cross-algorithm experiment shows exactly
that trade-off.

Like :class:`~repro.kfusion.pipeline.KinectFusion`, the default
execution path is the compiled stage graph
(:mod:`repro.baselines.graphdef`); ``pipeline="legacy"`` keeps the
historic inline call sequence for the differential harness.
"""

from __future__ import annotations

import numpy as np

from ..core.api import SLAMSystem
from ..core.config import ParameterSpec
from ..core.frame import Frame
from ..core.outputs import OutputKind, TrackingStatus
from ..core.sensors import SensorSuite
from ..core.workload import FrameWorkload
from ..errors import ConfigurationError
from ..geometry import PinholeCamera, se3
from ..graph import StageContext, compile_graph
from ..kfusion import kernels
from ..kfusion.preprocessing import (
    bilateral_filter,
    build_pyramid,
    downsample_depth,
    vertex_normal_pyramid,
)
from ..kfusion.tracking import ReferenceModel, TrackResult, track
from .graphdef import odometry_graph


class ICPOdometry(SLAMSystem):
    """Dense frame-to-frame ICP odometry (no map)."""

    name = "icp_odometry"

    def __init__(self, pipeline: str = "graph", taps: tuple = ()):
        super().__init__()
        if pipeline not in ("graph", "legacy"):
            raise ConfigurationError(
                f"unknown pipeline {pipeline!r}; choices: ('graph', 'legacy')"
            )
        if taps and pipeline != "graph":
            raise ConfigurationError("stream taps require the graph pipeline")
        self._pipeline = pipeline
        self._taps = tuple(taps)
        self._instance = None
        self._camera: PinholeCamera | None = None
        self._input_camera: PinholeCamera | None = None
        self._pose = np.eye(4)
        self._reference: ReferenceModel | None = None
        self._status = TrackingStatus.BOOTSTRAP

    @property
    def pipeline(self) -> str:
        """Execution path: ``"graph"`` or ``"legacy"``."""
        return self._pipeline

    def parameter_specs(self) -> list[ParameterSpec]:
        return [
            ParameterSpec(
                "compute_size_ratio", "ordinal", 1, choices=(1, 2, 4, 8),
                description="input downsampling factor",
            ),
            ParameterSpec(
                "icp_threshold", "real", 1e-5, low=1e-20, high=1e-2,
                log_scale=True,
                description="ICP early-termination threshold",
            ),
            ParameterSpec(
                "pyramid_iterations_l0", "integer", 10, low=0, high=10,
                description="ICP iterations, finest level",
            ),
            ParameterSpec(
                "pyramid_iterations_l1", "integer", 5, low=0, high=10,
                description="ICP iterations, middle level",
            ),
            ParameterSpec(
                "pyramid_iterations_l2", "integer", 4, low=0, high=10,
                description="ICP iterations, coarsest level",
            ),
        ]

    def do_init(self, sensors: SensorSuite) -> None:
        assert self.configuration is not None
        depth_sensor = sensors.require_depth()
        self._input_camera = depth_sensor.camera
        ratio = self.configuration["compute_size_ratio"]
        try:
            self._camera = depth_sensor.camera.scaled(ratio)
        except Exception as exc:
            raise ConfigurationError(
                f"compute_size_ratio {ratio} incompatible with "
                f"{depth_sensor.camera.shape}: {exc}"
            ) from exc
        self._pose = np.eye(4)
        self._reference = None
        if self._pipeline == "graph":
            spec = odometry_graph()
            if self._taps:
                from ..graph import TapSpec

                spec = spec.with_taps([
                    tap if isinstance(tap, TapSpec)
                    else TapSpec(node=tap[0], port=tap[1])
                    for tap in self._taps
                ])
            self._instance = compile_graph(spec)
        self.outputs.declare("pose", OutputKind.POSE)
        self.outputs.declare("tracking_status", OutputKind.TRACKING_STATUS)

    def do_process(self, frame: Frame, workload: FrameWorkload) -> TrackingStatus:
        assert self.configuration is not None
        assert self._camera is not None and self._input_camera is not None
        if self._pipeline == "graph":
            ctx = StageContext(
                frame=frame,
                workload=workload,
                state=self,
                params=self.configuration,
            )
            self._instance.run_frame(ctx)
            return self._status
        return self._process_legacy(frame, workload)

    def _process_legacy(self, frame: Frame,
                        workload: FrameWorkload) -> TrackingStatus:
        """The historic inline call sequence, kept verbatim (see
        ``repro graph diff``)."""
        cam = self._camera
        cfg = self.configuration

        workload.add(kernels.acquire(self._input_camera.pixel_count))
        depth = downsample_depth(frame.depth, cfg["compute_size_ratio"])
        workload.add(
            kernels.downsample(self._input_camera.pixel_count, cam.pixel_count)
        )
        depth = bilateral_filter(depth)
        workload.add(kernels.bilateral_filter(cam.pixel_count))

        pyramid = build_pyramid(depth, 3)
        for level in range(1, len(pyramid)):
            workload.add(kernels.half_sample(pyramid[level].size))
        vertices, normals, _ = vertex_normal_pyramid(pyramid, cam)
        for level_depth in pyramid:
            workload.add(kernels.depth_to_vertex(level_depth.size))
            workload.add(kernels.vertex_to_normal(level_depth.size))

        if self._reference is None:
            self._status = TrackingStatus.BOOTSTRAP
        else:
            iters = (
                cfg["pyramid_iterations_l0"],
                cfg["pyramid_iterations_l1"],
                cfg["pyramid_iterations_l2"],
            )[: len(vertices)]
            result = track(
                vertices,
                normals,
                self._reference,
                self._pose,
                iters,
                cfg["icp_threshold"],
            )
            for level, used in enumerate(result.iterations_per_level):
                lpx = vertices[level].shape[0] * vertices[level].shape[1]
                for _ in range(used):
                    workload.add(kernels.track_iteration(lpx))
                    workload.add(kernels.reduce_iteration(lpx))
                    workload.add(kernels.solve())
            if result.tracked:
                self._pose = result.pose
                self._status = TrackingStatus.OK
            else:
                self._status = TrackingStatus.LOST

        # The new reference is this frame's (finest) maps in the world frame.
        h, w = cam.shape
        flat_v = vertices[0].reshape(-1, 3)
        flat_n = normals[0].reshape(-1, 3)
        valid = np.any(flat_n != 0.0, axis=-1)
        v_w = np.zeros_like(flat_v)
        n_w = np.zeros_like(flat_n)
        v_w[valid] = se3.transform_points(self._pose, flat_v[valid])
        n_w[valid] = flat_n[valid] @ self._pose[:3, :3].T
        self._reference = ReferenceModel(
            vertices=v_w.reshape(h, w, 3),
            normals=n_w.reshape(h, w, 3),
            camera=cam,
            pose_volume_from_camera=self._pose.copy(),
        )
        return self._status

    # -- graph-stage state access (repro.baselines.graphdef) ------------------
    @property
    def input_camera(self) -> PinholeCamera:
        """Sensor-resolution intrinsics."""
        if self._input_camera is None:
            raise ConfigurationError("odometry not initialised")
        return self._input_camera

    @property
    def compute_camera(self) -> PinholeCamera:
        """Intrinsics at the compute resolution."""
        if self._camera is None:
            raise ConfigurationError("odometry not initialised")
        return self._camera

    @property
    def pose_estimate(self) -> np.ndarray:
        """The live world-from-camera pose the stages read and refine."""
        return self._pose

    @property
    def reference(self) -> ReferenceModel | None:
        """Previous frame's maps in the world frame (or None)."""
        return self._reference

    def record_track(self, result: TrackResult) -> None:
        """Fold one ICP result into the odometry state (pose + status)."""
        if result.tracked:
            self._pose = result.pose
            self._status = TrackingStatus.OK
        else:
            self._status = TrackingStatus.LOST

    def set_status_bootstrap(self) -> None:
        self._status = TrackingStatus.BOOTSTRAP

    def set_reference(self, reference: ReferenceModel) -> None:
        self._reference = reference

    def do_update_outputs(self) -> None:
        idx = self.frames_processed - 1
        self.outputs.get("pose").set(self._pose.copy(), idx)
        self.outputs.get("tracking_status").set(self._status, idx)

    def do_clean(self) -> None:
        self._reference = None
        self._instance = None
