"""The trivial baseline: report the initial pose forever.

Useful as a sanity floor for accuracy metrics (any real SLAM system must
beat it on a moving sequence) and as the smallest possible example of the
framework API.
"""

from __future__ import annotations

import numpy as np

from ..core.api import SLAMSystem
from ..core.config import ParameterSpec
from ..core.frame import Frame
from ..core.outputs import OutputKind, TrackingStatus
from ..core.sensors import SensorSuite
from ..core.workload import FrameWorkload
from ..kfusion import kernels


class StaticSLAM(SLAMSystem):
    """Always reports the identity pose."""

    name = "static"

    def parameter_specs(self) -> list[ParameterSpec]:
        return []

    def do_init(self, sensors: SensorSuite) -> None:
        self._camera = sensors.require_depth().camera
        self.outputs.declare("pose", OutputKind.POSE)
        self.outputs.declare("tracking_status", OutputKind.TRACKING_STATUS)

    def do_process(self, frame: Frame, workload: FrameWorkload) -> TrackingStatus:
        workload.add(kernels.acquire(self._camera.pixel_count))
        return TrackingStatus.OK

    def do_update_outputs(self) -> None:
        idx = self.frames_processed - 1
        self.outputs.get("pose").set(np.eye(4), idx)
        self.outputs.get("tracking_status").set(TrackingStatus.OK, idx)
