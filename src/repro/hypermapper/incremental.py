"""Incremental co-design exploration — the paper's key methodology.

    "Key to our approach is the idea of incremental co-design
    exploration, where optimization choices that concern the domain layer
    are incrementally explored together with low-level compiler and
    architecture choices."

Instead of searching the joint (algorithmic x platform) space at once,
the incremental strategy factorises it:

1. **Domain phase** — explore the algorithmic parameters with the
   platform pinned at its default (max clocks, preferred backend), under
   the accuracy constraint; keep the top-k feasible configurations.
2. **Platform phase** — for each kept configuration, explore only the
   platform knobs (backend, clusters, DVFS) under the full constraint
   set (accuracy + speed + power).

The factorisation works because accuracy depends only on the algorithmic
parameters while the platform knobs trade speed against power — each
phase searches a small space with a clear signal.  The ablation bench
compares it against the joint search at equal budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizationError
from .constraints import Constraint, ConstraintSet
from .evaluator import Evaluation, Evaluator
from .optimizer import ExplorationResult, HyperMapper
from .space import DesignSpace


@dataclass
class IncrementalResult:
    """Both phases of an incremental co-design run."""

    domain_result: ExplorationResult
    platform_results: list  # one ExplorationResult per kept configuration
    best: Evaluation | None
    total_evaluations: int


def split_codesign_space(space: DesignSpace) -> tuple[DesignSpace, DesignSpace]:
    """Split a co-design space into (algorithmic, platform) subspaces."""
    platform_names = {"backend", "cpu_freq_ghz", "gpu_freq_ghz",
                      "cpu_cluster"}
    algo_specs = [s for s in space.specs if s.name not in platform_names]
    platform_specs = [s for s in space.specs if s.name in platform_names]
    if not platform_specs:
        raise OptimizationError(
            "space has no platform knobs; incremental co-design needs a "
            "codesign_design_space"
        )
    return DesignSpace(algo_specs), DesignSpace(platform_specs)


class _FrozenAlgorithmEvaluator:
    """Adapter: explore platform knobs with the algorithm fixed."""

    def __init__(self, evaluator: Evaluator, algorithmic: dict):
        self._evaluator = evaluator
        self._algorithmic = dict(algorithmic)

    def evaluate(self, configuration) -> Evaluation:
        merged = {**self._algorithmic, **dict(configuration)}
        return self._evaluator.evaluate(merged)


def incremental_codesign(
    space: DesignSpace,
    evaluator: Evaluator,
    constraints: ConstraintSet,
    accuracy_constraint: Constraint,
    domain_budget: tuple[int, int, int] = (30, 6, 6),
    platform_budget: tuple[int, int, int] = (8, 3, 4),
    top_k: int = 3,
    objective: str = "runtime_s",
    seed: int = 0,
) -> IncrementalResult:
    """Run the two-phase incremental exploration.

    Args:
        space: the full co-design space (algorithmic + platform knobs).
        evaluator: black box over the full space.
        constraints: the final feasibility definition (all objectives).
        accuracy_constraint: the domain phase's constraint (platform knobs
            cannot fix accuracy, so only accuracy gates phase 1).
        domain_budget: (n_initial, n_iterations, samples_per_iteration)
            for the domain phase.
        platform_budget: likewise for each platform phase.
        top_k: how many phase-1 configurations advance to phase 2.
        objective: final selection objective among feasible points.
        seed: RNG seed.
    """
    algo_space, platform_space = split_codesign_space(space)
    platform_defaults = platform_space.default_configuration()

    # Phase 1: algorithmic exploration at the default platform.
    domain_evaluator = _FrozenAlgorithmEvaluator(evaluator, platform_defaults)
    n_init, n_iter, n_per = domain_budget
    domain = HyperMapper(
        algo_space,
        domain_evaluator,
        constraint=accuracy_constraint,
        n_initial=n_init,
        n_iterations=n_iter,
        samples_per_iteration=n_per,
        seed=seed,
        seed_configurations=[algo_space.default_configuration()],
    ).run()

    accurate = ConstraintSet.of([accuracy_constraint])
    candidates = domain.pareto(("runtime_s", "max_ate_m"), accurate)
    if not candidates:
        # Fall back to the least-inaccurate points so phase 2 still runs.
        pool = sorted(domain.evaluations, key=lambda e: e.max_ate_m)
        candidates = pool[:top_k]
    candidates = candidates[:top_k]

    # Phase 2: platform knobs per kept configuration.
    platform_results = []
    best: Evaluation | None = None
    total = len(domain.evaluations)
    for rank, candidate in enumerate(candidates):
        algorithmic = {
            k: v for k, v in candidate.configuration.items()
            if k in set(algo_space.names)
        }
        frozen = _FrozenAlgorithmEvaluator(evaluator, algorithmic)
        p_init, p_iter, p_per = platform_budget
        platform = HyperMapper(
            platform_space,
            frozen,
            constraint=constraints,
            n_initial=p_init,
            n_iterations=p_iter,
            samples_per_iteration=p_per,
            seed=seed + 100 + rank,
            seed_configurations=[platform_defaults],
        ).run()
        platform_results.append(platform)
        total += len(platform.evaluations)
        try:
            phase_best = platform.best(objective, constraints)
        except OptimizationError:
            continue
        if best is None or getattr(phase_best, objective) < getattr(
            best, objective
        ):
            best = phase_best

    return IncrementalResult(
        domain_result=domain,
        platform_results=platform_results,
        best=best,
        total_evaluations=total,
    )
