"""Knowledge extraction — the right-hand panel of Figure 2.

After an exploration, HyperMapper labels every evaluated configuration
against the three criteria (accurate / fast / power-efficient), trains a
decision tree per criterion on the configuration features, and reads off
interpretable threshold rules ("Volume resolution < 96", "Compute size
ratio > 6", ...).  That is exactly what this module does, using the
from-scratch CART classifier and rule extractor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import OptimizationError
from ..ml.rules import Rule, extract_rules, format_rules
from ..ml.tree import DecisionTreeClassifier
from .constraints import Constraint, accuracy_limit, power_budget, realtime
from .optimizer import ExplorationResult


@dataclass(frozen=True)
class CriterionKnowledge:
    """Rules explaining one criterion."""

    criterion: str
    constraint: Constraint
    positive_count: int
    total_count: int
    rules: tuple[Rule, ...]
    tree_accuracy: float

    def __str__(self) -> str:
        head = (
            f"{self.criterion} ({self.constraint}): "
            f"{self.positive_count}/{self.total_count} configurations, "
            f"tree accuracy {self.tree_accuracy:.2f}"
        )
        return head + "\n" + format_rules(list(self.rules))


def default_criteria() -> list[Constraint]:
    """The paper's three criteria with its thresholds."""
    return [accuracy_limit(0.05), realtime(30.0), power_budget(3.0)]


def extract_knowledge(
    result: ExplorationResult,
    criteria: list[Constraint] | None = None,
    max_depth: int = 3,
    max_rules: int = 4,
    min_support_fraction: float = 0.03,
) -> list[CriterionKnowledge]:
    """Train one shallow tree per criterion and extract its rules.

    Shallow trees (depth 3, as in the figure) keep the rules readable;
    ``min_support_fraction`` drops anecdotal leaves.
    """
    if criteria is None:
        criteria = default_criteria()
    evaluations = [
        e for e in result.evaluations if all(np.isfinite(e.objectives()))
    ]
    if len(evaluations) < 10:
        raise OptimizationError(
            f"need >= 10 finite evaluations for knowledge extraction, "
            f"got {len(evaluations)}"
        )
    X = result.space.to_feature_matrix([e.configuration for e in evaluations])
    names = result.space.feature_names()

    out = []
    for constraint in criteria:
        labels = np.array(
            [1 if constraint.satisfied(e) else 0 for e in evaluations]
        )
        # Support floor: anecdotal leaves are dropped, but when the
        # positive class is rare (accuracy under uniform sampling is),
        # the floor must not exceed what the minority class can supply.
        minority = int(min(labels.sum(), len(labels) - labels.sum()))
        min_support = max(
            2,
            min(int(len(evaluations) * min_support_fraction),
                max(2, minority // 3)),
        )
        if labels.min() == labels.max():
            # Degenerate: everything (or nothing) satisfies the criterion.
            out.append(
                CriterionKnowledge(
                    criterion=constraint.name,
                    constraint=constraint,
                    positive_count=int(labels.sum()),
                    total_count=len(labels),
                    rules=(),
                    tree_accuracy=1.0,
                )
            )
            continue
        # Class balance: under uniform sampling the "accurate" class is
        # rare, and an unbalanced tree happily predicts all-negative.
        # Oversample the minority for fitting, then score every rule
        # against the ORIGINAL data so support/confidence stay honest.
        X_fit, labels_fit = _oversample_minority(X, labels)
        tree = DecisionTreeClassifier(
            max_depth=max_depth, min_samples_leaf=min_support
        )
        tree.fit(X_fit, labels_fit)
        acc = float(np.mean(tree.predict(X) == labels))
        raw_rules = extract_rules(tree, names, positive_class=1,
                                  min_support=1)
        base_rate = float(labels.mean())
        # A rule is worth reporting when its precision clearly beats the
        # base rate (lift >= 2), with an absolute floor; for common
        # criteria this degenerates to "mostly positive", for rare ones
        # (accurate configurations under uniform sampling) a region with
        # several-fold enrichment is exactly what the figure shows.
        confidence_floor = min(0.9, max(0.15, 2.0 * base_rate))
        rules = _rescore_rules(raw_rules, X, labels, names, min_support,
                               confidence_floor)
        out.append(
            CriterionKnowledge(
                criterion=constraint.name,
                constraint=constraint,
                positive_count=int(labels.sum()),
                total_count=len(labels),
                rules=tuple(rules[:max_rules]),
                tree_accuracy=acc,
            )
        )
    return out


def _oversample_minority(X: np.ndarray,
                         labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Duplicate minority-class rows until the classes are balanced."""
    pos = np.flatnonzero(labels == 1)
    neg = np.flatnonzero(labels == 0)
    if len(pos) == 0 or len(neg) == 0 or len(pos) == len(neg):
        return X, labels
    minority, majority = (pos, neg) if len(pos) < len(neg) else (neg, pos)
    reps = len(majority) // len(minority)
    idx = np.concatenate([majority] + [minority] * max(reps, 1))
    return X[idx], labels[idx]


def _rescore_rules(rules, X: np.ndarray, labels: np.ndarray,
                   names: list[str], min_support: int,
                   confidence_floor: float) -> list[Rule]:
    """Re-evaluate each rule's support/confidence on the original data."""
    out = []
    for rule in rules:
        mask = np.ones(len(X), dtype=bool)
        for cond in rule.conditions:
            col = names.index(cond.feature)
            if cond.op == "<=":
                mask &= X[:, col] <= cond.threshold
            else:
                mask &= X[:, col] > cond.threshold
        support = int(mask.sum())
        if support < min_support:
            continue
        confidence = float(labels[mask].mean())
        if confidence < confidence_floor:
            continue
        out.append(Rule(conditions=rule.conditions, support=support,
                        confidence=confidence))
    out.sort(key=lambda r: (-r.confidence, -r.support))
    return out


def format_knowledge(knowledge: list[CriterionKnowledge]) -> str:
    """The Figure-2-right textual panel."""
    return "\n".join(str(k) for k in knowledge)
