"""Analytic surrogate evaluator for paper-scale exploration.

Running dense SLAM for every one of the thousands of DSE samples in
Figure 2 is infeasible in pure Python, so large experiments use this
surrogate (DESIGN.md, substitutions):

* **Runtime & power** are *not* approximated: they come from the same
  analytic workload model (``repro.kfusion.workload_model``) and platform
  simulator the measured path uses — only accuracy needs a response
  surface.
* **Max ATE** is modelled from the known failure modes of KinectFusion's
  parameters, with coefficients calibrated against the measured NumPy
  pipeline (tests assert rank agreement between surrogate and measured
  ATE across configurations):

  - coarse voxels blur the TSDF model ICP aligns against
    (``err ~ voxel^1.6``),
  - input downsampling removes ICP constraints (``err ~ (csr-1)``),
  - a truncation band much smaller than the voxel leaves holes; a huge
    band smears geometry,
  - loose ICP thresholds terminate before convergence,
  - few pyramid iterations under-converge; zero iterations lose tracking,
  - sparse integration lets the model go stale; sparse tracking is worse,
  - small volumes clip the scene.

  A deterministic configuration-hashed noise factor reproduces run-to-run
  scatter, and high-risk configurations (several failure modes at once)
  divergence-fail exactly as the measured pipeline does.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

import numpy as np

from ..errors import OptimizationError
from ..kfusion.memory import total_bytes
from ..kfusion.params import KFusionParams
from ..kfusion.workload_model import sequence_workloads
from ..platforms.device import DeviceModel
from ..platforms.odroid import odroid_xu3
from ..platforms.simulator import PerformanceSimulator, PlatformConfig
from ..telemetry import current_tracer
from .evaluator import Evaluation

#: Per-sequence difficulty multipliers (matching the preset sequences).
SEQUENCE_DIFFICULTY = {
    "lr_kt0": 1.0,
    "lr_kt1": 1.35,
    "lr_kt2": 1.1,
    "lr_kt3": 1.25,
    "of_desk": 1.2,
    "of_room": 1.15,
}


def _config_noise(configuration: Mapping, seed: int) -> tuple[float, float]:
    """Deterministic pseudo-random (lognormal factor, uniform u) per config."""
    payload = repr(sorted(configuration.items())) + f"|{seed}"
    digest = hashlib.sha256(payload.encode()).digest()
    u1 = int.from_bytes(digest[:8], "big") / 2**64
    u2 = int.from_bytes(digest[8:16], "big") / 2**64
    # Box-Muller for one normal sample.
    z = np.sqrt(-2.0 * np.log(max(u1, 1e-12))) * np.cos(2.0 * np.pi * u2)
    factor = float(np.exp(0.09 * z))
    u3 = int.from_bytes(digest[16:24], "big") / 2**64
    return factor, u3


def surrogate_max_ate(
    configuration: Mapping,
    sequence_name: str = "lr_kt0",
    seed: int = 0,
) -> tuple[float, bool]:
    """Predicted Max ATE (m) and a tracking-failure flag."""
    # Build typed params from the configuration (all fields required).
    p = KFusionParams(
        volume_resolution=int(configuration["volume_resolution"]),
        volume_size=float(configuration["volume_size"]),
        compute_size_ratio=int(configuration["compute_size_ratio"]),
        mu_distance=float(configuration["mu_distance"]),
        icp_threshold=float(configuration["icp_threshold"]),
        pyramid_iterations_l0=int(configuration["pyramid_iterations_l0"]),
        pyramid_iterations_l1=int(configuration["pyramid_iterations_l1"]),
        pyramid_iterations_l2=int(configuration["pyramid_iterations_l2"]),
        integration_rate=int(configuration["integration_rate"]),
        tracking_rate=int(configuration["tracking_rate"]),
    )
    difficulty = SEQUENCE_DIFFICULTY.get(sequence_name, 1.0)
    voxel = p.voxel_size

    base = 0.015  # noise floor of a fully converged run
    err = base
    err += 1.8 * voxel**1.6
    err += 0.004 * (p.compute_size_ratio - 1) ** 1.3

    mu_ratio = p.mu_distance / max(voxel, 0.01)
    err += 0.03 * max(0.0, 1.5 - mu_ratio) ** 2  # holes
    err += 0.08 * max(0.0, p.mu_distance - 0.2) ** 2  # smearing

    err += 0.006 * max(0.0, np.log10(p.icp_threshold) + 5.0)

    eff_iters = (
        p.pyramid_iterations_l0
        + 0.5 * p.pyramid_iterations_l1
        + 0.25 * p.pyramid_iterations_l2
    )
    err += 0.05 / (1.0 + eff_iters)

    err += 0.0012 * (p.integration_rate - 1) ** 1.2
    err += 0.007 * (p.tracking_rate - 1) ** 1.5

    err += 0.03 * max(0.0, 4.0 - p.volume_size)  # scene clipped

    noise_factor, u = _config_noise(configuration, seed)
    err = err * difficulty * noise_factor

    # Catastrophic failure: several risk factors at once make ICP diverge.
    risk = 0.0
    risk += max(0.0, voxel - 0.06) * 6.0
    risk += max(0.0, p.compute_size_ratio - 2) * 0.12
    risk += max(0.0, 3.0 - eff_iters) * 0.25
    risk += max(0.0, p.tracking_rate - 2) * 0.22
    risk += max(0.0, np.log10(p.icp_threshold) + 3.0) * 0.4
    risk *= difficulty
    failed = bool(u < min(0.95, max(0.0, risk - 0.75)))
    if eff_iters == 0:
        failed = True
    if failed:
        err = max(err, 0.15 + 0.85 * u)

    return float(err), failed


class SurrogateEvaluator:
    """Paper-scale evaluator: analytic accuracy + simulated performance.

    Args:
        device: target device (defaults to the ODROID-XU3).
        platform_config: backend/DVFS (defaults to OpenCL at max clocks).
        sequence_name: difficulty preset for the accuracy surface.
        width, height: input resolution (the paper computes at 320x240).
        n_frames: simulated sequence length (rates decimate across it).
        seed: scatter seed — different seeds model repeated runs.
    """

    def __init__(
        self,
        device: DeviceModel | None = None,
        platform_config: PlatformConfig | None = None,
        sequence_name: str = "lr_kt0",
        width: int = 320,
        height: int = 240,
        n_frames: int = 30,
        seed: int = 0,
    ):
        if n_frames < 2:
            raise OptimizationError("need >= 2 frames")
        self.device = device or odroid_xu3()
        self.platform_config = platform_config or PlatformConfig(backend="opencl")
        self.sequence_name = sequence_name
        self.width = width
        self.height = height
        self.n_frames = n_frames
        self.seed = seed
        self.evaluations = 0

    def fingerprint(self) -> dict:
        """Store-context identity (see ``MeasuredEvaluator.fingerprint``)."""
        return {
            "evaluator": "surrogate",
            "sequence": self.sequence_name,
            "frames": self.n_frames,
            "width": self.width,
            "height": self.height,
            "seed": self.seed,
            "device": self.device.name,
            "backend": self.platform_config.backend,
        }

    def evaluate(self, configuration: Mapping) -> Evaluation:
        config = dict(configuration)
        params = KFusionParams(
            **{k: config[k] for k in (
                "volume_resolution", "volume_size", "compute_size_ratio",
                "mu_distance", "icp_threshold", "pyramid_iterations_l0",
                "pyramid_iterations_l1", "pyramid_iterations_l2",
                "integration_rate", "tracking_rate",
            )}
        )
        workloads = sequence_workloads(
            params, self.width, self.height, self.n_frames
        )
        # Co-design: platform knobs may be part of the configuration
        # (incremental co-design exploration, per the paper).
        platform = self.platform_config
        platform_keys = {"backend", "cpu_freq_ghz", "gpu_freq_ghz",
                         "cpu_cluster"}
        if platform_keys & set(config):
            platform = PlatformConfig(
                backend=config.get("backend", platform.backend),
                cpu_freq_ghz=config.get("cpu_freq_ghz", platform.cpu_freq_ghz),
                gpu_freq_ghz=config.get("gpu_freq_ghz", platform.gpu_freq_ghz),
                cpu_cluster=config.get("cpu_cluster", platform.cpu_cluster),
            )
        simulator = PerformanceSimulator(self.device, platform)
        sim = simulator.simulate(workloads)
        # kernel_backend, like the platform knobs, is not part of the
        # accuracy surface: the golden-equivalence suite pins all
        # backends to the same trajectories (ATE within 2%), so the
        # surrogate's response is backend-invariant by construction and
        # only the measured evaluator exercises the real kernels.
        excluded = platform_keys | {"kernel_backend"}
        algo_config = {k: v for k, v in config.items()
                       if k not in excluded}
        max_ate, failed = surrogate_max_ate(
            algo_config, self.sequence_name, self.seed
        )
        self.evaluations += 1
        tracer = current_tracer()
        tracer.count("dse.surrogate_evaluations")
        if failed:
            tracer.count("dse.failed_evaluations")
        return Evaluation(
            configuration=config,
            runtime_s=sim.mean_frame_time_s,
            max_ate_m=max_ate,
            power_w=sim.streaming_average_power_w(),
            fps=sim.fps,
            tracked_fraction=0.0 if failed else 1.0,
            failed=failed,
            extras={
                "device": self.device.name,
                "memory_bytes": total_bytes(params, self.width, self.height),
            },
        )
