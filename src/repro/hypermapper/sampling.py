"""Samplers over design spaces: uniform random and Latin hypercube.

The first phase of HyperMapper (Figure 2, left) is random sampling of the
configuration space; Latin hypercube sampling is provided as the standard
space-filling alternative and is used by the sampling ablation bench.
"""

from __future__ import annotations

import numpy as np

from ..errors import OptimizationError
from .space import DesignSpace


def random_sample(space: DesignSpace, n: int, seed: int = 0) -> list[dict]:
    """``n`` i.i.d. uniform configurations."""
    if n < 1:
        raise OptimizationError("need n >= 1 samples")
    rng = np.random.default_rng(seed)
    return space.sample_many(n, rng)


def latin_hypercube_sample(space: DesignSpace, n: int, seed: int = 0) -> list[dict]:
    """``n`` Latin-hypercube configurations.

    Each dimension is stratified into ``n`` bins with one sample per bin;
    discrete parameters map the stratified unit interval onto their choice
    list, which preserves the stratification as far as cardinality allows.
    """
    if n < 1:
        raise OptimizationError("need n >= 1 samples")
    rng = np.random.default_rng(seed)
    d = space.dimensions
    # Stratified unit hypercube: one point per (dimension, bin), shuffled.
    u = np.empty((n, d))
    for j in range(d):
        perm = rng.permutation(n)
        u[:, j] = (perm + rng.uniform(0.0, 1.0, size=n)) / n

    configs = []
    for i in range(n):
        config = {}
        for j, s in enumerate(space.specs):
            x = u[i, j]
            if s.kind == "integer":
                lo, hi = int(s.low), int(s.high)
                config[s.name] = int(lo + min(int(x * (hi - lo + 1)), hi - lo))
            elif s.kind == "real":
                if s.log_scale:
                    lo, hi = np.log10(s.low), np.log10(s.high)
                    config[s.name] = float(10 ** (lo + x * (hi - lo)))
                else:
                    config[s.name] = float(s.low + x * (s.high - s.low))
            else:
                k = min(int(x * len(s.choices)), len(s.choices) - 1)
                config[s.name] = s.choices[k]
        configs.append(config)
    return configs
