"""Design spaces over algorithm (and platform) parameters.

A :class:`DesignSpace` wraps the framework's parameter specs
(:class:`~repro.core.config.ParameterSpec`) and adds what the optimizer
needs: random sampling, encoding configurations as numeric feature vectors
for the random forest (log-scaled where declared), and decoding back.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.config import ParameterSpec
from ..errors import OptimizationError


class DesignSpace:
    """A searchable space of named parameters."""

    def __init__(self, specs: Sequence[ParameterSpec]):
        if not specs:
            raise OptimizationError("design space needs at least one parameter")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise OptimizationError("duplicate parameter names in design space")
        self.specs = tuple(specs)

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.specs]

    @property
    def dimensions(self) -> int:
        return len(self.specs)

    def default_configuration(self) -> dict:
        return {s.name: s.default for s in self.specs}

    # -- sampling ---------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> dict:
        """One uniform random configuration."""
        config = {}
        for s in self.specs:
            if s.kind == "integer":
                config[s.name] = int(rng.integers(int(s.low), int(s.high) + 1))
            elif s.kind == "real":
                if s.log_scale:
                    lo, hi = np.log10(s.low), np.log10(s.high)
                    config[s.name] = float(10 ** rng.uniform(lo, hi))
                else:
                    config[s.name] = float(rng.uniform(s.low, s.high))
            else:  # ordinal / categorical
                config[s.name] = s.choices[int(rng.integers(len(s.choices)))]
        return config

    def sample_many(self, n: int, rng: np.random.Generator) -> list[dict]:
        return [self.sample(rng) for _ in range(n)]

    # -- encoding for the predictive model ----------------------------------------
    def to_features(self, config: Mapping) -> np.ndarray:
        """Encode a configuration as a numeric vector.

        Real log-scale parameters are encoded as log10; ordinals by value;
        categoricals by choice index.
        """
        out = np.empty(self.dimensions)
        for i, s in enumerate(self.specs):
            try:
                v = config[s.name]
            except KeyError:
                raise OptimizationError(
                    f"configuration missing parameter {s.name!r}"
                ) from None
            if s.kind == "categorical":
                out[i] = float(s.choices.index(v))
            elif s.kind == "real" and s.log_scale:
                out[i] = float(np.log10(v))
            else:
                out[i] = float(v)
        return out

    def to_feature_matrix(self, configs: Sequence[Mapping]) -> np.ndarray:
        if not configs:
            raise OptimizationError("no configurations to encode")
        return np.stack([self.to_features(c) for c in configs])

    def feature_names(self) -> list[str]:
        """Names matching :meth:`to_features` columns (log-scale annotated)."""
        return [
            f"log10({s.name})" if (s.kind == "real" and s.log_scale) else s.name
            for s in self.specs
        ]

    def validate(self, config: Mapping) -> dict:
        """Validate and canonicalise a configuration dict."""
        out = {}
        for s in self.specs:
            if s.name not in config:
                raise OptimizationError(f"missing parameter {s.name!r}")
            out[s.name] = s.validate(config[s.name])
        return out

    def grid(self, points_per_real: int = 5) -> list[dict]:
        """Full-factorial grid (ordinals/integers exact, reals discretised).

        Guarded: raises if the grid would exceed a million points.
        """
        axes = []
        for s in self.specs:
            if s.kind in ("ordinal", "categorical"):
                axes.append(list(s.choices))
            elif s.kind == "integer":
                axes.append(list(range(int(s.low), int(s.high) + 1)))
            else:
                if s.log_scale:
                    vals = np.logspace(
                        np.log10(s.low), np.log10(s.high), points_per_real
                    )
                else:
                    vals = np.linspace(s.low, s.high, points_per_real)
                axes.append([float(v) for v in vals])
        total = 1
        for a in axes:
            total *= len(a)
            if total > 1_000_000:
                raise OptimizationError(
                    "grid too large; use random sampling instead"
                )
        configs = [{}]
        for s, axis in zip(self.specs, axes):
            configs = [dict(c, **{s.name: v}) for c in configs for v in axis]
        return configs


#: Always-registered kernel backends exposed as a design-space dimension.
#: Static literal so RPR004 can cross-check it against the registry's
#: ``KernelBackend`` declarations without importing anything; the
#: optional "jit" backend is exploration-eligible only where numba is
#: installed, so it is deliberately not part of the static space.
KERNEL_BACKEND_CHOICES = ("fast", "reference", "sparse")


def kfusion_design_space(kernel_backend: bool = False) -> DesignSpace:
    """The paper's algorithmic design space (KinectFusion parameters).

    With ``kernel_backend=True`` the registry's always-available kernel
    implementations join the space as a categorical dimension, so the
    sparsity/precision axis is explored alongside the algorithmic knobs
    (``repro dse`` opts in; golden DSE fixtures keep the smaller space).
    """
    from ..kfusion.params import parameter_specs

    specs = list(parameter_specs())
    if kernel_backend:
        specs.append(
            ParameterSpec(
                "kernel_backend", "categorical", "fast",
                choices=KERNEL_BACKEND_CHOICES,
                description="kernel implementation family "
                            "(repro.perf registry)",
            )
        )
    return DesignSpace(specs)


def codesign_design_space(device=None) -> DesignSpace:
    """Algorithmic + platform knobs — incremental co-design exploration.

    Adds the implementation backend and the DVFS states of the device's
    big cluster and GPU to the algorithmic space, as in the paper's
    co-design methodology (domain-level choices explored together with
    low-level platform choices).
    """
    from ..kfusion.params import parameter_specs
    from ..platforms.odroid import odroid_xu3

    device = device if device is not None else odroid_xu3()
    cluster = device.biggest_cluster
    specs = list(parameter_specs())
    backends = ["cpp", "openmp"]
    if device.has_gpu:
        backends.append("opencl")
        if device.gpu.api == "cuda":
            backends.append("cuda")
    specs.append(
        ParameterSpec(
            "backend", "categorical",
            "opencl" if device.has_gpu else "openmp",
            choices=tuple(backends),
            description="implementation language / execution unit",
        )
    )
    specs.append(
        ParameterSpec(
            "cpu_freq_ghz", "ordinal", cluster.max_freq_ghz,
            choices=tuple(cluster.freqs_ghz),
            description=f"{cluster.name}-cluster DVFS state",
        )
    )
    if len(device.clusters) > 1:
        specs.append(
            ParameterSpec(
                "cpu_cluster", "categorical", cluster.name,
                choices=tuple(c.name for c in device.clusters),
                description="big.LITTLE: cluster running the CPU-side work",
            )
        )
    if device.has_gpu:
        specs.append(
            ParameterSpec(
                "gpu_freq_ghz", "ordinal", device.gpu.max_freq_ghz,
                choices=tuple(device.gpu.freqs_ghz),
                description="GPU DVFS state",
            )
        )
    return DesignSpace(specs)
