"""The HyperMapper active-learning optimizer (Figure 2's methodology).

The loop matches the paper's description: a first phase of random sampling
of the configuration space, then repeated rounds in which a random-forest
predictive model is trained on everything evaluated so far and used to
pick the next batch of promising samples ("Run new samples" in Figure 2).

The acquisition is a randomly-scalarised predicted objective (the standard
multi-objective trick HyperMapper uses) with an uncertainty bonus from the
forest ensemble spread and a penalty on predicted constraint violation, so
the search concentrates near the accuracy-feasible Pareto front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import OptimizationError
from ..jobs.hashing import config_hash
from ..ml.forest import RandomForestRegressor
from ..telemetry import current_tracer
from .constraints import Constraint, ConstraintSet, accuracy_limit
from .evaluator import Evaluation, Evaluator
from .pareto import pareto_mask
from .space import DesignSpace

OBJECTIVE_NAMES = ("runtime_s", "max_ate_m", "power_w")


@dataclass
class ExplorationResult:
    """All evaluations of one exploration plus bookkeeping."""

    space: DesignSpace
    evaluations: list[Evaluation]
    method: str
    iteration_of: list[int] = field(default_factory=list)  # 0 = initial phase

    def objective_matrix(
        self, objectives: Sequence[str] = ("runtime_s", "max_ate_m")
    ) -> np.ndarray:
        """``(N, len(objectives))`` matrix of objective values."""
        if not self.evaluations:
            raise OptimizationError("no evaluations recorded")
        return np.array(
            [[getattr(e, o) for o in objectives] for e in self.evaluations]
        )

    def feasible(self, constraints: ConstraintSet) -> list[Evaluation]:
        return constraints.filter(self.evaluations)

    def pareto(
        self,
        objectives: Sequence[str] = ("runtime_s", "max_ate_m"),
        constraints: ConstraintSet | None = None,
    ) -> list[Evaluation]:
        """Non-dominated feasible evaluations."""
        pool = (
            self.feasible(constraints) if constraints else list(self.evaluations)
        )
        pool = [e for e in pool if all(np.isfinite(e.objectives()))]
        if not pool:
            return []
        pts = np.array([[getattr(e, o) for o in objectives] for e in pool])
        mask = pareto_mask(pts)
        front = [e for e, m in zip(pool, mask) if m]
        front.sort(key=lambda e: getattr(e, objectives[0]))
        return front

    def best(
        self,
        objective: str = "runtime_s",
        constraints: ConstraintSet | None = None,
    ) -> Evaluation:
        """The feasible evaluation minimising ``objective``."""
        pool = (
            self.feasible(constraints) if constraints else list(self.evaluations)
        )
        pool = [e for e in pool if np.isfinite(getattr(e, objective))]
        if not pool:
            raise OptimizationError(
                "no feasible evaluation found; relax the constraints or "
                "increase the budget"
            )
        return min(pool, key=lambda e: getattr(e, objective))


class HyperMapper:
    """Random-forest active learning over a design space.

    Args:
        space: the design space.
        evaluator: the black box (measured or surrogate).
        constraint: feasibility constraint steering the search (the
            paper's accuracy limit by default).
        n_initial: random-sampling phase size.
        n_iterations: active-learning rounds.
        samples_per_iteration: evaluations per round.
        candidate_pool: random candidates scored by the model per round.
        n_trees: forest size.
        exploration_kappa: weight of the ensemble-spread bonus.
        seed: RNG seed.
        seed_configurations: known configurations evaluated before the
            random phase (HyperMapper's "inject priors" mechanism — the
            default configuration is an obvious one: it anchors the model
            in the feasible region when the constraint is tight).
        runner: optional :class:`repro.jobs.JobRunner` — each batch
            (the initial phase, then every iteration's samples) fans out
            over its worker pool and memoizes through its store.  The
            search itself stays sequential (each round's model needs the
            previous round's results), so results are identical at any
            worker count for the same seed.
    """

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Evaluator,
        constraint: Constraint | ConstraintSet | None = None,
        n_initial: int = 20,
        n_iterations: int = 8,
        samples_per_iteration: int = 5,
        candidate_pool: int = 500,
        n_trees: int = 24,
        exploration_kappa: float = 0.7,
        seed: int = 0,
        seed_configurations: Sequence[dict] = (),
        runner=None,
    ):
        if n_initial < 3:
            raise OptimizationError("need n_initial >= 3 to fit a model")
        if n_iterations < 0 or samples_per_iteration < 1:
            raise OptimizationError("invalid iteration budget")
        self.space = space
        self.evaluator = evaluator
        if constraint is None:
            constraint = accuracy_limit()
        if isinstance(constraint, Constraint):
            constraint = ConstraintSet.of([constraint])
        self.constraints = constraint
        self.n_initial = n_initial
        self.n_iterations = n_iterations
        self.samples_per_iteration = samples_per_iteration
        self.candidate_pool = candidate_pool
        self.n_trees = n_trees
        self.exploration_kappa = exploration_kappa
        self.seed = seed
        self.seed_configurations = [
            space.validate(c) for c in seed_configurations
        ]
        self.runner = runner

    # -- helpers -----------------------------------------------------------------
    def _evaluate_batch(self, configurations: list[dict]) -> list[Evaluation]:
        """One ask/tell batch: through the runner when we have one."""
        if self.runner is not None:
            return self.runner.evaluate(self.evaluator, configurations)
        return [self.evaluator.evaluate(c) for c in configurations]

    @staticmethod
    def _target_transform(name: str, values: np.ndarray) -> np.ndarray:
        """Model heavy-tailed objectives in log space."""
        if name in ("runtime_s", "max_ate_m"):
            return np.log10(np.maximum(values, 1e-9))
        return values

    def _fit_models(self, evaluations: list[Evaluation]):
        finite = [e for e in evaluations if all(np.isfinite(e.objectives()))]
        if len(finite) < 3:
            raise OptimizationError("not enough finite evaluations to model")
        X = self.space.to_feature_matrix([e.configuration for e in finite])
        models = {}
        for name in OBJECTIVE_NAMES:
            y = np.array([getattr(e, name) for e in finite])
            model = RandomForestRegressor(
                n_trees=self.n_trees, max_depth=10, random_state=self.seed
            )
            model.fit(X, self._target_transform(name, y))
            models[name] = model
        return models

    def _acquire(self, models, rng: np.random.Generator,
                 seen: set) -> list[dict]:
        """Score a candidate pool and return the next batch."""
        candidates = []
        while len(candidates) < self.candidate_pool:
            config = self.space.sample(rng)
            if config_hash(config) not in seen:
                candidates.append(config)
        X = self.space.to_feature_matrix(candidates)

        means, stds = {}, {}
        for name, model in models.items():
            mu, sd = model.predict_with_std(X)
            means[name], stds[name] = mu, sd

        # Normalise each objective's predictions to [0, 1] for scalarising.
        def norm(a: np.ndarray) -> np.ndarray:
            lo, hi = float(a.min()), float(a.max())
            return (a - lo) / (hi - lo) if hi > lo else np.zeros_like(a)

        weights = rng.dirichlet(np.ones(len(OBJECTIVE_NAMES)))
        score = np.zeros(len(candidates))
        bonus = np.zeros(len(candidates))
        for w, name in zip(weights, OBJECTIVE_NAMES):
            score += w * norm(means[name])
            bonus += w * norm(stds[name])
        score -= self.exploration_kappa * bonus

        # Constraint handling: penalise candidates the model predicts
        # infeasible (normal approximation over the ensemble spread).
        for constraint in self.constraints.constraints:
            metric = constraint.metric
            op = constraint.op
            bound = constraint.bound
            if metric == "fps":
                # fps > b  <=>  runtime_s < 1/b.
                metric, op, bound = "runtime_s", "<", 1.0 / bound
            if metric not in means:
                continue
            mu = means[metric]
            sd = np.maximum(stds[metric], 1e-9)
            if metric in ("runtime_s", "max_ate_m"):
                bound = np.log10(max(bound, 1e-9))
            z = (bound - mu) / sd if op == "<" else (mu - bound) / sd
            p_feasible = _normal_cdf(z)
            score += 1.5 * (1.0 - p_feasible)

        order = np.argsort(score)
        return [candidates[i] for i in order[: self.samples_per_iteration]]

    # -- main loop ------------------------------------------------------------------
    def run(self) -> ExplorationResult:
        """Execute the exploration and return every evaluation."""
        tracer = current_tracer()
        rng = np.random.default_rng(self.seed)
        evaluations: list[Evaluation] = []
        iteration_of: list[int] = []
        seen: set = set()

        with tracer.span("dse.initial_phase", n=self.n_initial):
            initial = list(self.seed_configurations)
            initial += self.space.sample_many(
                max(self.n_initial - len(initial), 0), rng
            )
            evaluations += self._evaluate_batch(initial)
            iteration_of += [0] * len(initial)
            seen.update(config_hash(config) for config in initial)

        for it in range(1, self.n_iterations + 1):
            with tracer.span("dse.iteration", iteration=it):
                with tracer.span("dse.fit_models",
                                 n_evaluations=len(evaluations)):
                    models = self._fit_models(evaluations)
                with tracer.span("dse.acquire"):
                    batch = self._acquire(models, rng, seen)
                evaluations += self._evaluate_batch(batch)
                iteration_of += [it] * len(batch)
                seen.update(config_hash(config) for config in batch)
            tracer.gauge("dse.last_iteration", it)

        return ExplorationResult(
            space=self.space,
            evaluations=evaluations,
            method="active_learning",
            iteration_of=iteration_of,
        )


def random_exploration(
    space: DesignSpace, evaluator: Evaluator, n: int, seed: int = 0,
    runner=None,
) -> ExplorationResult:
    """Pure random sampling — Figure 2's baseline strategy.

    All ``n`` configurations are drawn up front, so with a
    :class:`repro.jobs.JobRunner` the whole exploration is one
    embarrassingly parallel batch.
    """
    if n < 1:
        raise OptimizationError("need n >= 1")
    rng = np.random.default_rng(seed)
    configurations = space.sample_many(n, rng)
    if runner is not None:
        evaluations = runner.evaluate(evaluator, configurations)
    else:
        evaluations = [evaluator.evaluate(c) for c in configurations]
    return ExplorationResult(
        space=space,
        evaluations=evaluations,
        method="random_sampling",
        iteration_of=[0] * n,
    )


def _normal_cdf(z: np.ndarray) -> np.ndarray:
    from scipy.special import erf

    return 0.5 * (1.0 + erf(np.asarray(z) / np.sqrt(2.0)))
