"""Feasibility constraints over evaluations.

Figure 2 works with three thresholds: *accurate* (Max ATE < 5 cm), *fast*
(speed > 30 FPS, i.e. runtime < 33.3 ms) and *power efficient* (< 3 W, or
the headline's 1 W budget).  A :class:`Constraint` names an evaluation
metric with a bound; :class:`ConstraintSet` combines them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import OptimizationError
from .evaluator import Evaluation

_METRICS = ("runtime_s", "max_ate_m", "power_w", "fps")


@dataclass(frozen=True)
class Constraint:
    """``metric op bound`` over an :class:`Evaluation`."""

    metric: str
    bound: float
    op: str = "<"  # "<" or ">"
    name: str = ""

    def __post_init__(self):
        if self.metric not in _METRICS:
            raise OptimizationError(
                f"unknown metric {self.metric!r}; choose from {_METRICS}"
            )
        if self.op not in ("<", ">"):
            raise OptimizationError(f"unknown op {self.op!r}")
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.metric}{self.op}{self.bound:g}"
            )

    def satisfied(self, evaluation: Evaluation) -> bool:
        value = getattr(evaluation, self.metric)
        return value < self.bound if self.op == "<" else value > self.bound

    def __str__(self) -> str:
        return self.name


def accuracy_limit(max_ate_m: float = 0.05) -> Constraint:
    """The paper's accuracy limit (Max ATE < 5 cm)."""
    return Constraint("max_ate_m", max_ate_m, "<", name="accurate")


def realtime(min_fps: float = 30.0) -> Constraint:
    """The paper's real-time criterion (speed > 30 FPS)."""
    return Constraint("fps", min_fps, ">", name="fast")


def power_budget(max_w: float = 3.0) -> Constraint:
    """The paper's power-efficiency criterion (default 3 W; headline 1 W)."""
    return Constraint("power_w", max_w, "<", name="power_efficient")


@dataclass(frozen=True)
class ConstraintSet:
    """A conjunction of constraints."""

    constraints: tuple[Constraint, ...]

    @classmethod
    def of(cls, constraints: Iterable[Constraint]) -> "ConstraintSet":
        return cls(constraints=tuple(constraints))

    def satisfied(self, evaluation: Evaluation) -> bool:
        return all(c.satisfied(evaluation) for c in self.constraints)

    def filter(self, evaluations: Iterable[Evaluation]) -> list[Evaluation]:
        return [e for e in evaluations if self.satisfied(e)]

    def __str__(self) -> str:
        return " AND ".join(str(c) for c in self.constraints) or "(none)"
