"""Pareto-front utilities for multi-objective exploration.

All objectives are minimised.  Provides the non-dominated mask, front
extraction, and the 2-D hypervolume indicator used by the sample-efficiency
ablation (how quickly a strategy approaches the true front).
"""

from __future__ import annotations

import numpy as np

from ..errors import OptimizationError


def pareto_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (all objectives minimised).

    A point is dominated if another point is <= in every objective and
    strictly < in at least one.
    """
    pts = np.asarray(objectives, dtype=float)
    if pts.ndim != 2 or len(pts) == 0:
        raise OptimizationError(f"objectives must be (N, M), got {pts.shape}")
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominates_i = np.all(pts <= pts[i], axis=1) & np.any(pts < pts[i], axis=1)
        if dominates_i.any():
            mask[i] = False
    return mask


def pareto_front(objectives: np.ndarray) -> np.ndarray:
    """The non-dominated rows, sorted by the first objective."""
    pts = np.asarray(objectives, dtype=float)
    front = pts[pareto_mask(pts)]
    return front[np.argsort(front[:, 0])]


def hypervolume_2d(front: np.ndarray, reference: tuple[float, float]) -> float:
    """Hypervolume (area dominated) of a 2-D front w.r.t. ``reference``.

    Points beyond the reference contribute nothing; both objectives are
    minimised, so the reference must be an upper bound of interest.
    """
    pts = np.asarray(front, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise OptimizationError("hypervolume_2d needs an (N, 2) front")
    rx, ry = float(reference[0]), float(reference[1])
    pts = pts[(pts[:, 0] < rx) & (pts[:, 1] < ry)]
    if len(pts) == 0:
        return 0.0
    pts = pts[pareto_mask(pts)]
    pts = pts[np.argsort(pts[:, 0])]
    area = 0.0
    prev_y = ry
    for x, y in pts:
        if y < prev_y:
            area += (rx - x) * (prev_y - y)
            prev_y = y
    return float(area)


def dominated_by(point: np.ndarray, front: np.ndarray) -> bool:
    """Whether ``point`` is dominated by any row of ``front``."""
    p = np.asarray(point, dtype=float)
    f = np.asarray(front, dtype=float)
    if len(f) == 0:
        return False
    return bool(np.any(np.all(f <= p, axis=1) & np.any(f < p, axis=1)))
