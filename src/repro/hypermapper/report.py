"""Textual reports for explorations — HyperMapper's output files.

HyperMapper writes CSV samples and a summary of the Pareto-optimal
configurations; these helpers produce the equivalent artefacts from an
:class:`~repro.hypermapper.optimizer.ExplorationResult` so CLI runs and
examples have a complete, self-describing output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.report import format_table, write_csv
from ..errors import OptimizationError
from .constraints import ConstraintSet
from .optimizer import ExplorationResult

_OBJECTIVE_COLUMNS = ("runtime_s", "max_ate_m", "power_w", "fps")


def exploration_rows(result: ExplorationResult) -> list[dict]:
    """One row per evaluation: configuration + objectives + phase."""
    rows = []
    for e, it in zip(result.evaluations, result.iteration_of):
        row = {"iteration": it, "failed": e.failed}
        row.update(e.configuration)
        for name in _OBJECTIVE_COLUMNS:
            row[name] = getattr(e, name)
        rows.append(row)
    return rows


def save_exploration_csv(result: ExplorationResult, path: str) -> None:
    """Write every evaluation as CSV (HyperMapper's samples file)."""
    rows = exploration_rows(result)
    if not rows:
        raise OptimizationError("nothing to save: no evaluations")
    write_csv(rows, path)


@dataclass(frozen=True)
class RepetitionStatistics:
    """Across-seed statistics of an exploration recipe."""

    trials: int
    feasible_mean: float
    feasible_std: float
    best_runtime_mean_s: float
    best_runtime_std_s: float
    success_rate: float  # trials that found any feasible point


def repeat_exploration(
    make_exploration,
    constraints: ConstraintSet,
    seeds=range(3),
) -> RepetitionStatistics:
    """Run an exploration recipe across seeds and summarise the spread.

    Args:
        make_exploration: callable ``seed -> ExplorationResult``.
        constraints: feasibility definition.
        seeds: iterable of seeds (one trial each).

    The poster's claims are single numbers; error bars across repeated
    trials are what a full paper reports — this helper produces them.
    """
    feasible_counts = []
    best_runtimes = []
    successes = 0
    trials = 0
    for seed in seeds:
        trials += 1
        result = make_exploration(seed)
        feasible = result.feasible(constraints)
        feasible_counts.append(len(feasible))
        if feasible:
            successes += 1
            best_runtimes.append(min(e.runtime_s for e in feasible))
    if trials == 0:
        raise OptimizationError("no seeds given")
    return RepetitionStatistics(
        trials=trials,
        feasible_mean=float(np.mean(feasible_counts)),
        feasible_std=float(np.std(feasible_counts)),
        best_runtime_mean_s=(float(np.mean(best_runtimes))
                             if best_runtimes else float("nan")),
        best_runtime_std_s=(float(np.std(best_runtimes))
                            if best_runtimes else float("nan")),
        success_rate=successes / trials,
    )


def exploration_summary(
    result: ExplorationResult,
    constraints: ConstraintSet | None = None,
    max_front_rows: int = 8,
) -> str:
    """Human-readable exploration summary: counts, feasibility, front."""
    evaluations = result.evaluations
    if not evaluations:
        raise OptimizationError("empty exploration")
    finite = [e for e in evaluations if all(np.isfinite(e.objectives()))]
    failed = sum(1 for e in evaluations if e.failed)

    lines = [
        f"exploration method: {result.method}",
        f"evaluations: {len(evaluations)} "
        f"({len(evaluations) - len(finite)} invalid, {failed} failed runs)",
    ]
    if constraints is not None:
        feasible = result.feasible(constraints)
        lines.append(
            f"feasible under {constraints}: {len(feasible)} "
            f"({100.0 * len(feasible) / len(evaluations):.0f} %)"
        )

    front = result.pareto(("runtime_s", "max_ate_m"), constraints)
    if front:
        rows = [
            {
                "runtime_ms": e.runtime_s * 1e3,
                "max_ate_m": e.max_ate_m,
                "power_w": e.power_w,
                "volume_resolution": e.configuration.get(
                    "volume_resolution", ""
                ),
                "compute_size_ratio": e.configuration.get(
                    "compute_size_ratio", ""
                ),
            }
            for e in front[:max_front_rows]
        ]
        lines.append("")
        lines.append(
            format_table(rows, title="Pareto front (runtime vs Max ATE)")
        )
    else:
        lines.append("no feasible Pareto front found")
    return "\n".join(lines)
