"""HyperMapper-style multi-objective design-space exploration."""

from .constraints import (
    Constraint,
    ConstraintSet,
    accuracy_limit,
    power_budget,
    realtime,
)
from .evaluator import Evaluation, Evaluator, MeasuredEvaluator
from .incremental import (
    IncrementalResult,
    incremental_codesign,
    split_codesign_space,
)
from .knowledge import (
    CriterionKnowledge,
    default_criteria,
    extract_knowledge,
    format_knowledge,
)
from .local_search import local_refine, neighbours
from .optimizer import (
    ExplorationResult,
    HyperMapper,
    random_exploration,
)
from .pareto import dominated_by, hypervolume_2d, pareto_front, pareto_mask
from .report import (
    RepetitionStatistics,
    exploration_rows,
    exploration_summary,
    repeat_exploration,
    save_exploration_csv,
)
from .sampling import latin_hypercube_sample, random_sample
from .space import DesignSpace, codesign_design_space, kfusion_design_space
from .surrogate import SurrogateEvaluator, surrogate_max_ate

__all__ = [
    "Constraint",
    "ConstraintSet",
    "accuracy_limit",
    "power_budget",
    "realtime",
    "Evaluation",
    "Evaluator",
    "MeasuredEvaluator",
    "IncrementalResult",
    "incremental_codesign",
    "split_codesign_space",
    "CriterionKnowledge",
    "default_criteria",
    "extract_knowledge",
    "format_knowledge",
    "local_refine",
    "neighbours",
    "ExplorationResult",
    "HyperMapper",
    "random_exploration",
    "dominated_by",
    "hypervolume_2d",
    "pareto_front",
    "pareto_mask",
    "RepetitionStatistics",
    "exploration_rows",
    "repeat_exploration",
    "exploration_summary",
    "save_exploration_csv",
    "latin_hypercube_sample",
    "random_sample",
    "DesignSpace",
    "codesign_design_space",
    "kfusion_design_space",
    "SurrogateEvaluator",
    "surrogate_max_ate",
]
