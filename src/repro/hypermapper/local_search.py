"""Local refinement of a found configuration — HyperMapper's last phase.

After the model-guided exploration, later HyperMapper versions polish the
best configurations with a local search: perturb one parameter at a time
(one ordinal/DVFS step, a small multiplicative nudge for reals, ±1 for
integers) and keep any neighbour that improves the objective while
staying feasible.  :func:`local_refine` implements that coordinate
descent over our design spaces.
"""

from __future__ import annotations

from ..errors import OptimizationError
from .constraints import ConstraintSet
from .evaluator import Evaluation, Evaluator
from .space import DesignSpace


def neighbours(space: DesignSpace, configuration: dict,
               real_step: float = 0.15) -> list[dict]:
    """All one-parameter perturbations of ``configuration``.

    Ordinals and categoricals move one choice; integers move +-1; reals
    move by ``+-real_step`` relatively (log-scale reals by one decade
    fraction), clipped to bounds.  Every returned configuration is valid.
    """
    out: list[dict] = []
    for spec in space.specs:
        value = configuration[spec.name]
        candidates = []
        if spec.kind in ("ordinal", "categorical"):
            idx = spec.choices.index(value)
            if idx > 0:
                candidates.append(spec.choices[idx - 1])
            if idx < len(spec.choices) - 1:
                candidates.append(spec.choices[idx + 1])
        elif spec.kind == "integer":
            for delta in (-1, 1):
                v = int(value) + delta
                if spec.low <= v <= spec.high:
                    candidates.append(v)
        else:  # real
            if spec.log_scale:
                factors = (10 ** (-real_step), 10 ** (real_step))
            else:
                factors = (1.0 - real_step, 1.0 + real_step)
            for f in factors:
                v = min(max(float(value) * f, spec.low), spec.high)
                if v != value:
                    candidates.append(v)
        for candidate in candidates:
            neighbour = dict(configuration)
            neighbour[spec.name] = candidate
            out.append(space.validate(neighbour))
    return out


def local_refine(
    space: DesignSpace,
    evaluator: Evaluator,
    start: Evaluation,
    constraints: ConstraintSet,
    objective: str = "runtime_s",
    max_rounds: int = 4,
) -> tuple[Evaluation, int]:
    """Coordinate-descent polish of a feasible starting evaluation.

    Returns ``(best_evaluation, evaluations_spent)``.  Each round tries
    every one-parameter neighbour of the incumbent and moves to the best
    feasible improvement; stops at a local optimum or ``max_rounds``.
    """
    if not constraints.satisfied(start):
        raise OptimizationError("local_refine needs a feasible start")
    best = start
    spent = 0
    for _ in range(max_rounds):
        improved = None
        for candidate in neighbours(space, best.configuration):
            evaluation = evaluator.evaluate(candidate)
            spent += 1
            if not constraints.satisfied(evaluation):
                continue
            if getattr(evaluation, objective) < getattr(
                improved or best, objective
            ):
                improved = evaluation
        if improved is None:
            break
        best = improved
    return best, spent
