"""Evaluators: configuration -> (runtime, accuracy, power).

The DSE treats the benchmark as a black box returning three objectives;
two implementations are provided:

* :class:`MeasuredEvaluator` runs the *real* NumPy KinectFusion on a short
  synthetic sequence, measures Max ATE against ground truth, and simulates
  the recorded kernel workloads on the target device.  Faithful but slow —
  used for small demo explorations and for calibrating the surrogate.
* :class:`SurrogateEvaluator` (``repro.hypermapper.surrogate``) predicts
  all three objectives analytically at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol

from ..core.harness import run_benchmark
from ..datasets.base import Sequence
from ..errors import OptimizationError, ReproError
from ..kfusion.memory import total_bytes
from ..kfusion.params import KFusionParams
from ..kfusion.pipeline import KinectFusion
from ..platforms.device import DeviceModel
from ..platforms.simulator import PlatformConfig
from ..telemetry import current_tracer


@dataclass(frozen=True)
class Evaluation:
    """One evaluated configuration.

    Objectives follow the paper's Figure 2: per-frame runtime (s), Max ATE
    (m), and average power during streaming (W).  ``failed`` marks runs
    where tracking broke down (their ATE is still reported — large).
    """

    configuration: dict
    runtime_s: float
    max_ate_m: float
    power_w: float
    fps: float = 0.0
    tracked_fraction: float = 1.0
    failed: bool = False
    extras: dict = field(default_factory=dict)

    def objectives(self) -> tuple[float, float, float]:
        """(runtime, max_ate, power), all minimised."""
        return (self.runtime_s, self.max_ate_m, self.power_w)

    def to_dict(self) -> dict:
        """JSON-ready dict (the evaluation store's record format).

        Lossless against :meth:`from_dict`, including non-finite
        objectives — failed evaluations carry ``inf`` sentinels, which
        Python's ``json`` round-trips as ``Infinity``.
        """
        return {
            "configuration": dict(self.configuration),
            "runtime_s": float(self.runtime_s),
            "max_ate_m": float(self.max_ate_m),
            "power_w": float(self.power_w),
            "fps": float(self.fps),
            "tracked_fraction": float(self.tracked_fraction),
            "failed": bool(self.failed),
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Evaluation":
        """Rebuild an evaluation from :meth:`to_dict` output.

        Unknown keys are rejected rather than dropped — a store record
        that does not round-trip is corrupt, and silently discarding
        fields would hide it.
        """
        fields = dict(data)
        try:
            evaluation = cls(
                configuration=dict(fields.pop("configuration")),
                runtime_s=float(fields.pop("runtime_s")),
                max_ate_m=float(fields.pop("max_ate_m")),
                power_w=float(fields.pop("power_w")),
                fps=float(fields.pop("fps")),
                tracked_fraction=float(fields.pop("tracked_fraction")),
                failed=bool(fields.pop("failed")),
                extras=dict(fields.pop("extras")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise OptimizationError(
                f"not a serialized Evaluation: {exc!r}"
            ) from exc
        if fields:
            raise OptimizationError(
                f"unknown Evaluation fields: {sorted(fields)}"
            )
        return evaluation


class Evaluator(Protocol):
    """The black box the optimizer queries."""

    def evaluate(self, configuration: Mapping) -> Evaluation:
        """Evaluate one configuration."""
        ...


def _as_config(values: Mapping):
    """Wrap a validated value dict back into a framework configuration."""
    from ..core.config import AlgorithmConfiguration
    from ..kfusion.params import parameter_specs

    return AlgorithmConfiguration(parameter_specs(), dict(values))


class MeasuredEvaluator:
    """Runs the real pipeline and the platform simulator.

    Args:
        sequence: dataset to run on (short/low-res keeps this tractable).
        device: device model for runtime/power.
        platform_config: backend and DVFS choice.
        cache: memoise evaluations by configuration (the optimizer may
            revisit configurations).
    """

    def __init__(
        self,
        sequence: Sequence,
        device: DeviceModel,
        platform_config: PlatformConfig | None = None,
        cache: bool = True,
    ):
        if not sequence.sensors.has_ground_truth:
            raise OptimizationError(
                "measured evaluation needs ground-truth poses"
            )
        self.sequence = sequence
        self.device = device
        self.platform_config = platform_config or PlatformConfig(backend="opencl")
        self._cache: dict | None = {} if cache else None
        self.evaluations = 0

    def fingerprint(self) -> dict:
        """What this evaluator's numbers depend on besides the config.

        The evaluation store refuses to serve records produced under a
        different fingerprint — a cached ATE from another sequence or
        device would silently poison a resumed search.
        """
        return {
            "evaluator": "measured",
            "sequence": self.sequence.name,
            "frames": len(self.sequence),
            "width": self.sequence.sensors.depth.camera.width,
            "height": self.sequence.sensors.depth.camera.height,
            "seed": getattr(self.sequence, "seed", None),
            "device": self.device.name,
            "backend": self.platform_config.backend,
        }

    def evaluate(self, configuration: Mapping) -> Evaluation:
        from ..jobs.hashing import config_hash

        tracer = current_tracer()
        key = config_hash(configuration) if self._cache is not None else None
        if key is not None:
            if key in self._cache:
                tracer.count("dse.cache_hits")
                return self._cache[key]
            tracer.count("dse.cache_misses")

        with tracer.span("dse.evaluate", evaluator="measured",
                         **dict(configuration)):
            evaluation = self._evaluate_uncached(configuration)
        tracer.count("dse.evaluations")
        if evaluation.failed:
            tracer.count("dse.failed_evaluations")

        self.evaluations += 1
        if key is not None:
            self._cache[key] = evaluation
        return evaluation

    def _evaluate_uncached(self, configuration: Mapping) -> Evaluation:
        failed = False
        # kernel_backend is a system-construction knob, not a
        # KFusionParams field: strip it from the algorithmic
        # configuration and select the backend on the pipeline itself.
        algo_config = dict(configuration)
        kernel_backend = algo_config.pop("kernel_backend", None)
        try:
            result = run_benchmark(
                KinectFusion(kernel_backend=kernel_backend),
                self.sequence,
                configuration=algo_config,
                device=self.device,
                platform_config=self.platform_config,
            )
            assert result.ate is not None and result.simulation is not None
            max_ate = result.ate.max
            tracked = result.collector.tracked_fraction()
            if tracked < 0.5:
                failed = True
            evaluation = Evaluation(
                configuration=dict(configuration),
                runtime_s=result.simulation.mean_frame_time_s,
                max_ate_m=max_ate,
                power_w=result.simulation.streaming_average_power_w(),
                fps=result.simulation.fps,
                tracked_fraction=tracked,
                failed=failed,
                extras={
                    "ate_rmse_m": result.ate.rmse,
                    "memory_bytes": total_bytes(
                        KFusionParams.from_configuration(
                            # run_benchmark validated the configuration
                            # against the system's specs already.
                            _as_config(result.configuration)
                        ),
                        self.sequence.sensors.depth.camera.width,
                        self.sequence.sensors.depth.camera.height,
                    ),
                },
            )
        except ReproError as exc:
            # An invalid-but-reachable corner of the space (e.g. compute
            # resolution too small): report it as a failed evaluation with
            # sentinel objectives rather than crashing the exploration.
            evaluation = Evaluation(
                configuration=dict(configuration),
                runtime_s=float("inf"),
                max_ate_m=float("inf"),
                power_w=float("inf"),
                failed=True,
                extras={"error": str(exc)},
            )
        return evaluation
