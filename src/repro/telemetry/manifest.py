"""Run manifests: the provenance record attached to every benchmark.

SLAMBench writes the exact binary/dataset/parameter combination into its
logs so a number can always be traced back to the run that produced it.
:class:`RunManifest` is our version: algorithm, dataset, configuration,
seed, git revision and platform fingerprint, captured once per run and
attached to the :class:`~repro.core.harness.BenchmarkResult` and to any
exported trace file's metadata.
"""

from __future__ import annotations

import functools
import json
import platform as _platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path


@functools.lru_cache(maxsize=1)
def git_revision() -> str:
    """The repository's HEAD SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@functools.lru_cache(maxsize=1)
def _platform_fingerprint_cached() -> tuple:
    import numpy

    return (
        ("python", _platform.python_version()),
        ("implementation", _platform.python_implementation()),
        ("system", _platform.system()),
        ("machine", _platform.machine()),
        ("numpy", numpy.__version__),
    )


def platform_fingerprint() -> dict:
    """Interpreter/OS/numpy identification for the manifest."""
    return dict(_platform_fingerprint_cached())


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to reproduce (or audit) one benchmark run."""

    algorithm: str
    dataset: str
    configuration: dict = field(default_factory=dict)
    seed: int | None = None
    git_sha: str = "unknown"
    platform: dict = field(default_factory=dict)
    created_unix: float = 0.0
    extra: dict = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        algorithm: str,
        dataset: str,
        configuration: dict | None = None,
        seed: int | None = None,
        **extra,
    ) -> "RunManifest":
        """Build a manifest for the current process/checkout."""
        return cls(
            algorithm=algorithm,
            dataset=dataset,
            configuration=dict(configuration or {}),
            seed=seed,
            git_sha=git_revision(),
            platform=platform_fingerprint(),
            created_unix=time.time(),
            extra=dict(extra),
        )

    def as_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, default=str)
