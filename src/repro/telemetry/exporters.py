"""Trace exporters: JSONL, Chrome ``trace_event``, CSV summary.

Three sinks for one tracer, mirroring how SLAMBench emits both
machine-readable logs and human-readable tables:

* :func:`write_jsonl` — the lossless event log: one JSON object per
  line (manifest, spans, counters, gauges).  Greppable, streamable,
  and the round-trip source for :func:`repro.telemetry.load_spans`.
* :func:`write_chrome_trace` — a ``chrome://tracing`` / Perfetto
  compatible JSON document of complete (``"ph": "X"``) events, with
  counters as ``"C"`` samples and the run manifest in ``metadata``.
* :func:`write_csv_summary` — the flat per-kernel p50/p95/max table
  for spreadsheets and plotting scripts.

:func:`export` picks by file extension (``.jsonl``, ``.csv``, else
Chrome JSON) — the rule the CLI's ``--trace PATH`` flag documents.
"""

from __future__ import annotations

import json

from .aggregate import aggregate_tracer, summary_rows
from .tracer import TelemetryError, Tracer


def _manifest_dict(tracer: Tracer) -> dict | None:
    if tracer.manifest is None:
        return None
    return tracer.manifest.as_dict()


def write_jsonl(tracer: Tracer, path: str) -> None:
    """Write the full event log, one JSON object per line."""
    with open(path, "w") as f:
        manifest = _manifest_dict(tracer)
        if manifest is not None:
            f.write(json.dumps({"type": "manifest", **manifest},
                               default=str) + "\n")
        for span in tracer.spans:
            f.write(json.dumps({
                "type": "span",
                "name": span.name,
                "start_ns": span.start_ns,
                "duration_ns": span.duration_ns,
                "depth": span.depth,
                "parent": span.parent,
                "thread_id": span.thread_id,
                "attrs": span.attrs,
            }, default=str) + "\n")
        for name, value in sorted(tracer.counters.items()):
            f.write(json.dumps({"type": "counter", "name": name,
                                "value": value}) + "\n")
        for name, value in sorted(tracer.gauges.items()):
            f.write(json.dumps({"type": "gauge", "name": name,
                                "value": value}) + "\n")


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Tracer spans/counters as Chrome ``trace_event`` records."""
    events: list[dict] = []
    for span in tracer.spans:
        events.append({
            "name": span.name,
            "cat": span.parent or "run",
            "ph": "X",
            "ts": span.start_ns / 1e3,   # microseconds
            "dur": span.duration_ns / 1e3,
            "pid": 0,
            "tid": span.thread_id,
            "args": span.attrs,
        })
    # Counters as a single sample at the end of the timeline, so the
    # totals show up in the trace viewer's counter track.
    if tracer.counters:
        last_ts = max((s.start_ns + s.duration_ns for s in tracer.spans),
                      default=0) / 1e3
        for name, value in sorted(tracer.counters.items()):
            events.append({
                "name": name, "ph": "C", "ts": last_ts,
                "pid": 0, "args": {"value": value},
            })
    return events


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write a ``chrome://tracing``-loadable JSON document."""
    doc = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    manifest = _manifest_dict(tracer)
    if manifest is not None:
        doc["metadata"] = manifest
    with open(path, "w") as f:
        json.dump(doc, f, default=str)


def write_csv_summary(tracer: Tracer, path: str) -> None:
    """Write the per-span p50/p95/max aggregation as CSV."""
    # Imported lazily: repro.core.harness imports repro.telemetry, so a
    # top-level import here would make the packages mutually recursive.
    from ..core.report import write_csv

    rows = summary_rows(aggregate_tracer(tracer))
    if not rows:
        raise TelemetryError("tracer holds no spans to summarize")
    write_csv(rows, path)


def export(tracer: Tracer, path: str) -> str:
    """Write ``tracer`` to ``path`` in the format its extension implies.

    ``.jsonl`` → event log, ``.csv`` → summary table, anything else →
    Chrome ``trace_event`` JSON.  Returns the format name written.
    """
    lowered = path.lower()
    try:
        if lowered.endswith(".jsonl"):
            write_jsonl(tracer, path)
            return "jsonl"
        if lowered.endswith(".csv"):
            write_csv_summary(tracer, path)
            return "csv"
        write_chrome_trace(tracer, path)
        return "chrome"
    except OSError as exc:
        raise TelemetryError(f"cannot write trace file {path!r}: {exc}")
