"""The tracer: nested spans, counters, gauges.

SLAMBench's defining feature is *per-frame, per-kernel* measurement
(Nardi et al., ICRA 2015); SLAMBench2 turns that into a metrics API any
integrated algorithm reports through (Bodin et al., 2018).  This module
is our equivalent instrumentation substrate:

* :class:`Tracer` collects timestamped :class:`SpanEvent` records from
  ``with tracer.span("track", frame=i):`` blocks.  Spans nest — each
  event carries its depth and its parent's name — and timestamps come
  from the monotonic ``time.perf_counter_ns`` clock, so traces are
  immune to wall-clock steps.
* Counters (monotonic) and gauges (last-value) cover non-timing
  telemetry, e.g. how many DSE evaluations ran or the current iteration.
* A process-wide *current tracer* (a :mod:`contextvars` variable, so it
  is both thread- and generator-safe) lets deeply nested code — the
  KinectFusion pipeline, the platform simulator, the HyperMapper loop —
  emit spans without threading a tracer argument through every call.
  The default is :data:`DISABLED`, whose span path does no bookkeeping,
  keeping un-traced runs at effectively zero overhead.

Export helpers live in :mod:`repro.telemetry.exporters`; statistical
aggregation (p50/p95/max per span name) in
:mod:`repro.telemetry.aggregate`.
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import ReproError


class TelemetryError(ReproError):
    """Invalid telemetry usage (bad span nesting, unwritable export...)."""


@dataclass(frozen=True)
class SpanEvent:
    """One completed span.

    Attributes:
        name: span identifier, dot-scoped by convention
            (``"frame"``, ``"track"``, ``"dse.evaluate"``).
        start_ns: monotonic start timestamp (``time.perf_counter_ns``).
        duration_ns: elapsed monotonic nanoseconds.
        depth: nesting depth at emission (0 = top level).
        parent: name of the enclosing span, or ``None``.
        thread_id: ``threading.get_ident()`` of the emitting thread.
        attrs: user attributes (frame index, configuration hash, ...).
    """

    name: str
    start_ns: int
    duration_ns: int
    depth: int = 0
    parent: str | None = None
    thread_id: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.duration_ns * 1e-9


class _Span:
    """Context manager recording one span into a tracer.

    Kept deliberately small: two monotonic clock reads bracket the body,
    everything else happens at exit.
    """

    __slots__ = ("_tracer", "name", "attrs", "_start_ns", "duration_s")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start_ns = 0
        self.duration_s = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._push(self.name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_ns = time.perf_counter_ns()
        self.duration_s = (end_ns - self._start_ns) * 1e-9
        if exc_type is not None:
            self.attrs = {**self.attrs, "error": exc_type.__name__}
        self._tracer._pop(self.name, self._start_ns,
                          end_ns - self._start_ns, self.attrs)


class _NullSpan:
    """Shared no-op span returned by a disabled tracer."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    duration_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


def monotonic_s() -> float:
    """Monotonic seconds from the telemetry clock.

    The one sanctioned way to do *deadline bookkeeping* (job timeouts,
    poll loops) outside this package: RPR001 bans raw stdlib clock reads
    everywhere else so that every duration a trace reports flows through
    a single substrate.  Differences of this value are comparable to
    :class:`SpanEvent` durations (same ``perf_counter_ns`` clock).
    """
    return time.perf_counter_ns() * 1e-9


class Tracer:
    """Collects spans, counters and gauges for one run.

    Thread-safe: spans may be emitted concurrently from worker threads
    (each thread keeps its own nesting stack; the event list and counter
    maps are guarded by a lock).

    Args:
        enabled: when ``False`` every instrumentation call is a no-op —
            ``span()`` returns a shared null context manager and
            ``count``/``gauge`` return immediately.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: list[SpanEvent] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.rate_windows: dict = {}  # name -> RateWindow (see mark())
        self.manifest = None  # RunManifest | None, attached by the harness
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- span machinery -----------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._stacks, "names", None)
        if stack is None:
            stack = self._stacks.names = []
        return stack

    def _push(self, name: str) -> None:
        self._stack().append(name)

    def _pop(self, name: str, start_ns: int, duration_ns: int,
             attrs: dict) -> None:
        stack = self._stack()
        if not stack or stack[-1] != name:
            raise TelemetryError(
                f"span {name!r} closed out of order (stack: {stack})"
            )
        stack.pop()
        event = SpanEvent(
            name=name,
            start_ns=start_ns,
            duration_ns=duration_ns,
            depth=len(stack),
            parent=stack[-1] if stack else None,
            thread_id=threading.get_ident(),
            attrs=attrs,
        )
        with self._lock:
            self.spans.append(event)

    def span(self, name: str, **attrs):
        """Open a timed span: ``with tracer.span("track", frame=3): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    # -- counters / gauges --------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonic counter."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value gauge."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = float(value)

    def mark(self, name: str, value: float = 1.0,
             window_s: float | None = None) -> None:
        """Count ``value`` events *and* feed the name's sliding rate window.

        One call site produces both views the serving stats need: the
        cumulative monotonic counter (exported with every trace) and a
        recent-rate reading via :meth:`rate`.  ``window_s`` only takes
        effect when the window is first created for ``name``.
        """
        if not self.enabled:
            return
        from .rate import DEFAULT_WINDOW_S, RateWindow
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value
            window = self.rate_windows.get(name)
            if window is None:
                window = self.rate_windows[name] = RateWindow(
                    window_s if window_s is not None else DEFAULT_WINDOW_S
                )
            window.mark(value)

    def rate(self, name: str) -> float:
        """Sliding-window rate (events/sec) of :meth:`mark` calls.

        Returns 0.0 for names never marked (or on a disabled tracer) —
        a stats poll never throws because a quiet session has not
        emitted yet.
        """
        if not self.enabled:
            return 0.0
        with self._lock:
            window = self.rate_windows.get(name)
            return 0.0 if window is None else window.rate()

    # -- merging ------------------------------------------------------------
    def absorb(self, spans=(), counters=None, gauges=None) -> None:
        """Merge telemetry captured by another tracer into this one.

        The merge primitive the parallel evaluation engine
        (:mod:`repro.jobs`) uses to fold per-worker telemetry back into
        the parent run's tracer: spans are appended as-is (workers stamp
        their identity into ``attrs`` before shipping), counters are
        *added*, gauges overwrite.  Worker span timestamps come from the
        worker's own monotonic clock — durations and aggregation stay
        exact; absolute offsets across processes are not comparable.
        """
        if not self.enabled:
            return
        with self._lock:
            self.spans.extend(spans)
            for name, value in (counters or {}).items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            for name, value in (gauges or {}).items():
                self.gauges[name] = float(value)

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def spans_named(self, name: str) -> list[SpanEvent]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.counters.clear()
            self.gauges.clear()
            self.rate_windows.clear()


#: Process-default tracer: permanently disabled, shared by all un-traced
#: runs.  ``enabled`` is never flipped on this instance.
DISABLED = Tracer(enabled=False)

_current: contextvars.ContextVar[Tracer] = contextvars.ContextVar(
    "repro_telemetry_tracer", default=DISABLED
)


def current_tracer() -> Tracer:
    """The tracer instrumented code should emit into right now."""
    return _current.get()


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` as the current tracer for the ``with`` body."""
    token = _current.set(tracer)
    try:
        yield tracer
    finally:
        _current.reset(token)


class stage:
    """Time a pipeline stage once, feeding every telemetry sink.

    The KinectFusion pipeline must keep populating
    ``FrameWorkload.wall_times_s`` (the simulator-side record consumed by
    existing analyses) *and* emit a tracer span.  This context manager
    takes a single pair of clock readings and routes the duration to
    both, replacing the hand-rolled ``t0 = time.perf_counter()`` blocks::

        with stage(workload, "track", frame=frame.index):
            ...  # kernel calls

    ``workload`` may be ``None`` for callers that only need the span and
    the measured ``duration_s`` — the harness times whole frames this
    way, so wall-clock numbers flow through this one clock everywhere
    (the RPR001 lint rule bans any other clock outside this package)::

        with stage(None, "frame", frame=frame.index) as timed:
            ...
        record.wall_time_s = timed.duration_s

    When no tracer is installed the cost is the same two clock reads the
    old code paid, plus one dict update.
    """

    __slots__ = ("_workload", "name", "attrs", "_start_ns", "duration_s")

    def __init__(self, workload, name: str, **attrs):
        self._workload = workload
        self.name = name
        self.attrs = attrs
        self._start_ns = 0
        self.duration_s = 0.0

    def __enter__(self) -> "stage":
        tracer = _current.get()
        if tracer.enabled:
            tracer._push(self.name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_ns = time.perf_counter_ns()
        duration_ns = end_ns - self._start_ns
        self.duration_s = duration_ns * 1e-9
        if self._workload is not None:
            self._workload.record_wall_time(self.name, self.duration_s)
        tracer = _current.get()
        if tracer.enabled:
            attrs = self.attrs
            if exc_type is not None:
                attrs = {**attrs, "error": exc_type.__name__}
            tracer._pop(self.name, self._start_ns, duration_ns, attrs)
