"""Statistical aggregation of span streams.

Turns the flat event list a :class:`~repro.telemetry.tracer.Tracer`
collects into the per-kernel summary SLAMBench prints at the end of a
run: count, total, mean, p50, p95 and max per span name.  The same
aggregation runs over live tracers and over trace files read back from
disk (both the JSONL and Chrome ``trace_event`` formats the exporters
write), which is what ``repro-benchmark trace summarize`` does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .tracer import SpanEvent, TelemetryError, Tracer


@dataclass(frozen=True)
class SpanStats:
    """Aggregate timing statistics for one span name."""

    name: str
    count: int
    total_s: float
    mean_s: float
    p50_s: float
    p95_s: float
    max_s: float

    def as_row(self) -> dict:
        """Flat dict for tables/CSV, times in milliseconds."""
        return {
            "span": self.name,
            "count": self.count,
            "total_ms": self.total_s * 1e3,
            "mean_ms": self.mean_s * 1e3,
            "p50_ms": self.p50_s * 1e3,
            "p95_ms": self.p95_s * 1e3,
            "max_ms": self.max_s * 1e3,
        }


def aggregate_spans(
    spans: Iterable[SpanEvent],
) -> dict[str, SpanStats]:
    """Group spans by name and compute count/total/mean/p50/p95/max."""
    durations: dict[str, list[float]] = {}
    for span in spans:
        durations.setdefault(span.name, []).append(span.duration_s)
    out: dict[str, SpanStats] = {}
    for name, values in durations.items():
        arr = np.asarray(values, dtype=float)
        out[name] = SpanStats(
            name=name,
            count=int(arr.size),
            total_s=float(arr.sum()),
            mean_s=float(arr.mean()),
            p50_s=float(np.percentile(arr, 50)),
            p95_s=float(np.percentile(arr, 95)),
            max_s=float(arr.max()),
        )
    return out


def aggregate_tracer(tracer: Tracer) -> dict[str, SpanStats]:
    """Aggregate a live tracer's spans."""
    return aggregate_spans(tracer.spans)


def summary_rows(stats: Mapping[str, SpanStats]) -> list[dict]:
    """Stats as table rows, longest total time first."""
    ordered = sorted(stats.values(), key=lambda s: -s.total_s)
    return [s.as_row() for s in ordered]


# -- reading traces back ----------------------------------------------------
def _spans_from_chrome(payload: dict | list) -> list[SpanEvent]:
    events = payload["traceEvents"] if isinstance(payload, dict) else payload
    spans = []
    for ev in events:
        if ev.get("ph") != "X":
            continue  # counter samples, metadata...
        spans.append(
            SpanEvent(
                name=str(ev.get("name", "?")),
                start_ns=int(ev.get("ts", 0) * 1e3),
                duration_ns=int(ev.get("dur", 0) * 1e3),
                thread_id=int(ev.get("tid", 0)),
                attrs=dict(ev.get("args", {})),
            )
        )
    return spans


def _spans_from_jsonl(lines: Sequence[str]) -> list[SpanEvent]:
    spans = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") != "span":
            continue
        spans.append(
            SpanEvent(
                name=str(record["name"]),
                start_ns=int(record["start_ns"]),
                duration_ns=int(record["duration_ns"]),
                depth=int(record.get("depth", 0)),
                parent=record.get("parent"),
                thread_id=int(record.get("thread_id", 0)),
                attrs=dict(record.get("attrs", {})),
            )
        )
    return spans


def load_spans(path: str) -> list[SpanEvent]:
    """Read spans back from a trace file written by the exporters.

    Accepts both formats and sniffs which one it is: a Chrome
    ``trace_event`` JSON document (object with ``traceEvents`` or a bare
    event array) or a JSONL event log (one object per line).
    """
    try:
        with open(path) as f:
            text = f.read()
    except OSError as exc:
        raise TelemetryError(f"cannot read trace file {path!r}: {exc}")
    stripped = text.lstrip()
    if not stripped:
        raise TelemetryError(f"trace file {path!r} is empty")
    try:
        if stripped.startswith("{") or stripped.startswith("["):
            payload = json.loads(text)
            # A JSONL file whose first record is an object also parses as
            # JSON when it has one line; only treat documents that look
            # like Chrome traces as such.
            if isinstance(payload, list) or "traceEvents" in payload:
                return _spans_from_chrome(payload)
    except json.JSONDecodeError:
        pass  # multi-line JSONL: fall through to per-line parsing
    try:
        return _spans_from_jsonl(text.splitlines())
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise TelemetryError(f"cannot parse trace file {path!r}: {exc}")


def summarize_trace_file(path: str) -> list[dict]:
    """Per-span-name summary rows for a trace file (either format)."""
    spans = load_spans(path)
    if not spans:
        raise TelemetryError(f"trace file {path!r} contains no spans")
    return summary_rows(aggregate_spans(spans))
